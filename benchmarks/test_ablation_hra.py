"""Ablation: the Helmholtz resonator array -- node gain with/without it.

Quantifies the HRA's contribution to the charging budget: the on-carrier
amplitude gain of the array, its bandwidth, and the detuning penalty of
deploying a UHPC-designed array in NC.
"""

from conftest import report

from repro.acoustics import HelmholtzResonatorArray, paper_resonator
from repro.materials import get_concrete


def evaluate():
    array = HelmholtzResonatorArray(paper_resonator(), count=7)
    uhpc_cs = get_concrete("UHPC").cs
    nc_cs = get_concrete("NC").cs
    return {
        "designed_gain": array.amplification(230e3, uhpc_cs),
        "detuned_gain": array.amplification(230e3, nc_cs),
        "single_gain": paper_resonator().amplification(230e3, uhpc_cs),
        "off_band_gain": array.amplification(120e3, uhpc_cs),
    }


def test_ablation_hra(benchmark):
    result = benchmark(evaluate)

    report(
        "Ablation -- Helmholtz resonator array",
        [
            ("array gain @ 230 kHz (UHPC)", "amplifies the carrier",
             f"{result['designed_gain']:.1f}x"),
            ("single resonator", "-", f"{result['single_gain']:.1f}x"),
            ("array in NC (detuned)", "reduced", f"{result['detuned_gain']:.1f}x"),
            ("off-band @ 120 kHz", "~passthrough", f"{result['off_band_gain']:.1f}x"),
        ],
    )

    assert result["designed_gain"] > result["single_gain"]
    assert result["designed_gain"] > result["detuned_gain"]
    assert result["off_band_gain"] < 1.5
