"""Benchmark: Fig. 19 -- downlink SNR vs prism incident angle."""

from conftest import report

from repro.experiments import fig19_prism_effect


def test_fig19(benchmark):
    result = benchmark(fig19_prism_effect.run)

    peak_angle, peak_snr = result.peak
    rows = [
        (
            "S-only window",
            "[34, 73] deg",
            f"[{result.window_deg[0]:.0f}, {result.window_deg[1]:.0f}] deg",
        ),
        ("peak SNR / angle", "~15 dB @ 50-70 deg", f"{peak_snr:.1f} dB @ {peak_angle:.0f} deg"),
    ]
    for angle, snr in result.points:
        rows.append((f"SNR @ {angle:.0f} deg", "-", f"{snr:.1f} dB"))
    report("Fig. 19 -- prism effectiveness", rows)

    assert result.window_deg[0] <= peak_angle <= result.window_deg[1]
    assert abs(peak_snr - 15.0) < 1.0
    # Mixed-mode angles degrade, and 15 deg is worse than 30 deg.
    assert result.snr_at(15.0) < result.snr_at(30.0) < peak_snr
    # Direct contact (0 deg, single P mode) is locally high.
    assert result.snr_at(0.0) > result.snr_at(15.0)
