"""Ablation: carrier fine-tuning against foreign-object notches (Sec. 3.5).

The paper observes that "fine-tuning the frequency can significantly
improve the channel when the channel deteriorates due to foreign
objects".  This ablation draws randomly notched channels and compares a
fixed 230 kHz carrier against the adaptive tuner.
"""

import numpy as np

from conftest import report

from repro.acoustics import ConcreteBlock
from repro.link import CarrierTuner, ForeignObjectChannel
from repro.materials import get_concrete


def evaluate(trials=40):
    block = ConcreteBlock(get_concrete("NC"), 0.15)
    fixed_gains = []
    tuned_gains = []
    worst_saved = 0.0
    for seed in range(trials):
        channel = ForeignObjectChannel(
            block=block, n_objects=4, max_depth_db=20.0, seed=seed
        )
        fixed = channel.gain_db(230e3)
        tuner = CarrierTuner()
        result = tuner.tune(channel)
        fixed_gains.append(fixed)
        tuned_gains.append(result.gain_db)
        worst_saved = max(worst_saved, result.gain_db - fixed)
    return {
        "fixed_mean": float(np.mean(fixed_gains)),
        "tuned_mean": float(np.mean(tuned_gains)),
        "fixed_worst": float(np.min(fixed_gains)),
        "tuned_worst": float(np.min(tuned_gains)),
        "best_single_save": worst_saved,
    }


def test_ablation_carrier_tuning(benchmark):
    result = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    report(
        "Ablation -- carrier fine-tuning vs foreign objects (40 channels)",
        [
            ("fixed 230 kHz, mean", "-", f"{result['fixed_mean']:.1f} dB"),
            ("tuned, mean", "improves", f"{result['tuned_mean']:.1f} dB"),
            ("fixed 230 kHz, worst case", "deep notch", f"{result['fixed_worst']:.1f} dB"),
            ("tuned, worst case", "recovered", f"{result['tuned_worst']:.1f} dB"),
            ("largest single save", "'significantly improve'", f"{result['best_single_save']:.1f} dB"),
        ],
    )

    assert result["tuned_mean"] >= result["fixed_mean"]
    assert result["tuned_worst"] > result["fixed_worst"] + 3.0
    assert result["best_single_save"] > 6.0
