"""Benchmark: Fig. 18 -- uplink SNR CDF vs node mounting position."""

from conftest import report

from repro.experiments import fig18_snr_vs_position


def test_fig18(benchmark):
    result = benchmark.pedantic(
        fig18_snr_vs_position.run,
        kwargs={"trials": 300},
        iterations=1,
        rounds=1,
    )

    report(
        "Fig. 18 -- SNR vs position (margins vs middle)",
        [
            ("top median", "~11 dB", f"{result.median('top'):.1f} dB"),
            ("bottom median", "~8 dB", f"{result.median('bottom'):.1f} dB"),
            ("middle median", "~7 dB", f"{result.median('middle'):.1f} dB"),
            (
                "destructive tail @ top",
                "present (double-edged)",
                f"{result.low_tail_fraction('top', 3.0):.0%} < 3 dB",
            ),
        ],
    )

    assert result.median("top") > result.median("middle")
    assert result.median("bottom") > result.median("middle")
    assert abs(result.median("middle") - 7.0) < 2.0
    # The double-edged sword: margins occasionally fade destructively.
    assert result.low_tail_fraction("top", 3.0) > 0.02
    assert result.low_tail_fraction("middle", 3.0) < 0.02
