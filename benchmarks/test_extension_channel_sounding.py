"""Extension benchmark: channel sounding of the paper's structures.

Connects the multipath geometry to the link-rate limits: the RMS delay
spread of the S-reflection echoes sets a coherence bandwidth, which
bounds the flat-fading symbol rate.  Long guided links come out with
kHz-scale coherence -- consistent with the 1 kbps default uplink the
paper uses for its range experiments -- while tighter geometry widens
the band.  (The paper's 13 kbps burst is measured through a small block
at contact range, where the infinite-wall image model overestimates
echo retention; the equalizing ML decoder also tolerates some ISI.)
"""

from conftest import report

from repro.acoustics import StructureGeometry, sound_structure
from repro.materials import get_concrete


def evaluate():
    nc = get_concrete("NC").medium
    cases = {
        "block scale (15 cm, 0.2 m link)": (0.15, 0.2),
        "S3 wall @ 1 m": (0.20, 1.0),
        "S3 wall @ 3 m": (0.20, 3.0),
        "S4 wall @ 1 m": (0.50, 1.0),
    }
    soundings = {}
    for label, (thickness, distance) in cases.items():
        wall = StructureGeometry(
            "sounding", length=10.0, thickness=thickness, medium=nc
        )
        soundings[label] = sound_structure(
            wall, (0.0, thickness / 2.0), (distance, thickness / 2.0)
        )
    return soundings


def test_extension_channel_sounding(benchmark):
    soundings = benchmark(evaluate)

    rows = []
    for label, sounding in soundings.items():
        rows.append(
            (
                label,
                "echo-limited band",
                f"tau_rms {sounding.rms_delay_spread * 1e6:.0f} us, "
                f"B_c {sounding.coherence_bandwidth / 1e3:.1f} kHz, "
                f"{sounding.n_significant_paths} paths",
            )
        )
    report("Extension -- channel sounding (delay spread -> bitrate bound)", rows)

    block = soundings["block scale (15 cm, 0.2 m link)"]
    s3 = soundings["S3 wall @ 1 m"]
    s4 = soundings["S4 wall @ 1 m"]
    # Tighter geometry -> wider coherence; thicker walls -> narrower.
    assert block.coherence_bandwidth > s3.coherence_bandwidth
    assert s3.coherence_bandwidth > s4.coherence_bandwidth
    # Every geometry supports the paper's default 1 kbps uplink.
    for sounding in soundings.values():
        assert sounding.supports_bitrate(1e3)
