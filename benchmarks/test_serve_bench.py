"""Benchmark: closed-loop serving load, gateway vs threaded (ISSUE 10).

A fleet of concurrent clients replays a zipf-distributed query mix
(hot dashboard windows dominate, with a long tail of colder series
reads and aggregates) against both serving engines over real sockets:

* the **threaded** stdlib reference server (HTTP/1.0, one thread and
  one TCP handshake per request, no cache);
* the **asyncio gateway** (keep-alive, bounded worker pool, hot-rollup
  LRU serving pre-rendered bytes).

Both serve the same seeded store through the same
:class:`repro.serve.api.EndpointCore`, so the qps/latency gap is the
transport + cache story, not a difference in what is computed.
``speedup_qps_vs_threaded`` is the headline number ``obs trend`` gates
(floor 3.0 on full runs).

Environment knobs (used by scripts/ci.sh stage 12):

* ``REPRO_SERVE_BENCH_SMOKE=1`` -- shrink the client fleet for CI;
  smoke readings are never gated or recorded by ``obs trend``.
* ``REPRO_BENCH_OUT=/path.json`` -- redirect the artifact so CI smoke
  runs do not overwrite the committed full-run numbers.
"""

import http.client
import json
import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
from conftest import report

from repro.obs import MetricsRegistry
from repro.serve import gateway_background
from repro.store import SeriesKey, TelemetryStore, serve_background

SMOKE = os.environ.get("REPRO_SERVE_BENCH_SMOKE", "") == "1"

CLIENTS = 16 if SMOKE else 128
REQUESTS_PER_CLIENT = 12 if SMOKE else 40
ZIPF_A = 1.4
SPEEDUP_FLOOR = 1.3 if SMOKE else 3.0

BENCH_FILE = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parents[1] / "BENCH_serve.json",
    )
)


def _seed_store(root: Path) -> TelemetryStore:
    store = TelemetryStore(root)
    hours = np.arange(0.0, 24.0 * 30.0, 0.5)
    rng = np.random.default_rng(42)
    for node in range(1, 7):
        for wall in ("east", "west"):
            store.append(
                SeriesKey("hq", wall, node, "strain"),
                hours,
                120.0 + 0.3 * node + rng.normal(0.0, 0.05, hours.size),
            )
    store.compact()
    return store


def _targets() -> list:
    """The query mix, hottest first (rank 1 of the zipf draw)."""
    series = "building=hq&wall=east&node=1&metric=strain"
    targets = [
        f"/series?{series}&resolution=hourly&t0=600&t1=720",
        f"/series?{series}&resolution=daily",
        "/aggregate?metric=strain&agg=mean&resolution=daily&group_by=node",
        f"/series?building=hq&wall=west&node=2&metric=strain"
        "&resolution=hourly&t0=0&t1=240",
        "/aggregate?metric=strain&agg=max&resolution=hourly&building=hq",
        "/stats",
    ]
    for node in range(1, 7):
        targets.append(
            f"/series?building=hq&wall=west&node={node}&metric=strain"
            f"&resolution=daily&t0=48"
        )
        targets.append(
            f"/series?building=hq&wall=east&node={node}&metric=strain"
            f"&t0=700&t1=715"  # raw tail: uncacheable by design
        )
    return targets


def _request_plan(seed: int) -> list:
    """Per-client target sequences, zipf-ranked over the target list."""
    targets = _targets()
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(ZIPF_A, size=(CLIENTS, REQUESTS_PER_CLIENT))
    return [
        [targets[(rank - 1) % len(targets)] for rank in row]
        for row in ranks
    ]


def _run_load(port: int, plan: list) -> dict:
    """Fire every client, closed-loop; returns qps/latency/error stats."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(len(plan) + 1)

    def client(sequence: list) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60.0)
        mine: list = []
        failed: list = []
        barrier.wait()
        for target in sequence:
            t0 = time.perf_counter()
            try:
                conn.request("GET", target)
                response = conn.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                conn.close()
                conn = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=60.0
                )
                conn.request("GET", target)
                response = conn.getresponse()
                response.read()
                status = response.status
            mine.append((time.perf_counter() - t0) * 1000.0)
            if status != 200:
                failed.append(status)
        conn.close()
        with lock:
            latencies.extend(mine)
            errors.extend(failed)

    threads = [
        threading.Thread(target=client, args=(sequence,), daemon=True)
        for sequence in plan
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    samples = np.asarray(latencies)
    return {
        "requests": int(samples.size),
        "wall_s": wall,
        "qps": samples.size / wall,
        "p50_ms": float(np.percentile(samples, 50.0)),
        "p99_ms": float(np.percentile(samples, 99.0)),
        "errors": len(errors),
    }


def test_serve_bench(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="serve-bench-"))
    try:
        store = _seed_store(tmp / "store")
        plan = _request_plan(seed=2021)
        warmup = _targets()

        server, server_thread = serve_background(
            store, registry=MetricsRegistry()
        )
        try:
            _run_load(server.port, [warmup])
            threaded = _run_load(server.port, plan)
        finally:
            server.shutdown()
            server_thread.join(timeout=10.0)

        gateway, gateway_thread = gateway_background(
            store,
            registry=MetricsRegistry(),
            workers=min(32, os.cpu_count() or 8),
            max_queue=CLIENTS * 4,  # closed-loop: shedding would skew qps
        )
        try:
            _run_load(gateway.port, [warmup])
            result = benchmark.pedantic(
                _run_load, args=(gateway.port, plan),
                iterations=1, rounds=1,
            )
            cache_stats = gateway.cache.stats()
            shed = gateway.registry.snapshot()["counters"].get(
                "serve.shed", 0
            )
        finally:
            gateway.shutdown()
            gateway_thread.join(timeout=10.0)

        speedup = result["qps"] / threaded["qps"]
        payload = {
            "schema": "repro/bench-serve/v1",
            "smoke": SMOKE,
            "workload": {
                "clients": CLIENTS,
                "requests_per_client": REQUESTS_PER_CLIENT,
                "requests_total": result["requests"],
                "targets": len(_targets()),
                "zipf_a": ZIPF_A,
            },
            "gateway": {
                "qps": round(result["qps"], 1),
                "p50_ms": round(result["p50_ms"], 3),
                "p99_ms": round(result["p99_ms"], 3),
                "errors": result["errors"],
                "shed": int(shed),
                "cache_hit_rate": round(cache_stats["hit_rate"], 4),
            },
            "threaded": {
                "qps": round(threaded["qps"], 1),
                "p50_ms": round(threaded["p50_ms"], 3),
                "p99_ms": round(threaded["p99_ms"], 3),
                "errors": threaded["errors"],
            },
            "speedup_qps_vs_threaded": round(speedup, 3),
        }
        BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

        report(
            "repro.serve -- gateway vs threaded under zipf load",
            [
                (
                    "workload", "--",
                    f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} reqs",
                ),
                ("threaded qps", "--", f"{threaded['qps']:.0f}"),
                ("gateway qps", "--", f"{result['qps']:.0f}"),
                (
                    "gateway p50/p99", "--",
                    f"{result['p50_ms']:.2f} / {result['p99_ms']:.2f} ms",
                ),
                (
                    "cache hit rate", "--",
                    f"{cache_stats['hit_rate']:.1%}",
                ),
                ("speedup (qps)", ">= 3x", f"{speedup:.2f}x"),
            ],
        )

        assert threaded["errors"] == 0 and result["errors"] == 0
        assert speedup >= SPEEDUP_FLOOR, (
            f"gateway is only {speedup:.2f}x the threaded server "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
    finally:
        shutil.rmtree(tmp)
