"""Benchmark: Table 2 -- PAO health levels for four regions.

Ported to the experiment runtime: assertions read the serialized JSON
payload of the ``tables`` experiment.
"""

from conftest import report, serialized_run

from repro.shm import PAO_THRESHOLDS


def test_table2(benchmark):
    payload = benchmark(serialized_run, "tables")
    table = payload["result"]["table2_thresholds"]
    examples = payload["result"]["table2_examples"]

    paper = {
        "united_states": {"A": 3.85, "B": 2.30, "C": 1.39, "D": 0.93, "E": 0.46},
        "hong_kong": {"A": 3.25, "B": 2.16, "C": 1.40, "D": 0.80, "E": 0.52},
        "bangkok": {"A": 2.38, "B": 1.60, "C": 0.98, "D": 0.65, "E": 0.37},
        "manila": {"A": 3.25, "B": 2.05, "C": 1.65, "D": 1.25, "E": 0.56},
    }
    rows = []
    for region, bounds in table.items():
        rows.append(
            (
                region,
                " ".join(f"{g}>{paper[region][g]}" for g in "ABCDE"),
                " ".join(f"{g}>{bounds[g]}" for g in "ABCDE"),
            )
        )
    for pao, region, letter in examples:
        rows.append((f"grade({pao} m2/ped, {region})", "-", letter))
    report("Table 2 -- PAO health thresholds", rows)

    assert table == paper
    assert table == {r: dict(b) for r, b in PAO_THRESHOLDS.items()}
