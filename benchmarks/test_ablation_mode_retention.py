"""Ablation: per-bounce S-mode retention in the image-source model.

The raytracer derates each face reflection by a mode-conversion
retention factor (oblique SV reflections at a free surface convert part
of the energy into P and surface waves).  This ablation shows what the
factor controls: echo-train length, delay spread, and the coherence
bandwidth -- and that the headline geometric findings (margins beat the
middle, thin walls guide) are robust to it.
"""

from conftest import report

from repro.acoustics import ImageSourceModel, StructureGeometry, sound_arrivals
from repro.materials import get_concrete


def evaluate():
    nc = get_concrete("NC").medium
    thin = StructureGeometry("thin", length=10.0, thickness=0.2, medium=nc)
    thick = StructureGeometry("thick", length=10.0, thickness=0.7, medium=nc)
    out = {}
    for retention in (1.0, 0.85, 0.6):
        thin_model = ImageSourceModel(
            thin, frequency=230e3, max_bounces=30, mode_retention=retention
        )
        thick_model = ImageSourceModel(
            thick, frequency=230e3, max_bounces=30, mode_retention=retention
        )
        sounding = sound_arrivals(thin_model.arrivals((0.0, 0.1), (1.0, 0.1)))
        thin_far = thin_model.power_gain((0.0, 0.1), (4.0, 0.1))
        thick_far = thick_model.power_gain((0.0, 0.35), (4.0, 0.35))
        out[retention] = {
            "paths": sounding.n_significant_paths,
            "coherence": sounding.coherence_bandwidth,
            "guidance_advantage": thin_far / thick_far,
        }
    return out


def test_ablation_mode_retention(benchmark):
    outcomes = benchmark(evaluate)

    rows = []
    for retention, data in outcomes.items():
        rows.append(
            (
                f"retention {retention:.2f}",
                "fewer echoes, wider band as it drops",
                f"{data['paths']} paths, B_c {data['coherence'] / 1e3:.1f} kHz, "
                f"thin/thick @4 m {data['guidance_advantage']:.1f}x",
            )
        )
    report("Ablation -- per-bounce S-mode retention", rows)

    # Lower retention -> shorter echo trains -> wider coherence.
    assert outcomes[0.6]["paths"] < outcomes[1.0]["paths"]
    assert outcomes[0.6]["coherence"] > outcomes[1.0]["coherence"]
    # The guidance finding (thin walls outrange thick, Fig. 12) survives
    # every retention setting.
    for data in outcomes.values():
        assert data["guidance_advantage"] > 1.0
