"""Extension benchmark: harvest-aware duty cycling at the range edge.

Quantifies the sustainable report rate as the field weakens toward the
activation threshold -- the operating envelope behind Fig. 12's ranges.
"""

from conftest import report

from repro.node import EnergyScheduler


def evaluate():
    scheduler = EnergyScheduler()
    sweep = scheduler.sweep([0.4, 0.55, 0.7, 1.0, 2.0])
    v_continuous = scheduler.minimum_continuous_field()
    return {"sweep": sweep, "v_continuous": v_continuous}


def test_extension_duty_cycle(benchmark):
    result = benchmark(evaluate)

    rows = []
    for voltage, plan in result["sweep"]:
        if plan is None:
            rows.append((f"field {voltage:.2f} V", "below activation", "dark"))
        elif plan.continuous:
            rows.append(
                (
                    f"field {voltage:.2f} V",
                    "continuous",
                    f"{plan.reports_per_hour:.0f} reports/h",
                )
            )
        else:
            rows.append(
                (
                    f"field {voltage:.2f} V",
                    "duty-cycled",
                    f"{plan.duty_cycle:.1%} duty, "
                    f"{plan.reports_per_hour:.0f} reports/h",
                )
            )
    rows.append(
        (
            "continuous threshold",
            "between activation and charging fields",
            f"{result['v_continuous']:.2f} V",
        )
    )
    report("Extension -- duty cycling vs field strength", rows)

    sweep = dict(result["sweep"])
    assert sweep[0.4] is None
    assert not sweep[0.55].continuous
    assert sweep[2.0].continuous
    assert 0.5 < result["v_continuous"] < 3.0