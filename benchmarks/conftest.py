"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper table/figure and prints a
paper-vs-measured comparison block so the EXPERIMENTS.md numbers can be
audited straight from ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import sys


def report(title: str, rows: list) -> None:
    """Print a formatted paper-vs-measured block.

    Args:
        title: The artifact name (e.g. 'Fig. 12 -- range vs voltage').
        rows: (label, paper_value, measured_value) triples; values are
            preformatted strings.
    """
    width = max(len(label) for label, _, _ in rows) if rows else 20
    line = "=" * (width + 44)
    out = [line, title, line]
    out.append(f"{'metric':<{width}}  {'paper':>18}  {'measured':>18}")
    for label, paper, measured in rows:
        out.append(f"{label:<{width}}  {paper:>18}  {measured:>18}")
    out.append(line)
    print("\n" + "\n".join(out), file=sys.stderr)
