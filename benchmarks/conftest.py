"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper table/figure and prints a
paper-vs-measured comparison block so the EXPERIMENTS.md numbers can be
audited straight from ``pytest benchmarks/ --benchmark-only -s``.

Benchmarks ported to the experiment runtime call :func:`serialized_run`
instead of invoking ``experiments.*.run`` directly: the experiment goes
through the registry + runner + cache, is written to disk as JSON, and
the benchmark asserts against the *serialized* payload -- the same
artifact ``python -m repro.cli experiments run`` produces -- so the
paper numbers are checked on the bytes a reader of ``results/`` sees.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

#: Session-scoped results/cache tree; repeated benchmark iterations of
#: the same experiment hit the content-addressed cache.
_BENCH_OUT = Path(tempfile.mkdtemp(prefix="repro-bench-results-"))


def report(title: str, rows: list) -> None:
    """Print a formatted paper-vs-measured block.

    Args:
        title: The artifact name (e.g. 'Fig. 12 -- range vs voltage').
        rows: (label, paper_value, measured_value) triples; values are
            preformatted strings.
    """
    width = max(len(label) for label, _, _ in rows) if rows else 20
    line = "=" * (width + 44)
    out = [line, title, line]
    out.append(f"{'metric':<{width}}  {'paper':>18}  {'measured':>18}")
    for label, paper, measured in rows:
        out.append(f"{label:<{width}}  {paper:>18}  {measured:>18}")
    out.append(line)
    print("\n" + "\n".join(out), file=sys.stderr)


def serialized_run(name: str, **overrides):
    """Run one registered experiment and return its serialized payload.

    Executes through :func:`repro.runtime.run_experiments` (inline, so
    pytest-benchmark timings stay in-process), then reads the
    per-experiment JSON back from the run directory with
    :func:`repro.reporting.load_result`.
    """
    from repro.reporting import load_result
    from repro.runtime import run_experiments

    run_report = run_experiments(
        names=[name],
        jobs=0,
        out_dir=_BENCH_OUT,
        overrides={name: overrides} if overrides else None,
    )
    outcome = run_report.outcomes[0]
    if outcome.status != "ok":
        raise RuntimeError(f"{name} failed in the runtime: {outcome.error}")
    return load_result(run_report.run_dir / outcome.result_file)
