"""Benchmark: fleet supervisor throughput and restart overhead (ISSUE 8).

Two fleets run over the same config:

* a **clean** run pins aggregate throughput -- ``buildings_per_min``
  and ``epochs_per_s`` across the worker pool;
* a **kill** run injects one worker SIGKILL mid-campaign, forcing a
  checkpoint resume through the supervisor's backoff path;
  ``restart_overhead_pct`` is the extra wall time that recovery cost
  relative to the clean run.

The two runs must produce byte-identical fleet results -- the bench
doubles as a determinism check (a restart that changed the sha256
would make the overhead number meaningless anyway).

Environment knobs (used by scripts/ci.sh stage 10):

* ``REPRO_FLEET_BENCH_SMOKE=1`` -- shrink the fleet for CI; smoke
  readings are never gated or recorded by ``obs trend``.
* ``REPRO_BENCH_OUT=/path.json`` -- redirect the artifact so CI smoke
  runs do not overwrite the committed full-run numbers.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import report

from repro.campaign import CampaignConfig
from repro.faults import WorkerFault, WorkerFaultPlan
from repro.fleet import FleetConfig, building_names, run_fleet

SMOKE = os.environ.get("REPRO_FLEET_BENCH_SMOKE", "") == "1"

BUILDINGS = 3 if SMOKE else 6
WORKERS = 3 if SMOKE else 4
EPOCHS = 2 if SMOKE else 6

BENCH_FILE = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parents[1] / "BENCH_fleet.json",
    )
)


def _fleet_config():
    campaign = CampaignConfig(
        epochs=EPOCHS,
        nodes=2 if SMOKE else 4,
        hours_per_epoch=6 if SMOKE else 24,
        samples_per_hour=1,
        storm_period_epochs=max(2, EPOCHS // 2),
        storm_duration_epochs=1,
        checkpoint_interval=1,
        epoch_timeout_s=60.0,
    )
    return FleetConfig(
        buildings=building_names(BUILDINGS),
        campaign=campaign,
        seed=2021,
        workers=WORKERS,
        max_restarts=3,
        heartbeat_timeout_s=60.0,
        backoff_base_s=0.05,
        backoff_max_s=0.5,
    )


def _run_fleet(worker_faults=None):
    tmp = Path(tempfile.mkdtemp(prefix="fleet-bench-"))
    try:
        t0 = time.perf_counter()
        outcome = run_fleet(
            _fleet_config(),
            tmp / "fleet",
            store_dir=tmp / "store",
            worker_faults=worker_faults,
        )
        wall = time.perf_counter() - t0
        assert outcome.completed and not outcome.quarantined
        return {"wall_s": wall, "sha256": outcome.sha256,
                "totals": outcome.result["totals"]}
    finally:
        shutil.rmtree(tmp)


def test_fleet_bench(benchmark):
    _run_fleet()  # warm imports and fork machinery

    clean = benchmark.pedantic(_run_fleet, iterations=1, rounds=1)
    kill_plan = WorkerFaultPlan(faults=(
        WorkerFault(building="b002", epoch=EPOCHS // 2, action="kill"),
    ))
    killed = _run_fleet(worker_faults=kill_plan)

    assert killed["sha256"] == clean["sha256"], (
        "worker kill + checkpoint restart changed the fleet result bytes"
    )

    epochs_total = clean["totals"]["epochs_run"]
    buildings_per_min = BUILDINGS / (clean["wall_s"] / 60.0)
    epochs_per_s = epochs_total / clean["wall_s"]
    restart_overhead_s = killed["wall_s"] - clean["wall_s"]
    restart_overhead_pct = restart_overhead_s / clean["wall_s"] * 100.0

    payload = {
        "schema": "repro/bench-fleet/v1",
        "smoke": SMOKE,
        "workload": {
            "buildings": BUILDINGS,
            "workers": WORKERS,
            "epochs_per_building": EPOCHS,
            "epochs_total": epochs_total,
        },
        "fleet_wall_s": {
            "clean": round(clean["wall_s"], 4),
            "with_restart": round(killed["wall_s"], 4),
        },
        "buildings_per_min": round(buildings_per_min, 3),
        "epochs_per_s": round(epochs_per_s, 3),
        "restart_overhead_s": round(restart_overhead_s, 4),
        "restart_overhead_pct": round(restart_overhead_pct, 3),
        "result_hash_identical": True,
        "sha256": clean["sha256"],
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "repro.fleet -- supervised fleet throughput",
        [
            (
                "workload",
                "--",
                f"{BUILDINGS} buildings x {EPOCHS} epochs on "
                f"{WORKERS} workers",
            ),
            ("fleet wall (clean)", "--", f"{clean['wall_s']:.2f} s"),
            ("fleet wall (1 kill)", "--", f"{killed['wall_s']:.2f} s"),
            ("buildings/min", "--", f"{buildings_per_min:.1f}"),
            ("epochs/s", "--", f"{epochs_per_s:.1f}"),
            (
                "restart overhead",
                "--",
                f"{restart_overhead_s * 1000:.0f} ms "
                f"({restart_overhead_pct:.1f}%)",
            ),
            ("result bytes", "identical", "True"),
        ],
    )
