"""Benchmark: shell design points -- dP_max and building-height limits."""

from conftest import report

from repro.experiments import tables


def test_shell_limits(benchmark):
    points = benchmark(tables.shell_design_points)

    by_material = {p.material: p for p in points}
    resin = by_material["SLA resin"]
    steel = by_material["alloy steel"]
    report(
        "Shell limits (Sec. 4.1): thin-sphere stress + deformation",
        [
            ("resin dP_max", "~4.3 MPa", f"{resin.max_pressure_mpa:.2f} MPa"),
            ("resin h_max", "~195 m (~55 floors)", f"{resin.max_height_m:.0f} m"),
            ("steel dP_max", "~115.2 MPa", f"{steel.max_pressure_mpa:.1f} MPa"),
            ("steel h_max", "~4985 m", f"{steel.max_height_m:.0f} m"),
        ],
    )

    assert abs(resin.max_pressure_mpa - 4.3) < 0.1
    assert abs(resin.max_height_m - 195.0) < 3.0
    assert abs(steel.max_pressure_mpa - 115.2) < 0.5
    assert abs(steel.max_height_m - 4985.0) < 60.0
