"""Ablation: Gen2 Q-adaptation vs a fixed slot count in TDMA inventory.

The adaptive Q-algorithm tracks the population between slots; a
mis-provisioned fixed Q either collides (Q too small) or wastes empty
slots (Q too large).  This ablation inventories the same population
under adaptive and fixed policies and compares total slots used.
"""

from conftest import report

from repro.protocol import NodeStateMachine, TdmaInventory


def make_nodes(count, seed):
    return [
        NodeStateMachine(node_id=i + 1, read_sensor=lambda c: 25.0, seed=seed + i)
        for i in range(count)
    ]


def slots_to_finish(nodes, initial_q, adaptive, seed, max_rounds=40):
    """(slots used, finished?) for one inventory of the population."""
    inventory = TdmaInventory(nodes=nodes, initial_q=initial_q, seed=seed)
    heard = set()
    slots = 0
    for _ in range(max_rounds):
        round_result = inventory.run_round(q=None if adaptive else initial_q)
        slots += len(round_result.slots)
        for slot in round_result.slots:
            if slot.singulated_node_id is not None:
                heard.add(slot.singulated_node_id)
        if len(heard) == len(nodes):
            return slots, True
        for node in nodes:
            node.power_cycle()
    return slots, False


def evaluate():
    population = 12
    outcomes = {}
    for label, initial_q, adaptive in (
        ("adaptive from Q=2", 2, True),
        ("fixed Q=1 (too small)", 1, False),
        ("fixed Q=7 (too large)", 7, False),
    ):
        trials = [
            slots_to_finish(make_nodes(population, seed=40 * t), initial_q,
                            adaptive, seed=7 + t)
            for t in range(5)
        ]
        mean_slots = sum(s for s, _ in trials) / len(trials)
        completion = sum(1 for _, done in trials if done) / len(trials)
        outcomes[label] = (mean_slots, completion)
    return outcomes


def test_ablation_q_adaptation(benchmark):
    outcomes = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    rows = [
        (
            label,
            "fewer slots, 100 % completion",
            f"{slots:.0f} slots, {done:.0%} complete",
        )
        for label, (slots, done) in outcomes.items()
    ]
    report("Ablation -- TDMA Q-adaptation (12 nodes)", rows)

    adaptive_slots, adaptive_done = outcomes["adaptive from Q=2"]
    assert adaptive_done == 1.0
    # The oversized fixed Q also finishes but wastes empty slots.
    big_slots, big_done = outcomes["fixed Q=7 (too large)"]
    assert big_done == 1.0
    assert adaptive_slots < big_slots
    # The undersized fixed Q thrashes in collisions.
    _, small_done = outcomes["fixed Q=1 (too small)"]
    assert small_done < 1.0
