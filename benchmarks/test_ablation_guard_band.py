"""Ablation: the backscatter link frequency (guard band) vs decode quality.

The shifted-BLF scheme (Sec. 3.4, Appendix C) moves the uplink sidebands
away from the self-interfering CBW.  This ablation sweeps the BLF and
measures decode errors: with no guard band (tiny BLF) the 10x carrier
leakage swamps the sideband; with a healthy BLF decoding is clean.
"""

import numpy as np

from conftest import report

from repro.link import UplinkPassbandSimulator
from repro.phy.modem import BackscatterModulator


def evaluate():
    rng = np.random.default_rng(17)
    bits = list(rng.integers(0, 2, size=24))
    outcomes = {}
    for blf in (2e3, 4e3, 10e3, 20e3):
        modulator = BackscatterModulator(blf=blf, bitrate=1e3)
        simulator = UplinkPassbandSimulator(modulator=modulator, seed=23)
        result = simulator.run(bits)
        outcomes[blf] = result.ber
    return outcomes


def test_ablation_guard_band(benchmark):
    outcomes = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    rows = [
        (
            f"BLF {blf / 1e3:.0f} kHz",
            "clean if guard band >> bitrate",
            f"BER {ber:.3f}",
        )
        for blf, ber in outcomes.items()
    ]
    report("Ablation -- guard band (BLF) vs self-interference", rows)

    assert outcomes[10e3] == 0.0
    assert outcomes[20e3] == 0.0
    # Collapsing the guard band degrades decoding.
    assert outcomes[2e3] > 0.0
