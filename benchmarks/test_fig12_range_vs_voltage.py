"""Benchmark: Fig. 12 -- power-up range vs TX voltage, S1-S4 + PAB pools."""

from conftest import report

from repro.experiments import fig12_range_vs_voltage

#: The paper's quoted anchors (structure, voltage V, range cm).
PAPER_ANCHORS = [
    ("S1 slab", 50.0, 130.0),
    ("S2 column", 50.0, 56.0),
    ("S3 common wall", 50.0, 134.0),
    ("S4 protective wall", 50.0, 60.0),
    ("S2 column", 200.0, 235.0),
    ("S3 common wall", 200.0, 500.0),
    ("S4 protective wall", 200.0, 385.0),
    ("PAB pool 1", 50.0, 19.0),
    ("PAB pool 1", 200.0, 200.0),
    ("PAB pool 2", 84.0, 23.0),
]


def test_fig12(benchmark):
    result = benchmark(fig12_range_vs_voltage.run)

    rows = []
    for label, voltage, paper_cm in PAPER_ANCHORS:
        measured = result.curves[label].range_at(voltage) * 100.0
        rows.append(
            (f"{label} @ {voltage:.0f} V", f"{paper_cm:.0f} cm", f"{measured:.0f} cm")
        )
    best_label, best_range = result.max_range()
    rows.append(("max range @ 250 V", "> 600 cm", f"{best_range * 100:.0f} cm"))
    report("Fig. 12 -- power-up range vs voltage", rows)

    assert best_range > 6.0
    assert best_label == "S3 common wall"
    # Shape checks: ordering of structures preserved at every voltage.
    for v in (50.0, 200.0):
        s3 = result.curves["S3 common wall"].range_at(v)
        s4 = result.curves["S4 protective wall"].range_at(v)
        s2 = result.curves["S2 column"].range_at(v)
        assert s3 > s4 > s2
