"""Benchmark: Fig. 21 -- the footbridge pilot study (July 2021)."""

from conftest import report

from repro.experiments import fig21_pilot_study


def test_fig21(benchmark):
    result = benchmark.pedantic(
        fig21_pilot_study.run,
        kwargs={"samples_per_hour": 6},
        iterations=1,
        rounds=1,
    )

    accel_days = ", ".join(
        f"{w.start_hour / 24 + 1:.0f}-{w.end_hour / 24 + 1:.0f}"
        for w in result.acceleration_anomalies
    )
    rows = [
        ("storm anomaly window", "15-23 July", f"days {accel_days}"),
        (
            "both channels flag the storm",
            "yes",
            str(result.storm_detected_in_both),
        ),
        (
            "sensors mutually verified",
            "yes (paper Sec. 6)",
            str(result.sensors_mutually_verified),
        ),
        (
            "max |acceleration|",
            "< 0.7 m/s^2 limit",
            f"{result.compliance.max_abs_acceleration:.3f} m/s^2",
        ),
        (
            "max |stress|",
            "< 355 MPa limit",
            f"{result.compliance.max_abs_stress_mpa:.0f} MPa",
        ),
        (
            "health grades observed",
            "B or above all year",
            ", ".join(f"{g}: {f:.0%}" for g, f in result.grade_fractions.items()),
        ),
    ]
    for health in result.section_health:
        rows.append(
            (
                f"section {health.section}",
                "Fig. 21c panel",
                f"No.{health.pedestrians} Health {health.grade} "
                f"{health.mean_speed:.1f} m/s",
            )
        )
    report("Fig. 21 -- pilot study", rows)

    assert result.storm_detected_in_both
    assert result.sensors_mutually_verified
    assert result.compliance.compliant
    assert result.health_at_or_above_b
