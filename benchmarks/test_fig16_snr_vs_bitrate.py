"""Benchmark: Fig. 16 -- SNR vs bitrate for EcoCapsule, PAB and U2B.

Ported to the experiment runtime: assertions read the serialized JSON
payload the runner writes.
"""

from conftest import report, serialized_run


def test_fig16(benchmark):
    payload = benchmark(serialized_run, "fig16")
    result = payload["result"]

    rows = [
        (
            "EcoCapsule 3 dB knee",
            "13 kbps",
            f"{result['ecocapsule_knee'] / 1e3:.1f} kbps",
        ),
        ("PAB 3 dB knee", "3 kbps", f"{result['pab_knee'] / 1e3:.1f} kbps"),
        (
            "U2B overtakes EcoCapsule",
            "> 9 kbps",
            f"{result['u2b_crossover'] / 1e3:.1f} kbps",
        ),
    ]
    for label, curve in result["curves"].items():
        for bitrate, snr in curve:
            if bitrate in (1e3, 8e3, 13e3):
                # Past a system's band limit the model reports -inf,
                # which the serializer encodes as a nonfinite marker.
                text = (
                    f"{snr:.1f} dB"
                    if isinstance(snr, (int, float))
                    else f"{snr['__nonfinite__']} dB"
                )
                rows.append((f"{label} SNR @ {bitrate / 1e3:.0f} kbps", "-", text))
    report("Fig. 16 -- SNR vs bitrate", rows)

    assert abs(result["ecocapsule_knee"] - 13e3) < 0.7e3
    assert abs(result["pab_knee"] - 3e3) < 0.4e3
    assert 8.5e3 < result["u2b_crossover"] < 10.5e3
