"""Benchmark: batched vs scalar PHY Monte-Carlo engine (ISSUE 6).

Not a paper artifact: pins the perf trajectory of the uplink hot path
the way ``BENCH_store.json`` pins the telemetry store's.  Runs the
`uplink_ber`-class workload (``UplinkBasebandSimulator.measure_ber``)
under the scalar reference engine and the batched engine, profiles both
with :class:`repro.obs.ProfileProbe`, times a campaign epoch both ways,
and emits ``BENCH_phy.json`` at the repo root.

Environment knobs (used by scripts/ci.sh stage 7):

* ``REPRO_PHY_BENCH_SMOKE=1`` -- shrink the workload for CI and relax
  the speedup floor to 3x (tiny batches amortise less of the per-packet
  RNG cost; the committed full-run artifact must show >= 10x).
* ``REPRO_BENCH_OUT=/path.json`` -- redirect the artifact so CI smoke
  runs do not overwrite the committed full-run numbers.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import report

from repro.link.simulation import UplinkBasebandSimulator
from repro.obs import ProfileProbe
from repro.phy.batch import use_engine
from repro.runtime import experiment_registry

SMOKE = os.environ.get("REPRO_PHY_BENCH_SMOKE", "") == "1"

#: Monte-Carlo workload: one BER point per SNR, fig15-class settings.
SNR_POINTS = (2.0, 3.5, 5.0) if SMOKE else (0.0, 2.0, 3.5, 5.0, 8.0)
TOTAL_BITS = 10_000 if SMOKE else 100_000
PACKET_BITS = 200
SPEEDUP_FLOOR = 3.0 if SMOKE else 10.0

BENCH_FILE = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parents[1] / "BENCH_phy.json",
    )
)


def _ber_workload(engine):
    """All SNR points at TOTAL_BITS each; returns (bers, probe, trials/s)."""
    with use_engine(engine):
        with ProfileProbe() as probe:
            bers = [
                UplinkBasebandSimulator(seed=0x5EC0).measure_ber(
                    snr, total_bits=TOTAL_BITS, packet_bits=PACKET_BITS
                )
                for snr in SNR_POINTS
            ]
    packets = len(SNR_POINTS) * (TOTAL_BITS // PACKET_BITS)
    return bers, probe, packets / probe.wall_s


def _campaign_epoch_wall(engine):
    """Wall time of the campaign_pilot quick run under ``engine``."""
    spec = experiment_registry()["campaign_pilot"]
    with use_engine(engine):
        t0 = time.perf_counter()
        spec.execute(quick=True)
        return time.perf_counter() - t0


def test_phy_bench(benchmark):
    # Warm both engines (numpy dispatch tables, module imports).
    UplinkBasebandSimulator(seed=1).measure_ber(5.0, total_bits=1_000)
    with use_engine("scalar"):
        UplinkBasebandSimulator(seed=1).measure_ber(5.0, total_bits=1_000)

    scalar_bers, scalar_probe, scalar_tps = benchmark.pedantic(
        _ber_workload, args=("scalar",), iterations=1, rounds=1
    )
    batch_bers, batch_probe, batch_tps = _ber_workload("batch")
    fast_bers, fast_probe, fast_tps = _ber_workload("batch-float32")

    # The equivalence contract, re-checked on the benchmark workload.
    assert batch_bers == scalar_bers, "batch engine diverged from scalar"
    assert all(
        abs(a - b) <= 0.005 for a, b in zip(fast_bers, scalar_bers)
    ), "float32 fast path outside its documented BER tolerance"

    speedup = batch_tps / scalar_tps
    epoch_scalar_s = _campaign_epoch_wall("scalar")
    epoch_batch_s = _campaign_epoch_wall("batch")

    payload = {
        "schema": "repro/bench-phy/v1",
        "smoke": SMOKE,
        "workload": {
            "snr_points": list(SNR_POINTS),
            "total_bits_per_point": TOTAL_BITS,
            "packet_bits": PACKET_BITS,
        },
        "scalar": {
            "packets_per_s": round(scalar_tps),
            "profile": scalar_probe.as_dict(),
        },
        "batch": {
            "packets_per_s": round(batch_tps),
            "profile": batch_probe.as_dict(),
        },
        "batch_float32": {
            "packets_per_s": round(fast_tps),
            "profile": fast_probe.as_dict(),
        },
        "speedup_batch_vs_scalar": round(speedup, 2),
        "speedup_float32_vs_scalar": round(fast_tps / scalar_tps, 2),
        "campaign_epoch_wall_s": {
            "scalar": round(epoch_scalar_s, 4),
            "batch": round(epoch_batch_s, 4),
        },
        "ber_identical_scalar_vs_batch": True,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "repro.phy -- batched vs scalar uplink Monte-Carlo",
        [
            (
                "workload",
                "--",
                f"{len(SNR_POINTS)} SNR x {TOTAL_BITS} bits",
            ),
            ("scalar packets/s", "--", f"{scalar_tps:,.0f}"),
            ("batch packets/s", "--", f"{batch_tps:,.0f}"),
            ("float32 packets/s", "--", f"{fast_tps:,.0f}"),
            ("speedup (batch)", ">= 10x full run", f"{speedup:.1f}x"),
            (
                "campaign epoch",
                "--",
                f"{epoch_scalar_s:.2f} s -> {epoch_batch_s:.2f} s",
            ),
            ("BER identical", "bit-exact", str(batch_bers == scalar_bers)),
        ],
    )

    floor = SPEEDUP_FLOOR
    assert speedup >= floor, (
        f"batch engine speedup {speedup:.1f}x below the {floor:.0f}x floor"
    )
    assert np.all(np.diff(scalar_bers) <= 1e-9), (
        "BER should not increase with SNR on this workload"
    )
