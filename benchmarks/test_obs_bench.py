"""Benchmark: obs -> store pipeline overhead (ISSUE 7).

Pins the cost of self-telemetry.  A checkpointed campaign (state dir +
telemetry store) runs with the ``_obs`` heartbeat recorder attached;
the recorder's **accounted wall time** -- the sum of its own
``obs.pipeline.record_s`` (in-memory ticks) and ``obs.pipeline.flush_s``
(batched non-durable store flushes) histograms -- over the campaign's
total wall time becomes ``overhead_pct`` in ``BENCH_obs.json``.

Accounted time is used instead of differencing recorder-on vs
recorder-off wall clocks because a ~2% effect drowns in multi-second
run-to-run noise on a shared machine; the recorder times itself with
``perf_counter`` around exactly the added work, and numerator and
denominator come from the *same* run.  A recorder-off twin still runs
for the zero-effect contract (byte-identical result hash) and is
reported informationally.

The campaign spans exactly ``OBS_FLUSH_EPOCHS`` epochs so the batched
flush amortises at its design cadence -- the documented budget
(enforced by ``obs trend``) is <= 2% at that default cadence.

Environment knobs (used by scripts/ci.sh stage 9):

* ``REPRO_OBS_BENCH_SMOKE=1`` -- shrink the campaign for CI and relax
  the ceiling (a handful of epochs cannot amortise the final flush;
  the committed full-run artifact must meet the real budget).
* ``REPRO_BENCH_OUT=/path.json`` -- redirect the artifact so CI smoke
  runs do not overwrite the committed full-run numbers.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import report

from repro.campaign import CampaignConfig
from repro.campaign.driver import Campaign, OBS_FLUSH_EPOCHS, result_hash
from repro.obs import observed, obs_registry
from repro.store import OBS_BUILDING, TelemetryStore

SMOKE = os.environ.get("REPRO_OBS_BENCH_SMOKE", "") == "1"

EPOCHS = 8 if SMOKE else OBS_FLUSH_EPOCHS
OVERHEAD_CEILING_PCT = 25.0 if SMOKE else 2.0

BENCH_FILE = Path(
    os.environ.get(
        "REPRO_BENCH_OUT",
        Path(__file__).resolve().parents[1] / "BENCH_obs.json",
    )
)


def _run_campaign(record_obs):
    """One full campaign; returns wall seconds, result hash, recorder
    accounted seconds, and the ``_obs`` series the store ended up with."""
    tmp = Path(tempfile.mkdtemp(prefix="obs-bench-"))
    try:
        config = CampaignConfig(epochs=EPOCHS, seed=7)
        with observed():
            campaign = Campaign(
                config,
                state_dir=tmp / "state",
                store_dir=tmp / "store",
                record_obs=record_obs,
            )
            t0 = time.perf_counter()
            outcome = campaign.run()
            wall = time.perf_counter() - t0
            histograms = obs_registry().snapshot()["histograms"]
        accounted = sum(
            histograms.get(f"obs.pipeline.{name}", {}).get("sum", 0.0)
            for name in ("record_s", "flush_s")
        )
        obs_series = sorted(
            k.metric
            for k in TelemetryStore(tmp / "store", create=False).keys()
            if k.building == OBS_BUILDING
        )
        return {
            "wall_s": wall,
            "hash": result_hash(outcome.result),
            "accounted_s": accounted,
            "recorder": campaign.recorder,
            "obs_series": obs_series,
        }
    finally:
        shutil.rmtree(tmp)


def test_obs_bench(benchmark):
    _run_campaign(False)  # warm imports, numpy dispatch, store code paths

    plain = _run_campaign(False)
    observed_run = benchmark.pedantic(
        _run_campaign, args=(True,), iterations=1, rounds=1
    )

    overhead_pct = (
        observed_run["accounted_s"] / observed_run["wall_s"] * 100.0
    )
    recorder = observed_run["recorder"]
    obs_series = observed_run["obs_series"]

    assert plain["accounted_s"] == 0.0, (
        "recorder-off run should account zero pipeline time"
    )
    assert observed_run["hash"] == plain["hash"], (
        "recorder perturbed the campaign result bytes"
    )
    assert "campaign.epoch_wall_s" in obs_series
    assert "campaign.epochs_run" in obs_series

    payload = {
        "schema": "repro/bench-obs/v1",
        "smoke": SMOKE,
        "workload": {
            "epochs": EPOCHS,
            "flush_every_epochs": OBS_FLUSH_EPOCHS,
        },
        "campaign_wall_s": {
            "recorder_off": round(plain["wall_s"], 4),
            "recorder_on": round(observed_run["wall_s"], 4),
        },
        "epochs_per_s": {
            "recorder_off": round(EPOCHS / plain["wall_s"], 3),
            "recorder_on": round(EPOCHS / observed_run["wall_s"], 3),
        },
        "recorder_accounted_s": round(observed_run["accounted_s"], 4),
        "overhead_pct": round(overhead_pct, 3),
        "recorder": {
            "ticks": recorder.ticks,
            "samples_written": recorder.samples_written,
            "obs_series": len(obs_series),
        },
        "result_hash_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "repro.obs -- self-telemetry pipeline overhead",
        [
            (
                "workload",
                "--",
                f"{EPOCHS} epochs, flush every {OBS_FLUSH_EPOCHS}",
            ),
            ("campaign wall", "--", f"{observed_run['wall_s']:.2f} s"),
            (
                "recorder accounted",
                "--",
                f"{observed_run['accounted_s'] * 1000:.1f} ms",
            ),
            (
                "overhead",
                f"<= {OVERHEAD_CEILING_PCT:g}%",
                f"{overhead_pct:.2f}%",
            ),
            ("heartbeat ticks", "--", str(recorder.ticks)),
            ("_obs series", "--", str(len(obs_series))),
            ("result bytes", "identical", "True"),
        ],
    )

    assert overhead_pct <= OVERHEAD_CEILING_PCT, (
        f"recorder overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_CEILING_PCT:g}% ceiling"
    )
