"""Benchmark: Fig. 5b -- concrete frequency response of four blocks."""

from conftest import report

from repro.experiments import fig05_frequency_response


def test_fig05(benchmark):
    result = benchmark(fig05_frequency_response.run)

    rows = []
    for label, curve in result.curves.items():
        freq, amp = curve.peak
        rows.append(
            (
                f"{label} peak",
                "200-250 kHz band",
                f"{freq / 1e3:.0f} kHz / {amp * 1e3:.0f} mV",
            )
        )
    nc = result.curves["NC-15cm"].peak[1]
    uhpc = result.curves["UHPC-15cm"].peak[1]
    rows.append(("UHPC/NC peak ratio", ">> 1 (far greater)", f"{uhpc / nc:.1f}x"))
    report("Fig. 5b -- frequency response, 20-400 kHz sweep @ 100 V", rows)

    for label in result.curves:
        assert result.peak_in_carrier_band(label)
    assert uhpc > 2.0 * nc
