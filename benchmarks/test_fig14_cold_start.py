"""Benchmark: Fig. 14 -- cold-start time vs activation voltage."""

from conftest import report

from repro.experiments import fig14_cold_start


def test_fig14(benchmark):
    result = benchmark(fig14_cold_start.run)

    report(
        "Fig. 14 -- cold start vs activation voltage",
        [
            (
                "minimum activation",
                "0.5 V",
                f"{result.minimum_activation_voltage:.1f} V",
            ),
            ("cold start @ 0.5 V", "~55 ms", f"{result.time_at(0.5) * 1e3:.1f} ms"),
            ("cold start @ 2.0 V", "~4.4 ms", f"{result.time_at(2.0) * 1e3:.1f} ms"),
            ("cold start @ 5.0 V", "< 4.4 ms", f"{result.time_at(5.0) * 1e3:.1f} ms"),
        ],
    )

    assert abs(result.time_at(0.5) - 55e-3) < 3e-3
    assert abs(result.time_at(2.0) - 4.4e-3) < 0.3e-3
