"""Benchmark: Helmholtz resonator array design point (Eqn. 5)."""

from conftest import report

from repro.experiments import tables


def test_hra_design(benchmark):
    point = benchmark(tables.hra_design_point)

    report(
        "HRA design (Sec. 4.1, Eqn. 5)",
        [
            ("neck area A_n", "0.78 mm^2", f"{point.neck_area_mm2:.2f} mm^2"),
            ("cavity volume V_c", "2.76 mm^3", f"{point.cavity_volume_mm3:.2f} mm^3"),
            ("neck length H_n", "0.8 mm", f"{point.neck_length_mm:.1f} mm"),
            (
                "resonance target",
                "~230 kHz",
                f"{point.resonance_at_design_speed / 1e3:.0f} kHz "
                f"@ Cs={point.design_speed:.0f} m/s",
            ),
        ],
    )

    assert abs(point.resonance_at_design_speed - 230e3) < 1.0
    # The design speed matches high-performance concrete's S-wave band.
    assert 2500.0 < point.design_speed < 3100.0
