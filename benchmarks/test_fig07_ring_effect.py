"""Benchmark: Fig. 7 -- ring-effect tailing and its FSK suppression."""

from conftest import report

from repro.experiments import fig07_ring_effect


def test_fig07(benchmark):
    result = benchmark(fig07_ring_effect.run)

    report(
        "Fig. 7 -- PIE bit-0 symbol: OOK ring tail vs FSK suppression",
        [
            ("ring tail duration", "~0.3 ms", f"{result.tail_duration * 1e3:.2f} ms"),
            ("OOK low-edge residual", "large (tailing)", f"{result.ook_residual:.3f}"),
            ("FSK low-edge residual", "suppressed", f"{result.fsk_residual:.3f}"),
            ("suppression ratio", "> 1", f"{result.suppression_ratio:.1f}x"),
        ],
    )

    assert result.suppression_ratio > 2.0
    assert 0.2e-3 < result.tail_duration < 0.45e-3
