"""Benchmark: Fig. 4 -- relative P/S amplitudes vs incident angle."""

from conftest import report

from repro.experiments import fig04_mode_amplitudes


def test_fig04(benchmark):
    result = benchmark(fig04_mode_amplitudes.run)

    report(
        "Fig. 4 -- P/S mode amplitudes vs incident angle (PLA on NC)",
        [
            ("first critical angle", "~34 deg", f"{result.first_critical_deg:.1f} deg"),
            ("second critical angle", "~73 deg", f"{result.second_critical_deg:.1f} deg"),
            ("dominant mode @ 5 deg", "P", result.dominant_mode(5.0).upper()),
            ("dominant mode @ 50 deg", "S", result.dominant_mode(50.0).upper()),
            ("dominant mode @ 78 deg", "none", result.dominant_mode(78.0)),
        ],
    )

    assert 33.0 < result.first_critical_deg < 35.0
    assert 71.0 < result.second_critical_deg < 75.0
    assert result.dominant_mode(50.0) == "s"
