"""Benchmark: Fig. 22 -- received and demodulated backscatter signal."""

from conftest import report

from repro.experiments import fig22_backscatter_waveform


def test_fig22(benchmark):
    result = benchmark.pedantic(
        fig22_backscatter_waveform.run, iterations=1, rounds=1
    )

    report(
        "Fig. 22 -- demodulated backscatter waveform",
        [
            (
                "idle CBW region",
                "backscatter from ~4 ms",
                f"{result.idle_samples / result.sample_rate * 1e3:.1f} ms",
            ),
            ("edge duration", "0.5 ms each", f"{result.edge_duration * 1e3:.2f} ms"),
            (
                "square-wave contrast",
                "two alternating amplitudes",
                f"{result.modulation_depth:.2f}x",
            ),
        ],
    )

    assert result.idle_samples / result.sample_rate == 4e-3
    assert result.edge_duration == 0.5e-3
    assert result.modulation_depth > 1.3
