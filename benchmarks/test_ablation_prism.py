"""Ablation: the wave prism -- S-only injection vs direct/mixed-mode.

Quantifies what the prism buys: injecting inside the S-only window versus
gluing the PZT straight onto the wall (single P mode, no S-reflections)
versus a mixed-mode angle below the first critical angle.
"""

import math

from conftest import report

from repro.acoustics import WavePrism
from repro.materials import PLA, get_concrete


def evaluate():
    prism = WavePrism(PLA, get_concrete("NC").medium)
    best = prism.recommend_angle()
    return {
        "recommended_deg": math.degrees(best),
        "s_only_gain": prism.injection_quality(best).effective_snr_gain,
        "mixed_gain": prism.injection_quality(math.radians(20.0)).effective_snr_gain,
        "direct_energy": prism.injection_quality(0.0).injected_energy,
    }


def test_ablation_prism(benchmark):
    result = benchmark(evaluate)

    s_only = result["s_only_gain"]
    mixed = result["mixed_gain"]
    report(
        "Ablation -- wave prism (S-only vs mixed vs direct)",
        [
            ("recommended angle", "~60 deg", f"{result['recommended_deg']:.0f} deg"),
            ("S-only effective gain", "best", f"{s_only:.2f}"),
            ("mixed-mode gain @ 20 deg", "degraded", f"{mixed:.2f}"),
            ("S-only over mixed", "30-70 % SNR improvement", f"{s_only / mixed:.1f}x"),
            ("direct-contact energy", "single P mode", f"{result['direct_energy']:.2f}"),
        ],
    )

    assert s_only > 2.0 * mixed  # the prism is load-bearing
    assert 45.0 <= result["recommended_deg"] <= 70.0
