"""Extension benchmark: FDMA uplink -- simultaneous nodes on distinct BLFs.

The guard-band scheme of Sec. 3.4 assigns each node a shifted BLF; this
extension quantifies the aggregate-throughput payoff of decoding several
nodes in one slot versus serving them sequentially over TDMA.
"""

import numpy as np

from conftest import report

from repro.phy import FdmaPlan, FdmaReceiver, composite_waveform


def evaluate():
    plan = FdmaPlan(
        carrier=230e3,
        bitrate=1e3,
        blf_by_node={1: 10e3, 2: 20e3, 3: 30e3, 4: 40e3},
    )
    rng = np.random.default_rng(12)
    n_bits = 24
    payloads = {
        node: list(rng.integers(0, 2, size=n_bits)) for node in plan.blf_by_node
    }
    waveform = composite_waveform(plan, payloads, 1e6, seed=13)
    receiver = FdmaReceiver(plan=plan)
    decoded = receiver.decode_all(waveform, n_bits=n_bits)

    errors = sum(
        sum(1 for a, b in zip(decoded[n], payloads[n]) if a != b)
        for n in payloads
    )
    slot_time = n_bits / plan.bitrate
    aggregate = len(payloads) * n_bits / slot_time
    return {
        "nodes": len(payloads),
        "errors": errors,
        "aggregate_bps": aggregate,
        "tdma_bps": n_bits / slot_time,
    }


def test_extension_fdma(benchmark):
    result = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    report(
        "Extension -- FDMA uplink (4 nodes, one slot)",
        [
            ("simultaneous nodes", "-", str(result["nodes"])),
            ("bit errors", "0", str(result["errors"])),
            (
                "aggregate rate",
                "N x single-node",
                f"{result['aggregate_bps'] / 1e3:.0f} kbps vs "
                f"{result['tdma_bps'] / 1e3:.0f} kbps TDMA",
            ),
        ],
    )

    assert result["errors"] == 0
    assert result["aggregate_bps"] == 4.0 * result["tdma_bps"]
