"""Benchmark: Fig. 13 -- node power consumption vs uplink bitrate.

Ported to the experiment runtime: assertions read the serialized JSON
payload the runner writes.
"""

from conftest import report, serialized_run


def test_fig13(benchmark):
    payload = benchmark(serialized_run, "fig13")
    result = payload["result"]
    active = [power for bitrate, power in result["points"] if bitrate > 0.0]
    active_mean = sum(active) / len(active)
    active_spread = max(active) - min(active)

    report(
        "Fig. 13 -- power consumption vs bitrate",
        [
            (
                "standby power",
                "80.1 uW",
                f"{result['standby_power'] * 1e6:.1f} uW",
            ),
            ("active power (mean)", "~360 uW", f"{active_mean * 1e6:.1f} uW"),
            (
                "active spread 1-8 kbps",
                "slight fluctuation",
                f"{active_spread * 1e6:.2f} uW",
            ),
        ],
    )

    assert result["standby_power"] * 1e6 == 80.1
    assert abs(active_mean * 1e6 - 360.0) < 10.0
    assert active_spread * 1e6 < 5.0
