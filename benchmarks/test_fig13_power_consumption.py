"""Benchmark: Fig. 13 -- node power consumption vs uplink bitrate."""

from conftest import report

from repro.experiments import fig13_power_consumption


def test_fig13(benchmark):
    result = benchmark(fig13_power_consumption.run)

    report(
        "Fig. 13 -- power consumption vs bitrate",
        [
            ("standby power", "80.1 uW", f"{result.standby_power * 1e6:.1f} uW"),
            ("active power (mean)", "~360 uW", f"{result.active_mean * 1e6:.1f} uW"),
            (
                "active spread 1-8 kbps",
                "slight fluctuation",
                f"{result.active_spread * 1e6:.2f} uW",
            ),
        ],
    )

    assert result.standby_power * 1e6 == 80.1
    assert abs(result.active_mean * 1e6 - 360.0) < 10.0
    assert result.active_spread * 1e6 < 5.0
