"""Extension benchmark: capsule localization from round-trip ranging.

Not a paper figure -- an extension the paper's unknown-position problem
motivates.  Measures the position accuracy achievable with the paper's
1 MS/s capture timing across a multi-station wall survey.
"""

import numpy as np

from conftest import report

from repro.link import WallLocalizer
from repro.materials import get_concrete


def evaluate():
    cs = get_concrete("NC").cs
    localizer = WallLocalizer(
        station_positions=[0.0, 10.0, 20.0],
        wave_speed=cs,
        timing_jitter=1e-6,  # 1 MS/s capture
        seed=6,
    )
    nodes = [1.5, 4.2, 8.8, 12.1, 17.3]
    results = localizer.survey(nodes)
    errors = [abs(est - true) for true, (est, _) in zip(nodes, results)]
    return {
        "mean_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "expected": localizer.expected_accuracy(),
        "n_nodes": len(nodes),
    }


def test_extension_localization(benchmark):
    result = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    report(
        "Extension -- capsule localization (3 stations, 1 us timing)",
        [
            ("nodes located", "-", str(result["n_nodes"])),
            ("mean position error", "mm-cm scale", f"{result['mean_error'] * 1e3:.1f} mm"),
            ("max position error", "-", f"{result['max_error'] * 1e3:.1f} mm"),
            ("timing-limited bound", "-", f"{result['expected'] * 1e3:.1f} mm"),
        ],
    )

    assert result["mean_error"] < 0.02  # centimetre-scale localization
