"""Benchmark: Table 1 -- concrete mix proportions and properties.

Ported to the experiment runtime: the ``tables`` experiment runs
through the registry + runner + cache and the assertions read the
serialized JSON payload.
"""

from conftest import report, serialized_run


def test_table1(benchmark):
    payload = benchmark(serialized_run, "tables")
    rows_data = payload["result"]["table1_rows"]

    rows = []
    paper = {
        "NC": (54.1, 27.8, 0.18, 0.263),
        "UHPC": (195.3, 52.5, 0.21, 0.447),
        "UHPFRC": (215.0, 52.7, 0.21, 0.447),
    }
    for row in rows_data:
        fco, ec, nu, eps = paper[row["concrete"]]
        rows.append(
            (
                f"{row['concrete']} (fco/Ec/nu/eps)",
                f"{fco} MPa / {ec} GPa / {nu} / {eps} %",
                f"{row['fco_mpa']:.1f} / {row['ec_gpa']:.1f} / "
                f"{row['poisson']:.2f} / {row['strain_percent']:.3f}",
            )
        )
        rows.append(
            (
                f"{row['concrete']} velocities",
                "Cp ~ 3338, Cs ~ 1941 (NC ref)",
                f"Cp {row['cp']:.0f} / Cs {row['cs']:.0f} m/s",
            )
        )
    report("Table 1 -- concrete mixes and properties", rows)

    assert len(rows_data) == 3
    for row in rows_data:
        fco, ec, nu, eps = paper[row["concrete"]]
        assert abs(row["fco_mpa"] - fco) < 1e-6
        assert abs(row["ec_gpa"] - ec) < 1e-6
        assert abs(row["poisson"] - nu) < 1e-6
        assert abs(row["strain_percent"] - eps) < 1e-6
