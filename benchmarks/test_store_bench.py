"""Benchmark: repro.store -- bulk ingest and range-query latency.

Not a paper artifact: this benchmark pins the telemetry store's perf
trajectory.  It bulk-ingests >=1M samples through the vectorized writer
path, compacts, then measures range-query latency percentiles, and
emits ``BENCH_store.json`` at the repo root so later PRs have numbers
to beat.
"""

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import report

from repro.store import QueryEngine, SeriesKey, TelemetryStore

#: 25 series x 40k rows = 1M samples.
SERIES = 25
ROWS_PER_SERIES = 40_000
TOTAL_ROWS = SERIES * ROWS_PER_SERIES

QUERY_ROUNDS = 200
WINDOW_HOURS = 48.0

BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _keys():
    return [
        SeriesKey("bench", f"wall{i % 5}", i + 1, "strain")
        for i in range(SERIES)
    ]


def _bulk_ingest(root):
    rng = np.random.default_rng(7)
    store = TelemetryStore(root)
    hours = np.arange(ROWS_PER_SERIES, dtype=float) * 0.1
    with store.writer(flush_rows=500_000) as writer:
        for key in _keys():
            writer.add(key, hours, rng.normal(120.0, 5.0, ROWS_PER_SERIES))
    return store


def test_store_bench(benchmark):
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))

    t0 = time.perf_counter()
    store = benchmark.pedantic(
        _bulk_ingest, args=(scratch / "tele",), iterations=1, rounds=1
    )
    ingest_s = time.perf_counter() - t0

    stats = store.stats()
    assert stats["totals"]["raw"]["rows"] == TOTAL_ROWS

    t0 = time.perf_counter()
    store.compact()
    compact_s = time.perf_counter() - t0

    engine = QueryEngine(store)
    keys = _keys()
    rng = np.random.default_rng(13)
    span = ROWS_PER_SERIES * 0.1 - WINDOW_HOURS
    latencies = []
    for _ in range(QUERY_ROUNDS):
        key = keys[rng.integers(len(keys))]
        start = float(rng.uniform(0.0, span))
        q0 = time.perf_counter()
        data = engine.series(key, t0=start, t1=start + WINDOW_HOURS)
        latencies.append(time.perf_counter() - q0)
        assert data["t"].size == WINDOW_HOURS / 0.1 or data["t"].size > 0

    p50, p95 = np.percentile(latencies, [50, 95])
    agg_t0 = time.perf_counter()
    mean = engine.aggregate("strain", "mean", resolution="daily")["value"]
    agg_s = time.perf_counter() - agg_t0

    payload = {
        "schema": "repro/bench-store/v1",
        "rows": TOTAL_ROWS,
        "series": SERIES,
        "ingest_s": round(ingest_s, 4),
        "ingest_rows_per_s": round(TOTAL_ROWS / ingest_s),
        "compact_s": round(compact_s, 4),
        "range_query_p50_ms": round(p50 * 1e3, 3),
        "range_query_p95_ms": round(p95 * 1e3, 3),
        "daily_aggregate_s": round(agg_s, 4),
        "store_bytes": stats["totals"]["raw"]["bytes"],
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        "repro.store -- 1M-sample ingest + range queries",
        [
            ("bulk ingest", ">= 1M rows", f"{TOTAL_ROWS} rows in {ingest_s:.2f} s"),
            ("ingest throughput", "vectorized", f"{TOTAL_ROWS / ingest_s:,.0f} rows/s"),
            ("compact (raw->hourly->daily)", "--", f"{compact_s:.2f} s"),
            ("range query p50", "--", f"{p50 * 1e3:.2f} ms"),
            ("range query p95", "--", f"{p95 * 1e3:.2f} ms"),
            ("daily mean aggregate", "--", f"{agg_s * 1e3:.1f} ms ({mean:.2f} ue)"),
        ],
    )

    # Floors, not targets: loud only if ingest degenerates to per-row.
    assert TOTAL_ROWS / ingest_s > 100_000, "bulk ingest slower than 100k rows/s"
    assert p95 < 1.0, "range-query p95 above one second"
