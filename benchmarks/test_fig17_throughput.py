"""Benchmark: Fig. 17 -- uplink throughput vs concrete type.

Ported to the experiment runtime: assertions read the serialized JSON
payload the runner writes (the same bytes ``results/`` readers see).
"""

from conftest import report, serialized_run


def test_fig17(benchmark):
    payload = benchmark.pedantic(
        serialized_run,
        args=("fig17",),
        kwargs={"measure_bits": 2_000},
        iterations=1,
        rounds=1,
    )
    table = payload["result"]["rows"]
    nc_throughput = table["NC"]["measured_throughput"]

    rows = []
    for name, row in table.items():
        rows.append(
            (
                f"{name} throughput",
                "> 13 kbps",
                f"{row['measured_throughput'] / 1e3:.1f} kbps",
            )
        )
    for name in ("UHPC", "UHPFRC"):
        advantage = table[name]["measured_throughput"] - nc_throughput
        rows.append(
            (f"{name} advantage over NC", "~2 kbps", f"{advantage / 1e3:.1f} kbps")
        )
    report("Fig. 17 -- throughput vs concrete", rows)

    for row in table.values():
        assert row["measured_throughput"] > 12e3
    assert 0.8e3 < table["UHPC"]["measured_throughput"] - nc_throughput < 3.2e3
