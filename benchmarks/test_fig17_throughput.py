"""Benchmark: Fig. 17 -- uplink throughput vs concrete type."""

from conftest import report

from repro.experiments import fig17_throughput


def test_fig17(benchmark):
    result = benchmark.pedantic(
        fig17_throughput.run,
        kwargs={"measure_bits": 2_000},
        iterations=1,
        rounds=1,
    )

    rows = []
    for name, row in result.rows.items():
        rows.append(
            (
                f"{name} throughput",
                "> 13 kbps",
                f"{row.measured_throughput / 1e3:.1f} kbps",
            )
        )
    rows.append(
        (
            "UHPC advantage over NC",
            "~2 kbps",
            f"{result.advantage_over_nc('UHPC') / 1e3:.1f} kbps",
        )
    )
    rows.append(
        (
            "UHPFRC advantage over NC",
            "~2 kbps",
            f"{result.advantage_over_nc('UHPFRC') / 1e3:.1f} kbps",
        )
    )
    report("Fig. 17 -- throughput vs concrete", rows)

    for row in result.rows.values():
        assert row.measured_throughput > 12e3
    assert 0.8e3 < result.advantage_over_nc("UHPC") < 3.2e3
