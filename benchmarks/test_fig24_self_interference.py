"""Benchmark: Fig. 24 -- uplink spectrum with the guard-banded sidebands."""

from conftest import report

from repro.experiments import fig24_self_interference


def test_fig24(benchmark):
    result = benchmark.pedantic(fig24_self_interference.run, iterations=1, rounds=1)

    peaks = result.peak_frequencies(3)
    expected = sorted(
        [result.carrier - result.blf, result.carrier, result.carrier + result.blf]
    )
    rows = [
        (
            "spectral peaks",
            " / ".join(f"{f / 1e3:.0f} kHz" for f in expected),
            " / ".join(f"{f / 1e3:.0f} kHz" for f in peaks),
        ),
        (
            "guard-band depth",
            "clean separation",
            f"{result.guard_band_depth_db():.0f} dB",
        ),
    ]
    report("Fig. 24 -- self-interference elimination (3 peaks + guard band)", rows)

    for found, want in zip(peaks, expected):
        assert abs(found - want) < 1.5e3
    assert result.guard_band_depth_db() > 10.0
