"""Benchmark: Fig. 15 -- uplink BER vs SNR, EcoCapsule vs PAB."""

from conftest import report

from repro.experiments import fig15_ber_vs_snr


def test_fig15(benchmark):
    result = benchmark.pedantic(
        fig15_ber_vs_snr.run,
        kwargs={"total_bits": 10_000},
        iterations=1,
        rounds=1,
    )

    eco_2db = next(p.ber for p in result.ecocapsule if p.snr_db == 2.0)
    rows = [
        ("BER @ 2 dB", "~0.5 (sync floor)", f"{eco_2db:.2f}"),
        (
            "EcoCapsule 1e-4 floor",
            ">= 8 dB",
            f"{result.floor_snr('ecocapsule', 1e-4):.0f} dB",
        ),
        ("PAB 1e-4 floor", ">= 11 dB", f"{result.floor_snr('pab', 1e-4):.0f} dB"),
    ]
    for point in result.ecocapsule:
        tag = " (tail)" if point.analytic_tail else ""
        rows.append((f"EcoCapsule BER @ {point.snr_db:.0f} dB", "-", f"{point.ber:.2g}{tag}"))
    report("Fig. 15 -- BER vs SNR (FM0 Monte-Carlo + analytic tail)", rows)

    assert abs(eco_2db - 0.5) < 0.1
    assert abs(result.floor_snr("ecocapsule", 1e-4) - 8.0) <= 1.0
    assert result.floor_snr("pab", 1e-4) > result.floor_snr("ecocapsule", 1e-4)
