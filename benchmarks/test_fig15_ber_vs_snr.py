"""Benchmark: Fig. 15 -- uplink BER vs SNR, EcoCapsule vs PAB.

Ported to the experiment runtime: the sweep runs through the registry +
runner + cache and the assertions read the serialized JSON payload.
"""

import math

from conftest import report, serialized_run


def _floor_snr(points, floor):
    """Lowest sampled SNR whose serialized BER reaches ``floor``."""
    for point in points:
        if point["ber"] <= floor:
            return point["snr_db"]
    return math.inf


def test_fig15(benchmark):
    payload = benchmark.pedantic(
        serialized_run,
        args=("fig15",),
        kwargs={"total_bits": 10_000},
        iterations=1,
        rounds=1,
    )
    result = payload["result"]
    assert payload["experiment"] == "fig15"
    assert payload["seed"] == 7

    eco = result["ecocapsule"]
    eco_2db = next(p["ber"] for p in eco if p["snr_db"] == 2.0)
    eco_floor = _floor_snr(eco, 1e-4)
    pab_floor = _floor_snr(result["pab"], 1e-4)
    rows = [
        ("BER @ 2 dB", "~0.5 (sync floor)", f"{eco_2db:.2f}"),
        ("EcoCapsule 1e-4 floor", ">= 8 dB", f"{eco_floor:.0f} dB"),
        ("PAB 1e-4 floor", ">= 11 dB", f"{pab_floor:.0f} dB"),
    ]
    for point in eco:
        tag = " (tail)" if point["analytic_tail"] else ""
        rows.append(
            (
                f"EcoCapsule BER @ {point['snr_db']:.0f} dB",
                "-",
                f"{point['ber']:.2g}{tag}",
            )
        )
    report("Fig. 15 -- BER vs SNR (FM0 Monte-Carlo + analytic tail)", rows)

    assert abs(eco_2db - 0.5) < 0.1
    assert abs(eco_floor - 8.0) <= 1.0
    assert pab_floor > eco_floor
