"""Extension benchmark: downlink command error rate vs SNR.

Complements Figs. 19/20 (which report downlink SNR) with the quantity
that gates the protocol: the probability a PIE/FSK command survives the
envelope-detector chain at a given link quality.
"""

from conftest import report

from repro.experiments import downlink_reliability


def test_extension_downlink_reliability(benchmark):
    result = benchmark.pedantic(
        downlink_reliability.run,
        kwargs={"packets_per_point": 40},
        iterations=1,
        rounds=1,
    )

    rows = [
        (
            f"SNR {point.snr_db:.0f} dB",
            "waterfall between 3-9 dB",
            f"PER {point.packet_error_rate:.2f}",
        )
        for point in result.points
    ]
    rows.append(
        (
            "working SNR (PER <= 5 %)",
            "single-digit dB",
            f"{result.working_snr(0.05):.0f} dB",
        )
    )
    report("Extension -- downlink command reliability", rows)

    assert result.per_at(0.0) > 0.8
    assert result.per_at(12.0) == 0.0
    assert 3.0 <= result.working_snr(0.05) <= 9.0
