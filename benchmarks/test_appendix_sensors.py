"""Benchmark: Figs. 26-36 -- the appendix bridge-sensor channels."""

from conftest import report

from repro.experiments import appendix_sensors
from repro.experiments.appendix_sensors import EXPECTED_BANDS


def test_appendix_sensors(benchmark):
    result = benchmark.pedantic(
        appendix_sensors.run,
        kwargs={"samples_per_hour": 6},
        iterations=1,
        rounds=1,
    )

    rows = []
    for name, summary in result.summaries.items():
        low, high = EXPECTED_BANDS[name]
        rows.append(
            (
                name,
                f"[{low}, {high}]",
                f"[{summary.minimum:.2f}, {summary.maximum:.2f}] "
                f"storm x{summary.storm_contrast:.1f}",
            )
        )
    report("Figs. 26-36 -- appendix sensor channels (July 2021)", rows)

    assert len(result.summaries) == 11
    for name in result.summaries:
        assert result.in_band(name), name
    for name in ("acceleration_1", "stress_1", "stress_2"):
        assert result.summaries[name].storm_contrast > 1.2
