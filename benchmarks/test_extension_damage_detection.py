"""Extension benchmark: long-term degradation detection on capsule data.

The paper's motivating scenario (slow structural degradation before a
collapse) run end-to-end: a year of healthy baseline, a creeping strain
drift, and the CUSUM detector's time-to-alarm at several severities.
"""

from conftest import report

from repro.shm import DamageDetector, synthesize_history


def evaluate():
    detector = DamageDetector()
    onset = 450
    outcomes = {}
    for label, rate in (("slow (0.5 ue/day)", 0.5), ("moderate (1.0)", 1.0),
                        ("fast (3.0)", 3.0)):
        history = synthesize_history(
            n_days=720, degradation_start=onset, degradation_rate=rate, seed=21
        )
        alarm = detector.detect(history)
        outcomes[label] = (alarm, alarm.day - onset if alarm else None)
    healthy = detector.detect(synthesize_history(n_days=720, seed=22))
    return {"outcomes": outcomes, "healthy_alarm": healthy, "onset": onset}


def test_extension_damage_detection(benchmark):
    result = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    rows = [
        (
            "healthy year",
            "no alarm",
            "quiet" if result["healthy_alarm"] is None else "FALSE ALARM",
        )
    ]
    for label, (alarm, latency) in result["outcomes"].items():
        rows.append(
            (
                label,
                "detected, graded",
                f"+{latency:.0f} days, {alarm.severity}"
                if alarm
                else "MISSED",
            )
        )
    report("Extension -- degradation detection (CUSUM on strain)", rows)

    assert result["healthy_alarm"] is None
    for label, (alarm, latency) in result["outcomes"].items():
        assert alarm is not None, label
        assert latency >= 0.0
    fast_latency = result["outcomes"]["fast (3.0)"][1]
    slow_latency = result["outcomes"]["slow (0.5 ue/day)"][1]
    assert fast_latency < slow_latency