"""Extension benchmark: surface-wave leakage at the reader (Sec. 3.4).

Two of the paper's prose observations, quantified:

* "The S-reflections and the surface waves leaked from the transmitting
  PZT are 10x stronger than the backscattered signals" -- the leakage
  ratio at the reader's 20 cm TX/RX separation;
* "The surface waves are almost filtered out because of the sharp edges
  and corners" (Sec. 3.3) -- the per-edge stripping on the test blocks.
"""

from conftest import report

from repro.acoustics import SurfaceWavePath, leakage_ratio, penetration_depth
from repro.materials import get_concrete


def evaluate():
    nc = get_concrete("NC").medium
    # Backscatter round-trip gain at ~1 m in a guided wall: the downlink
    # gain times the node's reflective loss times the return path.
    backscatter_gain = 0.012
    smooth = SurfaceWavePath(nc, length=0.3, edges_crossed=0)
    blocky = SurfaceWavePath(nc, length=0.3, edges_crossed=2)
    return {
        "leakage": leakage_ratio(nc, 0.20, backscatter_gain),
        "edge_filtering": smooth.amplitude_gain(230e3)
        / max(blocky.amplitude_gain(230e3), 1e-12),
        "penetration": penetration_depth(nc, 230e3),
    }


def test_extension_surface_leakage(benchmark):
    result = benchmark(evaluate)

    report(
        "Extension -- surface-wave leakage and edge filtering",
        [
            (
                "leakage / backscatter @ 20 cm",
                "~10x (Sec. 3.4)",
                f"{result['leakage']:.1f}x",
            ),
            (
                "two block edges strip",
                "'almost filtered out'",
                f"{result['edge_filtering']:.0f}x reduction",
            ),
            (
                "Rayleigh penetration depth",
                "<< node implant depth",
                f"{result['penetration'] * 1e3:.1f} mm",
            ),
        ],
    )

    assert 5.0 < result["leakage"] < 30.0
    assert result["edge_filtering"] > 10.0
    assert result["penetration"] < 0.02
