"""Benchmark: Sec. 6 -- EcoCapsule vs conventional instrumentation.

The paper's closing comparison: >10 M USD of conventional sensors vs
<1 k USD of EcoCapsules, with embedded sensing reducing false positives.
"""

from conftest import report

from repro.shm import CostModel, FalsePositiveStudy


def evaluate():
    model = CostModel()
    study = FalsePositiveStudy().run()
    return {
        "conventional_cost": model.conventional_total(88),
        "capsule_sensor_cost": 5
        * (model.ecocapsule_unit + model.ecocapsule_sensors_per_unit),
        "ratio": model.cost_ratio(),
        "study": study,
    }


def test_cost_comparison(benchmark):
    result = benchmark.pedantic(evaluate, iterations=1, rounds=1)

    study = result["study"]
    report(
        "Sec. 6 -- EcoCapsule vs conventional SHM",
        [
            (
                "conventional (88 sensors)",
                "> 10 M USD",
                f"{result['conventional_cost'] / 1e6:.1f} M USD",
            ),
            (
                "5 EcoCapsules (sensors)",
                "< 1 k USD",
                f"{result['capsule_sensor_cost']:.0f} USD",
            ),
            ("cost ratio", "orders of magnitude", f"{result['ratio']:.0f}x"),
            (
                "storm caught by both",
                "yes (mutual verification)",
                str(study.both_catch_the_storm),
            ),
            (
                "false positives: surface",
                "weather/interference prone",
                str(study.surface_false),
            ),
            (
                "false positives: embedded",
                "reduced (inside concrete)",
                str(study.embedded_false),
            ),
        ],
    )

    assert result["conventional_cost"] > 10e6
    assert result["capsule_sensor_cost"] < 1e3
    assert study.both_catch_the_storm
    assert study.embedded_reduces_false_positives
