"""Benchmark: Fig. 20 -- downlink SNR, FSK anti-ring vs plain OOK."""

from conftest import report

from repro.experiments import fig20_fsk_vs_ook


def test_fig20(benchmark):
    result = benchmark(fig20_fsk_vs_ook.run)

    rows = []
    for (bitrate, fsk_snr), (_, ook_snr) in zip(result.fsk, result.ook):
        rows.append(
            (
                f"@ {bitrate / 1e3:.0f} kbps",
                "FSK 3-5x over OOK",
                f"FSK {fsk_snr:.1f} dB / OOK {ook_snr:.1f} dB "
                f"({result.gain_at(bitrate):.1f}x)",
            )
        )
    low, high = result.gain_range
    rows.append(("gain range", "3-5x", f"{low:.1f}-{high:.1f}x"))
    report("Fig. 20 -- FSK vs OOK downlink SNR", rows)

    assert low > 2.0
    assert high < 8.0
    for (b, fsk_snr), (_, ook_snr) in zip(result.fsk, result.ook):
        assert fsk_snr > ook_snr
