"""Unit tests for the PAB, U2B and embedded-RFID baselines."""

import pytest

from repro.baselines import (
    PabLink,
    RfBackscatterLink,
    crossover_bitrate,
    pab_snr_model,
    pool_1,
    pool_2,
    u2b_snr_model,
)
from repro.errors import AcousticsError
from repro.link import SnrBitrateModel


class TestPabPools:
    def test_pool1_anchors(self):
        # Paper Fig. 12: 19 cm at 50 V, ~2 m at 200 V.
        link = PabLink(pool_1())
        assert link.max_range(50.0) == pytest.approx(0.19, rel=0.1)
        assert link.max_range(200.0) == pytest.approx(2.0, rel=0.1)

    def test_pool2_needs_84v_for_short_range(self):
        # Paper: "a larger voltage is required (84 V) for a short
        # distance (23 cm)".
        link = PabLink(pool_2())
        assert link.max_range(50.0) < 0.1
        assert link.max_range(84.0) == pytest.approx(0.23, rel=0.15)

    def test_pool2_explodes_with_voltage(self):
        # The corridor guides: 125 V reaches metres (paper: 6.5 m).
        link = PabLink(pool_2())
        assert link.max_range(125.0) > 4.0

    def test_concrete_outranges_open_water(self):
        # Paper finding 3: elastic waves travel further in dense media.
        from repro.acoustics import paper_structures
        from repro.link import PowerUpLink

        s3 = next(s for s in paper_structures() if s.name.startswith("S3"))
        concrete = PowerUpLink(s3)
        water = PabLink(pool_1())
        for v in (50.0, 100.0, 200.0):
            assert concrete.max_range(v) > water.max_range(v)

    def test_requires_water(self):
        from repro.acoustics import StructureGeometry
        from repro.materials import get_concrete

        wall = StructureGeometry(
            "wall", length=5.0, thickness=0.2, medium=get_concrete("NC").medium
        )
        with pytest.raises(AcousticsError):
            PabLink(wall)


class TestBitrateModels:
    def test_pab_limited_to_3kbps(self):
        assert pab_snr_model().max_bitrate(min_snr_db=3.0) == pytest.approx(
            3e3, rel=0.1
        )

    def test_ecocapsule_beats_pab_everywhere(self):
        eco = SnrBitrateModel()
        pab = pab_snr_model()
        for kbps in (1.0, 2.0, 2.8):
            assert eco.snr_db(kbps * 1e3) > pab.snr_db(kbps * 1e3)

    def test_u2b_crossover_above_9kbps(self):
        # Paper: "U2B achieves higher SNR than EcoCapsule when bitrate
        # exceeds 9 kbps".
        crossover = crossover_bitrate(SnrBitrateModel(), u2b_snr_model())
        assert crossover == pytest.approx(9e3, rel=0.1)

    def test_u2b_below_ecocapsule_at_low_bitrate(self):
        eco = SnrBitrateModel()
        u2b = u2b_snr_model()
        assert eco.snr_db(1e3) > u2b.snr_db(1e3)

    def test_u2b_above_ecocapsule_at_high_bitrate(self):
        eco = SnrBitrateModel()
        u2b = u2b_snr_model()
        assert u2b.snr_db(12e3) > eco.snr_db(12e3)

    def test_crossover_requires_a_crossing(self):
        with pytest.raises(AcousticsError):
            crossover_bitrate(SnrBitrateModel(), SnrBitrateModel(), high=2e3)


class TestRfBaseline:
    def test_centimetre_range(self):
        # Sec. 3.5: embedded RFID ranges are "limited to several
        # centimeters" versus metres acoustically.
        link = RfBackscatterLink()
        depth = link.max_depth()
        assert 0.01 < depth < 0.5

    def test_loss_grows_with_depth(self):
        link = RfBackscatterLink()
        assert link.path_loss_db(0.5) > link.path_loss_db(0.1)

    def test_dry_concrete_reaches_deeper(self):
        wet = RfBackscatterLink(concrete_attenuation_db_per_m=150.0)
        dry = RfBackscatterLink(concrete_attenuation_db_per_m=60.0)
        assert dry.max_depth() > wet.max_depth()

    def test_powers_up_boundary(self):
        link = RfBackscatterLink()
        depth = link.max_depth()
        assert link.powers_up(depth * 0.9)
        assert not link.powers_up(depth * 1.2)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(AcousticsError):
            RfBackscatterLink().path_loss_db(0.0)
