"""Cross-process partition-lock contention: two REAL StoreWriters racing.

``test_store_lock.py`` pins the in-process lock semantics; these tests
put actual separate processes on the same store directory, because the
hazards the lock exists for -- a live foreign writer, a SIGKILLed
writer's leftover lockfile, a garbage lockfile from a crashed
half-write -- only manifest across process boundaries.
"""

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PartitionLockError
from repro.store import TelemetryStore
from repro.store.keys import SeriesKey
from repro.store.lock import LOCK_FILENAME, LOCK_SCHEMA

BUILDING = "b001"
KEY = SeriesKey(building=BUILDING, wall="w", node_id=0, metric="strain")


def _lock_path(root: Path) -> Path:
    return root / "segments" / BUILDING / LOCK_FILENAME


def _hold_lock_forever(root: str, ready, release):
    """Child: open a writer, ingest into the building, hold the lock."""
    store = TelemetryStore(root)
    writer = store.writer()
    writer.add(KEY, np.array([0.0]), np.array([1.0]))
    writer.flush()
    ready.set()
    release.wait(timeout=60)
    writer.close()


def _try_write(root: str, queue):
    """Child: attempt an ingest; report 'ok' or the error class name."""
    try:
        store = TelemetryStore(root)
        with store.writer() as writer:
            writer.add(KEY, np.array([100.0]), np.array([2.0]))
        queue.put("ok")
    except PartitionLockError:
        queue.put("PartitionLockError")
    except Exception as exc:  # pragma: no cover - diagnostic path
        queue.put(f"{type(exc).__name__}: {exc}")


@pytest.fixture
def mp_ctx():
    # fork keeps the children cheap and inherits the test's imports.
    return multiprocessing.get_context("fork")


class TestLiveForeignWriter:
    def test_second_process_writer_is_refused(self, tmp_path, mp_ctx):
        root = tmp_path / "store"
        TelemetryStore(root)  # create the marker before the children race
        ready, release = mp_ctx.Event(), mp_ctx.Event()
        holder = mp_ctx.Process(
            target=_hold_lock_forever, args=(str(root), ready, release)
        )
        holder.start()
        try:
            assert ready.wait(timeout=30), "holder never acquired the lock"
            queue = mp_ctx.Queue()
            rival = mp_ctx.Process(target=_try_write, args=(str(root), queue))
            rival.start()
            assert queue.get(timeout=30) == "PartitionLockError"
            rival.join(timeout=30)
            # The holder's lockfile names the holder, not the rival.
            payload = json.loads(_lock_path(root).read_text())
            assert payload["pid"] == holder.pid
            assert payload["schema"] == LOCK_SCHEMA
        finally:
            release.set()
            holder.join(timeout=30)
        # Once the holder exits cleanly, the partition opens up again.
        assert not _lock_path(root).exists()
        store = TelemetryStore(root, create=False)
        with store.writer() as writer:
            writer.add(KEY, np.array([200.0]), np.array([3.0]))
        assert store.read(KEY)["t"].tolist() == [0.0, 200.0]


class TestDeadWriterReclaim:
    def test_sigkilled_writers_lock_reclaimed_by_next_process(
        self, tmp_path, mp_ctx
    ):
        root = tmp_path / "store"
        TelemetryStore(root)
        ready, release = mp_ctx.Event(), mp_ctx.Event()
        victim = mp_ctx.Process(
            target=_hold_lock_forever, args=(str(root), ready, release)
        )
        victim.start()
        assert ready.wait(timeout=30)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert _lock_path(root).exists()  # SIGKILL leaked the lockfile

        queue = mp_ctx.Queue()
        successor = mp_ctx.Process(target=_try_write, args=(str(root), queue))
        successor.start()
        assert queue.get(timeout=30) == "ok"
        successor.join(timeout=30)
        # The successor's rows landed after the victim's flushed ones.
        store = TelemetryStore(root, create=False)
        assert store.read(KEY)["t"].tolist() == [0.0, 100.0]


class TestGarbageLockfile:
    def test_unparseable_lockfile_reclaimed(self, tmp_path, mp_ctx):
        root = tmp_path / "store"
        TelemetryStore(root)
        lock = _lock_path(root)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("{not json")  # a crashed half-write

        queue = mp_ctx.Queue()
        writer_proc = mp_ctx.Process(target=_try_write, args=(str(root), queue))
        writer_proc.start()
        assert queue.get(timeout=30) == "ok"
        writer_proc.join(timeout=30)

    def test_lockfile_naming_a_dead_pid_reclaimed(self, tmp_path, mp_ctx):
        root = tmp_path / "store"
        TelemetryStore(root)
        # Burn a pid that is certainly dead by the time we use it.
        burner = mp_ctx.Process(target=time.sleep, args=(0,))
        burner.start()
        dead_pid = burner.pid
        burner.join(timeout=30)

        lock = _lock_path(root)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text(json.dumps(
            {"schema": LOCK_SCHEMA, "building": BUILDING, "pid": dead_pid}
        ))
        queue = mp_ctx.Queue()
        writer_proc = mp_ctx.Process(target=_try_write, args=(str(root), queue))
        writer_proc.start()
        assert queue.get(timeout=30) == "ok"
        writer_proc.join(timeout=30)
