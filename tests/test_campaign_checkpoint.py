"""Tests for the campaign persistence layer: config, state, checkpoints, log.

The contracts under test are the ones ``docs/CAMPAIGN.md`` promises:
lossless round-trips (config, state, RNG streams, injector memory),
hash-verified checkpoint loads with quarantine + rollback instead of
crashes, and an epoch log whose torn tails truncate cleanly.
"""

import json
import random

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignState,
    CheckpointStore,
    EpochLog,
    checkpoint_digest,
    pilot_epochs,
)
from repro.campaign.log import decode_line, encode_line
from repro.campaign.state import decode_rng_state, encode_rng_state
from repro.errors import CampaignError, CheckpointError, FaultConfigError
from repro.faults import FaultInjector, FaultPlan


class TestCampaignConfig:
    def test_pilot_is_74_weekly_epochs(self):
        assert pilot_epochs() == 74
        assert CampaignConfig().epochs == 74
        with pytest.raises(CampaignError):
            pilot_epochs(0)

    def test_dict_round_trip(self):
        config = CampaignConfig(epochs=10, nodes=3, seed=7)
        assert CampaignConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields_and_schema(self):
        with pytest.raises(CampaignError):
            CampaignConfig.from_dict({"epochz": 3})
        with pytest.raises(CampaignError):
            CampaignConfig.from_dict({"schema": "repro/campaign-config/v99"})
        with pytest.raises(CampaignError):
            CampaignConfig.from_dict("not an object")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epochs", 0),
            ("nodes", -1),
            ("hours_per_epoch", 0),
            ("checkpoint_interval", 0),
            ("wall_length", -1.0),
            ("fault_intensity", float("nan")),
            ("storm_fault_intensity", -2.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(CampaignError):
            CampaignConfig(**{field: value})

    def test_bad_fault_rates_fail_at_config_time(self):
        with pytest.raises(FaultConfigError):
            CampaignConfig(fault_rates={"uplink_ber": 1.5})
        with pytest.raises(FaultConfigError):
            CampaignConfig(fault_rates={"uplink_ber": float("nan")})

    def test_storm_schedule(self):
        config = CampaignConfig(
            epochs=10, storm_period_epochs=5, storm_duration_epochs=2
        )
        assert config.storm_epochs() == (3, 4, 8, 9)
        quiet = CampaignConfig(epochs=10, storm_period_epochs=0)
        assert quiet.storm_epochs() == ()

    def test_epoch_fault_plan_is_seeded_per_epoch_and_storm_scaled(self):
        config = CampaignConfig(
            epochs=10,
            storm_period_epochs=5,
            storm_duration_epochs=1,
            storm_fault_intensity=3.0,
        )
        quiet = config.epoch_fault_plan(0)
        storm = config.epoch_fault_plan(4)
        assert quiet.seed != storm.seed  # independent per-epoch streams
        assert storm.reply_loss_rate == pytest.approx(
            min(1.0, 3.0 * quiet.reply_loss_rate)
        )
        # Recomputable: the same epoch always yields the same plan.
        assert config.epoch_fault_plan(4) == storm

    def test_no_faults_mode(self):
        config = CampaignConfig(fault_rates=None)
        assert config.epoch_fault_plan(0) is None


class TestCampaignState:
    def test_rng_state_round_trip_continues_the_stream(self):
        rng = random.Random("campaign:99")
        rng.random()  # advance mid-sequence
        encoded = encode_rng_state(rng.getstate())
        # Through JSON, like a real checkpoint.
        decoded = decode_rng_state(json.loads(json.dumps(encoded)))
        clone = random.Random()
        clone.setstate(decoded)
        assert [clone.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]

    def test_decode_rng_state_rejects_garbage(self):
        with pytest.raises(CampaignError):
            decode_rng_state([1, 2])
        with pytest.raises(CampaignError):
            decode_rng_state("nope")

    def test_state_round_trip_is_lossless(self):
        state = CampaignState.fresh(5)
        state.rng.random()
        state.epoch = 3
        state.stuck_latches = {"2:strain": 123, "1:humidity": None}
        state.fault_totals = {"brownouts": 4}
        state.hours = [0.0, 1.0]
        state.acceleration = [0.001, -0.002]
        state.stress_mpa = [-60.0, -61.5]
        state.grade_counts = {"A": 3}
        state.epoch_records = [{"epoch": 0, "status": "ok"}]
        state.timeouts = [2]
        payload = json.loads(json.dumps(state.to_dict()))
        clone = CampaignState.from_dict(payload)
        assert clone.to_dict() == state.to_dict()
        assert clone.rng.random() == state.rng.random()

    def test_from_dict_rejects_bad_payloads(self):
        with pytest.raises(CampaignError):
            CampaignState.from_dict({"schema": "wrong"})
        good = CampaignState.fresh(1).to_dict()
        del good["rng_state"]
        with pytest.raises(CampaignError):
            CampaignState.from_dict(good)


class TestInjectorStateRoundTrip:
    def test_streams_and_latches_survive_export(self):
        plan = FaultPlan(seed=3, uplink_ber=0.2, stuck_sensor_rate=0.5)
        injector = FaultInjector(plan)
        injector.corrupt_uplink([1] * 64)  # advance the uplink stream
        from repro.protocol.packets import SensorReport

        first = SensorReport(node_id=1, channel="strain", raw=100)
        injector.latch_stuck(first)

        exported = json.loads(json.dumps(injector.export_state()))
        clone = FaultInjector(plan)
        clone.restore_state(exported)
        # The restored stream continues exactly where the original is.
        assert clone.corrupt_uplink([1] * 64) == injector.corrupt_uplink(
            [1] * 64
        )
        assert clone._stuck == injector._stuck

    def test_restore_rejects_malformed_payloads(self):
        injector = FaultInjector(FaultPlan(seed=1, uplink_ber=0.1))
        with pytest.raises(FaultConfigError):
            injector.restore_state({"streams": {}})
        with pytest.raises(FaultConfigError):
            injector.restore_state({"streams": {"x": "bad"}, "stuck": [], "counts": {}})


def _save(store, epoch, seed=1):
    config = CampaignConfig(epochs=5, seed=seed)
    state = CampaignState.fresh(seed)
    state.epoch = epoch
    return store.save(epoch, config.to_dict(), state.to_dict())


class TestCheckpointStore:
    def test_save_verify_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        path = _save(store, 2)
        payload = store.verify(path)
        assert payload["epoch"] == 2
        loaded = store.load_latest()
        assert loaded["epoch"] == 2
        assert CampaignState.from_dict(loaded["state"]).epoch == 2

    def test_load_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for epoch in (1, 2, 3):
            _save(store, epoch)
        assert store.load_latest()["epoch"] == 3
        assert store.latest_epoch() == 3

    def test_empty_store_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "nothing").load_latest() is None
        assert CheckpointStore(tmp_path / "nothing").latest_epoch() is None

    def test_hash_mismatch_is_quarantined_with_rollback(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        _save(store, 1)
        newest = _save(store, 2)
        # Flip a byte inside the body without touching the stored hash.
        payload = json.loads(newest.read_text())
        payload["state"]["epoch"] = 777
        newest.write_text(json.dumps(payload))
        loaded = store.load_latest()
        assert loaded["epoch"] == 1  # rolled back
        assert not newest.exists()
        quarantined = list(store.quarantine_dir.iterdir())
        assert [p.name for p in quarantined] == ["epoch-000002.json"]

    @pytest.mark.parametrize(
        "corruption",
        [
            lambda p: p.write_text("{truncated"),
            lambda p: p.write_text('{"schema": "other/v1"}'),
            lambda p: p.write_text(json.dumps({"schema": "repro/campaign-checkpoint/v1"})),
            lambda p: p.write_bytes(b"\x00" * 64),
        ],
    )
    def test_every_corruption_mode_is_detected(self, tmp_path, corruption):
        store = CheckpointStore(tmp_path / "ckpt")
        path = _save(store, 1)
        corruption(path)
        with pytest.raises(CheckpointError):
            store.verify(path)

    def test_all_corrupt_is_a_loud_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for epoch in (1, 2):
            _save(store, epoch).write_text("garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load_latest()
        # Both moved aside as forensic evidence, none deleted.
        assert len(list(store.quarantine_dir.iterdir())) == 2

    def test_prune_keeps_the_newest_k(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep=3)
        for epoch in range(1, 7):
            _save(store, epoch)
        names = sorted(p.name for p in store.directory.iterdir())
        assert names == [
            "epoch-000004.json", "epoch-000005.json", "epoch-000006.json"
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path, keep=0)

    def test_digest_is_canonical(self):
        body = {"b": 1, "a": [1.5, 2]}
        assert checkpoint_digest(body) == checkpoint_digest(
            {"a": [1.5, 2], "b": 1}
        )


class TestEpochLog:
    def test_append_and_read_back(self, tmp_path):
        log = EpochLog(tmp_path / "epochs.jsonl")
        for epoch in range(3):
            log.append({"epoch": epoch, "status": "ok"})
        assert [r["epoch"] for r in log.records()] == [0, 1, 2]
        assert [r["epoch"] for r in log.recover()] == [0, 1, 2]

    def test_missing_log_is_empty(self, tmp_path):
        log = EpochLog(tmp_path / "none.jsonl")
        assert log.records() == []
        assert log.recover() == []

    def test_torn_tail_is_truncated(self, tmp_path):
        log = EpochLog(tmp_path / "epochs.jsonl")
        for epoch in range(3):
            log.append({"epoch": epoch})
        with log.path.open("ab") as handle:
            handle.write(b'{"schema": "repro/campaign-epo')  # torn append
        assert [r["epoch"] for r in log.recover()] == [0, 1, 2]
        # The file itself healed: a second recovery changes nothing.
        before = log.path.read_bytes()
        assert [r["epoch"] for r in log.recover()] == [0, 1, 2]
        assert log.path.read_bytes() == before

    def test_interior_corruption_truncates_from_there(self, tmp_path):
        log = EpochLog(tmp_path / "epochs.jsonl")
        for epoch in range(4):
            log.append({"epoch": epoch})
        lines = log.path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"schema": "repro/campaign-epoch-log/v1", "crc": 1, "record": {"epoch": 1}}\n'
        log.path.write_bytes(b"".join(lines))
        # Record 1 fails its CRC: everything from it on is suspect.
        assert [r["epoch"] for r in log.recover()] == [0]

    def test_rewrite_replaces_contents(self, tmp_path):
        log = EpochLog(tmp_path / "epochs.jsonl")
        for epoch in range(4):
            log.append({"epoch": epoch})
        log.rewrite([{"epoch": 0}, {"epoch": 1}])
        assert [r["epoch"] for r in log.records()] == [0, 1]

    def test_line_codec_rejects_crc_mismatch(self):
        line = encode_line({"epoch": 9})
        assert decode_line(line) == {"epoch": 9}
        tampered = line.replace('"epoch":9', '"epoch":8')
        with pytest.raises(ValueError):
            decode_line(tampered)
