"""Unit tests for the building-level aggregation layer."""

import pytest

from repro.shm import (
    BuildingMonitor,
    CapsuleStatus,
    DamageAlarm,
    ShmError,
    WallHealth,
)


def alarm(severity, day=500.0, drift=1.0):
    return DamageAlarm(day=day, cusum=60.0, drift_estimate=drift, severity=severity)


class TestCapsuleStatus:
    def test_grades(self):
        assert CapsuleStatus(1, "W1", reachable=False).grade == "unreachable"
        assert CapsuleStatus(1, "W1", reachable=True).grade == "healthy"
        status = CapsuleStatus(1, "W1", reachable=True, alarm=alarm("warning"))
        assert status.grade == "warning"


class TestWallHealth:
    def test_worst_capsule_wins(self):
        wall = WallHealth(
            wall="W1",
            capsules=(
                CapsuleStatus(1, "W1", reachable=True),
                CapsuleStatus(2, "W1", reachable=True, alarm=alarm("critical")),
            ),
        )
        assert wall.grade == "critical"

    def test_all_dark_is_unreachable(self):
        wall = WallHealth(
            wall="W1",
            capsules=(CapsuleStatus(1, "W1", reachable=False),),
        )
        assert wall.grade == "unreachable"
        assert wall.reachability == 0.0

    def test_reachability_fraction(self):
        wall = WallHealth(
            wall="W1",
            capsules=(
                CapsuleStatus(1, "W1", reachable=True),
                CapsuleStatus(2, "W1", reachable=False),
            ),
        )
        assert wall.reachability == pytest.approx(0.5)

    def test_rejects_empty_wall(self):
        with pytest.raises(ShmError):
            WallHealth(wall="W1", capsules=())


class TestBuildingMonitor:
    def make_monitor(self):
        monitor = BuildingMonitor(name="HQ")
        monitor.record_survey(
            "west wall",
            powered=[1, 2, 3],
            dark=[4],
            strains={1: 100.0, 2: 115.0, 3: 95.0},
        )
        monitor.record_survey(
            "east wall",
            powered=[5, 6],
            dark=[],
            strains={5: 210.0, 6: 190.0},
            alarms={5: alarm("warning", drift=0.8)},
        )
        return monitor

    def test_walls_aggregate(self):
        monitor = self.make_monitor()
        walls = {w.wall: w for w in monitor.walls()}
        assert walls["west wall"].grade == "healthy"  # dark node noted separately
        assert walls["west wall"].reachability == pytest.approx(0.75)
        assert walls["east wall"].grade == "warning"

    def test_building_grade_is_worst_wall(self):
        # A single dark capsule does not mark a wall unreachable (the
        # attention list carries it); the east wall's warning dominates.
        monitor = self.make_monitor()
        assert monitor.building_grade() == "warning"
        # A wall that goes fully dark does dominate.
        monitor.record_survey("north wall", powered=[], dark=[7, 8])
        assert monitor.building_grade() == "unreachable"

    def test_attention_list_ordering(self):
        monitor = self.make_monitor()
        flagged = monitor.attention_list()
        grades = [s.grade for s in flagged]
        assert grades == sorted(
            grades,
            key=["healthy", "watch", "warning", "critical", "unreachable"].index,
            reverse=True,
        )
        assert all(s.grade != "healthy" for s in flagged)

    def test_summary_counts(self):
        monitor = self.make_monitor()
        summary = monitor.summary()
        assert summary["healthy"] == 4
        assert summary["warning"] == 1
        assert summary["unreachable"] == 1

    def test_latest_record_wins(self):
        monitor = self.make_monitor()
        monitor.record(
            CapsuleStatus(1, "west wall", reachable=True, alarm=alarm("critical"))
        )
        walls = {w.wall: w for w in monitor.walls()}
        assert walls["west wall"].grade == "critical"

    def test_rejects_contradictory_survey(self):
        monitor = BuildingMonitor()
        with pytest.raises(ShmError):
            monitor.record_survey("W", powered=[1], dark=[1])

    def test_empty_monitor_raises(self):
        with pytest.raises(ShmError):
            BuildingMonitor().walls()


class TestSerialization:
    def test_alarm_round_trip(self):
        original = alarm("critical", day=123.5, drift=2.25)
        clone = DamageAlarm.from_dict(original.to_dict())
        assert clone == original

    def test_alarm_rejects_garbage(self):
        from repro.shm.damage import DamageError

        with pytest.raises(DamageError):
            DamageAlarm.from_dict({"day": 1.0})
        with pytest.raises(DamageError):
            DamageAlarm.from_dict(
                {"day": 1.0, "cusum": 1.0, "drift_estimate": "soon",
                 "severity": "warning"}
            )

    def test_capsule_status_round_trip(self):
        for status in (
            CapsuleStatus(1, "W1", reachable=False),
            CapsuleStatus(2, "W1", reachable=True, alarm=alarm("warning")),
        ):
            payload = status.to_dict()
            assert payload["grade"] == status.grade
            assert CapsuleStatus.from_dict(payload) == status

    def test_wall_health_round_trip(self):
        wall = WallHealth(
            wall="W1",
            capsules=(
                CapsuleStatus(1, "W1", reachable=True),
                CapsuleStatus(2, "W1", reachable=True, alarm=alarm("watch")),
            ),
        )
        payload = wall.to_dict()
        assert payload["grade"] == wall.grade
        assert payload["reachability"] == pytest.approx(wall.reachability)
        clone = WallHealth.from_dict(payload)
        assert clone.wall == wall.wall
        assert clone.capsules == wall.capsules

    def test_monitor_round_trip_preserves_views(self):
        monitor = TestBuildingMonitor.make_monitor(None)
        payload = monitor.to_dict()
        clone = BuildingMonitor.from_dict(payload)
        assert clone.to_dict() == payload
        assert clone.building_grade() == monitor.building_grade()
        assert clone.summary() == monitor.summary()

    def test_monitor_payload_is_json_safe(self):
        import json

        monitor = TestBuildingMonitor.make_monitor(None)
        payload = json.loads(json.dumps(monitor.to_dict()))
        assert BuildingMonitor.from_dict(payload).summary() == monitor.summary()
