"""Unit tests for the footbridge model and sensor layout."""

import pytest

from repro.shm import (
    Footbridge,
    SENSOR_TYPES,
    SensorInstallation,
    ShmError,
    StructuralLimits,
    standard_sensor_layout,
)


class TestBridgeGeometry:
    def test_paper_dimensions(self):
        bridge = Footbridge()
        assert bridge.total_length == pytest.approx(84.24)
        assert bridge.main_span == pytest.approx(64.26)
        assert bridge.side_span == pytest.approx(19.98)

    def test_spans_must_sum(self):
        with pytest.raises(ShmError):
            Footbridge(total_length=84.24, main_span=60.0, side_span=19.98)

    def test_deck_and_section_areas(self):
        bridge = Footbridge()
        assert bridge.deck_area == pytest.approx(84.24 * 4.5)
        assert bridge.section_area("A") == pytest.approx(bridge.deck_area / 5.0)

    def test_unknown_section(self):
        with pytest.raises(ShmError):
            Footbridge().section_area("Z")


class TestStructuralLimits:
    def test_paper_thresholds(self):
        limits = StructuralLimits()
        assert limits.max_vertical_acceleration == pytest.approx(0.7)
        assert limits.max_lateral_acceleration == pytest.approx(0.15)
        assert limits.max_steel_stress == pytest.approx(355e6)
        assert limits.max_midspan_deflection == pytest.approx(0.1083)
        assert limits.min_area_per_pedestrian == pytest.approx(1.0)

    def test_acceleration_check(self):
        limits = StructuralLimits()
        assert limits.acceleration_ok(0.5, 0.1)
        assert not limits.acceleration_ok(0.9)
        assert not limits.acceleration_ok(0.1, 0.2)

    def test_stress_and_deflection_checks(self):
        limits = StructuralLimits()
        assert limits.stress_ok(-100e6)
        assert not limits.stress_ok(400e6)
        assert limits.deflection_ok(0.05)
        assert not limits.deflection_ok(0.2)


class TestSensorLayout:
    def test_88_conventional_sensors(self):
        # The paper: "88 conventional SHM sensors of 13 types".
        bridge = Footbridge()
        assert bridge.conventional_count == 88

    def test_13_sensor_types(self):
        types = {
            s.sensor_type
            for s in standard_sensor_layout()
            if s.sensor_type != "ecocapsule"
        }
        assert len(types) == 13

    def test_five_ecocapsules(self):
        # "we deployed five EcoCapsules ... for preliminary tests".
        assert Footbridge().ecocapsule_count == 5

    def test_every_section_instrumented(self):
        bridge = Footbridge()
        for section in ("A", "B", "C", "D", "E"):
            assert len(bridge.sensors_in(section)) > 0

    def test_type_groups_cover_the_paper_grouping(self):
        assert set(SENSOR_TYPES) == {"environmental", "loads", "responses"}

    def test_sensors_of_type(self):
        bridge = Footbridge()
        accels = bridge.sensors_of_type("accelerometer")
        assert len(accels) == 16

    def test_invalid_installation_rejected(self):
        with pytest.raises(ShmError):
            SensorInstallation(sensor_id=0, sensor_type="lidar", section="A")
        with pytest.raises(ShmError):
            SensorInstallation(sensor_id=0, sensor_type="camera", section="Q")
