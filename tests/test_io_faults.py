"""Unit tests for the storage-fault injection layer (repro.faults.io).

The inertness proof matters most: with no plan installed (or an
all-zero plan), the shim must be a single ``is None`` test in front of
the exact syscalls the code made before the module existed -- zero
extra fsyncs, byte-identical artifacts.  The rest pins the plan schema,
the per-stream determinism, each fault's observable behaviour, the
retry policy, and the stale-temp reclaim.
"""

import dataclasses
import errno
import json
import os
from pathlib import Path

import pytest

from repro.errors import FaultConfigError, FaultPlanError
from repro.faults.io import (
    IO_FAULT_SCHEMA,
    IO_RATE_FIELDS,
    IoFaultInjector,
    IoFaultPlan,
    TMP_SUFFIX,
    active_io_injector,
    clear_io_faults,
    install_io_faults,
    io_faults,
    io_faults_active,
    io_read_bytes,
    io_replace,
    io_write,
    reclaim_tmp_files,
    retry_io,
)
from repro.runtime.serialize import write_json_atomic


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    clear_io_faults()
    yield
    clear_io_faults()


class TestPlan:
    def test_default_plan_is_inactive(self):
        plan = IoFaultPlan()
        assert not plan.active
        assert plan == IoFaultPlan.none()

    def test_any_nonzero_rate_activates(self):
        for name in IO_RATE_FIELDS:
            assert dataclasses.replace(IoFaultPlan(), **{name: 0.1}).active

    def test_persistence_alone_does_not_activate(self):
        assert not IoFaultPlan(persistence=1.0).active

    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            IoFaultPlan(enospc_write_rate=1.5)
        with pytest.raises(FaultPlanError):
            IoFaultPlan(torn_write_rate=-0.1)
        with pytest.raises(FaultPlanError):
            IoFaultPlan(eio_read_rate=float("nan"))
        with pytest.raises(FaultConfigError):
            IoFaultPlan(seed="7")

    def test_scaled_clamps_and_keeps_persistence(self):
        plan = IoFaultPlan(
            enospc_write_rate=0.4, torn_write_rate=0.9, persistence=0.3
        )
        doubled = plan.scaled(2.0)
        assert doubled.enospc_write_rate == pytest.approx(0.8)
        assert doubled.torn_write_rate == 1.0
        assert doubled.persistence == 0.3
        with pytest.raises(FaultPlanError):
            plan.scaled(float("inf"))
        with pytest.raises(FaultPlanError):
            plan.scaled(-1.0)

    def test_json_round_trip(self, tmp_path):
        plan = IoFaultPlan(
            seed=42, enospc_write_rate=0.1, drop_rename_rate=0.2,
            bitrot_read_rate=0.05, persistence=0.5,
        )
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == IO_FAULT_SCHEMA
        assert IoFaultPlan.from_json_file(path) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown io-fault field"):
            IoFaultPlan.from_dict({"seed": 1, "eio_rate": 0.1})
        with pytest.raises(FaultConfigError, match="unsupported io-fault schema"):
            IoFaultPlan.from_dict({"schema": "repro/io-faults/v999"})


class TestInertness:
    """An inactive shim must change nothing -- bytes or syscalls."""

    def test_inactive_plan_installs_nothing(self):
        assert install_io_faults(IoFaultPlan()) is None
        assert not io_faults_active()
        assert install_io_faults(None) is None

    def test_context_manager_restores_clean_path(self):
        with io_faults(IoFaultPlan(enospc_write_rate=0.5)) as injector:
            assert injector is not None
            assert active_io_injector() is injector
        assert not io_faults_active()

    def test_clean_write_fsyncs_exactly_file_and_dir(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
        )
        write_json_atomic(tmp_path / "a.json", {"x": 1}, fsync=True)
        assert len(calls) == 2  # the temp file, then the parent dir
        calls.clear()
        write_json_atomic(tmp_path / "b.json", {"x": 2}, fsync=False)
        assert calls == []

    def test_clean_shims_pass_through(self, tmp_path):
        path = tmp_path / "f.bin"
        with path.open("wb") as handle:
            io_write(handle, b"payload")
        assert io_read_bytes(path) == b"payload"
        io_replace(path, tmp_path / "g.bin")
        assert not path.exists()
        assert (tmp_path / "g.bin").read_bytes() == b"payload"


class TestInjector:
    def _run_sequence(self, seed, tmp_path, tag):
        injector = IoFaultInjector(
            IoFaultPlan(
                seed=seed, enospc_write_rate=0.3, torn_write_rate=0.3,
                eio_fsync_rate=0.3, drop_rename_rate=0.3,
            )
        )
        outcomes = []
        for i in range(40):
            path = tmp_path / f"{tag}-{i}.bin"
            try:
                with path.open("wb") as handle:
                    injector.write(handle, b"0123456789")
                    injector.fsync(handle.fileno(), path)
                outcomes.append(("ok", path.read_bytes()))
            except OSError as exc:
                outcomes.append(("err", exc.errno, path.read_bytes()))
        return dict(injector.counts), outcomes

    def test_same_seed_same_schedule(self, tmp_path):
        counts_a, outcomes_a = self._run_sequence(7, tmp_path, "a")
        counts_b, outcomes_b = self._run_sequence(7, tmp_path, "b")
        assert counts_a == counts_b
        assert outcomes_a == outcomes_b
        assert sum(counts_a.values()) > 0  # the schedule actually fired

    def test_different_seed_different_schedule(self, tmp_path):
        _, outcomes_a = self._run_sequence(7, tmp_path, "a")
        _, outcomes_b = self._run_sequence(8, tmp_path, "b")
        assert outcomes_a != outcomes_b

    def test_torn_write_keeps_strict_prefix(self, tmp_path):
        injector = IoFaultInjector(IoFaultPlan(seed=1, torn_write_rate=1.0))
        path = tmp_path / "torn.bin"
        data = b"abcdefghij"
        with path.open("wb") as handle:
            with pytest.raises(OSError) as err:
                injector.write(handle, data)
        assert err.value.errno == errno.EIO
        landed = path.read_bytes()
        assert 0 < len(landed) < len(data)
        assert data.startswith(landed)
        assert injector.counts["torn_writes"] == 1

    def test_enospc_lands_no_bytes(self, tmp_path):
        injector = IoFaultInjector(IoFaultPlan(seed=1, enospc_write_rate=1.0))
        path = tmp_path / "full.bin"
        with path.open("wb") as handle:
            with pytest.raises(OSError) as err:
                injector.write(handle, b"data")
        assert err.value.errno == errno.ENOSPC
        assert path.read_bytes() == b""

    def test_dropped_rename_leaves_tmp_behind(self, tmp_path):
        injector = IoFaultInjector(IoFaultPlan(seed=1, drop_rename_rate=1.0))
        src, dst = tmp_path / "x.tmp", tmp_path / "x.json"
        src.write_text("{}")
        injector.replace(src, dst)  # "succeeds" silently
        assert src.exists() and not dst.exists()
        assert injector.counts["renames_dropped"] == 1

    def test_bitrot_flips_exactly_one_bit(self, tmp_path):
        injector = IoFaultInjector(IoFaultPlan(seed=3, bitrot_read_rate=1.0))
        path = tmp_path / "rot.bin"
        data = bytes(range(64))
        path.write_bytes(data)
        rotted = injector.read_bytes(path)
        assert len(rotted) == len(data)
        diff = [(a ^ b) for a, b in zip(data, rotted) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1
        assert path.read_bytes() == data  # at-rest data untouched

    def test_persistent_fault_latches_the_path(self, tmp_path):
        injector = IoFaultInjector(
            IoFaultPlan(seed=5, enospc_write_rate=1.0, persistence=1.0)
        )
        path = tmp_path / "dead.bin"
        for expected in ("enospc", "persistent_hits"):
            with path.open("wb") as handle:
                with pytest.raises(OSError) as err:
                    injector.write(handle, b"data")
            assert err.value.errno == errno.ENOSPC
            assert injector.counts[expected] >= 1
        assert injector.counts["persistent_faults"] == 1

    def test_from_plan_inactive_is_none(self):
        assert IoFaultInjector.from_plan(None) is None
        assert IoFaultInjector.from_plan(IoFaultPlan()) is None
        assert IoFaultInjector.from_plan(
            IoFaultPlan(eio_read_rate=0.1)
        ) is not None


class TestRetryIo:
    def test_transient_eio_retried_to_success(self):
        failures = [OSError(errno.EIO, "flaky")] * 2
        calls = []

        def operation():
            calls.append(1)
            if failures:
                raise failures.pop()
            return "done"

        assert retry_io(operation, "test", backoff_base_s=0.0) == "done"
        assert len(calls) == 3

    def test_enospc_never_retried(self):
        calls = []

        def operation():
            calls.append(1)
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(OSError) as err:
            retry_io(operation, "test", backoff_base_s=0.0)
        assert err.value.errno == errno.ENOSPC
        assert len(calls) == 1

    def test_budget_exhaustion_reraises_loudly(self):
        calls = []

        def operation():
            calls.append(1)
            raise OSError(errno.EIO, "still broken")

        with pytest.raises(OSError):
            retry_io(operation, "test", retries=2, backoff_base_s=0.0)
        assert len(calls) == 3  # initial + 2 retries

    def test_on_retry_heal_hook_runs_before_each_rerun(self):
        failures = [OSError(errno.EIO, "torn")] * 2
        healed = []

        def operation():
            if failures:
                raise failures.pop()
            return "ok"

        retry_io(
            operation, "test", backoff_base_s=0.0,
            on_retry=lambda attempt, exc: healed.append(attempt),
        )
        assert healed == [1, 2]

    def test_non_oserror_propagates_untouched(self):
        def operation():
            raise ValueError("not io")

        with pytest.raises(ValueError):
            retry_io(operation, "test")


class TestReclaimTmpFiles:
    def test_sweeps_only_tmp_files(self, tmp_path):
        (tmp_path / "a.json").write_text("{}")
        (tmp_path / f"a.json{TMP_SUFFIX}").write_text("{")
        (tmp_path / "deep").mkdir()
        (tmp_path / "deep" / f"b.seg{TMP_SUFFIX}").write_text("x")
        assert reclaim_tmp_files(tmp_path, recursive=True) == 2
        assert (tmp_path / "a.json").exists()
        assert not list(tmp_path.rglob("*" + TMP_SUFFIX))

    def test_non_recursive_skips_subdirs(self, tmp_path):
        (tmp_path / f"top{TMP_SUFFIX}").write_text("x")
        (tmp_path / "deep").mkdir()
        (tmp_path / "deep" / f"nested{TMP_SUFFIX}").write_text("x")
        assert reclaim_tmp_files(tmp_path, recursive=False) == 1
        assert (tmp_path / "deep" / f"nested{TMP_SUFFIX}").exists()

    def test_missing_root_is_a_noop(self, tmp_path):
        assert reclaim_tmp_files(tmp_path / "nope") == 0
