"""HTTP serving-layer tests: endpoints, errors, and parity with the
in-process query engine."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.store import (
    QueryEngine,
    SeriesKey,
    TelemetryStore,
    serve_background,
)


@pytest.fixture()
def served(tmp_path):
    store = TelemetryStore(tmp_path)
    hours = np.arange(0.0, 120.0, 0.5)
    store.append(
        SeriesKey("hq", "east", 1, "strain"),
        hours, 120.0 + 2.0 * hours / 24.0,
    )
    store.append(
        SeriesKey("hq", "east", 2, "strain"),
        hours, 118.0 + 0.1 * np.sin(hours),
    )
    store.compact()
    server, thread = serve_background(store, registry=MetricsRegistry())
    yield store, f"http://127.0.0.1:{server.port}"
    server.shutdown()
    thread.join(timeout=5.0)


def _get(url):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        assert response.headers["Content-Type"] == "application/json"
        return json.load(response)


def _get_error(url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(url, timeout=10.0)
    return excinfo.value.code, json.load(excinfo.value)


class TestEndpoints:
    def test_stats(self, served):
        store, base = served
        payload = _get(base + "/stats")
        assert payload["series_count"] == 2
        assert payload == json.loads(json.dumps(store.stats()))

    def test_series(self, served):
        store, base = served
        payload = _get(
            base + "/series?building=hq&wall=east&node=1&metric=strain"
            "&t0=0&t1=10"
        )
        local = store.read(
            SeriesKey("hq", "east", 1, "strain"), t0=0.0, t1=10.0
        )
        assert payload["rows"] == local["t"].size
        assert payload["columns"]["value"] == local["value"].tolist()

    def test_series_rollup(self, served):
        _, base = served
        payload = _get(
            base + "/series?building=hq&wall=east&node=1&metric=strain"
            "&resolution=daily"
        )
        assert payload["rows"] == 5
        assert set(payload["columns"]) == {"t", "min", "mean", "max", "count"}

    def test_aggregate_matches_engine(self, served):
        store, base = served
        payload = _get(
            base + "/aggregate?metric=strain&agg=mean&resolution=hourly"
            "&group_by=node"
        )
        local = QueryEngine(store).aggregate(
            "strain", "mean", resolution="hourly", group_by="node"
        )
        assert payload == json.loads(json.dumps(local))

    def test_health(self, served):
        _, base = served
        payload = _get(base + "/health?building=hq")
        assert payload["name"] == "hq"
        assert payload["degraded_walls"] == ["east"]
        assert {s["node_id"] for s in payload["attention"]} == {1}


class TestErrors:
    def test_unknown_path_404(self, served):
        _, base = served
        code, payload = _get_error(base + "/nope")
        assert code == 404 and "error" in payload

    def test_missing_parameter_400(self, served):
        _, base = served
        code, payload = _get_error(base + "/aggregate?agg=mean")
        assert code == 400 and "metric" in payload["error"]

    def test_bad_number_400(self, served):
        _, base = served
        code, _ = _get_error(
            base + "/series?building=hq&wall=east&node=1&metric=strain"
            "&t0=yesterday"
        )
        assert code == 400

    def test_bad_agg_400(self, served):
        _, base = served
        code, _ = _get_error(base + "/aggregate?metric=strain&agg=median")
        assert code == 400

    def test_unknown_building_400(self, served):
        _, base = served
        code, payload = _get_error(base + "/health?building=atlantis")
        assert code == 400 and "atlantis" in payload["error"]


def _get_text(url):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


class TestObservabilityEndpoints:
    def test_healthz_ok(self, served):
        _, base = served
        payload = _get(base + "/healthz")
        assert payload["status"] == "ok"
        assert payload["series_count"] == 2
        assert payload["quarantined_segments"] == 0
        assert payload["uptime_s"] >= 0.0
        assert "campaign" not in payload  # no heartbeat in this store

    def test_healthz_degraded_503_on_quarantine(self, served):
        store, base = served
        store.quarantine_dir.mkdir(parents=True, exist_ok=True)
        (store.quarantine_dir / "segment.bad").write_bytes(b"corrupt")
        code, payload = _get_error(base + "/healthz")
        assert code == 503
        assert payload["status"] == "degraded"
        assert payload["quarantined_segments"] == 1

    def test_metrics_exposition_has_request_counters(self, served):
        _, base = served
        _get(base + "/stats")
        _get_error(base + "/nope")
        text = _get_text(base + "/metrics")
        assert "# TYPE serve_requests counter" in text
        assert 'serve_requests{path="/stats",status="200"} 1' in text
        # Unknown paths collapse into one label value (no cardinality
        # explosion from URL scanners).
        assert 'serve_requests{path="other",status="404"} 1' in text

    def test_metrics_exposition_has_latency_histograms(self, served):
        _, base = served
        _get(base + "/stats")
        text = _get_text(base + "/metrics")
        assert 'serve_request_s_bucket{path="/stats",le="+Inf"} 1' in text
        assert 'serve_request_s_count{path="/stats"} 1' in text

    def test_requests_accumulate_across_scrapes(self, served):
        _, base = served
        for _ in range(3):
            _get(base + "/stats")
        text = _get_text(base + "/metrics")
        assert 'serve_requests{path="/stats",status="200"} 3' in text
        # /metrics itself is measured from the next scrape on.
        text = _get_text(base + "/metrics")
        assert 'serve_requests{path="/metrics",status="200"} 1' in text

    def test_healthz_surfaces_campaign_heartbeat(self, tmp_path):
        from repro.store import OBS_BUILDING

        store = TelemetryStore(tmp_path / "hb")
        store.append(
            SeriesKey(OBS_BUILDING, "campaign", 0, "campaign.epoch"),
            [0.0, 24.0], [1.0, 2.0],
        )
        server, thread = serve_background(store, registry=MetricsRegistry())
        try:
            payload = _get(f"http://127.0.0.1:{server.port}/healthz")
            assert payload["campaign"] == {
                "last_epoch": 2.0, "last_tick_hours": 24.0,
            }
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
