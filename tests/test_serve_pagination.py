"""Property test: a full cursor walk of ``/series`` reassembles the
unpaginated response exactly, for arbitrary windows, resolutions, and
page sizes."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.serve import EndpointCore
from repro.store import SeriesKey, TelemetryStore

KEY = SeriesKey("hq", "east", 1, "strain")
BASE = {"building": "hq", "wall": "east", "node": "1", "metric": "strain"}


@pytest.fixture(scope="module")
def core(tmp_path_factory):
    store = TelemetryStore(tmp_path_factory.mktemp("paginated"))
    hours = np.arange(0.0, 240.0, 0.25)
    store.append(KEY, hours, 120.0 + 3.0 * np.sin(hours / 12.0))
    store.compact()
    return EndpointCore(store, registry=MetricsRegistry())


def _walk(core, params, limit):
    """Every page of a cursor walk, bounded against runaway loops."""
    pages = []
    cursor = None
    for _ in range(0, 10_000):
        page_params = dict(params, limit=str(limit))
        if cursor is not None:
            page_params["cursor"] = cursor
        response = core.handle("GET", "/series", page_params)
        assert response.status == 200
        pages.append(json.loads(response.body))
        cursor = pages[-1]["page"]["next_cursor"]
        if cursor is None:
            return pages
    raise AssertionError("cursor walk did not terminate")


windows = st.one_of(
    st.none(), st.floats(min_value=-10.0, max_value=250.0, width=32)
)


@settings(max_examples=60, deadline=None)
@given(
    resolution=st.sampled_from(["raw", "hourly", "daily"]),
    bounds=st.tuples(windows, windows),
    limit=st.integers(min_value=1, max_value=300),
)
def test_page_concat_is_value_identical_to_unpaginated(
    core, resolution, bounds, limit
):
    t0, t1 = sorted(bounds, key=lambda b: (b is not None, b))
    params = dict(BASE, resolution=resolution)
    if t0 is not None:
        params["t0"] = repr(t0)
    if t1 is not None:
        params["t1"] = repr(t1)

    unpaginated = json.loads(core.handle("GET", "/series", params).body)
    pages = _walk(core, params, limit)

    # Page bookkeeping is self-consistent...
    assert all(p["total_rows"] == unpaginated["rows"] for p in pages)
    assert sum(p["rows"] for p in pages) == unpaginated["rows"]
    offsets = [p["page"]["offset"] for p in pages]
    assert offsets == sorted(offsets)
    # ...and the concatenation reproduces every column, value for value.
    for name, column in unpaginated["columns"].items():
        stitched = [v for p in pages for v in p["columns"][name]]
        assert stitched == column
    # Key/resolution metadata rides along unchanged on every page.
    for page in pages:
        assert page["key"] == unpaginated["key"]
        assert page["resolution"] == unpaginated["resolution"]
