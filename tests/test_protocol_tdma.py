"""Unit tests for the slotted-TDMA inventory."""

import pytest

from repro.errors import ProtocolError
from repro.protocol import NodeStateMachine, TdmaInventory


def make_nodes(count, seed=0):
    return [
        NodeStateMachine(
            node_id=i + 1,
            read_sensor=lambda channel, i=i: 20.0 + i,
            seed=seed + i,
        )
        for i in range(count)
    ]


class TestSingleRound:
    def test_single_node_always_heard(self):
        nodes = make_nodes(1)
        inventory = TdmaInventory(nodes=nodes, initial_q=0, seed=1)
        round_result = inventory.run_round()
        assert round_result.singulated == 1

    def test_slot_count_is_power_of_two(self):
        nodes = make_nodes(3)
        inventory = TdmaInventory(nodes=nodes, initial_q=3, seed=1)
        round_result = inventory.run_round()
        assert len(round_result.slots) == 8

    def test_accounting_consistent(self):
        nodes = make_nodes(5)
        inventory = TdmaInventory(nodes=nodes, initial_q=3, seed=2)
        round_result = inventory.run_round()
        categorised = (
            round_result.singulated
            + round_result.collisions
            + round_result.empties
        )
        # Some slots hold a lone node that failed singulation mid-protocol;
        # every slot is at most one category.
        assert categorised <= len(round_result.slots)
        assert round_result.singulated <= len(nodes)

    def test_efficiency_bounded(self):
        nodes = make_nodes(4)
        inventory = TdmaInventory(nodes=nodes, initial_q=2, seed=3)
        round_result = inventory.run_round()
        assert 0.0 <= round_result.efficiency <= 1.0


class TestInventoryAll:
    def test_hears_every_node(self):
        nodes = make_nodes(6, seed=10)
        inventory = TdmaInventory(
            nodes=nodes, initial_q=3, channels=("temperature",), seed=5
        )
        collected = inventory.inventory_all()
        assert set(collected) == {n.node_id for n in nodes}

    def test_reports_carry_values(self):
        nodes = make_nodes(3, seed=20)
        inventory = TdmaInventory(
            nodes=nodes, initial_q=2, channels=("temperature",), seed=6
        )
        collected = inventory.inventory_all()
        for node_id, reports in collected.items():
            assert reports[0].value == pytest.approx(20.0 + node_id - 1, abs=0.05)

    def test_multiple_channels(self):
        nodes = make_nodes(2, seed=30)
        inventory = TdmaInventory(
            nodes=nodes,
            initial_q=2,
            channels=("temperature", "temperature"),
            seed=7,
        )
        collected = inventory.inventory_all()
        assert all(len(reports) >= 2 for reports in collected.values())

    def test_distinct_blf_assignment(self):
        nodes = make_nodes(4, seed=40)
        inventory = TdmaInventory(
            nodes=nodes, initial_q=3, blf_plan_khz=(10, 14, 18, 22), seed=8
        )
        inventory.inventory_all()
        blfs = [n.blf_khz for n in nodes]
        # Everyone got assigned something from the plan.
        assert all(b in (10, 14, 18, 22) for b in blfs)

    def test_impossible_population_degrades(self):
        # Q capped at 0 with several nodes guarantees collisions forever;
        # the inventory reports the unheard nodes instead of raising.
        nodes = make_nodes(5, seed=50)
        inventory = TdmaInventory(nodes=nodes, initial_q=0, seed=9)
        inventory._q_float = 0.0
        result = inventory.inventory_all(max_rounds=1)
        assert result.degraded
        assert result.rounds_used == 1
        assert set(result.unheard_nodes) | set(result.reports) == {
            n.node_id for n in nodes
        }

    def test_complete_inventory_not_degraded(self):
        nodes = make_nodes(3, seed=55)
        inventory = TdmaInventory(nodes=nodes, initial_q=2, seed=12)
        result = inventory.inventory_all()
        assert not result.degraded
        assert result.unheard_nodes == []
        assert result.retries == 0
        assert result.fault_counts == {}
        assert result.rounds_used >= 1
        assert result.slots_used >= len(nodes)


class TestQAdaptation:
    def test_q_grows_under_collisions(self):
        nodes = make_nodes(12, seed=60)
        inventory = TdmaInventory(nodes=nodes, initial_q=1, seed=10)
        before = inventory._q_float
        inventory.run_round()
        assert inventory._q_float > before

    def test_q_shrinks_when_empty(self):
        nodes = make_nodes(1, seed=70)
        inventory = TdmaInventory(nodes=nodes, initial_q=4, seed=11)
        before = inventory._q_float
        inventory.run_round()
        assert inventory._q_float < before

    def test_rejects_bad_q(self):
        with pytest.raises(ProtocolError):
            TdmaInventory(nodes=make_nodes(1), initial_q=16)

    def test_rejects_empty_blf_plan(self):
        with pytest.raises(ProtocolError):
            TdmaInventory(nodes=make_nodes(1), blf_plan_khz=())
