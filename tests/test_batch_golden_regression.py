"""Golden-tolerance audit for the batched engine (ISSUE 6 satellite).

Three guarantees, stronger than the per-experiment golden tests:

1. every pinned golden is *byte-identical* under the batched default
   path -- regenerating the goldens with the batch engine active must
   reproduce the committed JSON exactly (``canonical_json`` compare);
2. the ``uplink_ber``-class experiments (fig15, fig17) produce
   byte-identical result payloads under the scalar and batch engines;
3. the campaign/fault experiments that charge through the batched link
   budget stay within the goldens' documented tolerances both ways.

If (1) ever fails after an intentional numerics change, regenerate and
document the tolerance in ``tests/goldens/README``.
"""

import json
from pathlib import Path

import pytest

from repro.phy.batch import use_engine
from repro.runtime import (
    canonical_json,
    compare_snapshots,
    experiment_registry,
    golden_snapshot,
    to_jsonable,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGISTRY = experiment_registry()

#: Experiments whose hot path runs through the uplink Monte-Carlo
#: engine -- the ``uplink_ber`` class of the ISSUE.
UPLINK_BER_CLASS = ("fig15", "fig17")

#: Experiments that charge through the (1-ulp-close) batched budget.
SURVEY_CLASS = ("fault_sweep", "campaign_pilot")


@pytest.mark.parametrize("name", UPLINK_BER_CLASS)
def test_uplink_ber_experiments_byte_identical_both_ways(name):
    spec = REGISTRY[name]
    with use_engine("scalar"):
        scalar = golden_snapshot(name, spec.execute(quick=True))
    with use_engine("batch"):
        batch = golden_snapshot(name, spec.execute(quick=True))
    assert canonical_json(scalar) == canonical_json(batch), (
        f"{name}: scalar and batch engines diverged; the batch FM0 "
        "kernels are supposed to be bit-identical"
    )


@pytest.mark.parametrize("name", UPLINK_BER_CLASS + SURVEY_CLASS)
def test_goldens_byte_identical_under_batch_default(name):
    """Regenerating under the batch engine reproduces the committed JSON."""
    spec = REGISTRY[name]
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    with use_engine("batch"):
        fresh = {
            "experiment": name,
            "seed": spec.seed,
            "params": to_jsonable(spec.params(quick=True)),
            "scalars": golden_snapshot(name, spec.execute(quick=True)),
        }
    committed = {key: golden[key] for key in fresh}
    assert canonical_json(committed) == canonical_json(fresh)


@pytest.mark.parametrize("name", SURVEY_CLASS)
def test_survey_experiments_within_golden_tolerance_both_ways(name):
    """The budget batch is 1-ulp-close, not exact: hold it to the
    goldens' documented tolerances under both engines."""
    spec = REGISTRY[name]
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    for engine in ("scalar", "batch"):
        with use_engine(engine):
            fresh = golden_snapshot(name, spec.execute(quick=True))
        problems = compare_snapshots(
            golden["scalars"], fresh, rel_tol=1e-6
        )
        assert not problems, (
            f"{name} under engine={engine} drifted: {problems}"
        )
