"""Unit tests for the synthetic July-2021 data generator."""

import numpy as np
import pytest

from repro.shm import (
    JULY_HOURS,
    STORM_END_HOUR,
    STORM_START_HOUR,
    JulyTimeSeriesGenerator,
    ShmError,
    in_storm,
)


@pytest.fixture
def generator():
    return JulyTimeSeriesGenerator(samples_per_hour=4, seed=2021)


class TestTimeBase:
    def test_covers_the_month(self, generator):
        hours = generator.hours()
        assert hours[0] == 0.0
        assert hours[-1] == pytest.approx(JULY_HOURS - 0.25)

    def test_storm_window_is_15th_to_23rd(self):
        assert STORM_START_HOUR == 14 * 24.0
        assert STORM_END_HOUR == 23 * 24.0

    def test_in_storm_mask(self):
        hours = np.array([0.0, 14 * 24.0, 20 * 24.0, 23 * 24.0, 30 * 24.0])
        mask = in_storm(hours)
        assert list(mask) == [False, True, True, False, False]

    def test_rejects_zero_cadence(self):
        with pytest.raises(ShmError):
            JulyTimeSeriesGenerator(samples_per_hour=0)


class TestEnvironmentalChannels:
    def test_humidity_band(self, generator):
        _, humidity = generator.humidity()
        assert np.all(humidity >= 50.0)
        assert np.all(humidity <= 100.0)

    def test_humidity_saturates_in_storm(self, generator):
        hours, humidity = generator.humidity()
        mask = in_storm(hours)
        assert np.mean(humidity[mask]) > np.mean(humidity[~mask]) + 5.0

    def test_temperature_band_and_storm_dip(self, generator):
        hours, temperature = generator.temperature()
        assert np.all(temperature >= 24.0)
        assert np.all(temperature <= 36.0)
        mask = in_storm(hours)
        assert np.mean(temperature[mask]) < np.mean(temperature[~mask])

    def test_pressure_trough_during_cyclone(self, generator):
        hours, pressure = generator.barometric_pressure()
        assert np.all(pressure >= 97.5)
        assert np.all(pressure <= 100.0)
        mask = in_storm(hours)
        assert np.min(pressure[mask]) < np.min(pressure[~mask])


class TestResponseChannels:
    def test_acceleration_zero_mean(self, generator):
        _, acc = generator.acceleration()
        assert np.mean(acc) == pytest.approx(0.0, abs=0.003)

    def test_acceleration_storm_amplification(self, generator):
        hours, acc = generator.acceleration()
        mask = in_storm(hours)
        storm_rms = np.sqrt(np.mean(acc[mask] ** 2))
        quiet_rms = np.sqrt(np.mean(acc[~mask] ** 2))
        assert storm_rms > 1.5 * quiet_rms

    def test_acceleration_below_structural_limit(self, generator):
        _, acc = generator.acceleration(scale=0.02)
        assert np.max(np.abs(acc)) < 0.7  # the bridge never neared damage

    def test_acceleration_scale_parameter(self, generator):
        _, small = generator.acceleration(1, scale=0.01)
        _, large = generator.acceleration(1, scale=0.04)
        assert np.std(large) > 2.0 * np.std(small)

    def test_stress_around_mean(self, generator):
        _, stress = generator.stress(mean=-60.0, swing=10.0)
        assert np.median(stress) == pytest.approx(-60.0, abs=6.0)

    def test_stress_storm_excursion(self, generator):
        hours, stress = generator.stress()
        mask = in_storm(hours)
        centred = stress - np.median(stress)
        assert np.sqrt(np.mean(centred[mask] ** 2)) > np.sqrt(
            np.mean(centred[~mask] ** 2)
        )

    def test_rejects_bad_scale(self, generator):
        with pytest.raises(ShmError):
            generator.acceleration(scale=0.0)


class TestPedestrians:
    def test_counts_nonnegative_integers(self, generator):
        _, counts = generator.pedestrian_counts()
        assert counts.dtype.kind == "i"
        assert np.all(counts >= 0)

    def test_storm_empties_the_bridge(self, generator):
        hours, counts = generator.pedestrian_counts()
        mask = in_storm(hours)
        assert np.mean(counts[mask]) < np.mean(counts[~mask])

    def test_commute_peaks(self, generator):
        hours, counts = generator.pedestrian_counts(section_capacity=200)
        tod = np.mod(hours, 24.0)
        rush = counts[(tod > 8.0) & (tod < 9.5)]
        night = counts[(tod > 2.0) & (tod < 4.0)]
        assert np.mean(rush) > 3.0 * max(np.mean(night), 0.5)

    def test_rejects_zero_capacity(self, generator):
        with pytest.raises(ShmError):
            generator.pedestrian_counts(section_capacity=0)


class TestLoadChannels:
    def test_wind_nonnegative(self, generator):
        _, wind = generator.wind_speed()
        assert np.all(wind >= 0.0)

    def test_wind_gale_during_cyclone(self, generator):
        hours, wind = generator.wind_speed()
        mask = in_storm(hours)
        assert np.mean(wind[mask]) > 2.0 * np.mean(wind[~mask])

    def test_deflection_positive_and_compliant(self, generator):
        _, deflection = generator.midspan_deflection()
        assert np.all(deflection > 0.0)
        # The bridge's 0.1083 m limit is never approached.
        assert np.max(deflection) < 0.1083

    def test_deflection_storm_excursion(self, generator):
        hours, deflection = generator.midspan_deflection()
        mask = in_storm(hours)
        assert np.mean(deflection[mask]) > np.mean(deflection[~mask])


class TestBundles:
    def test_appendix_channels_complete(self, generator):
        channels = generator.appendix_channels()
        assert len(channels) == 11  # 3 environmental + 6 accel + 2 stress

    def test_reproducible_with_seed(self):
        a = JulyTimeSeriesGenerator(samples_per_hour=2, seed=9).humidity()[1]
        b = JulyTimeSeriesGenerator(samples_per_hour=2, seed=9).humidity()[1]
        assert np.array_equal(a, b)
