"""Unit tests for the MCU power model and sensor peripherals."""

import pytest

from repro.circuits import (
    McuPowerModel,
    SensorError,
    SensorSuite,
    accelerometer,
    humidity_sensor,
    strain_sensor,
    temperature_sensor,
)
from repro.errors import PowerError


class TestMcuPower:
    """Fig. 13 anchors."""

    @pytest.fixture
    def mcu(self):
        return McuPowerModel()

    def test_standby_80_microwatts(self, mcu):
        assert mcu.power("standby") * 1e6 == pytest.approx(80.1)

    def test_sleep_sub_microwatt(self, mcu):
        assert mcu.power("sleep") * 1e6 == pytest.approx(0.9)

    def test_active_around_360_microwatts(self, mcu):
        for kbps in (1, 2, 4, 8):
            assert mcu.power("active", kbps * 1e3) * 1e6 == pytest.approx(
                360.0, rel=0.02
            )

    def test_nearly_flat_across_bitrates(self, mcu):
        # "fluctuates around 360 uW slightly regardless of the bitrate"
        low = mcu.power("active", 1e3)
        high = mcu.power("active", 8e3)
        assert (high - low) / low < 0.02

    def test_energy_accounting(self, mcu):
        assert mcu.energy("standby", 10.0) == pytest.approx(801e-6)

    def test_unknown_state_raises(self, mcu):
        with pytest.raises(PowerError):
            mcu.power("hibernate")

    def test_negative_bitrate_raises(self, mcu):
        with pytest.raises(PowerError):
            mcu.power("active", -1.0)


class TestSensors:
    def test_temperature_reading_close_to_truth(self):
        sensor = temperature_sensor(seed=1)
        readings = [sensor.read(25.0) for _ in range(50)]
        mean = sum(readings) / len(readings)
        assert mean == pytest.approx(25.0, abs=0.2)

    def test_quantisation(self):
        sensor = strain_sensor(seed=2)
        reading = sensor.read(100.4)
        assert reading == round(reading)  # 1 ue resolution

    def test_out_of_range_raises(self):
        with pytest.raises(SensorError):
            temperature_sensor().read(200.0)
        with pytest.raises(SensorError):
            humidity_sensor().read(-5.0)

    def test_reading_clamped_to_range(self):
        sensor = humidity_sensor(seed=3)
        for _ in range(100):
            assert 0.0 <= sensor.read(99.9) <= 100.0

    def test_accelerometer_band(self):
        sensor = accelerometer(seed=4)
        assert abs(sensor.read(0.05) - 0.05) < 0.05

    def test_reproducible_with_seed(self):
        a = temperature_sensor(seed=7).read(25.0)
        b = temperature_sensor(seed=7).read(25.0)
        assert a == b

    def test_invalid_range_rejected(self):
        from repro.circuits import SensorBase

        with pytest.raises(SensorError):
            SensorBase(range=(10.0, 0.0), resolution=0.1, noise_rms=0.1)


class TestSensorSuite:
    def test_read_all_channels(self):
        suite = SensorSuite()
        readings = suite.read_all(
            temperature=24.0, humidity=70.0, strain=150.0, acceleration=0.01
        )
        assert set(readings) == {"temperature", "humidity", "strain", "acceleration"}
        assert readings["temperature"] == pytest.approx(24.0, abs=1.0)
        assert readings["humidity"] == pytest.approx(70.0, abs=8.0)
