"""Unit tests for the store's keys and columnar segment layer."""

import numpy as np
import pytest

from repro.errors import SegmentError, StoreError
from repro.store import MAX_NODE_ID, SegmentDir, SeriesKey
from repro.store.segment import (
    DAILY,
    HOURLY,
    RAW,
    RAW_COLUMNS,
    ROLLUP_COLUMNS,
    columns_for,
    decode_block,
    encode_block,
)

KEY = SeriesKey("bldg", "north", 3, "strain")


def _segment(tmp_path, key=KEY):
    return SegmentDir(
        tmp_path / "seg" / key.metric, key.to_dict(), tmp_path / "quarantine"
    )


class TestSeriesKey:
    def test_round_trip_dict(self):
        assert SeriesKey.from_dict(KEY.to_dict()) == KEY

    def test_round_trip_path_parts(self):
        parts = KEY.relpath.parts
        assert SeriesKey.from_path_parts(parts) == KEY

    def test_node_dirname_zero_padded(self):
        assert KEY.node_dirname == "n00003"

    @pytest.mark.parametrize(
        "component", ["", "../evil", "a/b", "a b", ".hidden", "x" * 65]
    )
    def test_rejects_unsafe_components(self, component):
        with pytest.raises(StoreError):
            SeriesKey(component, "w", 1, "m")

    @pytest.mark.parametrize("node_id", [-1, MAX_NODE_ID + 1, 1.5, True])
    def test_rejects_bad_node_ids(self, node_id):
        with pytest.raises(StoreError):
            SeriesKey("b", "w", node_id, "m")

    def test_keys_sort_by_components(self):
        a = SeriesKey("b", "w", 1, "strain")
        b = SeriesKey("b", "w", 2, "strain")
        assert sorted([b, a]) == [a, b]


class TestBlockFraming:
    def test_round_trip(self):
        t = np.array([1.0, 2.0, 3.0])
        v = np.array([10.0, 20.0, 30.0])
        frame, meta = encode_block(RAW_COLUMNS, [t, v])
        assert meta["n"] == 3 and (meta["t0"], meta["t1"]) == (1.0, 3.0)
        out = decode_block(frame, RAW_COLUMNS)
        assert np.array_equal(out["t"], t)
        assert np.array_equal(out["value"], v)

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(StoreError):
            encode_block(RAW_COLUMNS, [np.empty(0), np.empty(0)])
        with pytest.raises(StoreError):
            encode_block(
                RAW_COLUMNS, [np.array([1.0]), np.array([np.nan])]
            )

    def test_rejects_decreasing_time(self):
        with pytest.raises(StoreError):
            encode_block(
                RAW_COLUMNS, [np.array([2.0, 1.0]), np.array([0.0, 0.0])]
            )

    def test_crc_flip_detected(self):
        frame, _ = encode_block(
            RAW_COLUMNS, [np.array([1.0, 2.0]), np.array([5.0, 6.0])]
        )
        for position in range(len(frame)):
            damaged = bytearray(frame)
            damaged[position] ^= 0xFF
            with pytest.raises(SegmentError):
                decode_block(bytes(damaged), RAW_COLUMNS)

    def test_wrong_column_layout_rejected(self):
        frame, _ = encode_block(
            RAW_COLUMNS, [np.array([1.0]), np.array([5.0])]
        )
        with pytest.raises(SegmentError):
            decode_block(frame, ROLLUP_COLUMNS)

    def test_columns_for(self):
        assert columns_for(RAW) == RAW_COLUMNS
        assert columns_for(HOURLY) == ROLLUP_COLUMNS
        assert columns_for(DAILY) == ROLLUP_COLUMNS
        with pytest.raises(StoreError):
            columns_for("minutely")


class TestSegmentAppendRead:
    def test_append_then_read(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([0.0, 1.0]), np.array([1.0, 2.0])])
        seg.append_block(RAW, [np.array([2.0, 3.0]), np.array([3.0, 4.0])])
        data = seg.read(RAW)
        assert np.array_equal(data["t"], [0.0, 1.0, 2.0, 3.0])
        assert seg.rows(RAW) == 4
        assert seg.time_range(RAW) == (0.0, 3.0)

    def test_range_read_prunes_blocks_and_filters(self, tmp_path):
        seg = _segment(tmp_path)
        for start in range(0, 40, 10):
            t = np.arange(start, start + 10, dtype=float)
            seg.append_block(RAW, [t, t * 2.0])
        data = seg.read(RAW, t0=12.0, t1=27.0)
        assert data["t"][0] == 12.0 and data["t"][-1] == 27.0
        assert np.array_equal(data["value"], data["t"] * 2.0)

    def test_out_of_order_append_rejected(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([5.0]), np.array([1.0])])
        with pytest.raises(StoreError):
            seg.append_block(RAW, [np.array([4.0]), np.array([1.0])])

    def test_ties_at_the_boundary_allowed(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([5.0]), np.array([1.0])])
        seg.append_block(RAW, [np.array([5.0]), np.array([2.0])])
        assert seg.rows(RAW) == 2

    def test_empty_read(self, tmp_path):
        seg = _segment(tmp_path)
        data = seg.read(RAW)
        assert data["t"].size == 0 and data["value"].size == 0

    def test_replace_and_clear(self, tmp_path):
        seg = _segment(tmp_path)
        cols = [np.array([0.0]), *[np.array([1.0])] * 4]
        seg.replace(HOURLY, cols)
        assert seg.rows(HOURLY) == 1
        seg.replace(HOURLY, None)
        assert seg.rows(HOURLY) == 0
        assert not seg.seg_path(HOURLY).exists()


class TestSegmentDurability:
    def test_torn_tail_truncated_on_next_append(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([0.0]), np.array([1.0])])
        # Simulate a crash between data-append and manifest-rename.
        with seg.seg_path(RAW).open("ab") as handle:
            handle.write(b"torn half-written block")
        fresh = _segment(tmp_path)
        assert fresh.recover() == 1
        assert fresh.rows(RAW) == 1
        assert np.array_equal(fresh.read(RAW)["value"], [1.0])

    def test_short_file_quarantined(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([0.0]), np.array([1.0])])
        raw = seg.seg_path(RAW)
        raw.write_bytes(raw.read_bytes()[:-5])
        fresh = _segment(tmp_path)
        with pytest.raises(SegmentError):
            fresh.recover()
        assert not raw.exists()
        assert any((tmp_path / "quarantine").iterdir())

    def test_payload_flip_detected_on_read(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(
            RAW, [np.array([0.0, 1.0]), np.array([1.0, 2.0])]
        )
        raw = seg.seg_path(RAW)
        data = bytearray(raw.read_bytes())
        data[-6] ^= 0x01  # inside the payload/CRC region
        raw.write_bytes(bytes(data))
        with pytest.raises(SegmentError):
            _segment(tmp_path).read(RAW)

    def test_garbage_manifest_quarantined(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([0.0]), np.array([1.0])])
        seg.manifest_path.write_text("{not json")
        with pytest.raises(SegmentError):
            _segment(tmp_path).read(RAW)
        assert any((tmp_path / "quarantine").iterdir())

    def test_data_without_manifest_quarantined(self, tmp_path):
        seg = _segment(tmp_path)
        seg.append_block(RAW, [np.array([0.0]), np.array([1.0])])
        seg.manifest_path.unlink()
        fresh = _segment(tmp_path)
        assert fresh.rows(RAW) == 0  # fresh manifest, data set aside
        assert any((tmp_path / "quarantine").iterdir())


class TestTruncateFrom:
    def _filled(self, tmp_path):
        seg = _segment(tmp_path)
        for start in (0.0, 10.0, 20.0):
            t = np.arange(start, start + 10.0)
            seg.append_block(RAW, [t, t + 100.0])
        return seg

    def test_cut_mid_block(self, tmp_path):
        seg = self._filled(tmp_path)
        assert seg.truncate_from(15.0) == 15
        data = seg.read(RAW)
        assert data["t"][-1] == 14.0
        assert np.array_equal(data["value"], data["t"] + 100.0)

    def test_cut_nothing_when_past_the_end(self, tmp_path):
        seg = self._filled(tmp_path)
        assert seg.truncate_from(30.0) == 0
        assert seg.rows(RAW) == 30

    def test_cut_everything(self, tmp_path):
        seg = self._filled(tmp_path)
        assert seg.truncate_from(0.0) == 30
        assert seg.rows(RAW) == 0

    def test_cut_clears_rollups(self, tmp_path):
        seg = self._filled(tmp_path)
        seg.replace(HOURLY, [np.array([0.0]), *[np.array([1.0])] * 4])
        seg.truncate_from(15.0)
        assert seg.rows(HOURLY) == 0

    def test_append_after_cut(self, tmp_path):
        seg = self._filled(tmp_path)
        seg.truncate_from(15.0)
        seg.append_block(RAW, [np.array([15.0]), np.array([115.0])])
        assert seg.rows(RAW) == 16
