"""API-stability tests: every advertised export exists and resolves."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.acoustics",
    "repro.baselines",
    "repro.circuits",
    "repro.experiments",
    "repro.faults",
    "repro.link",
    "repro.materials",
    "repro.node",
    "repro.phy",
    "repro.protocol",
    "repro.reader",
    "repro.runtime",
    "repro.shm",
    "repro.store",
    "repro.transducer",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_base_exception_exported(self):
        assert issubclass(repro.ReproError, Exception)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_no_private_names_in_all(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert not name.startswith("_"), f"{module_name}.{name}"

    def test_public_callables_documented(self, module_name):
        """Every exported class/function carries a docstring."""
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module_name}.{name} undocumented"


class TestErrorHierarchy:
    def test_all_library_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_domain_errors_importable_from_their_modules(self):
        from repro.circuits import SensorError
        from repro.link import DeploymentError, LocalizationError
        from repro.phy import MetricsError
        from repro.reporting import ReportingError
        from repro.shm import DamageError, PaoError, ShmError

        for exc in (
            SensorError,
            DeploymentError,
            LocalizationError,
            MetricsError,
            ReportingError,
            DamageError,
            PaoError,
            ShmError,
        ):
            assert issubclass(exc, repro.ReproError)
