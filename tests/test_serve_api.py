"""Shared endpoint-core tests: validation, 405/HEAD, ETag, cursors,
and the rollup cache's exact counter accounting."""

import json

import numpy as np
import pytest

from repro.errors import StoreError
from repro.obs import MetricsRegistry
from repro.serve import (
    EndpointCore,
    RollupCache,
    decode_cursor,
    encode_cursor,
    encode_json,
)
from repro.store import SeriesKey, TelemetryStore

KEY = SeriesKey("hq", "east", 1, "strain")
SERIES_PARAMS = {
    "building": "hq", "wall": "east", "node": "1", "metric": "strain",
}


@pytest.fixture()
def store(tmp_path):
    store = TelemetryStore(tmp_path)
    hours = np.arange(0.0, 120.0, 0.5)
    store.append(KEY, hours, 120.0 + 2.0 * hours / 24.0)
    store.compact()
    return store


@pytest.fixture()
def core(store):
    return EndpointCore(store, registry=MetricsRegistry())


class TestValidation:
    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "Infinity", "NaN"])
    def test_non_finite_window_is_400(self, core, bad):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, t0=bad)
        )
        assert response.status == 400
        payload = json.loads(response.body)
        assert "finite" in payload["error"] and bad in payload["error"]

    def test_non_finite_stale_hours_is_400(self, core):
        response = core.handle(
            "GET", "/health", {"building": "hq", "stale_hours": "nan"}
        )
        assert response.status == 400
        assert "finite" in json.loads(response.body)["error"]

    def test_non_number_window_keeps_legacy_message(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, t0="yesterday")
        )
        assert response.status == 400
        assert "must be a number" in json.loads(response.body)["error"]

    def test_finite_windows_still_accepted(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, t0="0", t1="10")
        )
        assert response.status == 200


class TestMethods:
    @pytest.mark.parametrize("method", ["POST", "PUT", "DELETE", "PATCH"])
    def test_non_get_is_405_with_allow(self, core, method):
        response = core.handle(method, "/stats", {})
        assert response.status == 405
        assert ("Allow", "GET, HEAD") in response.headers
        payload = json.loads(response.body)
        assert method in payload["error"]
        assert "read-only" in payload["error"]

    def test_head_returns_get_body(self, core):
        # The core answers HEAD with the full body; the transport layer
        # is responsible for sending headers only.
        get = core.handle("GET", "/stats", {})
        head = core.handle("HEAD", "/stats", {})
        assert head.status == 200
        assert head.body == get.body

    def test_lowercase_method_normalised(self, core):
        assert core.handle("get", "/stats", {}).status == 200
        assert core.handle("post", "/stats", {}).status == 405


class TestConditional:
    def test_series_carries_strong_etag(self, core):
        response = core.handle("GET", "/series", dict(SERIES_PARAMS))
        etags = dict(response.headers)
        assert etags["ETag"].startswith('"') and etags["ETag"].endswith('"')

    def test_if_none_match_hits_304(self, core):
        first = core.handle("GET", "/series", dict(SERIES_PARAMS))
        etag = dict(first.headers)["ETag"]
        second = core.handle(
            "GET", "/series", dict(SERIES_PARAMS), if_none_match=etag
        )
        assert second.status == 304
        assert second.body == b""
        assert dict(second.headers)["ETag"] == etag

    def test_if_none_match_list_matches_any(self, core):
        first = core.handle("GET", "/aggregate", {"metric": "strain"})
        etag = dict(first.headers)["ETag"]
        second = core.handle(
            "GET", "/aggregate", {"metric": "strain"},
            if_none_match=f'"deadbeef", {etag}',
        )
        assert second.status == 304

    def test_stale_etag_gets_fresh_200(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS),
            if_none_match='"0000000000000000"',
        )
        assert response.status == 200 and response.body


class TestCursors:
    def test_roundtrip(self):
        for offset in (0, 1, 17, 10**9):
            assert decode_cursor(encode_cursor(offset)) == offset

    @pytest.mark.parametrize(
        "cursor", ["!!!!", "", "eyJ4IjogMX0=", encode_json({"o": -1}).decode()]
    )
    def test_malformed_cursor_raises(self, cursor):
        with pytest.raises(StoreError, match="cursor"):
            decode_cursor(cursor)

    def test_cursor_without_limit_is_400(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, cursor=encode_cursor(0))
        )
        assert response.status == 400
        assert "requires 'limit'" in json.loads(response.body)["error"]

    def test_zero_limit_is_400(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, limit="0")
        )
        assert response.status == 400

    def test_bad_cursor_over_http_contract_is_400(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, limit="10", cursor="%%%")
        )
        assert response.status == 400
        assert "cursor" in json.loads(response.body)["error"]

    def test_first_page_shape(self, core):
        response = core.handle(
            "GET", "/series", dict(SERIES_PARAMS, limit="10")
        )
        payload = json.loads(response.body)
        assert payload["rows"] == 10
        assert payload["total_rows"] == 240
        assert payload["page"]["offset"] == 0
        assert payload["page"]["next_cursor"] is not None
        assert len(payload["columns"]["t"]) == 10

    def test_unpaginated_payload_keeps_legacy_shape(self, core):
        payload = json.loads(
            core.handle("GET", "/series", dict(SERIES_PARAMS)).body
        )
        assert "page" not in payload and "total_rows" not in payload
        assert payload["rows"] == 240


class TestRollupCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(StoreError):
            RollupCache(0)

    def test_exact_hit_miss_accounting(self):
        cache = RollupCache(4)
        assert cache.get("k", 0) is None
        cache.put("k", 0, "v")
        assert cache.get("k", 0) == "v"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_generation_mismatch_invalidates_and_misses(self):
        cache = RollupCache(4)
        cache.put("k", 0, "old")
        assert cache.get("k", 1) is None
        stats = cache.stats()
        assert stats["invalidations"] == 1 and stats["misses"] == 1
        assert len(cache) == 0

    def test_lru_eviction_order_and_counter(self):
        cache = RollupCache(2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh "a" -> "b" is now LRU
        cache.put("c", 0, 3)
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == 1
        assert cache.evictions == 1

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        cache = RollupCache(1, registry=registry)
        cache.get("k", 0)
        cache.put("k", 0, "v")
        cache.get("k", 0)
        cache.get("k", 1)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        counters = registry.snapshot()["counters"]
        assert counters["serve.cache_hits"] == 1
        assert counters["serve.cache_misses"] == 2
        assert counters["serve.cache_invalidations"] == 1
        assert counters["serve.cache_evictions"] == 1


class TestStoreGeneration:
    def test_new_store_starts_at_zero(self, tmp_path):
        assert TelemetryStore(tmp_path / "fresh").generation == 0

    def test_compact_bumps_generation(self, store):
        before = store.generation
        summary = store.compact()
        assert store.generation == before + 1
        assert summary["generation"] == before + 1

    def test_generation_survives_reopen(self, store):
        store.compact()
        assert TelemetryStore(store.root).generation == store.generation

    def test_truncate_bumps_generation(self, store):
        before = store.generation
        store.truncate_from(1.0)
        assert store.generation == before + 1
