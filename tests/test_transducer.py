"""Unit tests for PZT discs and the reader's analog drive chain."""

import math

import numpy as np
import pytest

from repro.errors import DesignError
from repro.materials import get_concrete
from repro.transducer import (
    MatchingNetwork,
    PowerAmplifier,
    TransmitChain,
    node_disc,
    reader_tx_disc,
)

NC = get_concrete("NC").medium
SAMPLE_RATE = 4e6


class TestPztDisc:
    def test_reader_disc_specs(self):
        disc = reader_tx_disc()
        assert disc.diameter == pytest.approx(0.040)
        assert disc.thickness == pytest.approx(0.002)
        assert disc.resonant_frequency == 230e3
        assert disc.max_voltage == 250.0

    def test_node_disc_smaller(self):
        assert node_disc().diameter < reader_tx_disc().diameter

    def test_frequency_response_peaks_at_resonance(self):
        disc = reader_tx_disc()
        assert disc.frequency_response(230e3) == pytest.approx(1.0)
        assert disc.frequency_response(180e3) < 1.0
        assert disc.frequency_response(300e3) < 1.0

    def test_beam_half_angle_matches_paper(self):
        disc = reader_tx_disc()
        alpha = disc.beam_half_angle(NC.cp)
        assert math.degrees(alpha) == pytest.approx(11.0, abs=0.5)

    def test_transmit_respects_voltage_limit(self):
        disc = reader_tx_disc()
        n = 256
        with pytest.raises(DesignError):
            disc.transmit(np.ones(n), np.full(n, 230e3), SAMPLE_RATE, 300.0)

    def test_transmit_shape_and_scale(self):
        disc = reader_tx_disc()
        n = 512
        out = disc.transmit(np.ones(n), np.full(n, 230e3), SAMPLE_RATE, 100.0)
        assert out.size == n
        assert np.max(np.abs(out)) <= 100.0 * disc.conversion + 1e-9
        assert np.max(np.abs(out)) > 0.5 * 100.0 * disc.conversion

    def test_transmit_ringdown_tail(self):
        # After the envelope drops, the emission decays instead of stopping.
        disc = reader_tx_disc()
        n = 2048
        baseband = np.concatenate([np.ones(n // 2), np.zeros(n // 2)])
        out = disc.transmit(baseband, np.full(n, 230e3), SAMPLE_RATE, 100.0)
        just_after = np.max(np.abs(out[n // 2 : n // 2 + 64]))
        assert just_after > 0.0  # the tail exists

    def test_transmit_rejects_mismatched_arrays(self):
        disc = reader_tx_disc()
        with pytest.raises(DesignError):
            disc.transmit(np.ones(8), np.full(16, 230e3), SAMPLE_RATE, 100.0)

    def test_invalid_geometry_rejected(self):
        from repro.transducer import PztDisc

        with pytest.raises(DesignError):
            PztDisc(diameter=0.0, thickness=0.002, resonant_frequency=230e3)


class TestMatchingNetwork:
    def test_peak_at_tuned_frequency(self):
        match = MatchingNetwork()
        assert match.efficiency(230e3) == pytest.approx(match.peak_efficiency)
        assert match.efficiency(180e3) < match.peak_efficiency

    def test_symmetric_detuning(self):
        match = MatchingNetwork()
        assert match.efficiency(230e3 * 1.1) == pytest.approx(
            match.efficiency(230e3 / 1.1), rel=0.05
        )

    def test_rejects_bad_efficiency(self):
        with pytest.raises(DesignError):
            MatchingNetwork(peak_efficiency=1.5)


class TestPowerAmplifier:
    def test_scales_to_target(self):
        amp = PowerAmplifier()
        out = amp.amplify(np.sin(np.linspace(0, 10, 100)), 200.0)
        assert np.max(np.abs(out)) == pytest.approx(200.0)

    def test_rejects_over_rail(self):
        amp = PowerAmplifier(max_output_voltage=250.0)
        with pytest.raises(DesignError):
            amp.amplify(np.ones(4), 300.0)

    def test_silent_input_passthrough(self):
        amp = PowerAmplifier()
        out = amp.amplify(np.zeros(8), 100.0)
        assert np.all(out == 0.0)


class TestTransmitChain:
    def test_defaults_built_from_disc(self):
        chain = TransmitChain(disc=reader_tx_disc())
        assert chain.amplifier.max_output_voltage == 250.0
        assert chain.matching.tuned_frequency == 230e3

    def test_effective_voltage_below_requested(self):
        chain = TransmitChain(disc=reader_tx_disc())
        assert chain.effective_drive_voltage(100.0, 230e3) < 100.0

    def test_effective_voltage_caps_at_rail(self):
        chain = TransmitChain(disc=reader_tx_disc())
        at_rail = chain.effective_drive_voltage(250.0, 230e3)
        assert chain.effective_drive_voltage(1000.0, 230e3) == pytest.approx(at_rail)

    def test_transmit_produces_waveform(self):
        chain = TransmitChain(disc=reader_tx_disc())
        n = 256
        out = chain.transmit(np.ones(n), np.full(n, 230e3), SAMPLE_RATE, 100.0)
        assert out.size == n
        assert np.max(np.abs(out)) > 0.0
