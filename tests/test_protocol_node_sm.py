"""Unit tests for the node-side protocol state machine."""

import pytest

from repro.errors import ProtocolError
from repro.protocol import (
    ACKNOWLEDGED,
    ARBITRATE,
    READY,
    REPLY,
    Ack,
    NodeStateMachine,
    Query,
    QueryRep,
    ReadSensor,
    Rn16Reply,
    SensorReport,
    SetBlf,
)


def make_node(node_id=1, seed=0):
    return NodeStateMachine(
        node_id=node_id, read_sensor=lambda channel: 25.0, seed=seed
    )


def drive_to_reply(node, q=2):
    """Advance the round until the node replies; return its RN16 reply."""
    reply = node.handle(Query(q=q))
    while reply is None:
        reply = node.handle(QueryRep())
        if node.state == READY:
            raise AssertionError("node left the round without replying")
    return reply


class TestSlotSelection:
    def test_q0_replies_immediately(self):
        node = make_node()
        reply = node.handle(Query(q=0))
        assert isinstance(reply, Rn16Reply)
        assert node.state == REPLY

    def test_slot_counter_within_range(self):
        for seed in range(20):
            node = make_node(seed=seed)
            node.handle(Query(q=3))
            assert 0 <= node.slot_counter < 8

    def test_query_rep_counts_down(self):
        node = make_node(seed=1)
        node.handle(Query(q=4))
        if node.state == ARBITRATE:
            before = node.slot_counter
            node.handle(QueryRep())
            assert node.slot_counter == before - 1


class TestAcknowledge:
    def test_correct_rn16_acknowledges(self):
        node = make_node()
        reply = drive_to_reply(node)
        node.handle(Ack(rn16=reply.rn16))
        assert node.state == ACKNOWLEDGED
        assert node.is_acknowledged

    def test_wrong_rn16_back_to_arbitrate(self):
        node = make_node()
        reply = drive_to_reply(node)
        node.handle(Ack(rn16=(reply.rn16 + 1) % 0x10000))
        assert node.state == ARBITRATE

    def test_ack_ignored_when_ready(self):
        node = make_node()
        node.handle(Ack(rn16=1))
        assert node.state == READY


class TestAcknowledgedCommands:
    def make_acknowledged(self):
        node = make_node()
        reply = drive_to_reply(node)
        node.handle(Ack(rn16=reply.rn16))
        return node

    def test_set_blf(self):
        node = self.make_acknowledged()
        node.handle(SetBlf(blf_khz=18))
        assert node.blf_khz == 18

    def test_set_blf_ignored_when_not_acknowledged(self):
        node = make_node()
        node.handle(SetBlf(blf_khz=18))
        assert node.blf_khz == 10  # default untouched

    def test_read_sensor_returns_report(self):
        node = self.make_acknowledged()
        report = node.handle(ReadSensor(channel="temperature"))
        assert isinstance(report, SensorReport)
        assert report.node_id == node.node_id
        assert report.value == pytest.approx(25.0, abs=1.0 / 32.0)

    def test_read_sensor_ignored_when_not_acknowledged(self):
        node = make_node()
        assert node.handle(ReadSensor(channel="temperature")) is None

    def test_next_round_releases_the_node(self):
        node = self.make_acknowledged()
        node.handle(QueryRep())
        assert node.state == READY


class TestCollisionBackoff:
    def test_collided_node_parks_until_next_query(self):
        """Gen2 wrap: a replier that is not acknowledged must not keep
        replying in every subsequent slot of the same round."""
        node = make_node()
        drive_to_reply(node, q=2)
        # No Ack arrives (collision); the round advances.
        reply = node.handle(QueryRep())
        assert reply is None
        assert node.state == ARBITRATE
        # The node stays silent for the rest of the round.
        for _ in range(10):
            assert node.handle(QueryRep()) is None

    def test_parked_node_rejoins_on_next_query(self):
        node = make_node()
        drive_to_reply(node, q=2)
        node.handle(QueryRep())  # collided -> parked
        reply = node.handle(Query(q=0))
        assert isinstance(reply, Rn16Reply)


class TestPowerCycle:
    def test_resets_state(self):
        node = make_node()
        reply = drive_to_reply(node)
        node.handle(Ack(rn16=reply.rn16))
        node.power_cycle()
        assert node.state == READY
        assert node.rn16 is None

    def test_rejects_bad_node_id(self):
        with pytest.raises(ProtocolError):
            NodeStateMachine(node_id=300, read_sensor=lambda c: 0.0)

    def test_unknown_command_raises(self):
        node = make_node()
        with pytest.raises(ProtocolError):
            node.handle("not a command")
