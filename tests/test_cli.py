"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["prism"],
            ["range", "--structure", "S2"],
            ["shell", "--height", "50"],
            ["survey", "--nodes", "3"],
            ["pilot"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_prism(self, capsys):
        assert main(["prism", "--concrete", "UHPC"]) == 0
        out = capsys.readouterr().out
        assert "S-only window" in out
        assert "UHPC" in out

    def test_range(self, capsys):
        assert main(["range", "--structure", "S3", "--voltage", "200"]) == 0
        out = capsys.readouterr().out
        assert "Max power-up range" in out
        assert "Stations" in out

    def test_range_unknown_structure(self):
        with pytest.raises(SystemExit):
            main(["range", "--structure", "S9"])

    def test_shell(self, capsys):
        assert main(["shell", "--height", "100"]) == 0
        out = capsys.readouterr().out
        assert "SLA resin" in out
        assert "OK" in out

    def test_shell_too_tall_for_resin(self, capsys):
        main(["shell", "--height", "300"])
        out = capsys.readouterr().out
        assert "FAILS" in out  # resin gives up past ~195 m

    def test_survey(self, capsys):
        assert main(["survey", "--nodes", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Powered 3/3" in out
        assert "node  1" in out

    def test_pilot(self, capsys):
        assert main(["pilot", "--samples-per-hour", "2"]) == 0
        out = capsys.readouterr().out
        assert "storm detected in both channels: True" in out
        assert "section A" in out

    def test_export(self, capsys, tmp_path):
        assert main(
            ["export", "--directory", str(tmp_path), "--figures", "fig13"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig13.csv" in out
        assert (tmp_path / "fig13.csv").exists()


class TestExperimentsCommands:
    def test_experiments_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["experiments", "list"],
            ["experiments", "run", "--all", "--jobs", "4"],
            ["experiments", "run", "--only", "fig15", "--force", "--quick"],
            ["experiments", "validate", "some/run/dir"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_experiments_run_requires_a_selection(self):
        with pytest.raises(SystemExit):
            main(["experiments", "run"])

    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "tables" in out
        assert "seed=" in out

    def test_experiments_run_only_then_validate(self, capsys, tmp_path):
        assert main(
            [
                "experiments",
                "run",
                "--only",
                "fig13",
                "tables",
                "--jobs",
                "0",
                "--out",
                str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "tables" in out
        assert "2/2 ok" in out
        assert "manifest:" in out

        run_dir = next(p for p in tmp_path.iterdir() if p.is_dir() and p.name != ".cache")
        assert main(["experiments", "validate", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "valid manifest" in out

    def test_experiments_run_second_invocation_hits_cache(self, capsys, tmp_path):
        argv = [
            "experiments", "run", "--only", "fig13",
            "--jobs", "0", "--out", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache=hit" in out
        assert "1 cache hit(s)" in out

    def test_experiments_validate_rejects_a_missing_manifest(self, capsys, tmp_path):
        assert main(["experiments", "validate", str(tmp_path)]) == 1
        assert "INVALID" in capsys.readouterr().out
