"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["prism"],
            ["range", "--structure", "S2"],
            ["shell", "--height", "50"],
            ["survey", "--nodes", "3"],
            ["pilot"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_prism(self, capsys):
        assert main(["prism", "--concrete", "UHPC"]) == 0
        out = capsys.readouterr().out
        assert "S-only window" in out
        assert "UHPC" in out

    def test_range(self, capsys):
        assert main(["range", "--structure", "S3", "--voltage", "200"]) == 0
        out = capsys.readouterr().out
        assert "Max power-up range" in out
        assert "Stations" in out

    def test_range_unknown_structure(self):
        with pytest.raises(SystemExit):
            main(["range", "--structure", "S9"])

    def test_shell(self, capsys):
        assert main(["shell", "--height", "100"]) == 0
        out = capsys.readouterr().out
        assert "SLA resin" in out
        assert "OK" in out

    def test_shell_too_tall_for_resin(self, capsys):
        main(["shell", "--height", "300"])
        out = capsys.readouterr().out
        assert "FAILS" in out  # resin gives up past ~195 m

    def test_survey(self, capsys):
        assert main(["survey", "--nodes", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Powered 3/3" in out
        assert "node  1" in out

    def test_pilot(self, capsys):
        assert main(["pilot", "--samples-per-hour", "2"]) == 0
        out = capsys.readouterr().out
        assert "storm detected in both channels: True" in out
        assert "section A" in out

    def test_export(self, capsys, tmp_path):
        assert main(
            ["export", "--directory", str(tmp_path), "--figures", "fig13"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig13.csv" in out
        assert (tmp_path / "fig13.csv").exists()


class TestExperimentsCommands:
    def test_experiments_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["experiments", "list"],
            ["experiments", "run", "--all", "--jobs", "4"],
            ["experiments", "run", "--only", "fig15", "--force", "--quick"],
            ["experiments", "validate", "some/run/dir"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_experiments_run_requires_a_selection(self):
        with pytest.raises(SystemExit):
            main(["experiments", "run"])

    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "tables" in out
        assert "seed=" in out

    def test_experiments_run_only_then_validate(self, capsys, tmp_path):
        assert main(
            [
                "experiments",
                "run",
                "--only",
                "fig13",
                "tables",
                "--jobs",
                "0",
                "--out",
                str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "tables" in out
        assert "2/2 ok" in out
        assert "manifest:" in out

        run_dir = next(p for p in tmp_path.iterdir() if p.is_dir() and p.name != ".cache")
        assert main(["experiments", "validate", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "valid manifest" in out

    def test_experiments_run_second_invocation_hits_cache(self, capsys, tmp_path):
        argv = [
            "experiments", "run", "--only", "fig13",
            "--jobs", "0", "--out", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache=hit" in out
        assert "1 cache hit(s)" in out

    def test_experiments_validate_rejects_a_missing_manifest(self, capsys, tmp_path):
        assert main(["experiments", "validate", str(tmp_path)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestObservabilityCommands:
    def _run_observed(self, tmp_path, capsys):
        assert main(
            [
                "experiments", "run", "--only", "fig13", "--quick",
                "--jobs", "0", "--obs", "--out", str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        run_dir = next(
            p for p in tmp_path.iterdir()
            if p.is_dir() and p.name != ".cache"
        )
        return run_dir, out

    def test_obs_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["experiments", "run", "--all", "--obs", "-v"],
            ["experiments", "run", "--all", "--no-obs"],
            ["experiments", "stats", "some/run/dir"],
            ["experiments", "stats", "some/run/dir", "--json"],
            ["experiments", "trace", "some/run/dir", "--out", "t.json"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_run_with_obs_points_at_the_exports(self, capsys, tmp_path):
        run_dir, out = self._run_observed(tmp_path, capsys)
        assert "metrics:" in out
        assert "trace:" in out
        assert (run_dir / "metrics.json").exists()
        assert (run_dir / "trace.json").exists()

    def test_run_verbose_shows_profile_detail(self, capsys, tmp_path):
        assert main(
            [
                "experiments", "run", "--only", "fig13", "--quick",
                "--jobs", "0", "--obs", "-v", "--out", str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "seed=" in out
        assert "key=" in out
        assert "wall=" in out and "cpu=" in out
        assert "1 fresh" in out

    def test_stats_renders_metrics_and_profiles(self, capsys, tmp_path):
        run_dir, _ = self._run_observed(tmp_path, capsys)
        assert main(["experiments", "stats", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "metrics for run" in out
        assert "counter runner.experiments.ok 1" in out
        assert "per-experiment profiles:" in out
        assert "fig13" in out

    def test_stats_json_dumps_the_snapshot(self, capsys, tmp_path):
        import json

        run_dir, _ = self._run_observed(tmp_path, capsys)
        assert main(["experiments", "stats", str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["runner.experiments.ok"] == 1.0

    def test_stats_without_obs_artifacts_fails_with_hint(self, capsys, tmp_path):
        assert main(["experiments", "stats", str(tmp_path)]) == 1
        assert "--obs" in capsys.readouterr().out

    def test_trace_validates_and_copies(self, capsys, tmp_path):
        import json

        run_dir, _ = self._run_observed(tmp_path, capsys)
        copy_path = tmp_path / "copy.json"
        assert main(["experiments", "trace", str(run_dir)]) == 0
        assert "valid chrome trace" in capsys.readouterr().out
        assert main(
            ["experiments", "trace", str(run_dir), "--out", str(copy_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(copy_path.read_text())["traceEvents"]

    def test_trace_flags_a_corrupted_export(self, capsys, tmp_path):
        run_dir, _ = self._run_observed(tmp_path, capsys)
        (run_dir / "trace.json").write_text('{"traceEvents": [{"ph": "?"}]}')
        assert main(["experiments", "trace", str(run_dir)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestFaultsFlag:
    @staticmethod
    def _write_plan(tmp_path, **rates):
        from repro.faults import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan(seed=5, **rates).to_json_file(path)
        return str(path)

    def test_survey_with_faults_reports_recovery(self, capsys, tmp_path):
        plan = self._write_plan(
            tmp_path, reply_loss_rate=0.3, brownout_rate=0.2
        )
        assert main(
            ["survey", "--nodes", "4", "--seed", "3", "--faults", plan]
        ) == 0
        out = capsys.readouterr().out
        assert "injected faults:" in out
        assert "recovery:" in out

    def test_survey_with_bad_plan_exits(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"no_such_rate": 1.0}')
        with pytest.raises(SystemExit):
            main(["survey", "--faults", str(bad)])

    def test_experiments_run_with_faults(self, capsys, tmp_path):
        plan = self._write_plan(tmp_path, reply_loss_rate=0.2)
        assert main(
            [
                "experiments", "run", "--only", "fault_sweep", "--quick",
                "--jobs", "0", "--out", str(tmp_path / "out"),
                "--faults", plan,
            ]
        ) == 0
        assert "fault_sweep" in capsys.readouterr().out

    def test_experiments_run_faults_rejected_without_acceptor(self, tmp_path):
        plan = self._write_plan(tmp_path, reply_loss_rate=0.2)
        with pytest.raises(SystemExit, match="fault_plan"):
            main(
                [
                    "experiments", "run", "--only", "fig13",
                    "--out", str(tmp_path / "out"), "--faults", plan,
                ]
            )

    def test_experiments_run_missing_plan_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="faults"):
            main(
                [
                    "experiments", "run", "--only", "fault_sweep",
                    "--out", str(tmp_path / "out"),
                    "--faults", str(tmp_path / "nope.json"),
                ]
            )

    def test_experiments_run_retries_flag_parses(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            ["experiments", "run", "--all", "--retries", "2"]
        )
        assert args.retries == 2
        assert args.faults is None
