"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["prism"],
            ["range", "--structure", "S2"],
            ["shell", "--height", "50"],
            ["survey", "--nodes", "3"],
            ["pilot"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_prism(self, capsys):
        assert main(["prism", "--concrete", "UHPC"]) == 0
        out = capsys.readouterr().out
        assert "S-only window" in out
        assert "UHPC" in out

    def test_range(self, capsys):
        assert main(["range", "--structure", "S3", "--voltage", "200"]) == 0
        out = capsys.readouterr().out
        assert "Max power-up range" in out
        assert "Stations" in out

    def test_range_unknown_structure(self):
        with pytest.raises(SystemExit):
            main(["range", "--structure", "S9"])

    def test_shell(self, capsys):
        assert main(["shell", "--height", "100"]) == 0
        out = capsys.readouterr().out
        assert "SLA resin" in out
        assert "OK" in out

    def test_shell_too_tall_for_resin(self, capsys):
        main(["shell", "--height", "300"])
        out = capsys.readouterr().out
        assert "FAILS" in out  # resin gives up past ~195 m

    def test_survey(self, capsys):
        assert main(["survey", "--nodes", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Powered 3/3" in out
        assert "node  1" in out

    def test_pilot(self, capsys):
        assert main(["pilot", "--samples-per-hour", "2"]) == 0
        out = capsys.readouterr().out
        assert "storm detected in both channels: True" in out
        assert "section A" in out

    def test_export(self, capsys, tmp_path):
        assert main(
            ["export", "--directory", str(tmp_path), "--figures", "fig13"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig13.csv" in out
        assert (tmp_path / "fig13.csv").exists()
