"""Integration tests: observability through the runner and manifests.

Covers the ``--obs`` runner path (profiles, metrics.json, trace.json,
manifest ``obs`` block), manifest schema-v2 round-trips with v1
backward compatibility, corrupt-cache telemetry, and the golden-
compatibility guarantee that instrumentation never perturbs results.
"""

import json
import os

import pytest

from repro.obs import (
    obs_enabled,
    observed,
    validate_chrome_trace,
    validate_profile,
)
from repro.runtime import (
    MANIFEST_SCHEMA,
    METRICS_FILENAME,
    SUPPORTED_MANIFEST_SCHEMAS,
    TRACE_FILENAME,
    compare_snapshots,
    golden_snapshot,
    load_manifest,
    run_experiments,
    validate_manifest,
)

from .test_experiment_goldens import (
    DEFAULT_REL_TOL,
    REGISTRY,
    REL_TOL,
    _load_golden,
)


class TestObsRun:
    def test_obs_run_exports_profiles_metrics_and_trace(self, tmp_path):
        report = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True, obs=True
        )
        assert report.ok
        assert not obs_enabled()  # scope fully restored after the run

        manifest = load_manifest(report.run_dir)
        assert manifest["schema"] == MANIFEST_SCHEMA
        (entry,) = manifest["experiments"]
        assert validate_profile(entry["profile"])
        assert entry["profile"]["wall_s"] > 0.0

        obs_block = manifest["obs"]
        assert obs_block["metrics_file"] == METRICS_FILENAME
        assert obs_block["trace_file"] == TRACE_FILENAME
        assert obs_block["spans"] >= 4  # lookup/execute/persist/experiment

        metrics = json.loads((report.run_dir / METRICS_FILENAME).read_text())
        assert metrics["run_id"] == report.run_id
        assert metrics["counters"]["runner.cache.misses"] == 1.0
        assert metrics["counters"]["runner.experiments.ok"] == 1.0
        assert metrics["histograms"]["runner.experiment.elapsed_s"]["count"] == 1

        trace = json.loads((report.run_dir / TRACE_FILENAME).read_text())
        assert validate_chrome_trace(trace) == []
        span_names = {e["name"] for e in trace["traceEvents"]}
        assert "experiment.fig13" in span_names
        assert "runner.execute" in span_names

    def test_obs_off_run_has_no_telemetry_artifacts(self, tmp_path):
        report = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        manifest = load_manifest(report.run_dir)
        assert "obs" not in manifest
        assert "profile" not in manifest["experiments"][0]
        assert not (report.run_dir / METRICS_FILENAME).exists()
        assert not (report.run_dir / TRACE_FILENAME).exists()

    def test_pool_workers_ship_their_telemetry_home(self, tmp_path):
        report = run_experiments(
            names=["fig13"], jobs=2, out_dir=tmp_path, quick=True,
            force=True, obs=True,
        )
        assert report.ok
        assert validate_profile(report.outcomes[0].profile)
        trace = json.loads((report.run_dir / TRACE_FILENAME).read_text())
        experiment_event = next(
            e for e in trace["traceEvents"] if e["name"] == "experiment.fig13"
        )
        # The experiment span was recorded inside the pool worker and
        # merged back: its pid is the worker's, not the runner's.
        assert experiment_event["pid"] != os.getpid()
        labels = {
            e["args"]["name"]
            for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert any(label.startswith("worker-") for label in labels)

    def test_cache_hits_still_carry_a_profile(self, tmp_path):
        first = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True, obs=True
        )
        assert first.fresh_ok == 1 and first.cache_hits == 0
        again = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True, obs=True
        )
        assert again.cache_hits == 1 and again.fresh_ok == 0
        (entry,) = load_manifest(again.run_dir)["experiments"]
        assert entry["cache"] == "hit"
        assert validate_profile(entry["profile"])
        metrics = json.loads((again.run_dir / METRICS_FILENAME).read_text())
        assert metrics["counters"]["runner.cache.hits"] == 1.0

    def test_corrupt_cache_entry_is_counted_and_reported(self, tmp_path):
        first = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True
        )
        key = first.outcomes[0].cache_key
        entry_path = tmp_path / ".cache" / f"{key}.json"
        assert entry_path.exists()
        entry_path.write_text("{ not json")

        again = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True, obs=True
        )
        assert again.outcomes[0].cache == "miss"
        assert not again.cache_hits
        metrics = json.loads((again.run_dir / METRICS_FILENAME).read_text())
        assert metrics["counters"]["cache.corrupt_discarded"] == 1.0
        warnings = [
            e for e in metrics["events"]["events"]
            if e["name"] == "cache.corrupt_entry"
        ]
        (event,) = warnings
        assert event["level"] == "warning"
        assert event["fields"]["key"] == key
        assert "unreadable JSON" in event["fields"]["reason"]
        assert load_manifest(again.run_dir)["obs"]["warnings"] == 1


class TestManifestCompat:
    def _fresh_manifest(self, tmp_path, obs=True):
        report = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path, quick=True, obs=obs
        )
        return json.loads((report.run_dir / "manifest.json").read_text())

    def test_v2_round_trips_with_and_without_profile(self, tmp_path):
        with_profile = self._fresh_manifest(tmp_path / "a", obs=True)
        without_profile = self._fresh_manifest(tmp_path / "b", obs=False)
        assert validate_manifest(with_profile) == []
        assert validate_manifest(without_profile) == []

    def test_v1_manifests_without_profile_still_validate(self, tmp_path):
        manifest = self._fresh_manifest(tmp_path, obs=False)
        manifest["schema"] = "repro/run-manifest/v1"
        assert "repro/run-manifest/v1" in SUPPORTED_MANIFEST_SCHEMAS
        assert validate_manifest(manifest) == []

    def test_unknown_schema_is_rejected(self, tmp_path):
        manifest = self._fresh_manifest(tmp_path, obs=False)
        manifest["schema"] = "repro/run-manifest/v99"
        assert any("schema" in p for p in validate_manifest(manifest))

    def test_malformed_profile_is_rejected(self, tmp_path):
        manifest = self._fresh_manifest(tmp_path, obs=True)
        manifest["experiments"][0]["profile"] = {"wall_s": "quick"}
        assert any("profile" in p for p in validate_manifest(manifest))

    def test_malformed_obs_block_is_rejected(self, tmp_path):
        manifest = self._fresh_manifest(tmp_path, obs=True)
        manifest["obs"] = "yes"
        assert any("obs" in p for p in validate_manifest(manifest))


@pytest.mark.parametrize("name", list(REGISTRY))
def test_obs_does_not_perturb_goldens(name):
    """Instrumented runs must produce bit-for-bit the golden physics.

    Every registered experiment executes with a live obs scope; the
    scalar snapshot must still match the checked-in golden within the
    standard tolerance.  Guards against instrumentation ever touching
    an RNG stream or reordering float accumulation.
    """
    spec = REGISTRY[name]
    golden = _load_golden(name)
    with observed() as scope:
        result = spec.execute(quick=True)
    fresh = golden_snapshot(name, result)
    problems = compare_snapshots(
        golden["scalars"], fresh, rel_tol=REL_TOL.get(name, DEFAULT_REL_TOL)
    )
    assert not problems, (
        f"{name} drifted under --obs ({len(problems)} path(s)): "
        f"{list(problems.items())[:5]}"
    )
    # The scope must not leak past its context.
    assert not obs_enabled()
    assert scope.registry.snapshot()["schema"]
