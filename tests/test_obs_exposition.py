"""Prometheus text exposition edge cases (repro/obs/metrics.py).

The /metrics scrape surface is only useful if its encoding is exactly
right in the corners: label values holding quotes/backslashes/newlines,
empty registries, histogram bucket boundaries, and snapshot merging
that round-trips without drift.
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    escape_label_value,
    prometheus_name,
    render_prometheus_text,
)
from repro.obs.metrics import prometheus_label_name


class TestEscaping:
    def test_backslash_is_escaped_first(self):
        # A backslash in the input must not double-escape the quote
        # escape that follows it.
        assert escape_label_value(r'a\"b') == r'a\\\"b'

    def test_quote(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline(self):
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_all_three_in_one_rendered_line(self):
        registry = MetricsRegistry()
        registry.counter("evil").labels(path='a\\b"c\nd').inc()
        text = render_prometheus_text(registry.snapshot())
        assert 'evil{path="a\\\\b\\"c\\nd"} 1' in text

    def test_plain_values_pass_through(self):
        assert escape_label_value("/series?x=1") == "/series?x=1"


class TestNameSanitization:
    def test_dots_become_underscores(self):
        assert prometheus_name("campaign.epoch_wall_s") == "campaign_epoch_wall_s"

    def test_leading_digit_gains_underscore(self):
        assert prometheus_name("9lives") == "_9lives"

    def test_colon_is_legal(self):
        assert prometheus_name("ns:metric") == "ns:metric"

    def test_label_name_sanitized(self):
        assert prometheus_label_name("http.status") == "http_status"
        assert prometheus_label_name("2xx") == "_2xx"


class TestRendering:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_empty_snapshot_kinds_render_empty(self):
        assert render_prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""

    def test_type_lines_and_sorted_families(self):
        registry = MetricsRegistry()
        registry.gauge("b.gauge").set(2.0)
        registry.counter("a.counter").inc(3)
        text = render_prometheus_text(registry.snapshot())
        lines = text.splitlines()
        assert lines[0] == "# TYPE a_counter counter"
        assert lines[1] == "a_counter 3"
        assert lines[2] == "# TYPE b_gauge gauge"
        assert lines[3] == "b_gauge 2"

    def test_deterministic_byte_for_byte(self):
        registry = MetricsRegistry()
        registry.counter("x").labels(b="2").inc()
        registry.counter("x").labels(a="1").inc()
        snap = registry.snapshot()
        assert render_prometheus_text(snap) == render_prometheus_text(snap)

    def test_nonfinite_values(self):
        registry = MetricsRegistry()
        registry.gauge("pos").set(float("inf"))
        registry.gauge("neg").set(float("-inf"))
        registry.gauge("nan").set(float("nan"))
        text = render_prometheus_text(registry.snapshot())
        assert "pos +Inf" in text
        assert "neg -Inf" in text
        assert "nan NaN" in text

    def test_trailing_newline_present_when_nonempty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert render_prometheus_text(registry.snapshot()).endswith("\n")


class TestHistogramBuckets:
    def test_boundary_value_counts_into_its_bucket(self):
        # Prometheus `le` is inclusive: an observation exactly on a
        # bound lands in that bound's bucket.
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)   # le="1"
        hist.observe(1.5)   # le="2"
        hist.observe(2.5)   # +Inf overflow
        text = render_prometheus_text(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 5" in text
        assert "h_count 3" in text

    def test_buckets_are_cumulative_and_ordered(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        lines = [
            line for line in
            render_prometheus_text(registry.snapshot()).splitlines()
            if line.startswith("h_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts) == [1, 2, 3, 4]
        assert lines[-1].startswith('h_bucket{le="+Inf"}')

    def test_bucketless_summary_falls_back_to_single_inf_bucket(self):
        # A merged/foreign snapshot may carry histograms without bucket
        # detail; exposition still emits a valid single-bucket family.
        snapshot = {
            "histograms": {"h": {"count": 4, "sum": 2.0, "buckets": []}}
        }
        text = render_prometheus_text(snapshot)
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_sum 2" in text
        assert "h_count 4" in text

    def test_labeled_histogram_keeps_labels_on_every_sample(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).labels(path="/x").observe(0.5)
        text = render_prometheus_text(registry.snapshot())
        assert 'lat_bucket{path="/x",le="1"} 1' in text
        assert 'lat_sum{path="/x"} 0.5' in text
        assert 'lat_count{path="/x"} 1' in text


class TestMergeIdempotence:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(7)
        registry.counter("req").labels(path="/series", status="200").inc(2)
        registry.gauge("rss").set(123.5)
        hist = registry.histogram("lat")  # default buckets, so a merge
        for v in (0.004, 0.07, 2.0):      # target rebuilds identically
            hist.observe(v)
        return registry

    def test_merge_into_empty_reproduces_snapshot(self):
        source = self._populated()
        snap = source.snapshot()
        target = MetricsRegistry()
        target.merge_snapshot(snap)
        assert target.snapshot() == snap

    def test_merge_after_snapshot_is_stable_through_rounds(self):
        # snapshot -> merge -> snapshot -> merge must not drift: the
        # second round-trip reproduces the first's bytes exactly.
        snap = self._populated().snapshot()
        once = MetricsRegistry()
        once.merge_snapshot(snap)
        twice = MetricsRegistry()
        twice.merge_snapshot(once.snapshot())
        assert twice.snapshot() == snap
        assert render_prometheus_text(twice.snapshot()) == \
            render_prometheus_text(snap)

    def test_merge_twice_doubles_counters_not_gauges(self):
        snap = self._populated().snapshot()
        target = MetricsRegistry()
        target.merge_snapshot(snap)
        target.merge_snapshot(snap)
        merged = target.snapshot()
        assert merged["counters"]["jobs"] == 14
        assert merged["gauges"]["rss"] == 123.5
        assert merged["histograms"]["lat"]["count"] == 6

    def test_histogram_minmax_survive_merge(self):
        snap = self._populated().snapshot()
        target = MetricsRegistry()
        target.merge_snapshot(snap)
        summary = target.snapshot()["histograms"]["lat"]
        assert summary["min"] == pytest.approx(0.004)
        assert summary["max"] == pytest.approx(2.0)
