"""Unit tests for the result-export module."""

import csv
import json

import pytest

from repro.reporting import (
    EXPORTERS,
    ReportingError,
    export_all,
    fig12_rows,
    fig13_rows,
    write_csv,
    write_json,
)


class TestWriters:
    def test_csv_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_csv(tmp_path / "out.csv", rows)
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert len(read) == 2
        assert read[0]["a"] == "1"
        assert float(read[1]["b"]) == 4.5

    def test_json_round_trip(self, tmp_path):
        rows = [{"x": "hello", "y": 7}]
        path = write_json(tmp_path / "out.json", rows)
        assert json.loads(path.read_text()) == rows

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nested" / "out.csv", [{"a": 1}])
        assert path.exists()

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ReportingError):
            write_csv(tmp_path / "out.csv", [])

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ReportingError):
            write_csv(tmp_path / "out.csv", [{"a": 1}, {"b": 2}])


class TestFlatteners:
    def test_fig12_rows_cover_all_structures(self):
        rows = fig12_rows()
        structures = {row["structure"] for row in rows}
        assert "S3 common wall" in structures
        assert "PAB pool 1" in structures
        assert all(row["range_m"] >= 0.0 for row in rows)

    def test_fig13_rows_shape(self):
        rows = fig13_rows()
        assert rows[0]["bitrate_bps"] == 0.0
        assert all(row["power_w"] > 0.0 for row in rows)

    def test_all_exporters_produce_rows(self):
        for figure, exporter in EXPORTERS.items():
            rows = exporter()
            assert rows, figure
            assert isinstance(rows[0], dict), figure


class TestExportAll:
    def test_selected_figures(self, tmp_path):
        written = export_all(tmp_path, figures=["fig13", "fig14"])
        names = sorted(p.name for p in written)
        assert names == ["fig13.csv", "fig14.csv"]
        for path in written:
            assert path.exists()

    def test_json_format(self, tmp_path):
        written = export_all(tmp_path, figures=["fig13"], fmt="json")
        assert written[0].suffix == ".json"
        assert json.loads(written[0].read_text())

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ReportingError):
            export_all(tmp_path, figures=["fig99"])

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ReportingError):
            export_all(tmp_path, fmt="xml")
