"""Unit tests for the receiver DSP chain."""

import math

import numpy as np
import pytest

from repro.errors import DecodingError
from repro.phy import dsp

SAMPLE_RATE = 1e6


def tone(frequency, duration=0.01, amplitude=1.0, sample_rate=SAMPLE_RATE):
    t = np.arange(int(duration * sample_rate)) / sample_rate
    return amplitude * np.sin(2 * np.pi * frequency * t)


class TestCarrierEstimation:
    def test_finds_a_pure_tone(self):
        estimate = dsp.estimate_carrier(tone(230e3), SAMPLE_RATE)
        assert estimate == pytest.approx(230e3, rel=1e-3)

    def test_sub_bin_accuracy(self):
        # An off-grid tone: parabolic interpolation beats bin resolution.
        estimate = dsp.estimate_carrier(tone(230_437.0), SAMPLE_RATE)
        assert estimate == pytest.approx(230_437.0, abs=40.0)

    def test_picks_the_strongest(self):
        mixed = tone(230e3) + 0.2 * tone(120e3)
        estimate = dsp.estimate_carrier(mixed, SAMPLE_RATE)
        assert estimate == pytest.approx(230e3, rel=1e-3)

    def test_ignores_dc(self):
        waveform = tone(50e3) + 10.0
        estimate = dsp.estimate_carrier(waveform, SAMPLE_RATE)
        assert estimate == pytest.approx(50e3, rel=1e-2)

    def test_rejects_tiny_input(self):
        with pytest.raises(DecodingError):
            dsp.estimate_carrier(np.ones(4), SAMPLE_RATE)


class TestDownconversion:
    def test_recovers_am_envelope(self):
        # 230 kHz carrier AM-modulated by a 2 kHz square wave.
        t = np.arange(int(0.01 * SAMPLE_RATE)) / SAMPLE_RATE
        square = (np.sin(2 * np.pi * 2e3 * t) > 0).astype(float)
        waveform = (0.5 + 0.5 * square) * np.sin(2 * np.pi * 230e3 * t)
        baseband = dsp.downconvert(waveform, SAMPLE_RATE, 230e3, bandwidth=10e3)
        envelope = np.abs(baseband)
        high = np.percentile(envelope, 90)
        low = np.percentile(envelope, 10)
        assert high > 1.6 * low

    def test_rejects_out_of_band_carrier(self):
        with pytest.raises(DecodingError):
            dsp.downconvert(tone(100e3), SAMPLE_RATE, 600e3, 10e3)


class TestFilters:
    def test_lowpass_removes_high_tone(self):
        mixed = tone(5e3) + tone(200e3)
        filtered = dsp.lowpass(mixed, SAMPLE_RATE, 20e3)
        residual = dsp.bandpass(filtered, SAMPLE_RATE, 150e3, 250e3)
        assert np.std(residual) < 0.05 * np.std(mixed)

    def test_bandpass_keeps_in_band(self):
        x = tone(230e3)
        kept = dsp.bandpass(x, SAMPLE_RATE, 200e3, 260e3)
        assert np.std(kept) == pytest.approx(np.std(x), rel=0.1)

    def test_bandpass_rejects_bad_band(self):
        with pytest.raises(DecodingError):
            dsp.bandpass(tone(10e3), SAMPLE_RATE, 300e3, 200e3)


class TestEnvelope:
    def test_constant_tone_envelope(self):
        env = dsp.envelope(tone(50e3))
        middle = env[100:-100]
        assert np.all(np.abs(middle - 1.0) < 0.05)

    def test_rejects_empty(self):
        with pytest.raises(DecodingError):
            dsp.envelope(np.zeros(0))


class TestSpectrumAndSnr:
    def test_power_spectrum_peak_location(self):
        freqs, psd = dsp.power_spectrum(tone(230e3), SAMPLE_RATE)
        assert freqs[np.argmax(psd)] == pytest.approx(230e3, rel=1e-2)

    def test_measured_snr_tracks_noise(self):
        rng = np.random.default_rng(0)
        signal = tone(230e3, duration=0.05)
        quiet = signal + rng.normal(0.0, 0.01, signal.size)
        loud = signal + rng.normal(0.0, 0.1, signal.size)
        band = (225e3, 235e3)
        noise_band = (300e3, 400e3)
        snr_quiet = dsp.measure_snr_db(quiet, SAMPLE_RATE, band, noise_band)
        snr_loud = dsp.measure_snr_db(loud, SAMPLE_RATE, band, noise_band)
        assert snr_quiet > snr_loud + 10.0

    def test_snr_rejects_empty_band(self):
        with pytest.raises(DecodingError):
            dsp.measure_snr_db(tone(10e3, duration=1e-4), SAMPLE_RATE,
                               (1.0, 2.0), (3.0, 4.0))

    def test_remove_dc(self):
        x = np.ones(100) * 5.0
        assert np.mean(dsp.remove_dc(x)) == pytest.approx(0.0)
