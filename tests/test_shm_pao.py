"""Unit tests for PAO health grading (Table 2)."""

import math

import pytest

from repro.shm import (
    GRADES,
    PAO_THRESHOLDS,
    PaoError,
    collapse_risk,
    grade,
    grade_sections,
    is_safe,
    pedestrian_area_occupancy,
    worst_grade,
)


class TestPao:
    def test_definition(self):
        assert pedestrian_area_occupancy(100.0, 25) == pytest.approx(4.0)

    def test_empty_deck_is_infinite(self):
        assert math.isinf(pedestrian_area_occupancy(100.0, 0))

    def test_rejects_bad_inputs(self):
        with pytest.raises(PaoError):
            pedestrian_area_occupancy(0.0, 5)
        with pytest.raises(PaoError):
            pedestrian_area_occupancy(100.0, -1)


class TestTable2Grades:
    def test_hong_kong_thresholds(self):
        # The pilot bridge's region.
        assert grade(4.0, "hong_kong") == "A"
        assert grade(3.0, "hong_kong") == "B"
        assert grade(2.0, "hong_kong") == "C"
        assert grade(1.0, "hong_kong") == "D"
        assert grade(0.6, "hong_kong") == "E"
        assert grade(0.3, "hong_kong") == "F"

    def test_united_states_thresholds(self):
        assert grade(4.0, "united_states") == "A"
        assert grade(3.0, "united_states") == "B"
        assert grade(0.4, "united_states") == "F"

    def test_bangkok_more_tolerant(self):
        # Bangkok's grade-A floor (2.38) sits below Hong Kong's (3.25).
        assert grade(2.5, "bangkok") == "A"
        assert grade(2.5, "hong_kong") == "B"

    def test_all_regions_have_five_bounds(self):
        for region, bounds in PAO_THRESHOLDS.items():
            assert set(bounds) == {"A", "B", "C", "D", "E"}
            values = [bounds[g] for g in ("A", "B", "C", "D", "E")]
            assert values == sorted(values, reverse=True), region

    def test_unknown_region(self):
        with pytest.raises(PaoError):
            grade(2.0, "atlantis")

    def test_empty_deck_grades_a(self):
        assert grade(float("inf")) == "A"


class TestHeadlineRules:
    def test_safe_above_2(self):
        # "when H > 2, the bridge is in good health".
        assert is_safe(2.5)
        assert not is_safe(2.0)

    def test_collapse_at_or_below_1(self):
        # "when H <= 1, the bridge is overloaded and will collapse".
        assert collapse_risk(1.0)
        assert collapse_risk(0.5)
        assert not collapse_risk(1.5)


class TestSectionGrading:
    def test_grades_every_section(self):
        areas = {"A": 75.8, "B": 75.8}
        counts = {"A": 10, "B": 50}
        speeds = {"A": 1.3, "B": 0.8}
        healths = grade_sections(areas, counts, speeds)
        assert [h.section for h in healths] == ["A", "B"]
        assert healths[0].grade < healths[1].grade  # fewer people -> better

    def test_mismatched_keys_raise(self):
        with pytest.raises(PaoError):
            grade_sections({"A": 75.8}, {"B": 10}, {"A": 1.0})

    def test_worst_grade(self):
        areas = {"A": 75.8, "B": 75.8, "C": 75.8}
        counts = {"A": 2, "B": 80, "C": 10}
        speeds = {s: 1.0 for s in areas}
        healths = grade_sections(areas, counts, speeds)
        assert worst_grade(healths) == max(
            (h.grade for h in healths), key=GRADES.index
        )

    def test_worst_grade_rejects_empty(self):
        with pytest.raises(PaoError):
            worst_grade([])

    def test_healthy_flag(self):
        areas = {"A": 75.8}
        healths = grade_sections(areas, {"A": 5}, {"A": 1.2})
        assert healths[0].healthy  # 15 m^2/ped is grade A
