"""Layer-by-layer hardening tests against injected storage faults.

Each write path gets its contract pinned: the epoch log and segment
appends heal their torn tails before retrying (no garbage-merged lines
or frames), atomic JSON writes restart from a fresh temp file, the
verified result write catches a silently dropped rename, a full disk
degrades the store export while the campaign's result bytes stay
identical to a clean run's, and a failing heartbeat never kills an
otherwise healthy worker.
"""

import dataclasses
import errno
import json
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignConfig
from repro.campaign.driver import (
    Campaign,
    RESULT_FILENAME,
    campaign_status,
    result_hash,
)
from repro.campaign.log import EpochLog
from repro.errors import SegmentError
from repro.faults.io import (
    IoFaultInjector,
    IoFaultPlan,
    TMP_SUFFIX,
    clear_io_faults,
    io_faults,
)
from repro.fleet.worker import HEARTBEAT_FILENAME, write_heartbeat
from repro.runtime.serialize import (
    read_json,
    write_json_atomic,
    write_json_atomic_verified,
)
from repro.store import TelemetryStore
from repro.store.keys import SeriesKey

TINY = CampaignConfig(epochs=2, nodes=2, hours_per_epoch=6, seed=11)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    clear_io_faults()
    yield
    clear_io_faults()


class TestAtomicJsonUnderFaults:
    def test_torn_writes_retried_from_fresh_temp(self, tmp_path):
        path = tmp_path / "out.json"
        with io_faults(IoFaultPlan(seed=2, torn_write_rate=0.25)) as injector:
            for i in range(10):
                write_json_atomic(path, {"i": i, "blob": "x" * 200})
        assert injector.counts.get("torn_writes", 0) > 0
        assert read_json(path) == {"i": 9, "blob": "x" * 200}
        assert not list(tmp_path.glob("*" + TMP_SUFFIX))  # no leaked temps

    def test_verified_write_catches_dropped_rename(self, tmp_path):
        path = tmp_path / "result.json"
        # A dropped first rename: plain write_json_atomic would
        # "succeed" with no file on disk; the verified variant reads
        # back, notices, and rewrites.
        with io_faults(IoFaultPlan(seed=1, drop_rename_rate=0.4)) as injector:
            write_json_atomic_verified(path, {"final": True})
        assert injector.counts.get("renames_dropped", 0) > 0
        assert read_json(path) == {"final": True}

    def test_exhausted_retries_stay_loud(self, tmp_path):
        with io_faults(IoFaultPlan(seed=3, eio_fsync_rate=1.0)):
            with pytest.raises(OSError) as err:
                write_json_atomic(tmp_path / "x.json", {})
        assert err.value.errno == errno.EIO


class TestEpochLogUnderFaults:
    def test_torn_appends_healed_never_merged(self, tmp_path):
        log = EpochLog(tmp_path / "epochs.jsonl")
        records = [{"epoch": i, "coverage": i / 10} for i in range(30)]
        with io_faults(IoFaultPlan(seed=4, torn_write_rate=0.2)) as injector:
            for record in records:
                log.append(record)
        assert injector.counts.get("torn_writes", 0) > 0
        recovered = log.recover()
        assert [r["epoch"] for r in recovered] == list(range(30))
        assert recovered == records


class TestSegmentUnderFaults:
    KEY = SeriesKey(building="b", wall="w", node_id=0, metric="strain")

    def test_torn_block_appends_healed(self, tmp_path):
        store = TelemetryStore(tmp_path / "store")
        with io_faults(IoFaultPlan(seed=5, torn_write_rate=0.3)) as injector:
            for batch in range(10):
                t = np.arange(8, dtype=np.float64) + batch * 8
                store.append(self.KEY, t, t * 0.5)
        assert injector.counts.get("torn_writes", 0) > 0
        data = store.read(self.KEY)
        expected = np.arange(80, dtype=np.float64)
        assert np.array_equal(data["t"], expected)
        assert np.array_equal(data["value"], expected * 0.5)

    def test_bitrot_surfaces_as_segment_error_not_retry(self, tmp_path):
        store = TelemetryStore(tmp_path / "store")
        t = np.arange(64, dtype=np.float64)
        store.append(self.KEY, t, t)
        # A flipped bit trips the block CRC: that is corruption, not a
        # transient error, so it must NOT be retried -- it surfaces as a
        # loud SegmentError and the segment is quarantined.
        with io_faults(IoFaultPlan(seed=6, bitrot_read_rate=1.0)) as injector:
            with pytest.raises(SegmentError):
                store.read(self.KEY)
        assert injector.counts.get("bitrot_reads", 0) >= 1
        assert list(store.quarantine_dir.iterdir())


class _StoreOnlyEnospc(IoFaultInjector):
    """ENOSPC on every write under one directory; clean elsewhere.

    Models the deployment shape the degrade path exists for: the store
    lives on a separate (full) volume while the campaign state disk is
    healthy.
    """

    def __init__(self, store_dir):
        super().__init__(IoFaultPlan(seed=0, enospc_write_rate=1.0))
        self._store_dir = str(store_dir)

    def write(self, handle, data):
        path = str(getattr(handle, "name", "") or "")
        if self._store_dir in path:
            self.record("enospc")
            raise OSError(errno.ENOSPC, "injected ENOSPC", path)
        handle.write(data)


class TestCampaignExportDegrade:
    def test_enospc_degrades_export_not_result(self, tmp_path, monkeypatch):
        clean = Campaign(TINY, state_dir=tmp_path / "clean").run()
        store_dir = tmp_path / "drill-store"
        campaign = Campaign(
            TINY, state_dir=tmp_path / "drill", store_dir=store_dir
        )
        # Installed after construction: the store marker was written on
        # a healthy disk, then the volume "fills up".
        monkeypatch.setattr(
            "repro.faults.io._active", _StoreOnlyEnospc(store_dir)
        )
        outcome = campaign.run()
        assert campaign.export_failures == list(range(TINY.epochs))
        # The campaign kept computing and its result bytes are exactly
        # the clean run's -- the export is additive, never load-bearing.
        assert result_hash(outcome.result) == result_hash(clean.result)

        monkeypatch.setattr("repro.faults.io._active", None)
        status = campaign_status(tmp_path / "drill")
        assert status["export_degraded_epochs"] == campaign.export_failures
        # The degradation flag lives in the audit log only, never in the
        # hashed result payload.
        payload = read_json(tmp_path / "drill" / RESULT_FILENAME)
        assert "export_degraded" not in json.dumps(payload)

    def test_degraded_export_heals_offline_from_result(self, tmp_path, monkeypatch):
        from repro.store.ingest import ingest_campaign_result

        store_dir = tmp_path / "store"
        campaign = Campaign(
            TINY, state_dir=tmp_path / "state", store_dir=store_dir
        )
        monkeypatch.setattr(
            "repro.faults.io._active", _StoreOnlyEnospc(store_dir)
        )
        campaign.run()
        assert len(campaign.export_failures) == TINY.epochs
        monkeypatch.setattr("repro.faults.io._active", None)

        # The disk recovered: the recorded result re-ingests offline
        # (the ``store ingest`` verb), healing the lost series.
        store = TelemetryStore(store_dir, create=False)
        with store.writer() as writer:
            rows = ingest_campaign_result(
                writer, tmp_path / "state" / RESULT_FILENAME
            )
        assert rows > 0
        assert len(store.keys()) > 0


class TestHeartbeatUnderFaults:
    def test_heartbeat_failure_swallowed(self, tmp_path):
        with io_faults(IoFaultPlan(seed=9, enospc_write_rate=1.0)):
            write_heartbeat(tmp_path, "b001", 3)  # must not raise
        assert not (tmp_path / HEARTBEAT_FILENAME).exists()
        assert not list(tmp_path.glob("*" + TMP_SUFFIX))

    def test_dropped_rename_heartbeat_swallowed(self, tmp_path):
        with io_faults(IoFaultPlan(seed=9, drop_rename_rate=1.0)):
            write_heartbeat(tmp_path, "b001", 3)
        assert not (tmp_path / HEARTBEAT_FILENAME).exists()


class TestStaleTempReclaim:
    def test_campaign_init_sweeps_state_dir(self, tmp_path):
        state_dir = tmp_path / "state"
        (state_dir / "checkpoints").mkdir(parents=True)
        leak = state_dir / "checkpoints" / f"ck.json{TMP_SUFFIX}"
        leak.write_text("{")
        Campaign(TINY, state_dir=state_dir)
        assert not leak.exists()

    def test_store_writer_sweeps_locked_partition(self, tmp_path):
        store = TelemetryStore(tmp_path / "store")
        key = SeriesKey(building="b9", wall="w", node_id=0, metric="m")
        partition = store.segments_dir / "b9" / "w"
        partition.mkdir(parents=True)
        leak = partition / f"raw.seg{TMP_SUFFIX}"
        leak.write_text("junk")
        with store.writer() as writer:
            writer.add(key, np.array([0.0]), np.array([1.0]))
        assert not leak.exists()

    def test_store_creation_sweeps_root_marker_temp(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        leak = root / f"store.json{TMP_SUFFIX}"
        leak.write_text("{")
        TelemetryStore(root)
        assert not leak.exists()
