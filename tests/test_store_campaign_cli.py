"""Integration: campaign --store export, resume healing, and CLI verbs."""

import json

import numpy as np
import pytest

from repro.campaign import (
    STORE_BUILDING,
    STORE_WALL,
    Campaign,
    CampaignConfig,
    result_hash,
    resume_campaign,
    run_campaign,
)
from repro.cli import main
from repro.store import QueryEngine, SeriesKey, TelemetryStore

CONFIG = dict(
    epochs=4,
    nodes=3,
    hours_per_epoch=24,
    seed=11,
    epoch_timeout_s=0.0,
)


class TestCampaignExport:
    def test_structure_series_match_result(self, tmp_path):
        outcome = run_campaign(
            CampaignConfig(**CONFIG), store_dir=tmp_path / "tele"
        )
        store = TelemetryStore(tmp_path / "tele", create=False)
        accel = store.read(
            SeriesKey(STORE_BUILDING, STORE_WALL, 0, "acceleration")
        )
        assert np.array_equal(accel["t"], outcome.result.hours)
        assert np.array_equal(accel["value"], outcome.result.acceleration)
        stress = store.read(
            SeriesKey(STORE_BUILDING, STORE_WALL, 0, "stress_mpa")
        )
        assert np.array_equal(stress["value"], outcome.result.stress_mpa)

    def test_survey_reports_exported_per_epoch(self, tmp_path):
        run_campaign(CampaignConfig(**CONFIG), store_dir=tmp_path / "tele")
        store = TelemetryStore(tmp_path / "tele", create=False)
        strain_keys = [k for k in store.keys() if k.metric == "strain"]
        assert strain_keys, "no capsule strain series exported"
        for key in strain_keys:
            t = store.read(key)["t"]
            # Survey samples are stamped at epoch boundaries.
            assert set(t) <= {
                float(e * CONFIG["hours_per_epoch"])
                for e in range(CONFIG["epochs"])
            }

    def test_result_identical_with_and_without_store(self, tmp_path):
        with_store = run_campaign(
            CampaignConfig(**CONFIG), store_dir=tmp_path / "tele"
        )
        without = run_campaign(CampaignConfig(**CONFIG))
        assert result_hash(with_store.result) == result_hash(without.result)


class _Crash(Exception):
    pass


class TestResumeHealsStore:
    def test_replayed_epochs_not_duplicated(self, tmp_path):
        # Reference: uninterrupted run with a store.
        ref = run_campaign(
            CampaignConfig(**CONFIG), store_dir=tmp_path / "ref"
        )

        # Crashed run: dies at epoch 3 with checkpoints lagging the
        # store (interval 2), so epoch 2's exports must be truncated
        # and re-exported on resume.
        def crash(epoch):
            if epoch == 3:
                raise _Crash

        config = CampaignConfig(**CONFIG, checkpoint_interval=2)
        with pytest.raises(_Crash):
            Campaign(
                config, state_dir=tmp_path / "state",
                epoch_hook=crash, store_dir=tmp_path / "tele",
            ).run()
        outcome = resume_campaign(
            tmp_path / "state", store_dir=tmp_path / "tele"
        )
        assert outcome.completed
        assert result_hash(outcome.result) == result_hash(ref.result)

        healed = TelemetryStore(tmp_path / "tele", create=False)
        reference = TelemetryStore(tmp_path / "ref", create=False)
        assert healed.keys() == reference.keys()
        for key in reference.keys():
            a, b = reference.read(key), healed.read(key)
            assert np.array_equal(a["t"], b["t"]), key
            assert np.array_equal(a["value"], b["value"]), key


@pytest.fixture()
def cli_store(tmp_path):
    """A store populated through the real CLI campaign verb."""
    store_dir = tmp_path / "tele"
    code = main([
        "campaign", "run",
        "--state-dir", str(tmp_path / "state"),
        "--store", str(store_dir),
        "--epochs", "3", "--nodes", "3",
        "--hours-per-epoch", "24", "--epoch-timeout-s", "0",
    ])
    assert code == 0
    return store_dir


class TestCliVerbs:
    def test_compact_query_stats(self, cli_store, capsys):
        assert main(["store", "compact", "--store", str(cli_store)]) == 0
        capsys.readouterr()
        assert main([
            "store", "query", "--store", str(cli_store),
            "--metric", "acceleration", "--agg", "count", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] == 72.0
        assert main(["store", "stats", "--store", str(cli_store)]) == 0
        out = capsys.readouterr().out
        assert "acceleration" in out and "series" in out

    def test_query_rollup_matches_engine(self, cli_store, capsys):
        main(["store", "compact", "--store", str(cli_store)])
        capsys.readouterr()
        assert main([
            "store", "query", "--store", str(cli_store),
            "--metric", "stress_mpa", "--agg", "mean",
            "--resolution", "daily", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        engine = QueryEngine(TelemetryStore(cli_store, create=False))
        want = engine.aggregate("stress_mpa", "mean", resolution="daily")
        assert payload["value"] == pytest.approx(want["value"])

    def test_health_verb(self, cli_store, capsys):
        assert main([
            "store", "health", "--store", str(cli_store),
            "--building", STORE_BUILDING, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == STORE_BUILDING
        assert [w["wall"] for w in payload["walls"]] == [STORE_WALL]

    def test_ingest_verb_round_trips_result(self, tmp_path, capsys):
        state_dir = tmp_path / "state"
        assert main([
            "campaign", "run", "--state-dir", str(state_dir),
            "--epochs", "2", "--nodes", "2",
            "--hours-per-epoch", "12", "--epoch-timeout-s", "0",
        ]) == 0
        store_dir = tmp_path / "tele"
        assert main([
            "store", "ingest", "--store", str(store_dir),
            str(state_dir / "result.json"),
        ]) == 0
        store = TelemetryStore(store_dir, create=False)
        result = json.loads((state_dir / "result.json").read_text())
        accel = store.read(
            SeriesKey(STORE_BUILDING, STORE_WALL, 0, "acceleration")
        )
        assert accel["value"].tolist() == result["result"]["acceleration"]

    def test_read_only_verbs_refuse_missing_store(self, tmp_path):
        for verb in (["compact"], ["stats"], ["query", "--metric", "x"]):
            with pytest.raises(SystemExit):
                main(["store", *verb, "--store", str(tmp_path / "ghost")])

    def test_run_rejects_store_clash_free(self, tmp_path):
        # --store without --state-dir still exports (in-memory campaign).
        store_dir = tmp_path / "tele"
        assert main([
            "campaign", "run", "--store", str(store_dir),
            "--epochs", "2", "--nodes", "2",
            "--hours-per-epoch", "12", "--epoch-timeout-s", "0",
        ]) == 0
        assert TelemetryStore(store_dir, create=False).keys()
