"""Tests for the fault-injection subsystem and the hardened stack above it.

Covers the FaultPlan/FaultInjector contracts, then the graceful-
degradation guarantees the issue demands: a session with every node
dark, nodes dying mid-round, and retry exhaustion under a corrupt
channel must all come back as partial *results* (with the obs counters
telling the story), never as uncaught ProtocolErrors.
"""

import math

import pytest

from repro.acoustics import StructureGeometry
from repro.errors import FaultConfigError, FaultPlanError
from repro.faults import (
    FAULT_PLAN_SCHEMA,
    FaultInjector,
    FaultPlan,
    RATE_FIELDS,
    ber_from_snr_db,
    plan_from_link_budget,
)
from repro.link import PlacedNode, PowerUpLink, WallSession
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment
from repro.obs import observed
from repro.protocol import NodeStateMachine, TdmaInventory


def make_sm_nodes(count, seed=0):
    return [
        NodeStateMachine(
            node_id=i + 1,
            read_sensor=lambda channel, i=i: 20.0 + i,
            seed=seed + i,
        )
        for i in range(count)
    ]


def make_budget(length=8.0):
    wall = StructureGeometry(
        "fault wall", length=length, thickness=0.20,
        medium=get_concrete("NC").medium,
    )
    return PowerUpLink(wall)


def make_placed(distances, seed=0):
    return [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=i + 1,
                environment=Environment(temperature=20.0 + i),
                seed=seed + i,
            ),
            distance=d,
        )
        for i, d in enumerate(distances)
    ]


class TestFaultPlan:
    def test_defaults_are_inactive(self):
        assert not FaultPlan().active
        assert not FaultPlan.none().active

    def test_any_rate_makes_it_active(self):
        for name in RATE_FIELDS:
            assert FaultPlan(**{name: 0.1}).active, name

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_rejects_out_of_range_rates(self, bad):
        with pytest.raises(FaultConfigError):
            FaultPlan(uplink_ber=bad)

    def test_rejects_non_numeric_rate_and_seed(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(brownout_rate="lots")
        with pytest.raises(FaultConfigError):
            FaultPlan(seed=1.5)

    def test_scaled_multiplies_and_clamps(self):
        plan = FaultPlan(uplink_ber=0.4, reply_loss_rate=0.1)
        doubled = plan.scaled(2.0)
        assert doubled.uplink_ber == pytest.approx(0.8)
        assert doubled.reply_loss_rate == pytest.approx(0.2)
        assert plan.scaled(10.0).uplink_ber == 1.0  # clamped
        assert not plan.scaled(0.0).active
        with pytest.raises(FaultConfigError):
            plan.scaled(-1.0)

    def test_dict_round_trip(self):
        plan = FaultPlan(seed=9, downlink_ber=0.01, brownout_rate=0.2)
        payload = plan.to_dict()
        assert payload["schema"] == FAULT_PLAN_SCHEMA
        assert FaultPlan.from_dict(payload) == plan

    def test_from_dict_rejects_unknown_fields_and_schema(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.from_dict({"uplink_berr": 0.1})
        with pytest.raises(FaultConfigError):
            FaultPlan.from_dict({"schema": "repro/fault-plan/v99"})
        with pytest.raises(FaultConfigError):
            FaultPlan.from_dict([1, 2, 3])

    def test_json_file_round_trip(self, tmp_path):
        plan = FaultPlan(seed=3, reply_loss_rate=0.25)
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        assert FaultPlan.from_json_file(path) == plan

    def test_json_file_errors_are_config_errors(self, tmp_path):
        with pytest.raises(FaultConfigError):
            FaultPlan.from_json_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultConfigError):
            FaultPlan.from_json_file(bad)


class TestFaultPlanDomainErrors:
    """``scaled()``/rate validation raises the dedicated FaultPlanError.

    ``min(1.0, nan)`` is 1.0 in Python: an unvalidated NaN intensity
    would silently saturate every rate into a plausible-looking
    catastrophic plan.  These inputs must fail loudly instead.
    """

    @pytest.mark.parametrize(
        "bad",
        [float("nan"), float("inf"), float("-inf"), -0.5, -1e-9],
        ids=["nan", "inf", "-inf", "negative", "tiny-negative"],
    )
    def test_scaled_rejects_bad_intensities(self, bad):
        plan = FaultPlan(uplink_ber=0.2)
        with pytest.raises(FaultPlanError):
            plan.scaled(bad)

    @pytest.mark.parametrize(
        "bad", ["2.0", None, True, [2.0]],
        ids=["str", "none", "bool", "list"],
    )
    def test_scaled_rejects_non_numbers(self, bad):
        plan = FaultPlan(uplink_ber=0.2)
        with pytest.raises(FaultPlanError):
            plan.scaled(bad)

    def test_nan_never_saturates_into_a_plausible_plan(self):
        # The failure mode the validation exists for: without it, a NaN
        # intensity would clamp every rate to exactly 1.0.
        plan = FaultPlan(uplink_ber=0.2, brownout_rate=0.1)
        try:
            scaled = plan.scaled(float("nan"))
        except FaultPlanError:
            return  # the required outcome
        pytest.fail(f"NaN intensity produced a plan: {scaled}")

    @pytest.mark.parametrize("bad", [-0.1, 1.0000001, float("nan")])
    def test_rate_validation_uses_the_plan_error_too(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan(stuck_sensor_rate=bad)

    def test_plan_error_is_a_config_error(self):
        # Existing except-FaultConfigError handlers must keep catching.
        assert issubclass(FaultPlanError, FaultConfigError)
        with pytest.raises(FaultConfigError):
            FaultPlan(uplink_ber=0.5).scaled(float("inf"))

    def test_valid_intensities_still_work(self):
        plan = FaultPlan(uplink_ber=0.25)
        assert plan.scaled(2).uplink_ber == pytest.approx(0.5)  # int is fine
        assert plan.scaled(0.0).uplink_ber == 0.0
        assert plan.scaled(1e9).uplink_ber == 1.0  # huge-but-finite clamps


class TestLinkDerivedPlans:
    def test_ber_waterline(self):
        assert ber_from_snr_db(40.0) < 1e-12
        assert 0.4 < ber_from_snr_db(-30.0) <= 0.5
        assert ber_from_snr_db(0.0) > ber_from_snr_db(10.0)

    def test_plan_tracks_distance(self):
        budget = make_budget()
        near = plan_from_link_budget(budget, 0.3, 250.0)
        edge_distance = 0.95 * budget.max_range(250.0)
        far = plan_from_link_budget(budget, edge_distance, 250.0)
        assert far.uplink_ber >= near.uplink_ber
        assert far.brownout_rate >= near.brownout_rate
        assert far.downlink_ber == far.uplink_ber  # symmetric channel

    def test_overrides_apply_on_top(self):
        plan = plan_from_link_budget(
            make_budget(), 0.5, 250.0, seed=4, reply_loss_rate=0.125
        )
        assert plan.reply_loss_rate == 0.125
        assert plan.seed == 4


class TestFaultInjector:
    def test_from_plan_skips_inactive(self):
        assert FaultInjector.from_plan(None) is None
        assert FaultInjector.from_plan(FaultPlan.none()) is None
        assert FaultInjector.from_plan(FaultPlan(uplink_ber=0.1)) is not None

    def test_streams_are_seed_deterministic(self):
        plan = FaultPlan(seed=7, uplink_ber=0.3, reply_loss_rate=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        bits = [0, 1] * 40
        assert a.corrupt_uplink(bits) == b.corrupt_uplink(bits)
        assert [a.drop_reply() for _ in range(50)] == [
            b.drop_reply() for _ in range(50)
        ]

    def test_streams_are_independent(self):
        """Enabling one fault must not perturb another fault's draws."""
        bits = [0, 1] * 40
        alone = FaultInjector(FaultPlan(seed=7, uplink_ber=0.3))
        combined = FaultInjector(
            FaultPlan(seed=7, uplink_ber=0.3, brownout_rate=0.5)
        )
        for _ in range(20):
            combined.brownout()  # interleave draws from another stream
        assert alone.corrupt_uplink(bits) == combined.corrupt_uplink(bits)

    def test_certain_ber_flips_every_bit(self):
        injector = FaultInjector(FaultPlan(downlink_ber=1.0))
        assert injector.corrupt_downlink([0, 1, 0, 1]) == [1, 0, 1, 0]
        assert injector.counts["downlink_bits_flipped"] == 4

    def test_zero_rate_never_draws(self):
        injector = FaultInjector(FaultPlan(uplink_ber=0.5))
        assert not injector.drop_reply()  # reply_loss_rate is 0
        assert "reply_loss" not in injector._streams

    def test_stuck_sensor_latches_first_reading(self):
        from repro.protocol import SensorReport

        injector = FaultInjector(FaultPlan(stuck_sensor_rate=1.0))
        first = SensorReport.from_value(1, "temperature", 20.0)
        assert injector.latch_stuck(first) is first  # first read decides
        moved = SensorReport.from_value(1, "temperature", 29.0)
        latched = injector.latch_stuck(moved)
        assert latched.raw == first.raw
        assert injector.counts["stuck_reads"] == 1
        # A different channel latches independently.
        other = SensorReport.from_value(1, "strain", 100.0)
        assert injector.latch_stuck(other) is other

    def test_record_books_into_obs(self):
        with observed() as scope:
            injector = FaultInjector(FaultPlan(reply_loss_rate=1.0))
            injector.drop_reply()
            assert scope.registry.counter("faults.replies_dropped").value == 1.0
        assert injector.counts["replies_dropped"] == 1


class TestTdmaUnderFaults:
    def test_inactive_plan_matches_no_plan_exactly(self):
        clean = TdmaInventory(nodes=make_sm_nodes(4, seed=10), seed=5)
        nulled = TdmaInventory(
            nodes=make_sm_nodes(4, seed=10), seed=5, faults=FaultPlan.none()
        )
        a, b = clean.inventory_all(), nulled.inventory_all()
        assert dict(a) == dict(b)
        assert a.rounds_used == b.rounds_used
        assert a.slots_used == b.slots_used
        assert b.retries == 0 and b.fault_counts == {}

    def test_fault_run_is_deterministic(self):
        def run_once():
            inventory = TdmaInventory(
                nodes=make_sm_nodes(5, seed=20),
                initial_q=3,
                seed=6,
                faults=FaultPlan(
                    seed=2, uplink_ber=0.01, reply_loss_rate=0.1,
                    brownout_rate=0.05, slot_jitter_rate=0.05,
                ),
            )
            result = inventory.inventory_all(max_rounds=10)
            return (
                {k: [r.raw for r in v] for k, v in result.reports.items()},
                result.rounds_used,
                result.slots_used,
                result.retries,
                result.fault_counts,
                result.unheard_nodes,
            )

        assert run_once() == run_once()

    def test_all_nodes_browning_out_degrades_not_raises(self):
        inventory = TdmaInventory(
            nodes=make_sm_nodes(3, seed=30),
            seed=7,
            faults=FaultPlan(seed=1, brownout_rate=1.0),
        )
        result = inventory.inventory_all(max_rounds=4)
        assert result.degraded
        assert result.reports == {}
        assert result.unheard_nodes == [1, 2, 3]
        assert result.fault_counts["brownouts"] == 3 * 4

    def test_corrupt_replies_trigger_retries_then_give_up(self):
        # Heavy uplink corruption: singulation sometimes survives (the
        # RN16 has no CRC) but the CRC-protected sensor reports are
        # destroyed, so reads retry to exhaustion and the inventory
        # degrades cleanly instead of raising.
        inventory = TdmaInventory(
            nodes=make_sm_nodes(2, seed=40),
            seed=8,
            max_retries=2,
            faults=FaultPlan(seed=4, uplink_ber=0.08),
        )
        result = inventory.inventory_all(max_rounds=3)
        assert result.degraded
        assert result.unheard_nodes == [1, 2]
        assert result.retries > 0
        assert result.fault_counts["read_retries_exhausted"] > 0
        assert result.fault_counts["uplink_bits_flipped"] > 0

    def test_moderate_faults_recoverable_with_retries(self):
        inventory = TdmaInventory(
            nodes=make_sm_nodes(4, seed=50),
            initial_q=3,
            seed=9,
            max_retries=3,
            faults=FaultPlan(seed=4, reply_loss_rate=0.2),
        )
        result = inventory.inventory_all(max_rounds=15)
        assert not result.degraded  # retries absorb a 20% loss rate
        assert result.retries > 0

    def test_obs_counters_reflect_injected_events(self):
        with observed() as scope:
            inventory = TdmaInventory(
                nodes=make_sm_nodes(3, seed=60),
                seed=10,
                faults=FaultPlan(seed=5, reply_loss_rate=0.3),
            )
            result = inventory.inventory_all(max_rounds=10)
            dropped = scope.registry.counter("faults.replies_dropped").value
            assert dropped == result.fault_counts["replies_dropped"] > 0
            if result.retries:
                assert (
                    scope.registry.counter("tdma.retries").value
                    == result.retries
                )


class TestSessionUnderFaults:
    def test_total_reader_dropout_fails_charging_gracefully(self):
        with observed() as scope:
            session = WallSession(
                budget=make_budget(),
                nodes=make_placed([0.5, 1.0]),
                seed=3,
                faults=FaultPlan(seed=1, reader_dropout_rate=1.0),
                max_charge_attempts=3,
                backoff_initial_s=0.5,
                backoff_max_s=2.0,
            )
            result = session.run()
            assert scope.registry.counter("session.charge_failures").value == 1
        assert result.charge_failed and result.degraded
        assert result.powered_nodes == [] and result.reports == {}
        assert result.charge_attempts == 3
        # 0.5 + 1.0 (doubling, capped at 2.0, no wait after the last try).
        assert result.backoff_s == pytest.approx(1.5)
        assert result.fault_counts["reader_dropouts"] == 3

    def test_brownouts_mid_session_yield_partial_results(self):
        session = WallSession(
            budget=make_budget(),
            nodes=make_placed([0.5, 1.0, 1.5, 2.0]),
            seed=4,
            faults=FaultPlan(seed=2, brownout_rate=0.4),
        )
        result = session.run(max_rounds=3)
        # Brownouts cost rounds; whatever was heard is reported and
        # whatever was not is itemised -- never an exception.
        assert sorted(result.reports) + result.unheard_nodes
        assert set(result.reports).isdisjoint(result.unheard_nodes)
        assert result.fault_counts["brownouts"] > 0
        assert result.recharges == result.rounds_used - 1

    def test_recharge_cycles_are_billed_in_fault_mode(self):
        plan = FaultPlan(seed=5, reply_loss_rate=0.3)
        faulted = WallSession(
            budget=make_budget(), nodes=make_placed([0.5, 1.0, 1.5]),
            seed=5, faults=plan,
        ).run()
        clean = WallSession(
            budget=make_budget(), nodes=make_placed([0.5, 1.0, 1.5]), seed=5
        ).run()
        if faulted.recharges:
            assert faulted.elapsed > faulted.slots_used * 0.0  # sanity
            per_slot_clean = clean.elapsed / max(clean.slots_used, 1)
            assert faulted.elapsed > per_slot_clean * faulted.slots_used

    def test_session_fault_run_is_deterministic(self):
        def run_once():
            result = WallSession(
                budget=make_budget(),
                nodes=make_placed([0.5, 1.0, 1.5]),
                seed=6,
                faults=FaultPlan(
                    seed=3, uplink_ber=0.005, reply_loss_rate=0.1,
                    brownout_rate=0.1, reader_dropout_rate=0.3,
                ),
            ).run()
            return (
                result.powered_nodes,
                {k: [r.raw for r in v] for k, v in result.reports.items()},
                result.unheard_nodes,
                result.retries,
                result.charge_attempts,
                result.backoff_s,
                result.fault_counts,
                result.elapsed,
            )

        assert run_once() == run_once()

    def test_clean_session_reports_clean_recovery_fields(self):
        result = WallSession(
            budget=make_budget(), nodes=make_placed([0.5, 1.0]), seed=7
        ).run()
        assert not result.degraded
        assert result.retries == 0
        assert result.charge_attempts == 1
        assert result.backoff_s == 0.0
        assert result.recharges == 0
        assert result.fault_counts == {}
        assert not result.charge_failed


class TestFaultSweepExperiment:
    def test_quick_sweep_shape_and_anchor(self):
        from repro.experiments import fault_sweep

        result = fault_sweep.run(
            intensities=[0.0, 1.0], nodes=4, max_rounds=10
        )
        assert [p.intensity for p in result.points] == [0.0, 1.0]
        anchor = result.point_at(0.0)
        assert anchor.retries == 0
        assert anchor.brownouts == 0 and anchor.replies_dropped == 0
        assert result.plan["schema"] == FAULT_PLAN_SCHEMA
        with pytest.raises(KeyError):
            result.point_at(7.0)

    def test_sweep_is_deterministic(self):
        from repro.experiments import fault_sweep

        kwargs = dict(intensities=[0.0, 1.5], nodes=4, max_rounds=8, seed=11)
        assert fault_sweep.run(**kwargs) == fault_sweep.run(**kwargs)
