"""Integration tests: multi-module flows through the whole stack."""

import math
import random

import numpy as np
import pytest

from repro.acoustics import StructureGeometry, WavePrism, paper_structures
from repro.errors import PowerError
from repro.link import PowerUpLink, UplinkPassbandSimulator
from repro.materials import PLA, get_concrete
from repro.node import EcoCapsule, Environment
from repro.phy import BackscatterModulator
from repro.protocol import Ack, Query, ReadSensor, SensorReport, TdmaInventory
from repro.reader import ReaderReceiver, ReaderTransmitter
from repro.shm import BridgeMonitor, Footbridge


class TestChargeAndRead:
    """The quickstart flow: budget -> power -> handshake -> sensor data."""

    def test_end_to_end_single_node(self):
        concrete = get_concrete("NC")
        wall = StructureGeometry(
            "wall", length=10.0, thickness=0.20, medium=concrete.medium
        )
        budget = PowerUpLink(wall)
        capsule = EcoCapsule(
            node_id=3,
            environment=Environment(temperature=27.0, strain=-80.0),
            seed=11,
        )

        field = budget.node_voltage(1.5, tx_voltage=200.0)
        assert capsule.apply_field(field)
        assert capsule.cold_start_time() < 0.1

        reply = capsule.handle(Query(q=0))
        capsule.handle(Ack(rn16=reply.rn16))
        report = capsule.handle(ReadSensor(channel="temperature"))
        assert isinstance(report, SensorReport)
        assert report.value == pytest.approx(27.0, abs=1.0)

    def test_node_beyond_range_stays_dark(self):
        wall = next(s for s in paper_structures() if s.name.startswith("S3"))
        budget = PowerUpLink(wall)
        capsule = EcoCapsule(node_id=4, seed=1)
        reach = budget.max_range(100.0)
        field = budget.node_voltage(reach * 1.5, tx_voltage=100.0)
        assert not capsule.apply_field(field)
        with pytest.raises(PowerError):
            capsule.handle(Query(q=0))

    def test_raising_voltage_revives_the_link(self):
        wall = next(s for s in paper_structures() if s.name.startswith("S3"))
        budget = PowerUpLink(wall)
        capsule = EcoCapsule(node_id=5, seed=2)
        distance = 3.0
        low_field = budget.node_voltage(distance, tx_voltage=50.0)
        assert not capsule.apply_field(low_field)
        needed = budget.minimum_voltage(distance)
        high_field = budget.node_voltage(distance, tx_voltage=needed * 1.05)
        assert capsule.apply_field(high_field)


class TestMultiNodeWall:
    """The wall-survey flow: population -> charge -> inventory -> data."""

    def test_full_inventory_of_a_wall(self):
        concrete = get_concrete("UHPC")
        wall = StructureGeometry(
            "wall", length=8.0, thickness=0.20, medium=concrete.medium
        )
        budget = PowerUpLink(wall)
        rng = random.Random(9)
        capsules = []
        for node_id in range(1, 7):
            capsule = EcoCapsule(
                node_id=node_id,
                environment=Environment(temperature=20.0 + node_id),
                seed=100 + node_id,
            )
            distance = rng.uniform(0.3, 2.5)
            capsule.apply_field(budget.node_voltage(distance, 250.0))
            assert capsule.is_powered
            capsules.append(capsule)

        inventory = TdmaInventory(
            nodes=[c.protocol for c in capsules],
            initial_q=3,
            channels=("temperature",),
            seed=55,
        )
        collected = inventory.inventory_all()
        assert set(collected) == set(range(1, 7))
        for node_id, reports in collected.items():
            assert reports[0].value == pytest.approx(20.0 + node_id, abs=1.0)


class TestWaveformLevelUplink:
    """PHY-faithful round trip: switch waveform -> capture -> DSP decode."""

    def test_sensor_report_over_the_air(self):
        report = SensorReport.from_value(9, "strain", 123.0)
        bits = report.to_bits()
        modulator = BackscatterModulator(blf=10e3, bitrate=2e3)
        simulator = UplinkPassbandSimulator(modulator=modulator, seed=21)
        result = simulator.run(bits)
        assert result.bit_errors == 0

        # Reconstruct the report from the decoded bits.
        waveform = simulator.received_waveform(bits)
        receiver = ReaderReceiver(sample_rate=1e6, modulator=modulator)
        decoded = receiver.decode(waveform, len(bits), carrier=230e3)
        recovered = SensorReport.from_bits(decoded)
        assert recovered.node_id == 9
        assert recovered.channel == "strain"
        assert recovered.value == pytest.approx(123.0, abs=1.0 / 32.0)

    def test_downlink_command_over_concrete(self):
        """PIE/FSK command synthesized, enveloped and decoded node-side."""
        from repro.circuits import EnvelopeDetector, LevelShifter, edge_intervals
        from repro.phy import DownlinkModulator, PieTiming, decode_edge_durations
        from repro.protocol import parse_command

        sample_rate = 4e6
        timing = PieTiming(tari=250e-6, low=250e-6)
        transmitter = ReaderTransmitter(
            prism=WavePrism(PLA, get_concrete("NC").medium),
            modulator=DownlinkModulator(timing=timing),
            drive_voltage=100.0,
        )
        command = Query(q=2)
        waveform = transmitter.command_waveform_for_packet(command, sample_rate)

        # Concrete response: the 180 kHz low edges arrive attenuated.
        from repro.acoustics import ConcreteBlock, FrequencyResponse

        response = FrequencyResponse(ConcreteBlock(get_concrete("NC"), 0.15))
        # Apply the per-sample gain via the drive plan's frequency track.
        _, carrier = transmitter.modulator.drive_plan(command.to_bits(), sample_rate)
        gains = np.where(
            carrier == transmitter.modulator.resonant_frequency,
            response.gain(transmitter.modulator.resonant_frequency),
            response.gain(transmitter.modulator.off_frequency),
        )
        received = waveform * gains / np.max(gains)

        detector = EnvelopeDetector(cutoff=30e3)
        envelope = detector.detect(received, sample_rate)
        binary = LevelShifter().binarize(envelope)
        durations = edge_intervals(binary, sample_rate)
        bits = decode_edge_durations(durations, int(binary[0]), timing)
        assert parse_command(bits) == command


class TestPilotStudyPipeline:
    def test_month_of_monitoring(self):
        from repro.shm import (
            JulyTimeSeriesGenerator,
            check_compliance,
            detect_anomalies,
        )

        bridge = Footbridge()
        generator = JulyTimeSeriesGenerator(samples_per_hour=4, seed=77)
        hours, acc = generator.acceleration(0, scale=0.012)
        _, stress = generator.stress()

        assert check_compliance(bridge.limits, acc, stress).compliant
        assert detect_anomalies(hours, acc)  # the storm shows up

        monitor = BridgeMonitor(bridge)
        rng = np.random.default_rng(5)
        for _ in range(48):
            counts = {s: int(rng.poisson(2.0)) for s in "ABCDE"}
            monitor.update(counts)
        fractions = monitor.grade_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(g in ("A", "B") for g in fractions)  # sparse COVID deck


class TestDesignFlow:
    def test_shell_then_prism_then_hra_for_a_building(self):
        from repro.acoustics import design_resonator
        from repro.node import resin_shell

        concrete = get_concrete("UHPC")
        shell = resin_shell()
        assert shell.survives(120.0)

        prism = WavePrism(PLA, concrete.medium)
        angle = prism.recommend_angle()
        low, high = prism.critical_angles
        assert low < angle < high

        resonator = design_resonator(230e3, concrete.cs)
        assert resonator.resonant_frequency(concrete.cs) == pytest.approx(230e3)
