"""Unit tests for the composed EcoCapsule node."""

import pytest

from repro.errors import PowerError
from repro.node import EcoCapsule, Environment
from repro.protocol import Ack, Query, ReadSensor, SensorReport


def make_capsule(**env):
    environment = Environment(**env) if env else Environment()
    return EcoCapsule(node_id=5, environment=environment, seed=1)


class TestPower:
    def test_starts_unpowered(self):
        capsule = make_capsule()
        assert not capsule.is_powered

    def test_powers_above_activation(self):
        capsule = make_capsule()
        assert capsule.apply_field(1.0)
        assert capsule.is_powered

    def test_stays_dark_below_activation(self):
        capsule = make_capsule()
        assert not capsule.apply_field(0.3)

    def test_field_loss_power_cycles_protocol(self):
        capsule = make_capsule()
        capsule.apply_field(2.0)
        reply = capsule.handle(Query(q=0))
        capsule.handle(Ack(rn16=reply.rn16))
        assert capsule.protocol.is_acknowledged
        capsule.apply_field(0.0)  # CBW dies
        assert capsule.protocol.state == "ready"

    def test_cold_start_at_current_field(self):
        capsule = make_capsule()
        capsule.apply_field(2.0)
        assert capsule.cold_start_time() == pytest.approx(4.4e-3, rel=0.1)

    def test_rejects_negative_field(self):
        with pytest.raises(PowerError):
            make_capsule().apply_field(-1.0)

    def test_power_budget(self):
        capsule = make_capsule()
        capsule.apply_field(2.0)
        assert capsule.power_budget_ok(1e3)


class TestSensing:
    def test_reads_track_environment(self):
        capsule = make_capsule(temperature=28.0, humidity=80.0, strain=42.0)
        capsule.apply_field(2.0)
        assert capsule.read_sensor("temperature") == pytest.approx(28.0, abs=1.0)
        assert capsule.read_sensor("humidity") == pytest.approx(80.0, abs=8.0)
        assert capsule.read_sensor("strain") == pytest.approx(42.0, abs=10.0)

    def test_unpowered_read_raises(self):
        capsule = make_capsule()
        with pytest.raises(PowerError):
            capsule.read_sensor("temperature")

    def test_unknown_channel_raises(self):
        capsule = make_capsule()
        capsule.apply_field(2.0)
        with pytest.raises(PowerError):
            capsule.read_sensor("magnetism")


class TestProtocolIntegration:
    def test_full_read_handshake(self):
        capsule = make_capsule(temperature=22.5)
        capsule.apply_field(2.0)
        reply = capsule.handle(Query(q=0))
        capsule.handle(Ack(rn16=reply.rn16))
        report = capsule.handle(ReadSensor(channel="temperature"))
        assert isinstance(report, SensorReport)
        assert report.node_id == 5
        assert report.value == pytest.approx(22.5, abs=1.0)

    def test_unpowered_command_raises(self):
        capsule = make_capsule()
        with pytest.raises(PowerError):
            capsule.handle(Query(q=0))

    def test_environment_mutation_visible(self):
        capsule = make_capsule()
        capsule.apply_field(2.0)
        capsule.environment.temperature = 31.0
        assert capsule.read_sensor("temperature") == pytest.approx(31.0, abs=1.0)
