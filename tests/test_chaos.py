"""Chaos drill runner tests: the recovered-or-loud oracle, mechanically.

Covers all three scenarios end to end (campaign / fleet / store), the
verdict taxonomy, the silent-corruption fixture (a flipped byte in the
drill's result must turn ``chaos verify`` red), the config pinning of a
drill directory, and the resumability contract: a drill SIGKILLed
mid-run converges -- on rerun -- to the same verdict an uninterrupted
control run produces.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ChaosError
from repro.faults.chaos import (
    CHAOS_MANIFEST_FILENAME,
    CHAOS_SCHEMA,
    ChaosConfig,
    evaluate_drill,
    run_drill,
    verify_drill,
)
from repro.faults.io import IoFaultPlan, clear_io_faults

#: Small-but-real workload shapes, shared across the scenario tests.
CAMPAIGN_CFG = dict(
    scenario="campaign", seed=5, epochs=2, nodes=2, hours_per_epoch=6,
    max_attempts=4,
)
STORE_CFG = dict(
    scenario="store", seed=5, buildings=2, batches=4, rows_per_batch=32,
    max_attempts=4,
)

MODERATE_PLAN = IoFaultPlan(
    seed=7, enospc_write_rate=0.05, eio_read_rate=0.02, eio_fsync_rate=0.03,
    torn_write_rate=0.05, drop_rename_rate=0.05,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    clear_io_faults()
    yield
    clear_io_faults()


class TestChaosConfig:
    def test_round_trip(self):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        assert ChaosConfig.from_dict(config.to_dict()) == config

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ChaosError, match="unknown scenario"):
            ChaosConfig(scenario="network")

    def test_unknown_field_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos config field"):
            ChaosConfig.from_dict({"scenario": "campaign", "bogus": 1})

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ChaosError):
            ChaosConfig(epochs=0)
        with pytest.raises(ChaosError):
            ChaosConfig(max_attempts=0)

    def test_attempt_plans_differ_per_attempt(self):
        config = ChaosConfig(plan=IoFaultPlan(seed=3, torn_write_rate=0.1))
        seeds = {config.attempt_plan(0, a).seed for a in range(4)}
        assert len(seeds) == 4
        assert config.attempt_plan(0, 1) != config.attempt_plan(1, 1)


class TestCampaignScenario:
    def test_faulted_drill_recovers_to_clean_sha(self, tmp_path):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        verdict = run_drill(tmp_path / "d", config)
        assert verdict["status"] in ("pass", "degraded")
        assert verdict["drill_sha256"] == verdict["clean_sha256"]
        # verify recomputes the same verdict from the artifacts alone
        assert verify_drill(tmp_path / "d")["status"] == verdict["status"]

    def test_no_faults_is_a_plain_pass(self, tmp_path):
        config = ChaosConfig(
            **CAMPAIGN_CFG, plan=IoFaultPlan(seed=1, torn_write_rate=0.0001)
        )
        verdict = run_drill(tmp_path / "d", config)
        if not verdict["accounted"]:
            assert verdict["status"] == "pass"

    def test_corrupted_drill_result_fails_verify(self, tmp_path):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        assert run_drill(tmp_path / "d", config)["status"] in (
            "pass", "degraded",
        )
        result = tmp_path / "d" / "drill" / "state" / "result.json"
        raw = bytearray(result.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        result.write_bytes(bytes(raw))
        verdict = verify_drill(tmp_path / "d")
        assert verdict["status"] == "fail"
        # Depending on where the bit lands the file is either
        # unparseable or sha-mismatched -- both must read as corruption.
        assert any(
            "sha mismatch" in r or "unreadable" in r or "diverged" in r
            for r in verdict["reasons"]
        )

    def test_tampered_verdict_stamp_fails_verify(self, tmp_path):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        run_drill(tmp_path / "d", config)
        manifest_path = tmp_path / "d" / CHAOS_MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["verdict"]["drill_sha256"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        verdict = verify_drill(tmp_path / "d")
        assert verdict["status"] == "fail"
        assert any("stamped verdict disagrees" in r for r in verdict["reasons"])

    def test_drill_dir_pins_its_config(self, tmp_path):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        run_drill(tmp_path / "d", config)
        other = dataclasses.replace(config, seed=config.seed + 1)
        with pytest.raises(ChaosError, match="different"):
            run_drill(tmp_path / "d", other)
        # Re-running with the same (or no) config is fine and idempotent.
        assert run_drill(tmp_path / "d")["status"] in ("pass", "degraded")

    def test_fresh_dir_needs_a_config(self, tmp_path):
        with pytest.raises(ChaosError, match="no drill"):
            run_drill(tmp_path / "missing")

    def test_verify_without_manifest_is_loud(self, tmp_path):
        with pytest.raises(ChaosError, match="unreadable chaos manifest"):
            verify_drill(tmp_path)


class TestStoreScenario:
    def test_faulted_ingest_recovers_or_accounts(self, tmp_path):
        config = ChaosConfig(
            **STORE_CFG,
            plan=IoFaultPlan(
                seed=11, enospc_write_rate=0.1, torn_write_rate=0.1,
                eio_fsync_rate=0.05, drop_rename_rate=0.1,
            ),
        )
        verdict = run_drill(tmp_path / "s", config)
        assert verdict["status"] in ("pass", "degraded", "loud")
        assert verify_drill(tmp_path / "s")["status"] == verdict["status"]

    def test_fabricated_rows_fail(self, tmp_path):
        import numpy as np

        from repro.store import TelemetryStore
        from repro.store.keys import SeriesKey

        config = ChaosConfig(**STORE_CFG, plan=MODERATE_PLAN)
        run_drill(tmp_path / "s", config)
        # Forge rows the clean store never wrote: subset check must trip.
        drill = TelemetryStore(tmp_path / "s" / "drill" / "store", create=False)
        key = SeriesKey(building="b001", wall="chaos", node_id=0, metric="value")
        drill.append(key, np.array([1e6]), np.array([42.0]))
        verdict = verify_drill(tmp_path / "s")
        assert verdict["status"] == "fail"


class TestFleetScenario:
    def test_faulted_fleet_recovers_or_quarantines(self, tmp_path):
        config = ChaosConfig(
            scenario="fleet", seed=3, epochs=2, nodes=2, hours_per_epoch=6,
            buildings=2, max_attempts=3,
            plan=IoFaultPlan(
                seed=13, enospc_write_rate=0.02, torn_write_rate=0.02,
                eio_fsync_rate=0.02,
            ),
        )
        verdict = run_drill(tmp_path / "f", config)
        assert verdict["status"] in ("pass", "degraded", "loud")
        if verdict["status"] in ("pass", "degraded") and not verdict.get(
            "quarantined"
        ):
            # Survived without losses: the fleet sha must equal clean's.
            assert verdict["drill_sha256"] == verdict["clean_sha256"]
        assert verify_drill(tmp_path / "f")["status"] == verdict["status"]


class TestEvaluateIsPure:
    def test_evaluate_does_not_mutate_artifacts(self, tmp_path):
        config = ChaosConfig(**CAMPAIGN_CFG, plan=MODERATE_PLAN)
        run_drill(tmp_path / "d", config)
        snapshot = {
            p: p.read_bytes()
            for p in sorted((tmp_path / "d").rglob("*"))
            if p.is_file()
        }
        evaluate_drill(tmp_path / "d")
        for path, before in snapshot.items():
            assert path.read_bytes() == before


class TestKilledDrillResumes:
    def test_sigkill_mid_drill_converges_to_control_verdict(self, tmp_path):
        """A drill killed mid-run must, on rerun, reach the same verdict
        an uninterrupted control reaches -- the chaos runner is itself
        crash-safe."""
        args_for = lambda d: [
            sys.executable, "-m", "repro.cli", "chaos", "run",
            "--dir", str(d), "--scenario", "campaign",
            "--seed", "5", "--epochs", "3", "--nodes", "2",
            "--hours-per-epoch", "6", "--max-attempts", "4",
            "--fault-seed", "7",
            "--enospc-write-rate", "0.1", "--torn-write-rate", "0.1",
            "--json",
        ]
        env = {**os.environ, "PYTHONPATH": str(
            Path(__file__).resolve().parents[1] / "src"
        )}

        control = subprocess.run(
            args_for(tmp_path / "control"), env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert control.returncode == 0, control.stderr
        control_verdict = json.loads(control.stdout)

        victim = subprocess.Popen(
            args_for(tmp_path / "victim"), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Let it get past manifest creation and into real work, then
        # kill it without ceremony.
        deadline = time.time() + 60.0
        manifest = tmp_path / "victim" / CHAOS_MANIFEST_FILENAME
        while time.time() < deadline and not manifest.exists():
            time.sleep(0.05)
        assert manifest.exists(), "drill never started"
        time.sleep(0.5)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        rerun = subprocess.run(
            args_for(tmp_path / "victim"), env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert rerun.returncode == 0, rerun.stderr
        rerun_verdict = json.loads(rerun.stdout)

        assert rerun_verdict["status"] == control_verdict["status"]
        assert (
            rerun_verdict["clean_sha256"] == control_verdict["clean_sha256"]
        )
        assert (
            rerun_verdict["drill_sha256"] == control_verdict["drill_sha256"]
        )
