"""The chaos oracle as a hypothesis property.

For *arbitrary* seeded fault schedules (any mix of ENOSPC, transient
and persistent EIO, torn writes, dropped renames, bit rot), a campaign
drill must never end in the ``fail`` verdict: the result hash either
equals the clean run's, or the drill failed loudly with every fault
accounted.  A silently different hash is the one outcome the stack is
built to make impossible.

The clean reference is computed once and copied into each example's
directory -- the property spends its budget on fault schedules, not on
recomputing the same fault-free campaign.
"""

import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.chaos import ChaosConfig, run_drill, verify_drill
from repro.faults.io import IoFaultPlan, clear_io_faults

WORKLOAD = dict(
    scenario="campaign", seed=5, epochs=2, nodes=2, hours_per_epoch=6,
    max_attempts=4,
)

rates = st.floats(
    min_value=0.0, max_value=0.2, allow_nan=False, allow_infinity=False
)

plans = st.builds(
    IoFaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    enospc_write_rate=rates,
    eio_read_rate=rates,
    eio_fsync_rate=rates,
    torn_write_rate=rates,
    drop_rename_rate=rates,
    bitrot_read_rate=rates,
    persistence=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)


@pytest.fixture(scope="module")
def clean_template(tmp_path_factory):
    """One completed drill whose ``clean/`` subtree seeds every example."""
    clear_io_faults()
    root = tmp_path_factory.mktemp("chaos-template") / "drill"
    config = ChaosConfig(**WORKLOAD, plan=IoFaultPlan(seed=1))
    # An inactive plan never faults: this both builds the clean
    # reference and sanity-checks the no-fault path is a plain pass.
    verdict = run_drill(root, config)
    assert verdict["status"] == "pass"
    return root / "clean"


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(plan=plans)
def test_any_fault_schedule_never_fails_silently(
    plan, clean_template, tmp_path
):
    clear_io_faults()
    drill_dir = tmp_path / f"drill-{plan.seed}"
    if drill_dir.exists():
        shutil.rmtree(drill_dir)
    drill_dir.mkdir(parents=True)
    shutil.copytree(clean_template, drill_dir / "clean")

    verdict = run_drill(drill_dir, ChaosConfig(**WORKLOAD, plan=plan))
    assert verdict["status"] != "fail", verdict

    # A recovered drill recovered to the clean bytes, and the stamped
    # verdict must survive an independent recomputation.
    if verdict["status"] in ("pass", "degraded"):
        assert verdict["drill_sha256"] == verdict["clean_sha256"]
    assert verify_drill(drill_dir)["status"] == verdict["status"]
