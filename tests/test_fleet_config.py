"""Units for the fleet's deterministic foundations (ISSUE 8).

Seed derivation, roster validation, backoff timing and the worker-fault
plan semantics -- everything the supervisor integration tests lean on,
checked without spawning a single process.
"""

import pytest

from repro.campaign import CampaignConfig
from repro.errors import FaultConfigError, FleetError
from repro.faults import UNBOUNDED, WorkerFault, WorkerFaultPlan
from repro.fleet import (
    FleetConfig,
    backoff_delay,
    building_names,
    derive_shard_seed,
)


class TestBuildingNames:
    def test_default_roster(self):
        assert building_names(3) == ("b001", "b002", "b003")

    def test_width_grows_past_999(self):
        names = building_names(1000)
        assert names[0] == "b0001" and names[-1] == "b1000"

    def test_rejects_zero(self):
        with pytest.raises(FleetError, match="count must be >= 1"):
            building_names(0)


class TestShardSeeds:
    def test_pinned_value(self):
        # The derivation is part of the determinism contract: changing
        # it silently invalidates every committed fleet hash.
        assert derive_shard_seed(2021, "b001") == 4550587057460074342

    def test_distinct_per_building_and_seed(self):
        seeds = {derive_shard_seed(2021, b) for b in building_names(64)}
        assert len(seeds) == 64
        assert derive_shard_seed(2022, "b001") != derive_shard_seed(
            2021, "b001"
        )

    def test_independent_of_roster_and_workers(self):
        # The seed depends on (fleet seed, name) only -- adding
        # buildings or changing worker counts cannot shift it.
        small = FleetConfig(buildings=building_names(2), workers=1)
        large = FleetConfig(buildings=building_names(16), workers=8)
        assert small.shard_seed("b001") == large.shard_seed("b001")

    def test_shard_config_replaces_only_the_seed(self):
        config = FleetConfig(
            buildings=("b001",),
            campaign=CampaignConfig(epochs=5, nodes=3, seed=999),
        )
        shard = config.shard_config("b001")
        assert shard.seed == derive_shard_seed(config.seed, "b001")
        assert (shard.epochs, shard.nodes) == (5, 3)

    def test_unknown_building_rejected(self):
        config = FleetConfig(buildings=("b001",))
        with pytest.raises(FleetError, match="unknown building"):
            config.shard_seed("b999")


class TestBackoff:
    def test_exponential_then_capped(self):
        delays = [backoff_delay(n, 0.25, 5.0) for n in range(0, 7)]
        assert delays == [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 5.0]

    def test_negative_failures_mean_no_wait(self):
        assert backoff_delay(-3, 0.25, 5.0) == 0.0


class TestFleetConfig:
    def test_roster_stored_sorted(self):
        config = FleetConfig(buildings=("b2", "b1", "b3"))
        assert config.buildings == ("b1", "b2", "b3")

    def test_duplicates_rejected(self):
        with pytest.raises(FleetError, match="duplicate"):
            FleetConfig(buildings=("b1", "b1"))

    def test_reserved_namespace_rejected(self):
        with pytest.raises(FleetError, match="reserved"):
            FleetConfig(buildings=("_obs",))

    def test_invalid_store_component_rejected(self):
        with pytest.raises(FleetError):
            FleetConfig(buildings=("no/slashes",))

    def test_empty_roster_rejected(self):
        with pytest.raises(FleetError, match="at least one building"):
            FleetConfig(buildings=())

    def test_supervision_knob_validation(self):
        with pytest.raises(FleetError, match="workers"):
            FleetConfig(buildings=("b1",), workers=0)
        with pytest.raises(FleetError, match="max_restarts"):
            FleetConfig(buildings=("b1",), max_restarts=0)
        with pytest.raises(FleetError, match="backoff_base_s"):
            FleetConfig(buildings=("b1",), backoff_base_s=0.0)
        with pytest.raises(FleetError, match="heartbeat_timeout_s"):
            FleetConfig(buildings=("b1",), heartbeat_timeout_s=float("nan"))

    def test_round_trip(self):
        config = FleetConfig(
            buildings=building_names(4),
            campaign=CampaignConfig(epochs=3, nodes=2),
            seed=7,
            workers=2,
            max_restarts=5,
        )
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        payload = FleetConfig(buildings=("b1",)).to_dict()
        payload["shards"] = 4
        with pytest.raises(FleetError, match="unknown fleet-config"):
            FleetConfig.from_dict(payload)


class TestWorkerFault:
    def test_times_defaults_per_action(self):
        assert WorkerFault("b1", 0, "kill").times == 1
        assert WorkerFault("b1", 0, "hang").times == 1
        assert WorkerFault("b1", 0, "poison").times == UNBOUNDED

    def test_fires_gates_on_attempt(self):
        fault = WorkerFault("b1", 2, "kill", times=2)
        assert fault.fires("b1", 2, 0)
        assert fault.fires("b1", 2, 1)
        assert not fault.fires("b1", 2, 2)  # third attempt runs clean
        assert not fault.fires("b1", 1, 0)
        assert not fault.fires("b2", 2, 0)

    def test_unbounded_poison_never_expires(self):
        fault = WorkerFault("b1", 0, "poison")
        assert all(fault.fires("b1", 0, attempt) for attempt in range(50))

    def test_validation(self):
        with pytest.raises(FaultConfigError, match="action"):
            WorkerFault("b1", 0, "explode")
        with pytest.raises(FaultConfigError, match="negative"):
            WorkerFault("b1", -1, "kill")
        with pytest.raises(FaultConfigError, match="times"):
            WorkerFault("b1", 0, "kill", times=-2)


class TestWorkerFaultPlan:
    def test_first_matching_fault_wins(self):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b1", 0, "kill"),
            WorkerFault("b1", 0, "poison"),
        ))
        assert plan.matching("b1", 0, 0).action == "kill"
        assert plan.matching("b1", 0, 5).action == "poison"  # kill expired
        assert plan.matching("b2", 0, 0) is None

    def test_for_building_filters(self):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b1", 0, "kill"),
            WorkerFault("b2", 1, "poison"),
        ))
        sub = plan.for_building("b2")
        assert [f.building for f in sub.faults] == ["b2"]

    def test_seeded_is_reproducible(self):
        kwargs = dict(
            buildings=building_names(16), epochs=8,
            kill_rate=0.3, hang_rate=0.1, poison_rate=0.1,
        )
        assert (
            WorkerFaultPlan.seeded(5, **kwargs)
            == WorkerFaultPlan.seeded(5, **kwargs)
        )
        assert (
            WorkerFaultPlan.seeded(5, **kwargs)
            != WorkerFaultPlan.seeded(6, **kwargs)
        )

    def test_json_round_trip(self, tmp_path):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b1", 0, "kill", times=2),
            WorkerFault("b2", 3, "poison"),
        ))
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        assert WorkerFaultPlan.from_json_file(path) == plan

    def test_from_dict_is_strict(self):
        with pytest.raises(FaultConfigError, match="unknown"):
            WorkerFaultPlan.from_dict({"faults": [], "extra": 1})
        with pytest.raises(FaultConfigError, match="schema"):
            WorkerFaultPlan.from_dict({"schema": "v0", "faults": []})
