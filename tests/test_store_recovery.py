"""Property tests: arbitrary on-disk damage to a telemetry store never
yields a silently wrong query result.

Mirrors ``test_campaign_recovery.py``'s contract for the store layer:
truncate or byte-flip any segment file or manifest at any offset, and a
subsequent open/append/read ends in exactly one of two states -- the
data the durability rules still vouch for (acknowledged bytes, or an
acknowledged prefix after torn-tail truncation), or a loud
:class:`~repro.errors.SegmentError`.  The forbidden third state is a
read that *succeeds with different values*.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SegmentError, StoreError
from repro.store import SeriesKey, TelemetryStore

KEY = SeriesKey("b", "w", 1, "strain")

#: Three appended blocks of 8 rows each.
BLOCK_ROWS = 8
BLOCKS = 3


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A store with known contents, plus the expected arrays."""
    root = tmp_path_factory.mktemp("store") / "tele"
    store = TelemetryStore(root)
    for b in range(BLOCKS):
        t = np.arange(b * BLOCK_ROWS, (b + 1) * BLOCK_ROWS, dtype=float)
        store.append(KEY, t, t * 10.0 + b)
    store.compact()
    data = store.read(KEY)
    return {
        "root": root,
        "t": data["t"].copy(),
        "value": data["value"].copy(),
    }


def _damaged_copy(pristine, damage):
    scratch = Path(tempfile.mkdtemp(prefix="store-recovery-"))
    root = scratch / "tele"
    shutil.copytree(pristine["root"], root)
    damage(root)
    return scratch, root


def _read_must_not_lie(pristine, damage, allow_prefix=False):
    """Open + read after damage: intact data, a prefix, or a loud error.

    ``allow_prefix`` admits the torn-tail outcome (recovery cut
    unacknowledged bytes; acknowledged rows must still be exact).
    """
    scratch, root = _damaged_copy(pristine, damage)
    try:
        try:
            store = TelemetryStore(root, create=False)
            data = store.read(KEY)
        except (SegmentError, StoreError):
            return "error"
        n = data["t"].size
        if not allow_prefix:
            assert n == pristine["t"].size, (
                "damaged store silently dropped acknowledged rows"
            )
        assert np.array_equal(data["t"], pristine["t"][:n]) and np.array_equal(
            data["value"], pristine["value"][:n]
        ), (
            "damaged store returned DIFFERENT values without raising -- "
            "silently wrong data, the one forbidden outcome"
        )
        return "ok"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _seg_file(root):
    return root / "segments" / "b" / "w" / "n00001" / "strain" / "raw.seg"


def _manifest(root):
    return root / "segments" / "b" / "w" / "n00001" / "strain" / "manifest.json"


class TestSegmentFileDamage:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_truncated_anywhere(self, pristine, data):
        size = _seg_file(pristine["root"]).stat().st_size
        offset = data.draw(st.integers(0, size), label="truncate_at")

        def damage(root):
            path = _seg_file(root)
            path.write_bytes(path.read_bytes()[:offset])

        # A shorter-than-acknowledged file is corruption -> loud error;
        # only offset == size leaves the file intact.
        outcome = _read_must_not_lie(pristine, damage)
        assert outcome == ("ok" if offset == size else "error")

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_flipped_anywhere(self, pristine, data):
        size = _seg_file(pristine["root"]).stat().st_size
        position = data.draw(st.integers(0, size - 1), label="position")
        value = data.draw(st.integers(0, 255), label="value")

        def damage(root):
            path = _seg_file(root)
            raw = bytearray(path.read_bytes())
            raw[position] = value
            path.write_bytes(bytes(raw))

        # Either the flip is a no-op (same byte) or a CRC/frame check
        # trips; "ok with different data" fails inside the helper.
        assert _read_must_not_lie(pristine, damage) in ("ok", "error")

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_garbage_appended_then_recovered(self, pristine, data):
        junk = data.draw(st.binary(min_size=1, max_size=64), label="junk")

        def damage(root):
            with _seg_file(root).open("ab") as handle:
                handle.write(junk)

        # Unacknowledged tail bytes: reads use the manifest index, so
        # the data stays exact; recover() would cut them before appends.
        assert _read_must_not_lie(pristine, damage) == "ok"

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_append_after_torn_tail(self, pristine, data):
        junk = data.draw(st.binary(min_size=1, max_size=64), label="junk")
        scratch, root = _damaged_copy(
            pristine,
            lambda r: _seg_file(r).open("ab").write(junk),
        )
        try:
            store = TelemetryStore(root, create=False)
            t_next = float(pristine["t"][-1] + 1.0)
            store.append(KEY, [t_next], [-1.0])
            data_after = store.read(KEY)
            expected_t = np.append(pristine["t"], t_next)
            expected_v = np.append(pristine["value"], -1.0)
            assert np.array_equal(data_after["t"], expected_t)
            assert np.array_equal(data_after["value"], expected_v)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)


class TestManifestDamage:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_truncated_anywhere(self, pristine, data):
        size = _manifest(pristine["root"]).stat().st_size
        offset = data.draw(st.integers(0, size), label="truncate_at")

        def damage(root):
            path = _manifest(root)
            path.write_bytes(path.read_bytes()[:offset])

        assert _read_must_not_lie(pristine, damage) in ("ok", "error")

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_flipped_anywhere(self, pristine, data):
        size = _manifest(pristine["root"]).stat().st_size
        position = data.draw(st.integers(0, size - 1), label="position")
        value = data.draw(st.integers(0, 255), label="value")

        def damage(root):
            path = _manifest(root)
            raw = bytearray(path.read_bytes())
            raw[position] = value
            path.write_bytes(bytes(raw))

        # A flipped manifest may still parse (e.g. a digit in a crc32
        # changed) -- then the block CRC check trips on read.  A flip in
        # a t0/t1 float may legally re-window a block, which can only
        # *hide* rows, never alter values; hence allow_prefix.
        assert _read_must_not_lie(
            pristine, damage, allow_prefix=True
        ) in ("ok", "error")

    def test_deleted_manifest_quarantines(self, pristine):
        def damage(root):
            _manifest(root).unlink()

        # Data without a manifest: nothing vouches for it; the segment
        # is set aside and reads see an empty (not wrong) series.
        scratch, root = _damaged_copy(pristine, damage)
        try:
            store = TelemetryStore(root, create=False)
            assert store.read(KEY)["t"].size == 0
            assert any((root / ".quarantine").iterdir())
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
