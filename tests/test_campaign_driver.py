"""Tests for the campaign driver: determinism, crash/resume, supervision.

The central contract -- a campaign killed at *any* epoch and resumed
from its last checkpoint produces a final result byte-identical to an
uninterrupted run -- is exercised three ways here: an in-process
exception "crash", a real SIGINT through :class:`ShutdownGuard`, and a
genuine ``SIGKILL`` of a CLI subprocess.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CHECKPOINT_DIRNAME,
    EPOCH_LOG_FILENAME,
    RESULT_FILENAME,
    CampaignConfig,
    EpochLog,
    campaign_status,
    result_hash,
    resume_campaign,
    run_campaign,
    watchdog_available,
)
from repro.cli import main
from repro.errors import CampaignError, CheckpointError
from repro.obs import observed

#: A campaign small enough to run in well under a second but with every
#: moving part engaged: faults, two storm windows, stuck sensors.
SMALL = dict(
    epochs=4,
    nodes=3,
    hours_per_epoch=24,
    seed=11,
    storm_period_epochs=2,
    storm_duration_epochs=1,
    epoch_timeout_s=0.0,
)


def small_config(**overrides):
    return CampaignConfig(**{**SMALL, **overrides})


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted in-memory run every crash variant must match."""
    outcome = run_campaign(small_config())
    assert outcome.completed
    return outcome


class _Crash(Exception):
    """Stand-in for a hard process death at a chosen epoch."""


def _crash_at(epoch):
    def hook(current):
        if current == epoch:
            raise _Crash(f"simulated crash at epoch {current}")

    return hook


class TestInMemoryRun:
    def test_runs_to_completion(self, reference):
        result = reference.result
        assert result.epochs_run == SMALL["epochs"]
        assert result.storm_epochs == (1, 3)
        assert [r["epoch"] for r in result.epoch_records] == [0, 1, 2, 3]
        assert all(r["status"] == "ok" for r in result.epoch_records)
        assert sum(result.grade_fractions.values()) == pytest.approx(1.0)
        assert 0.0 < result.mean_coverage <= 1.0
        assert not reference.interrupted
        assert reference.result_file is None  # in-memory: nothing on disk

    def test_same_config_same_bytes(self, reference):
        again = run_campaign(small_config())
        assert result_hash(again.result) == result_hash(reference.result)

    def test_seed_changes_the_result(self, reference):
        other = run_campaign(small_config(seed=12))
        assert result_hash(other.result) != result_hash(reference.result)


class TestPersistence:
    def test_state_dir_gets_checkpoints_log_and_result(
        self, tmp_path, reference
    ):
        state_dir = tmp_path / "pilot"
        outcome = run_campaign(small_config(), state_dir=state_dir)
        assert result_hash(outcome.result) == result_hash(reference.result)

        names = sorted(p.name for p in (state_dir / CHECKPOINT_DIRNAME).iterdir())
        assert "epoch-000000.json" in names  # the early-kill anchor
        assert "epoch-000004.json" in names

        records = EpochLog(state_dir / EPOCH_LOG_FILENAME).records()
        assert [r["epoch"] for r in records] == [0, 1, 2, 3]

        payload = json.loads((state_dir / RESULT_FILENAME).read_text())
        assert payload["schema"] == "repro/campaign-result/v1"
        assert payload["sha256"] == result_hash(outcome.result)
        assert outcome.result_file == state_dir / RESULT_FILENAME

    def test_status_of_a_completed_campaign(self, tmp_path):
        state_dir = tmp_path / "pilot"
        run_campaign(small_config(), state_dir=state_dir)
        status = campaign_status(state_dir)
        assert status["complete"] is True
        assert status["latest_checkpoint_epoch"] == SMALL["epochs"]
        assert status["verified_epoch"] == SMALL["epochs"]
        assert status["epochs_total"] == SMALL["epochs"]
        assert status["quarantined"] == []

    def test_status_of_an_empty_dir(self, tmp_path):
        status = campaign_status(tmp_path / "nowhere")
        assert status["latest_checkpoint_epoch"] is None
        assert status["complete"] is False


class TestCrashAndResume:
    @pytest.mark.parametrize("kill_epoch", [1, 2, 3])
    def test_resume_after_crash_is_byte_identical(
        self, tmp_path, reference, kill_epoch
    ):
        state_dir = tmp_path / "pilot"
        with pytest.raises(_Crash):
            run_campaign(
                small_config(), state_dir=state_dir,
                epoch_hook=_crash_at(kill_epoch),
            )
        assert not (state_dir / RESULT_FILENAME).exists()

        with observed() as scope:
            outcome = resume_campaign(state_dir)
            assert scope.registry.counter("campaign.resumes").value == 1.0
        assert outcome.completed
        assert outcome.resumed_from_epoch == kill_epoch
        assert result_hash(outcome.result) == result_hash(reference.result)

    def test_sigint_flushes_a_checkpoint_and_resume_finishes(
        self, tmp_path, reference
    ):
        state_dir = tmp_path / "pilot"

        def interrupt_at_2(epoch):
            if epoch == 2:
                os.kill(os.getpid(), signal.SIGINT)

        outcome = run_campaign(
            small_config(), state_dir=state_dir, epoch_hook=interrupt_at_2
        )
        # The guard lets the in-flight epoch finish, then stops cleanly.
        assert outcome.interrupted and not outcome.completed
        assert outcome.signal_name == "SIGINT"
        assert outcome.result is None
        assert outcome.state.epoch == 3

        resumed = resume_campaign(state_dir)
        assert resumed.resumed_from_epoch == 3
        assert result_hash(resumed.result) == result_hash(reference.result)

    def test_resume_with_nothing_there_is_loud(self, tmp_path):
        with pytest.raises(CampaignError, match="nothing to resume"):
            resume_campaign(tmp_path / "empty")

    def test_resume_with_every_checkpoint_corrupt_is_loud(self, tmp_path):
        state_dir = tmp_path / "pilot"
        run_campaign(small_config(), state_dir=state_dir)
        for path in (state_dir / CHECKPOINT_DIRNAME).glob("epoch-*.json"):
            path.write_text("rotted")
        with pytest.raises(CheckpointError, match="corrupt"):
            resume_campaign(state_dir)

    def test_corrupt_newest_checkpoint_rolls_back_and_still_matches(
        self, tmp_path, reference
    ):
        state_dir = tmp_path / "pilot"
        with pytest.raises(_Crash):
            run_campaign(
                small_config(), state_dir=state_dir, epoch_hook=_crash_at(3)
            )
        newest = state_dir / CHECKPOINT_DIRNAME / "epoch-000003.json"
        newest.write_text(newest.read_text()[:-40])  # torn write

        # status sees the rot but must not touch the file.
        status = campaign_status(state_dir)
        assert status["corrupt_checkpoints"]
        assert status["verified_epoch"] == 2
        assert newest.exists()

        # resume quarantines it, rolls back to epoch 2, replays, and the
        # final result is still byte-identical.
        outcome = resume_campaign(state_dir)
        assert outcome.resumed_from_epoch == 2
        assert result_hash(outcome.result) == result_hash(reference.result)
        quarantine = state_dir / CHECKPOINT_DIRNAME / ".quarantine"
        assert [p.name for p in quarantine.iterdir()] == ["epoch-000003.json"]
        # The replay re-wrote a *good* epoch-3 checkpoint in its place.
        from repro.campaign import CheckpointStore

        assert CheckpointStore(newest.parent).verify(newest)["epoch"] == 3


@pytest.mark.skipif(
    not watchdog_available(), reason="SIGALRM watchdog needs a main thread"
)
class TestWatchdog:
    def _hang_at(self, epoch, seconds=1.0):
        def hook(current):
            if current == epoch:
                time.sleep(seconds)

        return hook

    def test_hung_epoch_becomes_a_recorded_degradation(self):
        config = small_config(epoch_timeout_s=0.15)
        with observed() as scope:
            outcome = run_campaign(config, epoch_hook=self._hang_at(1))
            assert (
                scope.registry.counter("campaign.epoch_timeouts").value == 1.0
            )
        result = outcome.result
        assert outcome.completed  # the campaign survives its hung epoch
        assert result.timeouts == [1]
        assert result.epoch_records[1]["status"] == "epoch_timeout"
        assert result.epoch_records[1]["degraded"] is True
        assert result.degraded_epochs >= 1
        # Every other epoch still ran normally.
        assert [r["status"] for r in result.epoch_records].count("ok") == 3

    def test_timeouts_are_deterministic_too(self):
        config = small_config(epoch_timeout_s=0.15)
        first = run_campaign(config, epoch_hook=self._hang_at(1, 0.5))
        second = run_campaign(config, epoch_hook=self._hang_at(1, 0.5))
        assert result_hash(first.result) == result_hash(second.result)


class TestCli:
    ARGS = [
        "--epochs", "4", "--nodes", "3", "--hours-per-epoch", "24",
        "--seed", "11", "--storm-period", "2", "--storm-duration", "1",
    ]

    def test_run_status_and_refusal_to_clobber(
        self, tmp_path, capsys, reference
    ):
        state_dir = str(tmp_path / "pilot")
        assert main(["campaign", "run", "--state-dir", state_dir] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "campaign complete: 4 epoch(s)" in out
        assert result_hash(reference.result) in out

        assert main(["campaign", "status", "--state-dir", state_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True and status["verified_epoch"] == 4

        # A second `run` at the same dir must refuse, not overwrite.
        with pytest.raises(SystemExit, match="already holds a campaign"):
            main(["campaign", "run", "--state-dir", state_dir] + self.ARGS)

    def test_resume_of_nothing_exits_with_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "resume", "--state-dir", str(tmp_path / "no")])
        assert excinfo.value.code == 2
        assert "no such directory" in capsys.readouterr().err


class TestKillDashNine:
    """The real thing: SIGKILL a CLI campaign mid-epoch, resume, compare."""

    EPOCHS = 5

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        reference = run_campaign(small_config(epochs=self.EPOCHS))
        state_dir = tmp_path / "pilot"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                "--state-dir", str(state_dir),
                "--epochs", str(self.EPOCHS), "--nodes", "3",
                "--hours-per-epoch", "24", "--seed", "11",
                "--storm-period", "2", "--storm-duration", "1",
                "--epoch-sleep-s", "0.4",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Let it get at least one real epoch down, then kill -9 while
            # it is asleep inside epoch 2's hook -- mid-epoch by design.
            target = state_dir / CHECKPOINT_DIRNAME / "epoch-000002.json"
            deadline = time.monotonic() + 60.0
            while not target.exists():
                assert proc.poll() is None, "campaign exited before the kill"
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.02)
        finally:
            proc.kill()
        proc.wait(timeout=30)
        assert not (state_dir / RESULT_FILENAME).exists()

        status = campaign_status(state_dir)
        assert status["complete"] is False
        assert 2 <= status["verified_epoch"] < self.EPOCHS

        outcome = resume_campaign(state_dir)
        assert outcome.completed
        assert outcome.resumed_from_epoch >= 2
        assert result_hash(outcome.result) == result_hash(reference.result)
