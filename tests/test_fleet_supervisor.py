"""Fleet supervisor integration tests + the kill-schedule property.

The tentpole contract of ISSUE 8, stated as tests:

* the fleet ``result.json`` sha256 is invariant across worker counts,
  injected worker crashes, hangs caught by the heartbeat watchdog, and
  SIGKILL-and-resume of the supervisor itself;
* a poison shard is quarantined after ``max_restarts`` consecutive
  failures -- loudly (manifest, ``fleet status``, ``fleet.quarantines``
  counter, the result body's ``quarantined`` list) -- while every
  survivor completes byte-identically;
* the hypothesis property: *any* schedule of bounded kills and
  unbounded poisons yields either the clean hash or a loud quarantine
  whose merge is exactly the clean shard payloads minus the poisoned
  buildings -- never a silently different hash.

The merge/status helpers are unit-tested here too (no processes).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignConfig
from repro.errors import FleetError
from repro.faults import WorkerFault, WorkerFaultPlan
from repro.fleet import (
    SHARDS_DIRNAME,
    FleetConfig,
    build_fleet_result,
    building_names,
    fleet_result_hash,
    fleet_status,
    heartbeat_age_s,
    load_shard_result,
    resume_fleet,
    run_fleet,
    write_heartbeat,
)
from repro.obs import observed, obs_registry

BUILDINGS = building_names(3)


def small_campaign(**kw):
    defaults = dict(
        epochs=2, nodes=2, hours_per_epoch=6,
        storm_period_epochs=2, storm_duration_epochs=1,
        epoch_timeout_s=30.0,
    )
    defaults.update(kw)
    return CampaignConfig(**defaults)


def small_fleet(**kw):
    defaults = dict(
        buildings=BUILDINGS, campaign=small_campaign(), workers=3,
        max_restarts=3, heartbeat_timeout_s=30.0,
        backoff_base_s=0.01, backoff_max_s=0.05,
    )
    defaults.update(kw)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory):
    """One clean 3-building run.  Everything else compares against its
    hash and rebuilds merge bodies from its verified shard payloads."""
    fleet_dir = tmp_path_factory.mktemp("clean") / "fleet"
    outcome = run_fleet(small_fleet(), fleet_dir)
    assert outcome.completed and not outcome.degraded
    payloads = {
        name: load_shard_result(fleet_dir / SHARDS_DIRNAME / name)
        for name in BUILDINGS
    }
    return {
        "sha256": outcome.sha256,
        "payloads": payloads,
        "fleet_dir": fleet_dir,
    }


def expected_hash(reference, quarantined):
    """The hash a degraded run must produce: the clean payloads minus
    the quarantined buildings (reasons never enter the body)."""
    survivors = {
        name: payload
        for name, payload in reference["payloads"].items()
        if name not in quarantined
    }
    body = build_fleet_result(
        small_fleet(), survivors,
        {name: "whatever operational reason" for name in quarantined},
    )
    return fleet_result_hash(body)


class TestHashInvariance:
    def test_single_worker_matches_pool(self, clean_reference, tmp_path):
        outcome = run_fleet(small_fleet(workers=1), tmp_path / "fleet")
        assert outcome.sha256 == clean_reference["sha256"]

    def test_kill_restart_is_byte_identical(self, clean_reference, tmp_path):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b002", 1, "kill", times=1),
        ))
        outcome = run_fleet(
            small_fleet(), tmp_path / "fleet", worker_faults=plan
        )
        assert outcome.sha256 == clean_reference["sha256"]
        assert not outcome.degraded
        manifest = json.loads(
            (tmp_path / "fleet" / "fleet.json").read_text()
        )
        assert manifest["supervision"]["restarts"] >= 1
        assert manifest["shards"]["b002"]["failures_total"] == 1

    def test_hang_is_caught_by_heartbeat_and_recovered(
        self, clean_reference, tmp_path
    ):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b001", 1, "hang", times=1),
        ))
        outcome = run_fleet(
            small_fleet(heartbeat_timeout_s=1.0),
            tmp_path / "fleet",
            worker_faults=plan,
        )
        assert outcome.sha256 == clean_reference["sha256"]
        manifest = json.loads(
            (tmp_path / "fleet" / "fleet.json").read_text()
        )
        assert manifest["supervision"]["heartbeat_kills"] >= 1
        assert any(
            "heartbeat gap" in reason
            for reason in manifest["shards"]["b001"]["failures"]
        )

    def test_sigkilled_supervisor_resumes_identically(
        self, clean_reference, tmp_path
    ):
        fleet_dir = tmp_path / "fleet"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "fleet", "run",
                "--fleet-dir", str(fleet_dir),
                "--buildings", "3", "--workers", "3",
                "--epochs", "2", "--nodes", "2", "--hours-per-epoch", "6",
                "--storm-period", "2", "--storm-duration", "1",
                "--epoch-timeout-s", "30",
                "--backoff-base-s", "0.01", "--backoff-max-s", "0.05",
                "--epoch-sleep-s", "0.4",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 30.0
            while not (fleet_dir / "fleet.json").exists():
                assert time.time() < deadline, "fleet never wrote a manifest"
                assert proc.poll() is None, "fleet exited prematurely"
                time.sleep(0.05)
            time.sleep(0.6)  # let workers get into their first epochs
        finally:
            proc.kill()
            proc.wait()
        outcome = resume_fleet(fleet_dir)
        assert outcome.sha256 == clean_reference["sha256"]


class TestQuarantine:
    def test_poison_shard_degrades_loudly(self, clean_reference, tmp_path):
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b002", 1, "poison"),
        ))
        with observed():
            outcome = run_fleet(
                small_fleet(max_restarts=2),
                tmp_path / "fleet",
                worker_faults=plan,
            )
            counters = obs_registry().snapshot()["counters"]

        # The survivors completed deterministically...
        assert outcome.completed and outcome.degraded
        assert sorted(outcome.quarantined) == ["b002"]
        assert outcome.sha256 == expected_hash(clean_reference, {"b002"})
        assert outcome.result["quarantined"] == ["b002"]
        assert outcome.result["totals"]["completed"] == 2
        # ...and the loss is recorded everywhere an operator looks.
        assert counters["fleet.quarantines"] == 1
        assert counters["fleet.worker_failures"] == 2
        manifest = json.loads(
            (tmp_path / "fleet" / "fleet.json").read_text()
        )
        entry = manifest["shards"]["b002"]
        assert entry["status"] == "quarantined"
        assert "2 consecutive failures" in entry["quarantine_reason"]
        status = fleet_status(tmp_path / "fleet")
        assert status["summary"] == {
            "healthy": 2, "recovering": 0, "quarantined": 1,
            "completed": 2, "running": 0, "pending": 0,
        }
        assert status["shards"]["b002"]["status"] == "quarantined"

    def test_resume_gives_a_quarantined_shard_a_fresh_budget(
        self, clean_reference, tmp_path
    ):
        # Poison that expires after 2 attempts: the first run quarantines
        # at max_restarts=2, but a fleet resume resets the consecutive
        # counter, attempt 2 runs clean, and the fleet converges on the
        # clean hash.
        plan = WorkerFaultPlan(faults=(
            WorkerFault("b003", 0, "poison", times=2),
        ))
        first = run_fleet(
            small_fleet(max_restarts=2),
            tmp_path / "fleet",
            worker_faults=plan,
        )
        assert sorted(first.quarantined) == ["b003"]
        second = resume_fleet(tmp_path / "fleet")
        assert not second.degraded
        assert second.sha256 == clean_reference["sha256"]


class TestKillScheduleProperty:
    """Any kill schedule: byte-identical result or loud quarantine."""

    fault_choice = st.one_of(
        st.none(),
        st.tuples(st.just("kill"), st.integers(0, 1), st.integers(1, 2)),
        st.tuples(st.just("poison"), st.integers(0, 1)),
    )

    @given(choices=st.tuples(fault_choice, fault_choice, fault_choice))
    @settings(max_examples=5, deadline=None)
    def test_any_schedule_is_identical_or_loud(
        self, clean_reference, choices
    ):
        faults, poisoned = [], set()
        for building, choice in zip(BUILDINGS, choices):
            if choice is None:
                continue
            if choice[0] == "kill":
                # times <= 2 < max_restarts=3: always recovers.
                faults.append(
                    WorkerFault(building, choice[1], "kill", times=choice[2])
                )
            else:
                faults.append(WorkerFault(building, choice[1], "poison"))
                poisoned.add(building)
        tmp = Path(tempfile.mkdtemp(prefix="fleet-prop-"))
        try:
            outcome = run_fleet(
                small_fleet(),
                tmp / "fleet",
                worker_faults=WorkerFaultPlan(tuple(faults)),
            )
        finally:
            shutil.rmtree(tmp)
        assert outcome.completed
        assert set(outcome.quarantined) == poisoned
        assert outcome.result["quarantined"] == sorted(poisoned)
        if poisoned:
            assert outcome.sha256 == expected_hash(clean_reference, poisoned)
        else:
            assert outcome.sha256 == clean_reference["sha256"]


class TestMerge:
    def test_merge_order_is_canonical(self, clean_reference):
        payloads = clean_reference["payloads"]
        forward = build_fleet_result(small_fleet(), dict(payloads), {})
        reversed_insert = build_fleet_result(
            small_fleet(),
            dict(sorted(payloads.items(), reverse=True)),
            {},
        )
        assert list(forward["buildings"]) == sorted(BUILDINGS)
        assert fleet_result_hash(forward) == fleet_result_hash(
            reversed_insert
        )

    def test_incomplete_coverage_refused(self, clean_reference):
        payloads = dict(clean_reference["payloads"])
        payloads.pop("b002")
        with pytest.raises(FleetError, match="incomplete fleet"):
            build_fleet_result(small_fleet(), payloads, {})

    def test_completed_and_quarantined_overlap_refused(self, clean_reference):
        with pytest.raises(FleetError, match="both completed and quarantined"):
            build_fleet_result(
                small_fleet(),
                clean_reference["payloads"],
                {"b001": "but it also finished?"},
            )

    def test_unknown_building_refused(self, clean_reference):
        payloads = dict(clean_reference["payloads"])
        payloads["zz-not-ours"] = payloads["b001"]
        with pytest.raises(FleetError, match="not in the fleet roster"):
            build_fleet_result(small_fleet(), payloads, {})

    def test_missing_shard_result_is_none(self, tmp_path):
        assert load_shard_result(tmp_path / "nothing-here") is None

    def test_tampered_shard_result_fails_verification(
        self, clean_reference, tmp_path
    ):
        source = (
            clean_reference["fleet_dir"] / SHARDS_DIRNAME / "b001"
            / "result.json"
        )
        payload = json.loads(source.read_text())
        payload["result"]["epochs_run"] = 999  # bit-rot / hand edit
        shard_dir = tmp_path / "shard"
        shard_dir.mkdir()
        (shard_dir / "result.json").write_text(json.dumps(payload))
        with pytest.raises(FleetError, match="hash verification"):
            load_shard_result(shard_dir)

    def test_wrong_schema_refused(self, tmp_path):
        shard_dir = tmp_path / "shard"
        shard_dir.mkdir()
        (shard_dir / "result.json").write_text(
            json.dumps({"schema": "other/v9", "sha256": "x", "result": {}})
        )
        with pytest.raises(FleetError, match="not a campaign result"):
            load_shard_result(shard_dir)


class TestStatusAndGuards:
    def test_status_on_missing_dir_raises(self, tmp_path):
        with pytest.raises(FleetError, match="no fleet at"):
            fleet_status(tmp_path / "ghost")

    def test_run_refuses_a_used_directory(self, clean_reference):
        with pytest.raises(FleetError, match="already hosts a fleet"):
            run_fleet(small_fleet(), clean_reference["fleet_dir"])

    def test_resume_of_nothing_raises(self, tmp_path):
        with pytest.raises(FleetError, match="nothing to resume"):
            resume_fleet(tmp_path / "ghost")

    def test_heartbeat_round_trip(self, tmp_path):
        write_heartbeat(tmp_path, "b001", 3)
        age = heartbeat_age_s(tmp_path)
        assert age is not None and 0.0 <= age < 5.0
        payload = json.loads((tmp_path / "heartbeat.json").read_text())
        assert payload["building"] == "b001" and payload["epoch"] == 3
        assert heartbeat_age_s(tmp_path / "nope") is None


class TestFleetCli:
    def test_quarantine_exits_4_and_status_reports_it(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        plan_file = tmp_path / "plan.json"
        WorkerFaultPlan(faults=(
            WorkerFault("b002", 0, "poison"),
        )).to_json_file(plan_file)
        code = main([
            "fleet", "run", "--fleet-dir", str(tmp_path / "fleet"),
            "--buildings", "3", "--workers", "3",
            "--epochs", "2", "--nodes", "2", "--hours-per-epoch", "6",
            "--storm-period", "2", "--storm-duration", "1",
            "--epoch-timeout-s", "30",
            "--max-restarts", "2",
            "--backoff-base-s", "0.01", "--backoff-max-s", "0.05",
            "--worker-faults", str(plan_file),
        ])
        out = capsys.readouterr().out
        assert code == 4
        assert "QUARANTINED b002" in out
        code = main([
            "fleet", "status", "--fleet-dir", str(tmp_path / "fleet"),
            "--json",
        ])
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["summary"]["quarantined"] == 1
        assert status["complete"] is True
