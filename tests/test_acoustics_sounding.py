"""Unit tests for channel sounding (delay spread, coherence bandwidth)."""

import math

import pytest

from repro.acoustics import (
    Arrival,
    StructureGeometry,
    sound_arrivals,
    sound_structure,
)
from repro.errors import AcousticsError
from repro.materials import get_concrete

NC = get_concrete("NC").medium


def make_arrival(delay, amplitude):
    return Arrival(delay=delay, amplitude=amplitude, bounces=0, path_length=1.0)


class TestSoundArrivals:
    def test_single_path_zero_spread(self):
        sounding = sound_arrivals([make_arrival(1e-3, 1.0)])
        assert sounding.rms_delay_spread == 0.0
        assert math.isinf(sounding.coherence_bandwidth)
        assert sounding.n_significant_paths == 1

    def test_two_equal_paths(self):
        # Equal powers at 0 and tau: rms spread = tau/2.
        tau = 100e-6
        sounding = sound_arrivals(
            [make_arrival(1e-3, 1.0), make_arrival(1e-3 + tau, 1.0)]
        )
        assert sounding.rms_delay_spread == pytest.approx(tau / 2.0)
        assert sounding.mean_excess_delay == pytest.approx(tau / 2.0)
        assert sounding.coherence_bandwidth == pytest.approx(1.0 / (5.0 * tau / 2.0))

    def test_power_floor_drops_weak_echoes(self):
        sounding = sound_arrivals(
            [make_arrival(1e-3, 1.0), make_arrival(5e-3, 1e-4)],
            power_floor=1e-3,
        )
        assert sounding.n_significant_paths == 1

    def test_rejects_empty(self):
        with pytest.raises(AcousticsError):
            sound_arrivals([])

    def test_supports_bitrate(self):
        tau = 50e-6
        sounding = sound_arrivals(
            [make_arrival(0.0, 1.0), make_arrival(tau, 1.0)]
        )
        assert sounding.supports_bitrate(1e3)
        assert not sounding.supports_bitrate(1e6)

    def test_supports_bitrate_rejects_nonpositive(self):
        sounding = sound_arrivals([make_arrival(0.0, 1.0)])
        with pytest.raises(AcousticsError):
            sounding.supports_bitrate(0.0)


class TestSoundStructure:
    def make_wall(self, thickness):
        return StructureGeometry(
            "sounding wall", length=10.0, thickness=thickness, medium=NC
        )

    def test_thin_wall_shorter_delay_spread(self):
        # Closer faces -> tighter echo cluster -> wider coherence band.
        thin = sound_structure(self.make_wall(0.2), (0.0, 0.1), (1.0, 0.1))
        thick = sound_structure(self.make_wall(0.7), (0.0, 0.35), (1.0, 0.35))
        assert thin.rms_delay_spread < thick.rms_delay_spread
        assert thin.coherence_bandwidth > thick.coherence_bandwidth

    def test_wall_supports_paper_bitrates(self):
        # The 20 cm wall's coherence bandwidth accommodates the paper's
        # kbps-scale uplink at 1 m.
        sounding = sound_structure(self.make_wall(0.2), (0.0, 0.1), (1.0, 0.1))
        assert sounding.supports_bitrate(1e3)

    def test_many_significant_paths_in_a_guided_wall(self):
        sounding = sound_structure(self.make_wall(0.2), (0.0, 0.1), (2.0, 0.1))
        assert sounding.n_significant_paths > 5

    def test_distance_grows_spread(self):
        near = sound_structure(self.make_wall(0.2), (0.0, 0.1), (0.5, 0.1))
        far = sound_structure(self.make_wall(0.2), (0.0, 0.1), (4.0, 0.1))
        # Far links collect later high-order images relative to the
        # direct path.
        assert far.n_significant_paths >= near.n_significant_paths