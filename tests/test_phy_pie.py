"""Unit tests for Pulse Interval Encoding (Fig. 6)."""

import numpy as np
import pytest

from repro.errors import DecodingError, EncodingError
from repro.phy import (
    PieTiming,
    decode_edge_durations,
    decode_intervals,
    duty_cycle,
    pie_encode,
    pie_encode_baseband,
)


class TestPieTiming:
    def test_durations(self):
        timing = PieTiming(tari=100e-6, low=100e-6, one_high_factor=3.0)
        assert timing.zero_duration == pytest.approx(200e-6)
        assert timing.one_duration == pytest.approx(400e-6)

    def test_decision_threshold_between_symbols(self):
        timing = PieTiming()
        assert timing.tari < timing.decision_threshold
        assert timing.decision_threshold < timing.one_high_factor * timing.tari

    def test_mean_bitrate(self):
        timing = PieTiming(tari=250e-6, low=250e-6)
        assert timing.mean_bitrate() == pytest.approx(2 / (500e-6 + 1000e-6))

    def test_rejects_nonpositive_intervals(self):
        with pytest.raises(EncodingError):
            PieTiming(tari=0.0)

    def test_rejects_short_one(self):
        with pytest.raises(EncodingError):
            PieTiming(one_high_factor=1.0)


class TestEncode:
    def test_bit_zero_segments(self):
        timing = PieTiming(tari=1.0, low=1.0)
        assert pie_encode([0], timing) == [(1.0, 1), (1.0, 0)]

    def test_bit_one_segments(self):
        timing = PieTiming(tari=1.0, low=1.0, one_high_factor=3.0)
        assert pie_encode([1], timing) == [(3.0, 1), (1.0, 0)]

    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            pie_encode([0, 2])

    def test_baseband_length(self):
        timing = PieTiming(tari=100e-6, low=100e-6)
        baseband = pie_encode_baseband([0, 1], 1e6, timing)
        expected = int((timing.zero_duration + timing.one_duration) * 1e6)
        assert baseband.size == expected

    def test_baseband_levels(self):
        baseband = pie_encode_baseband([0], 1e6, PieTiming(tari=100e-6, low=100e-6))
        assert set(np.unique(baseband)) <= {0.0, 1.0}

    def test_baseband_rejects_low_sample_rate(self):
        with pytest.raises(EncodingError):
            pie_encode_baseband([0], 100.0, PieTiming(tari=1e-6, low=1e-6))


class TestDecode:
    def test_round_trip(self):
        timing = PieTiming()
        bits = [0, 1, 1, 0, 0, 1, 0]
        assert decode_intervals(pie_encode(bits, timing), timing) == bits

    def test_tolerates_jitter(self):
        timing = PieTiming(tari=100e-6, low=100e-6)
        segments = [(105e-6, 1), (98e-6, 0), (290e-6, 1), (102e-6, 0)]
        assert decode_intervals(segments, timing) == [0, 1]

    def test_rejects_wrong_structure(self):
        timing = PieTiming()
        with pytest.raises(DecodingError):
            decode_intervals([(timing.tari, 0)], timing)  # starts low

    def test_rejects_truncated_symbol(self):
        timing = PieTiming()
        with pytest.raises(DecodingError):
            decode_intervals([(timing.tari, 1)], timing)  # missing low edge

    def test_rejects_out_of_spec_low_edge(self):
        timing = PieTiming(tari=100e-6, low=100e-6)
        with pytest.raises(DecodingError):
            decode_intervals([(100e-6, 1), (400e-6, 0)], timing)

    def test_edge_durations_with_leading_idle(self):
        timing = PieTiming(tari=100e-6, low=100e-6)
        durations = [50e-6, 100e-6, 100e-6, 300e-6, 100e-6]
        assert decode_edge_durations(durations, first_level=0, timing=timing) == [0, 1]

    def test_edge_durations_rejects_bad_level(self):
        with pytest.raises(DecodingError):
            decode_edge_durations([1e-3], first_level=2)


class TestDutyCycle:
    def test_all_zeros_is_half(self):
        # Paper: equal edges for bit 0 ensure >= 50 % power delivery.
        timing = PieTiming(tari=100e-6, low=100e-6)
        assert duty_cycle([0] * 50, timing) == pytest.approx(0.5)

    def test_balanced_random_near_63_percent(self):
        # Paper: a balanced stream with 3x bit-1 highs gives ~63 %.
        timing = PieTiming(tari=100e-6, low=100e-6, one_high_factor=3.0)
        bits = [0, 1] * 100
        assert duty_cycle(bits, timing) == pytest.approx(4.0 / 6.0, abs=0.04)

    def test_all_ones_is_three_quarters(self):
        timing = PieTiming(tari=100e-6, low=100e-6, one_high_factor=3.0)
        assert duty_cycle([1] * 10, timing) == pytest.approx(0.75)

    def test_rejects_empty(self):
        with pytest.raises(EncodingError):
            duty_cycle([])
