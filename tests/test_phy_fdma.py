"""Unit tests for the FDMA multi-node uplink."""

import numpy as np
import pytest

from repro.errors import DecodingError, EncodingError
from repro.phy import FdmaPlan, FdmaReceiver, composite_waveform

SAMPLE_RATE = 1e6


def make_plan(blfs=(10e3, 20e3, 30e3), bitrate=1e3):
    return FdmaPlan(
        carrier=230e3,
        bitrate=bitrate,
        blf_by_node={i + 1: blf for i, blf in enumerate(blfs)},
    )


def make_payloads(plan, n_bits=16, seed=0):
    rng = np.random.default_rng(seed)
    return {
        node_id: list(rng.integers(0, 2, size=n_bits))
        for node_id in plan.blf_by_node
    }


class TestFdmaPlan:
    def test_valid_plan(self):
        plan = make_plan()
        assert len(plan.blf_by_node) == 3

    def test_rejects_crowded_blfs(self):
        with pytest.raises(EncodingError):
            make_plan(blfs=(10e3, 11e3))

    def test_rejects_blf_above_carrier(self):
        with pytest.raises(EncodingError):
            FdmaPlan(carrier=230e3, bitrate=1e3, blf_by_node={1: 240e3})

    def test_rejects_empty_plan(self):
        with pytest.raises(EncodingError):
            FdmaPlan(carrier=230e3, bitrate=1e3, blf_by_node={})


class TestCompositeWaveform:
    def test_length_matches_payload_plus_settle(self):
        plan = make_plan()
        payloads = make_payloads(plan, n_bits=8)
        waveform = composite_waveform(plan, payloads, SAMPLE_RATE, seed=1)
        n = plan.modulator_for(1).samples_per_symbol(SAMPLE_RATE)
        assert waveform.size == (8 + plan.settle_symbols) * n

    def test_rejects_mismatched_nodes(self):
        plan = make_plan()
        with pytest.raises(EncodingError):
            composite_waveform(plan, {1: [1, 0]}, SAMPLE_RATE)

    def test_rejects_unequal_payloads(self):
        plan = make_plan(blfs=(10e3, 20e3))
        with pytest.raises(EncodingError):
            composite_waveform(plan, {1: [1, 0], 2: [1, 0, 1]}, SAMPLE_RATE)


class TestFdmaReceiver:
    def test_decodes_three_simultaneous_nodes(self):
        plan = make_plan()
        payloads = make_payloads(plan, n_bits=16, seed=5)
        waveform = composite_waveform(plan, payloads, SAMPLE_RATE, seed=2)
        receiver = FdmaReceiver(plan=plan, sample_rate=SAMPLE_RATE)
        decoded = receiver.decode_all(waveform, n_bits=16)
        assert decoded == payloads

    def test_single_node_branch(self):
        plan = make_plan(blfs=(14e3,))
        payloads = make_payloads(plan, n_bits=12, seed=6)
        waveform = composite_waveform(plan, payloads, SAMPLE_RATE, seed=3)
        receiver = FdmaReceiver(plan=plan)
        assert receiver.decode_node(waveform, 1, 12) == payloads[1]

    def test_unknown_node_rejected(self):
        plan = make_plan()
        receiver = FdmaReceiver(plan=plan)
        with pytest.raises(DecodingError):
            receiver.decode_node(np.zeros(1000), 99, 4)

    def test_short_capture_rejected(self):
        plan = make_plan()
        receiver = FdmaReceiver(plan=plan)
        with pytest.raises(DecodingError):
            receiver.decode_node(np.zeros(100), 1, 64)

    def test_sideband_above_nyquist_rejected(self):
        plan = FdmaPlan(carrier=230e3, bitrate=1e3, blf_by_node={1: 200e3})
        with pytest.raises(DecodingError):
            FdmaReceiver(plan=plan, sample_rate=800e3)

    def test_robust_to_noise(self):
        plan = make_plan(blfs=(12e3, 24e3))
        payloads = make_payloads(plan, n_bits=20, seed=8)
        waveform = composite_waveform(
            plan, payloads, SAMPLE_RATE, noise_floor=8e-3, seed=4
        )
        receiver = FdmaReceiver(plan=plan)
        decoded = receiver.decode_all(waveform, n_bits=20)
        assert decoded == payloads
