"""Failure-injection tests: the stack must fail loudly and recover cleanly."""

import numpy as np
import pytest

from repro.errors import CrcError, DecodingError, PowerError, ProtocolError
from repro.node import EcoCapsule, Environment
from repro.protocol import (
    Ack,
    Query,
    ReadSensor,
    SensorReport,
    parse_command,
)


class TestCorruptedPackets:
    def test_flipped_bit_in_every_position_is_caught_or_changes_meaning(self):
        """No corrupted SensorReport may decode to a wrong value silently
        when the flip touches the protected body."""
        report = SensorReport.from_value(7, "temperature", 26.5)
        clean_bits = report.to_bits()
        for index in range(len(clean_bits)):
            corrupted = clean_bits.copy()
            corrupted[index] ^= 1
            with pytest.raises(CrcError):
                SensorReport.from_bits(corrupted)

    def test_truncated_command_rejected(self):
        bits = Query(q=3).to_bits()
        with pytest.raises(ProtocolError):
            parse_command(bits[:8])

    def test_garbage_command_rejected(self):
        rng = np.random.default_rng(0)
        rejected = 0
        for _ in range(50):
            bits = list(rng.integers(0, 2, size=15))
            try:
                parse_command(bits)
            except (ProtocolError, CrcError):
                rejected += 1
        # Random 15-bit strings almost never pass both the command-code
        # and CRC checks.
        assert rejected >= 48


class TestPowerLoss:
    def test_field_collapse_mid_handshake_resets_cleanly(self):
        capsule = EcoCapsule(node_id=2, seed=3)
        capsule.apply_field(2.0)
        reply = capsule.handle(Query(q=0))
        capsule.handle(Ack(rn16=reply.rn16))
        assert capsule.protocol.is_acknowledged

        # The reader walks away: the CBW dies before the sensor read.
        capsule.apply_field(0.0)
        with pytest.raises(PowerError):
            capsule.handle(ReadSensor(channel="temperature"))

        # Power returns: the node starts from READY, not ACKNOWLEDGED.
        capsule.apply_field(2.0)
        assert capsule.protocol.state == "ready"
        reply = capsule.handle(Query(q=0))
        assert reply is not None

    def test_brownout_between_reads(self):
        capsule = EcoCapsule(
            node_id=4, environment=Environment(temperature=25.0), seed=5
        )
        capsule.apply_field(2.0)
        reply = capsule.handle(Query(q=0))
        capsule.handle(Ack(rn16=reply.rn16))
        first = capsule.handle(ReadSensor(channel="temperature"))
        assert first is not None

        capsule.apply_field(0.4)  # below activation: brownout
        with pytest.raises(PowerError):
            capsule.handle(ReadSensor(channel="humidity"))


class TestChannelCollapse:
    def test_decoder_rejects_silent_capture(self):
        from repro.phy import BackscatterModulator
        from repro.reader import ReaderReceiver

        receiver = ReaderReceiver(modulator=BackscatterModulator())
        silence = np.zeros(int(1e5))
        with pytest.raises(DecodingError):
            # No carrier to estimate: the capture is all zeros.
            receiver.decode(silence, 200)

    def test_session_with_unreachable_wall(self):
        from repro.acoustics import StructureGeometry
        from repro.link import PlacedNode, PowerUpLink, WallSession
        from repro.materials import get_concrete

        wall = StructureGeometry(
            "far wall", length=50.0, thickness=0.6,
            medium=get_concrete("NC").medium,
        )
        session = WallSession(
            budget=PowerUpLink(wall),
            nodes=[
                PlacedNode(capsule=EcoCapsule(node_id=1, seed=1), distance=45.0)
            ],
            tx_voltage=50.0,
        )
        result = session.run()
        assert result.powered_nodes == []
        assert result.reports == {}

    def test_uplink_at_hopeless_snr_fails_gracefully(self):
        from repro.link import UplinkBasebandSimulator

        sim = UplinkBasebandSimulator(seed=7)
        result = sim.run([1, 0, 1, 1] * 25, bitrate=1e3, snr_db=-20.0)
        assert not result.synced
        assert 0.2 < result.ber < 0.8  # coin flips, not a crash


class TestSensorFaults:
    def test_out_of_range_environment_surfaces_the_fault(self):
        from repro.circuits import SensorError

        capsule = EcoCapsule(
            node_id=6, environment=Environment(temperature=500.0), seed=8
        )
        capsule.apply_field(2.0)
        with pytest.raises(SensorError):
            capsule.read_sensor("temperature")

    def test_report_encoding_rejects_unencodable_values(self):
        with pytest.raises(ProtocolError):
            SensorReport.from_value(1, "strain", 1e6)
