"""Tests for the parallel runner and run manifests (runtime.runner)."""

import json

import pytest

from repro.errors import ManifestError
from repro.runtime import (
    ExperimentSpec,
    load_manifest,
    run_experiments,
    validate_manifest,
)
from repro.reporting import load_result, load_run

#: A tiny always-works experiment body for synthetic specs.
_OK_BODY = '''
def run(seed: int = 0, value: float = 1.5):
    """Synthetic experiment for runner tests."""
    return {"seed": seed, "value": value}
'''

_FAIL_BODY = '''
def run(seed: int = 0):
    """Synthetic experiment that always explodes."""
    raise ValueError("intentional failure for isolation tests")
'''

_SLEEP_BODY = '''
import time


def run(seed: int = 0):
    """Synthetic experiment that never finishes in time."""
    time.sleep(60.0)
    return {}
'''


def _make_spec(tmp_path, monkeypatch, name, body, params=None):
    (tmp_path / "synthmods").mkdir(exist_ok=True)
    module_file = tmp_path / "synthmods" / f"{name}.py"
    module_file.write_text(body)
    monkeypatch.syspath_prepend(str(tmp_path / "synthmods"))
    defaults = {"seed": 0}
    defaults.update(params or {})
    return ExperimentSpec(
        name=name,
        module_name=name,
        title=f"synthetic {name}",
        default_params=defaults,
        seed=0,
    )


class TestSweep:
    NAMES = ["fig04", "fig13", "tables"]

    def test_parallel_sweep_writes_results_and_manifest(self, tmp_path):
        report = run_experiments(
            names=self.NAMES, jobs=2, out_dir=tmp_path, quick=True
        )
        assert report.ok
        assert [o.name for o in report.outcomes] == self.NAMES  # ordered
        for outcome in report.outcomes:
            payload = load_result(report.run_dir / outcome.result_file)
            assert payload["experiment"] == outcome.name
            assert payload["seed"] == outcome.seed
            assert payload["result"] is not None
        manifest = load_manifest(report.run_dir)  # validates or raises
        assert manifest["totals"]["ok"] == len(self.NAMES)
        assert manifest["jobs"] == 2

    def test_load_run_round_trips_the_sweep(self, tmp_path):
        report = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        results = load_run(report.run_dir)
        assert set(results) == {"fig13"}
        assert results["fig13"]["result"]["standby_power"] > 0.0

    def test_inline_and_parallel_agree(self, tmp_path):
        inline = run_experiments(
            names=["fig13"], jobs=0, out_dir=tmp_path / "a", force=True
        )
        parallel = run_experiments(
            names=["fig13"], jobs=2, out_dir=tmp_path / "b", force=True
        )
        assert inline.outcomes[0].result == parallel.outcomes[0].result


class TestIsolation:
    def test_one_failing_experiment_does_not_kill_the_sweep(
        self, tmp_path, monkeypatch
    ):
        specs = [
            _make_spec(tmp_path, monkeypatch, "synth_ok_a", _OK_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_boom", _FAIL_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_ok_b", _OK_BODY),
        ]
        report = run_experiments(specs=specs, jobs=2, out_dir=tmp_path / "out")
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["synth_ok_a"].status == "ok"
        assert by_name["synth_ok_b"].status == "ok"
        assert by_name["synth_boom"].status == "failed"
        assert "intentional failure" in by_name["synth_boom"].error
        # The manifest still validates with the failure recorded.
        manifest = load_manifest(report.run_dir)
        assert manifest["totals"]["failed"] == 1

    def test_timeout_marks_the_experiment_and_spares_the_rest(
        self, tmp_path, monkeypatch
    ):
        specs = [
            _make_spec(tmp_path, monkeypatch, "synth_slow", _SLEEP_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_ok_c", _OK_BODY),
        ]
        report = run_experiments(
            specs=specs, jobs=2, out_dir=tmp_path / "out", timeout_s=1.5
        )
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["synth_slow"].status == "timeout"
        assert by_name["synth_ok_c"].status == "ok"

    def test_source_change_invalidates_the_cache(self, tmp_path, monkeypatch):
        spec = _make_spec(tmp_path, monkeypatch, "synth_mutant", _OK_BODY)
        out = tmp_path / "out"
        first = run_experiments(specs=[spec], jobs=0, out_dir=out)
        assert first.outcomes[0].cache == "miss"
        again = run_experiments(specs=[spec], jobs=0, out_dir=out)
        assert again.outcomes[0].cache == "hit"

        # Rewrite the module with different source (same behaviour) and
        # reload so inspect sees the new text.
        import importlib
        import linecache
        import sys

        module_file = tmp_path / "synthmods" / "synth_mutant.py"
        module_file.write_text(_OK_BODY + "\n# tweaked\n")
        linecache.clearcache()
        importlib.invalidate_caches()
        importlib.reload(sys.modules["synth_mutant"])

        changed = run_experiments(specs=[spec], jobs=0, out_dir=out)
        assert changed.outcomes[0].cache == "miss"
        assert changed.outcomes[0].cache_key != first.outcomes[0].cache_key


class TestManifestValidation:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(tmp_path)

    def test_unreadable_manifest_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("not json {")
        with pytest.raises(ManifestError):
            load_manifest(tmp_path)

    def test_validator_reports_missing_fields(self):
        problems = validate_manifest({"schema": "repro/run-manifest/v1"})
        assert any("run_id" in p for p in problems)
        assert any("experiments" in p for p in problems)

    def test_validator_rejects_tampered_totals(self, tmp_path):
        report = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        manifest = json.loads(
            (report.run_dir / "manifest.json").read_text()
        )
        assert validate_manifest(manifest) == []
        manifest["totals"]["ok"] = 99
        assert any("totals" in p for p in validate_manifest(manifest))

    def test_validator_rejects_bad_status(self, tmp_path):
        report = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        manifest = report.manifest
        manifest["experiments"][0]["status"] = "exploded"
        assert any("status" in p for p in validate_manifest(manifest))


#: Fails on the first attempt, succeeds once its flag file exists --
#: the shape of a transient crash the retry pass should absorb.
_FLAKY_BODY = '''
from pathlib import Path


def run(seed: int = 0, flag: str = ""):
    """Synthetic experiment that fails until its flag file exists."""
    marker = Path(flag)
    if not marker.exists():
        marker.write_text("tried")
        raise RuntimeError("transient failure")
    return {"recovered": True}
'''


class TestRetries:
    def test_transient_failure_recovers_with_retries(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "flaky.flag"
        spec = _make_spec(
            tmp_path, monkeypatch, "synth_flaky", _FLAKY_BODY,
            params={"flag": str(flag)},
        )
        report = run_experiments(
            specs=[spec], jobs=0, out_dir=tmp_path / "out",
            retries=2, retry_backoff_s=0.01,
        )
        assert report.ok
        outcome = report.outcomes[0]
        assert outcome.attempts == 2
        assert outcome.result == {"recovered": True}
        entry = report.manifest["experiments"][0]
        assert entry["attempts"] == 2
        assert load_manifest(report.run_dir)  # manifest still validates

    def test_no_retries_leaves_transient_failure(self, tmp_path, monkeypatch):
        flag = tmp_path / "flaky2.flag"
        spec = _make_spec(
            tmp_path, monkeypatch, "synth_flaky2", _FLAKY_BODY,
            params={"flag": str(flag)},
        )
        report = run_experiments(specs=[spec], jobs=0, out_dir=tmp_path / "out")
        assert not report.ok
        assert report.outcomes[0].attempts == 1
        assert "attempts" not in report.manifest["experiments"][0]

    def test_deterministic_failure_exhausts_retries(
        self, tmp_path, monkeypatch
    ):
        spec = _make_spec(tmp_path, monkeypatch, "synth_fail_retry", _FAIL_BODY)
        report = run_experiments(
            specs=[spec], jobs=0, out_dir=tmp_path / "out",
            retries=2, retry_backoff_s=0.01,
        )
        assert not report.ok
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 3  # first try + 2 retries
        assert "intentional failure" in outcome.error

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_experiments(names=["fig13"], out_dir=tmp_path, retries=-1)


_INTERRUPT_BODY = '''
def run(seed: int = 0):
    """Synthetic experiment standing in for ctrl-c mid-sweep."""
    raise KeyboardInterrupt("operator pressed ctrl-c")
'''

_SIGTERM_BODY = '''
import os
import signal


def run(seed: int = 0):
    """Synthetic experiment standing in for an orchestrator's TERM."""
    os.kill(os.getpid(), signal.SIGTERM)
    return {}
'''


class TestInterrupt:
    """SIGINT/SIGTERM stop the sweep but still leave a valid manifest."""

    def test_interrupt_keeps_finished_work_and_marks_the_rest(
        self, tmp_path, monkeypatch
    ):
        specs = [
            _make_spec(tmp_path, monkeypatch, "synth_done", _OK_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_ctrlc", _INTERRUPT_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_never", _OK_BODY),
        ]
        report = run_experiments(specs=specs, jobs=0, out_dir=tmp_path / "out")
        assert report.interrupted and not report.ok
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["synth_done"].status == "ok"
        assert by_name["synth_ctrlc"].status == "interrupted"
        assert by_name["synth_never"].status == "interrupted"
        assert "sweep interrupted" in by_name["synth_never"].error

        # The completed experiment's result file survived the interrupt.
        payload = load_result(
            report.run_dir / by_name["synth_done"].result_file
        )
        assert payload["result"] == {"seed": 0, "value": 1.5}

        # The partial manifest is a *valid* manifest.
        manifest = load_manifest(report.run_dir)
        assert manifest["interrupted"] is True
        assert manifest["totals"]["ok"] == 1

    def test_sigterm_is_converted_and_handled_the_same_way(
        self, tmp_path, monkeypatch
    ):
        specs = [
            _make_spec(tmp_path, monkeypatch, "synth_term", _SIGTERM_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_after", _OK_BODY),
        ]
        report = run_experiments(specs=specs, jobs=0, out_dir=tmp_path / "out")
        assert report.interrupted
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["synth_term"].status == "interrupted"
        assert by_name["synth_after"].status == "interrupted"
        assert load_manifest(report.run_dir)["interrupted"] is True
        # The handler was uninstalled on the way out.
        import signal as signal_module

        assert (
            signal_module.getsignal(signal_module.SIGTERM)
            is signal_module.SIG_DFL
        )

    def test_interrupt_is_counted_in_obs(self, tmp_path, monkeypatch):
        from repro.obs import observed

        spec = _make_spec(
            tmp_path, monkeypatch, "synth_ctrlc2", _INTERRUPT_BODY
        )
        with observed() as scope:
            report = run_experiments(
                specs=[spec], jobs=0, out_dir=tmp_path / "out"
            )
            assert (
                scope.registry.counter("runner.interrupted").value == 1.0
            )
        assert report.interrupted

    def test_parallel_interrupt_reaps_the_pool_and_writes_a_manifest(
        self, tmp_path, monkeypatch
    ):
        specs = [
            _make_spec(tmp_path, monkeypatch, "synth_par_a", _OK_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_par_boom", _INTERRUPT_BODY),
            _make_spec(tmp_path, monkeypatch, "synth_par_b", _OK_BODY),
        ]
        report = run_experiments(specs=specs, jobs=2, out_dir=tmp_path / "out")
        assert report.interrupted
        # Completion of the neighbours is scheduling-dependent; what is
        # guaranteed: every outcome is terminal, the interrupt itself is
        # marked, and the manifest validates.
        assert all(
            o.status in ("ok", "interrupted") for o in report.outcomes
        )
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["synth_par_boom"].status == "interrupted"
        assert load_manifest(report.run_dir)["interrupted"] is True

    def test_validator_demands_the_top_level_interrupted_flag(
        self, tmp_path, monkeypatch
    ):
        spec = _make_spec(tmp_path, monkeypatch, "synth_ctrlc3", _INTERRUPT_BODY)
        report = run_experiments(specs=[spec], jobs=0, out_dir=tmp_path / "out")
        manifest = json.loads(
            (report.run_dir / "manifest.json").read_text()
        )
        assert validate_manifest(manifest) == []
        del manifest["interrupted"]
        assert any("interrupted" in p for p in validate_manifest(manifest))
