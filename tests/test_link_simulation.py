"""Unit tests for the end-to-end link simulators."""

import math

import numpy as np
import pytest

from repro.acoustics import ConcreteBlock
from repro.errors import AcousticsError, DecodingError
from repro.link import (
    DownlinkSimulator,
    SnrBitrateModel,
    UplinkBasebandSimulator,
    UplinkPassbandSimulator,
)
from repro.materials import get_concrete


class TestBasebandSimulator:
    def test_clean_link_error_free(self):
        sim = UplinkBasebandSimulator(seed=0)
        result = sim.run([1, 0, 1, 1, 0] * 20, bitrate=1e3, snr_db=20.0)
        assert result.synced
        assert result.bit_errors == 0
        assert result.ber == 0.0

    def test_throughput_accounting(self):
        sim = UplinkBasebandSimulator(seed=0)
        result = sim.run([1, 0] * 50, bitrate=1e3, snr_db=20.0)
        assert result.duration == pytest.approx(0.1)
        assert result.throughput == pytest.approx(1e3, rel=0.01)

    def test_low_snr_is_coin_flip(self):
        sim = UplinkBasebandSimulator(seed=1)
        ber = sim.measure_ber(0.0, total_bits=4000)
        assert ber == pytest.approx(0.5, abs=0.08)

    def test_waterfall_between_2_and_8_db(self):
        sim = UplinkBasebandSimulator(seed=2)
        ber_2 = sim.measure_ber(2.0, total_bits=4000)
        ber_8 = sim.measure_ber(8.0, total_bits=4000)
        assert ber_2 > 0.3  # near coin-flip (the paper's 2 dB point)
        assert ber_8 < 5e-3  # deep into the floor

    def test_detection_probability_monotone(self):
        sim = UplinkBasebandSimulator()
        probs = [sim.detection_probability(snr) for snr in (0.0, 2.0, 4.0, 8.0)]
        assert probs == sorted(probs)
        assert probs[0] < 0.01
        assert probs[-1] > 0.99

    def test_noise_sigma_decreases_with_snr(self):
        sim = UplinkBasebandSimulator()
        assert sim.noise_sigma(10.0) < sim.noise_sigma(0.0)

    def test_rejects_empty_payload(self):
        sim = UplinkBasebandSimulator()
        with pytest.raises(DecodingError):
            sim.run([], bitrate=1e3, snr_db=10.0)

    def test_rejects_odd_spb(self):
        with pytest.raises(DecodingError):
            UplinkBasebandSimulator(samples_per_symbol=9)

    def test_reproducible_with_seed(self):
        a = UplinkBasebandSimulator(seed=5).measure_ber(5.0, total_bits=2000)
        b = UplinkBasebandSimulator(seed=5).measure_ber(5.0, total_bits=2000)
        assert a == b


class TestSnrBitrateModel:
    def test_monotone_decreasing(self):
        model = SnrBitrateModel()
        snrs = [model.snr_db(b) for b in (1e3, 4e3, 8e3, 12e3)]
        assert snrs == sorted(snrs, reverse=True)

    def test_reference_anchor(self):
        model = SnrBitrateModel(snr_at_reference=18.0, reference_bitrate=1e3)
        assert model.snr_db(1e3) == pytest.approx(18.0, abs=0.2)

    def test_collapse_at_band_limit(self):
        model = SnrBitrateModel()
        assert model.snr_db(model.band_limit * 1.01) == -math.inf
        assert model.snr_db(model.band_limit * 0.999) < 0.0

    def test_ecocapsule_knee_at_13kbps(self):
        # Paper: SNR drops to 3 dB when the bitrate exceeds 13 kbps.
        model = SnrBitrateModel()
        assert model.max_bitrate(min_snr_db=3.0) == pytest.approx(13e3, rel=0.05)

    def test_max_bitrate_zero_for_hopeless_link(self):
        model = SnrBitrateModel(snr_at_reference=2.0)
        assert model.max_bitrate(min_snr_db=3.0) == 0.0

    def test_rejects_bad_limits(self):
        with pytest.raises(AcousticsError):
            SnrBitrateModel(reference_bitrate=10e3, band_limit=5e3)


class TestPassbandSimulator:
    def test_round_trip_decodes(self):
        sim = UplinkPassbandSimulator(seed=0)
        rng = np.random.default_rng(1)
        bits = list(rng.integers(0, 2, size=12))
        result = sim.run(bits)
        assert result.bit_errors == 0

    def test_received_waveform_contains_leakage(self):
        sim = UplinkPassbandSimulator(seed=0)
        waveform = sim.received_waveform([1, 0, 1, 0])
        # Leakage (10x gain) dominates the capture RMS.
        assert np.sqrt(np.mean(waveform**2)) > 5.0 * sim.channel_gain * 0.5

    def test_demodulated_square_wave(self):
        sim = UplinkPassbandSimulator(seed=0)
        waveform = sim.received_waveform([1, 0] * 4)
        envelope = sim.demodulate(waveform)
        assert envelope.size == waveform.size
        assert np.percentile(envelope, 90) > 1.5 * np.percentile(envelope, 10)

    def test_rejects_carrier_above_nyquist(self):
        with pytest.raises(AcousticsError):
            UplinkPassbandSimulator(carrier=600e3, sample_rate=1e6)


class TestDownlinkSimulator:
    @pytest.fixture
    def simulator(self):
        return DownlinkSimulator(ConcreteBlock(get_concrete("NC"), 0.15))

    def test_fsk_beats_ook(self, simulator):
        for kbps in (1.0, 4.0, 10.0):
            assert simulator.symbol_snr_db(kbps * 1e3, "fsk") > simulator.symbol_snr_db(
                kbps * 1e3, "ook"
            )

    def test_gain_in_paper_band(self, simulator):
        # Paper Fig. 20: FSK improves SNR by about 3-5x.
        gains = [simulator.fsk_gain(b * 1e3) for b in (1, 2, 4, 6, 8, 10)]
        assert min(gains) > 2.0
        assert max(gains) < 8.0

    def test_ook_degrades_with_bitrate(self, simulator):
        # Shorter low edges trap more of the ring tail.
        assert simulator.symbol_snr_db(10e3, "ook") < simulator.symbol_snr_db(
            1e3, "ook"
        )

    def test_rejects_unknown_scheme(self, simulator):
        with pytest.raises(AcousticsError):
            simulator.symbol_snr_db(1e3, "qam")

    def test_rejects_nonpositive_bitrate(self, simulator):
        with pytest.raises(AcousticsError):
            simulator.edge_durations(0.0)
