"""Unit tests for the end-to-end acoustic channel wrapper."""

import math

import numpy as np
import pytest

from repro.acoustics import (
    AcousticChannel,
    HelmholtzResonatorArray,
    NoiseModel,
    StructureGeometry,
    WavePrism,
    paper_resonator,
)
from repro.errors import AcousticsError
from repro.materials import PLA, get_concrete

NC = get_concrete("NC").medium


def make_channel(**kwargs):
    wall = StructureGeometry("wall", length=10.0, thickness=0.2, medium=NC)
    defaults = dict(
        structure=wall,
        node_position=(1.0, 0.1),
        noise=NoiseModel(floor=1e-3, rng=np.random.default_rng(0)),
        max_bounces=10,
    )
    defaults.update(kwargs)
    return AcousticChannel(**defaults)


class TestNoiseModel:
    def test_add_changes_waveform(self):
        noise = NoiseModel(floor=0.1, rng=np.random.default_rng(1))
        x = np.zeros(100)
        y = noise.add(x)
        assert np.std(y) == pytest.approx(0.1, rel=0.3)

    def test_zero_floor_is_passthrough(self):
        noise = NoiseModel(floor=0.0)
        x = np.ones(10)
        assert np.array_equal(noise.add(x), x)

    def test_snr(self):
        noise = NoiseModel(floor=0.01)
        assert noise.snr_db(0.1) == pytest.approx(20.0)
        assert noise.snr_db(0.0) == -math.inf

    def test_rejects_negative_floor(self):
        with pytest.raises(AcousticsError):
            NoiseModel(floor=-1.0)


class TestGains:
    def test_prism_improves_injection(self):
        bare = make_channel()
        with_prism = make_channel(prism=WavePrism(PLA, NC))
        assert with_prism.injection_gain > 0.9 * bare.injection_gain

    def test_hra_adds_gain(self):
        hra = HelmholtzResonatorArray(paper_resonator(), count=7)
        with_hra = make_channel(hra=hra)
        without = make_channel()
        assert with_hra.hra_gain >= without.hra_gain

    def test_downlink_gain_positive(self):
        assert make_channel().downlink_amplitude_gain() > 0.0

    def test_round_trip_is_product(self):
        channel = make_channel()
        assert channel.round_trip_amplitude_gain() == pytest.approx(
            channel.downlink_amplitude_gain() * channel.uplink_amplitude_gain()
        )

    def test_coherent_can_differ_from_incoherent(self):
        channel = make_channel()
        coherent = channel.downlink_amplitude_gain(coherent=True)
        incoherent = channel.downlink_amplitude_gain(coherent=False)
        assert coherent != pytest.approx(incoherent, rel=1e-6)


class TestTransport:
    def test_scalar_path_applies_gain(self):
        channel = make_channel(noise=NoiseModel(floor=0.0))
        x = np.ones(64)
        y = channel.transport(x, 1e6, multipath=False, with_noise=False)
        assert y[0] == pytest.approx(channel.downlink_amplitude_gain())

    def test_multipath_convolution_preserves_length(self):
        channel = make_channel()
        x = np.random.default_rng(0).normal(size=256)
        y = channel.transport(x, 1e6, with_noise=False)
        assert y.size == x.size

    def test_uplink_direction(self):
        channel = make_channel(noise=NoiseModel(floor=0.0))
        x = np.ones(64)
        y = channel.transport(x, 1e6, direction="uplink", multipath=False,
                              with_noise=False)
        assert y[0] == pytest.approx(channel.uplink_amplitude_gain())

    def test_rejects_unknown_direction(self):
        with pytest.raises(AcousticsError):
            make_channel().transport(np.ones(8), 1e6, direction="sideways")

    def test_snr_reporting(self):
        channel = make_channel()
        assert channel.snr_db(1.0) > channel.snr_db(0.01)
