"""Unit tests for long-term damage detection."""

import numpy as np
import pytest

from repro.shm import (
    DamageDetector,
    DamageError,
    StrainHistory,
    strain_capacity_margin,
    synthesize_history,
)


class TestSynthesizeHistory:
    def test_healthy_history_cycles_around_baseline(self):
        history = synthesize_history(n_days=360, baseline=120.0, seed=1)
        assert np.mean(history.strain) == pytest.approx(120.0, abs=10.0)

    def test_degradation_ramps(self):
        healthy = synthesize_history(n_days=360, seed=2)
        degraded = synthesize_history(
            n_days=360, degradation_start=180, degradation_rate=1.0, seed=2
        )
        # Identical until the onset, drifting after.
        assert np.allclose(healthy.strain[:180], degraded.strain[:180])
        assert np.mean(degraded.strain[300:]) > np.mean(healthy.strain[300:]) + 50.0

    def test_rejects_bad_onset(self):
        with pytest.raises(DamageError):
            synthesize_history(n_days=100, degradation_start=200)

    def test_rejects_tiny_history(self):
        with pytest.raises(DamageError):
            synthesize_history(n_days=1)


class TestDamageDetector:
    def test_healthy_history_stays_quiet(self):
        history = synthesize_history(n_days=720, seed=3)
        detector = DamageDetector()
        assert detector.detect(history) is None

    def test_detects_slow_degradation(self):
        history = synthesize_history(
            n_days=720, degradation_start=450, degradation_rate=0.8, seed=4
        )
        alarm = DamageDetector().detect(history)
        assert alarm is not None
        assert alarm.day > 450.0  # cannot fire before the onset
        assert alarm.day < 620.0  # fires within months, not years

    def test_detects_faster_sooner(self):
        slow = synthesize_history(
            n_days=720, degradation_start=450, degradation_rate=0.5, seed=5
        )
        fast = synthesize_history(
            n_days=720, degradation_start=450, degradation_rate=3.0, seed=5
        )
        detector = DamageDetector()
        slow_alarm = detector.detect(slow)
        fast_alarm = detector.detect(fast)
        assert fast_alarm is not None and slow_alarm is not None
        assert fast_alarm.day < slow_alarm.day

    def test_severity_grading(self):
        fast = synthesize_history(
            n_days=720, degradation_start=450, degradation_rate=3.0, seed=6
        )
        alarm = DamageDetector().detect(fast)
        assert alarm.severity == "critical"
        slow = synthesize_history(
            n_days=900, degradation_start=450, degradation_rate=0.7, seed=6
        )
        alarm = DamageDetector().detect(slow)
        assert alarm.severity in ("watch", "warning")

    def test_seasonal_cycle_not_mistaken_for_damage(self):
        # Strong seasonality, no degradation: must stay quiet.
        history = synthesize_history(
            n_days=720, seasonal_amplitude=60.0, noise_rms=4.0, seed=7
        )
        assert DamageDetector().detect(history) is None

    def test_residuals_deseasonalised(self):
        history = synthesize_history(n_days=540, seasonal_amplitude=40.0, seed=8)
        residual = DamageDetector().residuals(history)
        # The seasonal swing (+/-40) is mostly removed.
        assert np.std(residual) < 15.0

    def test_requires_training_span(self):
        history = synthesize_history(n_days=100, seed=9)
        with pytest.raises(DamageError):
            DamageDetector().detect(history)

    def test_rejects_bad_parameters(self):
        with pytest.raises(DamageError):
            DamageDetector(training_days=5)
        with pytest.raises(DamageError):
            DamageDetector(threshold=0.0)


class TestCapacityMargin:
    def test_unused_capacity(self):
        # NC peak strain 0.263 %: 1000 ue uses ~38 %.
        margin = strain_capacity_margin(1000.0, 0.00263)
        assert margin == pytest.approx(1.0 - 1000e-6 / 0.00263)

    def test_exhausted_clamps_to_zero(self):
        assert strain_capacity_margin(5000.0, 0.00263) == 0.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(DamageError):
            strain_capacity_margin(100.0, 0.0)
