"""Unit tests for the Gen2-style packet formats."""

import pytest

from repro.errors import CrcError, ProtocolError
from repro.protocol import (
    Ack,
    Query,
    QueryRep,
    ReadSensor,
    Rn16Reply,
    SensorReport,
    SetBlf,
    parse_command,
)


class TestQuery:
    def test_round_trip(self):
        query = Query(q=4, session=2)
        assert Query.from_bits(query.to_bits()) == query

    def test_crc5_protects(self):
        bits = Query(q=4).to_bits()
        bits[5] ^= 1
        with pytest.raises(CrcError):
            Query.from_bits(bits)

    def test_q_range(self):
        with pytest.raises(ProtocolError):
            Query(q=16)
        with pytest.raises(ProtocolError):
            Query(q=-1)

    def test_wrong_length(self):
        with pytest.raises(ProtocolError):
            Query.from_bits([0] * 10)


class TestQueryRep:
    def test_round_trip(self):
        rep = QueryRep(session=1)
        assert QueryRep.from_bits(rep.to_bits()) == rep

    def test_six_bits(self):
        assert len(QueryRep().to_bits()) == 6


class TestAck:
    def test_round_trip(self):
        ack = Ack(rn16=0xBEEF)
        assert Ack.from_bits(ack.to_bits()) == ack

    def test_rn16_range(self):
        with pytest.raises(ProtocolError):
            Ack(rn16=0x10000)


class TestSetBlf:
    def test_round_trip(self):
        cmd = SetBlf(blf_khz=14)
        assert SetBlf.from_bits(cmd.to_bits()) == cmd

    def test_crc16_protects(self):
        bits = SetBlf(blf_khz=14).to_bits()
        bits[6] ^= 1
        with pytest.raises(CrcError):
            SetBlf.from_bits(bits)

    def test_blf_range(self):
        with pytest.raises(ProtocolError):
            SetBlf(blf_khz=0)
        with pytest.raises(ProtocolError):
            SetBlf(blf_khz=256)


class TestReadSensor:
    def test_round_trip_all_channels(self):
        for channel in ("temperature", "humidity", "strain", "acceleration"):
            cmd = ReadSensor(channel=channel)
            assert ReadSensor.from_bits(cmd.to_bits()) == cmd

    def test_unknown_channel(self):
        with pytest.raises(ProtocolError):
            ReadSensor(channel="pressure")


class TestRn16Reply:
    def test_round_trip(self):
        reply = Rn16Reply(rn16=0x1234)
        assert Rn16Reply.from_bits(reply.to_bits()) == reply

    def test_sixteen_bits(self):
        assert len(Rn16Reply(rn16=1).to_bits()) == 16


class TestSensorReport:
    def test_round_trip(self):
        report = SensorReport.from_value(7, "temperature", 26.5)
        decoded = SensorReport.from_bits(report.to_bits())
        assert decoded == report
        assert decoded.value == pytest.approx(26.5, abs=1.0 / 32.0)

    def test_negative_values(self):
        report = SensorReport.from_value(1, "strain", -312.0)
        assert SensorReport.from_bits(report.to_bits()).value == pytest.approx(
            -312.0, abs=1.0 / 32.0
        )

    def test_fixed_point_resolution(self):
        report = SensorReport.from_value(1, "humidity", 63.31)
        assert abs(report.value - 63.31) <= 0.5 / 32.0 + 1e-12

    def test_out_of_range_value(self):
        with pytest.raises(ProtocolError):
            SensorReport.from_value(1, "strain", 5e4)

    def test_crc_protects(self):
        bits = SensorReport.from_value(7, "temperature", 26.5).to_bits()
        bits[10] ^= 1
        with pytest.raises(CrcError):
            SensorReport.from_bits(bits)

    def test_node_id_range(self):
        with pytest.raises(ProtocolError):
            SensorReport(node_id=256, channel="temperature", raw=0)


class TestParseCommand:
    def test_dispatches_each_type(self):
        commands = [
            Query(q=3),
            QueryRep(),
            Ack(rn16=42),
            SetBlf(blf_khz=10),
            ReadSensor(channel="strain"),
        ]
        for cmd in commands:
            assert parse_command(cmd.to_bits()) == cmd

    def test_unknown_code(self):
        with pytest.raises(ProtocolError):
            parse_command([1, 1, 1, 1] + [0] * 12)

    def test_too_short(self):
        with pytest.raises(ProtocolError):
            parse_command([1, 0])
