"""Unit tests for the EcoCapsule-vs-conventional comparison (Sec. 6)."""

import pytest

from repro.shm import CostModel, FalsePositiveStudy, ShmError


class TestCostModel:
    def test_paper_scale(self):
        # "The conventional sensors totally cost over 10 M USD ...
        # our EcoCapsule sensors cost less than 1 K USD totally."
        model = CostModel()
        conventional = model.conventional_total(88)
        capsules_only = 5 * (model.ecocapsule_unit + model.ecocapsule_sensors_per_unit)
        assert conventional > 10e6
        assert capsules_only < 1e3

    def test_cost_ratio_huge(self):
        assert CostModel().cost_ratio() > 1000.0

    def test_scaling(self):
        model = CostModel()
        assert model.conventional_total(100) > model.conventional_total(50)
        assert model.ecocapsule_total(100) > model.ecocapsule_total(5)

    def test_reader_cost_included(self):
        model = CostModel()
        assert model.ecocapsule_total(5, readers=2) == pytest.approx(
            model.ecocapsule_total(5, readers=1) + model.reader_station
        )

    def test_rejects_negative_counts(self):
        with pytest.raises(ShmError):
            CostModel().conventional_total(-1)
        with pytest.raises(ShmError):
            CostModel().ecocapsule_total(-1)


class TestFalsePositiveStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return FalsePositiveStudy().run()

    def test_both_catch_the_storm(self, result):
        assert result.both_catch_the_storm

    def test_embedded_reduces_false_positives(self, result):
        # The paper: embedded capsules "benefit from reducing false
        # positives" because weather cannot disturb them.
        assert result.embedded_reduces_false_positives

    def test_embedded_is_clean(self, result):
        assert result.embedded_false == 0

    def test_surface_sees_disturbances(self, result):
        assert result.surface_false >= 1

    def test_series_shapes_match(self):
        study = FalsePositiveStudy()
        hours_s, surface = study.surface_series()
        hours_e, embedded = study.embedded_series()
        assert hours_s.shape == hours_e.shape
        assert surface.shape == embedded.shape

    def test_surface_noisier_than_embedded(self):
        import numpy as np

        study = FalsePositiveStudy()
        _, surface = study.surface_series()
        _, embedded = study.embedded_series()
        assert np.std(surface) > np.std(embedded)
