"""Unit tests for the energy-harvesting chain (Fig. 14 anchors)."""

import pytest

from repro.circuits import EnergyHarvester, LowDropoutRegulator, VoltageMultiplier
from repro.errors import PowerError


class TestVoltageMultiplier:
    def test_open_circuit_voltage(self):
        mult = VoltageMultiplier(stages=4, diode_drop=0.12)
        assert mult.open_circuit_voltage(1.0) == pytest.approx(8 * 0.88)

    def test_clamps_below_diode_drop(self):
        mult = VoltageMultiplier()
        assert mult.open_circuit_voltage(0.05) == 0.0

    def test_more_stages_more_voltage(self):
        low = VoltageMultiplier(stages=2)
        high = VoltageMultiplier(stages=6)
        assert high.open_circuit_voltage(1.0) > low.open_circuit_voltage(1.0)

    def test_source_resistance(self):
        mult = VoltageMultiplier(stages=4, stage_capacitance=1e-9)
        assert mult.source_resistance(230e3) == pytest.approx(4 / (230e3 * 1e-9))

    def test_rejects_zero_stages(self):
        with pytest.raises(PowerError):
            VoltageMultiplier(stages=0)

    def test_rejects_negative_input(self):
        with pytest.raises(PowerError):
            VoltageMultiplier().open_circuit_voltage(-1.0)


class TestRegulator:
    def test_regulates_above_dropout(self):
        ldo = LowDropoutRegulator()
        assert ldo.regulate(3.0) == pytest.approx(1.8)

    def test_zero_below_dropout(self):
        ldo = LowDropoutRegulator()
        assert ldo.regulate(1.0) == 0.0

    def test_minimum_input(self):
        ldo = LowDropoutRegulator(output_voltage=1.8, dropout=0.08)
        assert ldo.minimum_input == pytest.approx(1.88)


class TestColdStart:
    """The Fig. 14 anchors."""

    @pytest.fixture
    def harvester(self):
        return EnergyHarvester()

    def test_minimum_activation_is_half_volt(self, harvester):
        assert harvester.activation_voltage == pytest.approx(0.5)
        assert not harvester.can_power_up(0.45)
        assert harvester.can_power_up(0.5)

    def test_55ms_at_half_volt(self, harvester):
        assert harvester.cold_start_time(0.5) == pytest.approx(55e-3, rel=0.05)

    def test_4_4ms_at_two_volts(self, harvester):
        assert harvester.cold_start_time(2.0) == pytest.approx(4.4e-3, rel=0.05)

    def test_monotone_decreasing(self, harvester):
        times = [harvester.cold_start_time(v) for v in (0.5, 0.8, 1.2, 2.0, 4.0)]
        assert times == sorted(times, reverse=True)

    def test_below_activation_raises(self, harvester):
        with pytest.raises(PowerError):
            harvester.cold_start_time(0.3)

    def test_rapid_drop_below_one_volt(self, harvester):
        # Fig. 14: the knee is steep below ~1 V.
        assert harvester.cold_start_time(0.5) > 3.0 * harvester.cold_start_time(1.0)


class TestHarvestedPower:
    def test_zero_when_unpowered(self):
        harvester = EnergyHarvester()
        assert harvester.harvested_power(0.2) == 0.0

    def test_grows_with_input(self):
        harvester = EnergyHarvester()
        assert harvester.harvested_power(3.0) > harvester.harvested_power(1.0)

    def test_covers_the_mcu_at_moderate_field(self):
        # A 2 V field must sustain the ~360 uW active draw.
        harvester = EnergyHarvester()
        assert harvester.harvested_power(2.0) > 360e-6
