"""Property tests: arbitrary on-disk damage never yields a silently
wrong campaign result.

The recovery contract (ISSUE satellite): truncate or corrupt the
checkpoint/epoch-log files at *any* byte offset and a subsequent resume
must end in exactly one of two states -- a final result byte-identical
to the uninterrupted run (rollback + replay absorbed the damage), or an
explicit :class:`CheckpointError`/:class:`CampaignError` (nothing
trustworthy left).  A third state, "completed with different bytes",
is the one bug this file exists to rule out.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CHECKPOINT_DIRNAME,
    EPOCH_LOG_FILENAME,
    CampaignConfig,
    result_hash,
    resume_campaign,
    run_campaign,
)
from repro.errors import CampaignError, CheckpointError

#: Tiny but fully-featured: faults on, one storm epoch, stuck sensors.
CONFIG = dict(
    epochs=3,
    nodes=2,
    hours_per_epoch=12,
    seed=23,
    storm_period_epochs=2,
    storm_duration_epochs=1,
    epoch_timeout_s=0.0,
)


class _Crash(Exception):
    pass


@pytest.fixture(scope="module")
def crashed(tmp_path_factory):
    """A campaign killed at epoch 2, plus the uninterrupted reference."""
    reference = run_campaign(CampaignConfig(**CONFIG))

    def crash_at_2(epoch):
        if epoch == 2:
            raise _Crash

    state_dir = tmp_path_factory.mktemp("campaign") / "pilot"
    with pytest.raises(_Crash):
        run_campaign(
            CampaignConfig(**CONFIG), state_dir=state_dir,
            epoch_hook=crash_at_2,
        )
    return {
        "state_dir": state_dir,
        "reference_hash": result_hash(reference.result),
    }


def _damaged_copy(crashed, damage):
    """A throwaway copy of the crashed state dir with ``damage`` applied."""
    scratch = Path(tempfile.mkdtemp(prefix="campaign-recovery-"))
    state_dir = scratch / "pilot"
    shutil.copytree(crashed["state_dir"], state_dir)
    damage(state_dir)
    return scratch, state_dir


def _resume_must_not_lie(crashed, damage):
    """Resume after ``damage``: reference bytes or an explicit error."""
    scratch, state_dir = _damaged_copy(crashed, damage)
    try:
        try:
            outcome = resume_campaign(state_dir)
        except (CheckpointError, CampaignError):
            return "error"
        assert outcome.completed
        assert result_hash(outcome.result) == crashed["reference_hash"], (
            "resume after on-disk damage produced a DIFFERENT result -- "
            "silent divergence, the one forbidden outcome"
        )
        return "recovered"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


class TestTruncationNeverLies:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_newest_checkpoint_truncated_anywhere(self, crashed, data):
        newest = (
            crashed["state_dir"] / CHECKPOINT_DIRNAME / "epoch-000002.json"
        )
        offset = data.draw(
            st.integers(0, newest.stat().st_size), label="truncate_at"
        )

        def damage(state_dir):
            path = state_dir / CHECKPOINT_DIRNAME / "epoch-000002.json"
            path.write_bytes(path.read_bytes()[:offset])

        # Older checkpoints are intact, so rollback must always recover.
        assert _resume_must_not_lie(crashed, damage) == "recovered"

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_epoch_log_truncated_anywhere(self, crashed, data):
        log = crashed["state_dir"] / EPOCH_LOG_FILENAME
        offset = data.draw(
            st.integers(0, log.stat().st_size), label="truncate_at"
        )

        def damage(state_dir):
            path = state_dir / EPOCH_LOG_FILENAME
            path.write_bytes(path.read_bytes()[:offset])

        # The log is the audit artifact, not the recovery artifact: a
        # torn log never blocks resume and never changes the result.
        assert _resume_must_not_lie(crashed, damage) == "recovered"

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_every_checkpoint_truncated_at_once(self, crashed, data):
        checkpoints = sorted(
            (crashed["state_dir"] / CHECKPOINT_DIRNAME).glob("epoch-*.json")
        )
        offsets = {
            path.name: data.draw(
                st.integers(0, path.stat().st_size), label=path.name
            )
            for path in checkpoints
        }

        def damage(state_dir):
            for name, offset in offsets.items():
                path = state_dir / CHECKPOINT_DIRNAME / name
                path.write_bytes(path.read_bytes()[:offset])

        # With *all* checkpoints fair game the error outcome is legal
        # (every file damaged -> explicit CheckpointError); recovery is
        # legal too (some offsets == file size leave survivors).  Silent
        # divergence would fail inside the helper.
        assert _resume_must_not_lie(crashed, damage) in ("recovered", "error")


class TestByteFlipsNeverLie:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_newest_checkpoint_flipped_anywhere(self, crashed, data):
        newest = (
            crashed["state_dir"] / CHECKPOINT_DIRNAME / "epoch-000002.json"
        )
        size = newest.stat().st_size
        position = data.draw(st.integers(0, size - 1), label="position")
        value = data.draw(st.integers(0, 255), label="value")

        def damage(state_dir):
            path = state_dir / CHECKPOINT_DIRNAME / "epoch-000002.json"
            raw = bytearray(path.read_bytes())
            raw[position] = value
            path.write_bytes(bytes(raw))

        # A flip either breaks the JSON, breaks the sha256 (both ->
        # quarantine + rollback) or is a no-op rewrite of the same byte;
        # all three converge on the reference bytes.
        assert _resume_must_not_lie(crashed, damage) == "recovered"
