"""Unit tests for TelemetryStore, StoreWriter and the ingest adapters."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.link import PlacedNode, PowerUpLink, WallSession
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment
from repro.protocol import SensorReport
from repro.store import (
    STORE_SCHEMA,
    SeriesKey,
    TelemetryStore,
    ingest_campaign_result,
    ingest_reports,
    ingest_series,
    ingest_session,
)
from repro.acoustics import StructureGeometry

KEY = SeriesKey("b", "w", 1, "strain")


class TestStoreLifecycle:
    def test_creates_marker(self, tmp_path):
        TelemetryStore(tmp_path / "tele")
        assert (tmp_path / "tele" / "store.json").exists()

    def test_reopen(self, tmp_path):
        TelemetryStore(tmp_path / "tele")
        TelemetryStore(tmp_path / "tele", create=False)

    def test_missing_store_refused_without_create(self, tmp_path):
        with pytest.raises(StoreError):
            TelemetryStore(tmp_path / "nope", create=False)

    def test_foreign_directory_refused(self, tmp_path):
        (tmp_path / "store.json").write_text('{"schema": "other/v9"}')
        with pytest.raises(StoreError):
            TelemetryStore(tmp_path)

    def test_schema_constant(self, tmp_path):
        store = TelemetryStore(tmp_path)
        assert store.stats()["schema"] == STORE_SCHEMA


class TestWriter:
    def test_append_and_read(self, tmp_path):
        store = TelemetryStore(tmp_path)
        store.append(KEY, [0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        data = store.read(KEY)
        assert np.array_equal(data["value"], [5.0, 6.0, 7.0])

    def test_one_block_per_series_per_flush(self, tmp_path):
        store = TelemetryStore(tmp_path)
        other = SeriesKey("b", "w", 2, "strain")
        with store.writer() as writer:
            for t in range(5):
                writer.add_sample(KEY, float(t), float(t))
                writer.add_sample(other, float(t), float(t))
        for key in (KEY, other):
            assert len(store.segment(key).file_entry("raw")["blocks"]) == 1

    def test_auto_flush_at_threshold(self, tmp_path):
        store = TelemetryStore(tmp_path)
        writer = store.writer(flush_rows=10)
        writer.add(KEY, np.arange(10.0), np.zeros(10))
        # Crossing the threshold flushed without an explicit flush().
        assert store.read(KEY)["t"].size == 10

    def test_unsorted_batch_sorted_stably(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            writer.add(KEY, [3.0, 1.0, 2.0, 1.0], [30.0, 10.0, 20.0, 11.0])
        data = store.read(KEY)
        assert np.array_equal(data["t"], [1.0, 1.0, 2.0, 3.0])
        assert np.array_equal(data["value"], [10.0, 11.0, 20.0, 30.0])

    def test_mismatched_lengths_rejected(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with pytest.raises(StoreError):
            store.writer().add(KEY, [0.0, 1.0], [5.0])

    def test_exception_skips_flush(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.writer() as writer:
                writer.add_sample(KEY, 0.0, 1.0)
                raise RuntimeError("abort ingest")
        assert store.read(KEY)["t"].size == 0

    def test_non_durable_writer_reads_back_identically(self, tmp_path):
        # durable=False only skips fsyncs -- bytes, ordering and the
        # manifest acknowledgement are exactly the durable path's.
        durable = TelemetryStore(tmp_path / "d")
        relaxed = TelemetryStore(tmp_path / "r")
        for store, flag in ((durable, True), (relaxed, False)):
            with store.writer(durable=flag) as writer:
                writer.add(KEY, [0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        pa = durable.segment(KEY).seg_path("raw")
        pb = relaxed.segment(KEY).seg_path("raw")
        assert pa.read_bytes() == pb.read_bytes()
        assert np.array_equal(relaxed.read(KEY)["value"], [5.0, 6.0, 7.0])

    def test_non_durable_appends_stay_ordered_and_recoverable(self, tmp_path):
        store = TelemetryStore(tmp_path)
        store.writer(durable=False).__enter__()  # writer alone writes nothing
        with store.writer(durable=False) as writer:
            writer.add(KEY, [0.0, 1.0], [1.0, 2.0])
        with store.writer(durable=False) as writer:
            writer.add(KEY, [2.0], [3.0])
        # A torn tail on a non-durable segment still heals on append.
        path = store.segment(KEY).seg_path("raw")
        with path.open("ab") as handle:
            handle.write(b"torn!")
        with store.writer(durable=False) as writer:
            writer.add(KEY, [3.0], [4.0])
        assert np.array_equal(store.read(KEY)["value"], [1.0, 2.0, 3.0, 4.0])

    def test_identical_sequences_identical_bytes(self, tmp_path):
        def build(root):
            store = TelemetryStore(root)
            with store.writer() as writer:
                writer.add(KEY, [0.0, 1.0], [1.0, 2.0])
                writer.add(SeriesKey("b", "w", 2, "rh"), [0.5], [60.0])
            store.compact()
            return store

        a, b = build(tmp_path / "a"), build(tmp_path / "b")
        for key in a.keys():
            pa = a.segment(key).seg_path("raw")
            pb = b.segment(key).seg_path("raw")
            assert pa.read_bytes() == pb.read_bytes()


class TestStoreTruncateAndStats:
    def test_truncate_from_spans_series(self, tmp_path):
        store = TelemetryStore(tmp_path)
        k2 = SeriesKey("b", "w", 2, "strain")
        store.append(KEY, np.arange(10.0), np.arange(10.0))
        store.append(k2, np.arange(5.0), np.arange(5.0))
        assert store.truncate_from(4.0) == 7
        assert store.read(KEY)["t"].size == 4
        assert store.read(k2)["t"].size == 4

    def test_keys_sorted(self, tmp_path):
        store = TelemetryStore(tmp_path)
        keys = [
            SeriesKey("b", "w", 2, "strain"),
            SeriesKey("a", "w", 1, "rh"),
            SeriesKey("b", "w", 1, "strain"),
        ]
        for key in keys:
            store.append(key, [0.0], [1.0])
        assert store.keys() == sorted(keys)

    def test_stats_totals(self, tmp_path):
        store = TelemetryStore(tmp_path)
        store.append(KEY, np.arange(6.0), np.arange(6.0))
        store.compact()
        stats = store.stats()
        assert stats["series_count"] == 1
        assert stats["totals"]["raw"]["rows"] == 6
        assert stats["totals"]["hourly"]["rows"] == 6
        assert stats["totals"]["daily"]["rows"] == 1
        assert stats["quarantined"] == []


def _survey_result(seed=7, nodes=3):
    concrete = get_concrete("UHPC")
    wall = StructureGeometry(
        "test wall", length=6.0, thickness=0.2, medium=concrete.medium
    )
    placed = [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=i + 1,
                environment=Environment(
                    temperature=20.0, humidity=60.0, strain=50.0 * i
                ),
                seed=seed + i,
            ),
            distance=0.4 + 0.2 * i,
        )
        for i in range(nodes)
    ]
    session = WallSession(
        budget=PowerUpLink(wall), nodes=placed, tx_voltage=250.0, seed=seed
    )
    return session.run()


class TestIngestAdapters:
    def test_ingest_session(self, tmp_path):
        result = _survey_result()
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            rows = ingest_session(writer, result, "b", "w", t=12.0)
        assert rows == sum(len(r) for r in result.reports.values())
        for node_id, reports in result.reports.items():
            for report in reports:
                key = SeriesKey("b", "w", node_id, report.channel)
                data = store.read(key)
                assert data["t"][0] == 12.0
                assert report.value in data["value"]

    def test_ingest_reports_mapping(self, tmp_path):
        reports = {4: [SensorReport.from_value(4, "strain", 120.0)]}
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            assert ingest_reports(writer, reports, "b", "w", t=3.0) == 1
        key = SeriesKey("b", "w", 4, "strain")
        assert store.read(key)["value"][0] == pytest.approx(120.0)

    def test_ingest_series_vectorized(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            rows = ingest_series(
                writer, "b", "w", "acceleration",
                np.arange(100.0), np.ones(100),
            )
        assert rows == 100
        key = SeriesKey("b", "w", 0, "acceleration")
        assert store.read(key)["t"].size == 100

    def test_ingest_campaign_result_payload(self, tmp_path):
        payload = {
            "schema": "repro/campaign-result/v1",
            "result": {
                "hours": [0.0, 1.0, 2.0],
                "acceleration": [0.1, 0.2, 0.3],
                "stress_mpa": [-60.0, -61.0, -62.0],
            },
        }
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            assert ingest_campaign_result(writer, payload) == 6
        accel = store.read(SeriesKey("campaign", "pilot", 0, "acceleration"))
        assert np.array_equal(accel["value"], [0.1, 0.2, 0.3])

    def test_ingest_campaign_result_rejects_garbage(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with pytest.raises(StoreError):
            with store.writer() as writer:
                ingest_campaign_result(writer, {"result": {}})
        with pytest.raises(StoreError):
            with store.writer() as writer:
                ingest_campaign_result(
                    writer, tmp_path / "missing-result.json"
                )

    def test_ingest_campaign_result_length_mismatch(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with pytest.raises(StoreError):
            with store.writer() as writer:
                ingest_campaign_result(
                    writer,
                    {"result": {"hours": [0.0, 1.0], "acceleration": [0.1]}},
                )
