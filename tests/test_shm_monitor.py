"""Unit tests for the SHM analytics layer."""

import numpy as np
import pytest

from repro.shm import (
    AnomalyWindow,
    BridgeMonitor,
    Footbridge,
    JulyTimeSeriesGenerator,
    STORM_END_HOUR,
    STORM_START_HOUR,
    ShmError,
    check_compliance,
    cross_validate,
    detect_anomalies,
    rolling_rms,
)


@pytest.fixture
def month():
    generator = JulyTimeSeriesGenerator(samples_per_hour=4, seed=2021)
    hours, acc = generator.acceleration(0, scale=0.012)
    return hours, acc


class TestRollingRms:
    def test_constant_series(self):
        hours = np.arange(100) * 0.25
        values = 2.0 * np.ones(100)
        _, rms = rolling_rms(hours, values, window_hours=5.0)
        assert np.allclose(rms[10:-10], 2.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ShmError):
            rolling_rms(np.arange(10.0), np.ones(5))

    def test_rejects_short_series(self):
        with pytest.raises(ShmError):
            rolling_rms(np.array([0.0]), np.array([1.0]))


class TestAnomalyDetection:
    def test_detects_the_storm(self, month):
        hours, acc = month
        windows = detect_anomalies(hours, acc)
        storm = AnomalyWindow(STORM_START_HOUR, STORM_END_HOUR)
        assert any(w.overlaps(storm) for w in windows)

    def test_quiet_series_has_no_anomalies(self):
        rng = np.random.default_rng(0)
        hours = np.arange(2000) * 0.25
        values = rng.normal(0.0, 1.0, size=2000)
        windows = detect_anomalies(hours, values)
        assert windows == []

    def test_short_blips_filtered(self):
        rng = np.random.default_rng(1)
        hours = np.arange(4000) * 0.25
        values = rng.normal(0.0, 1.0, size=4000)
        values[2000:2004] *= 50.0  # a 1-hour blip
        windows = detect_anomalies(hours, values, min_duration_hours=12.0)
        assert all(w.duration_hours >= 12.0 for w in windows)


class TestAnomalyWindow:
    def test_overlap(self):
        a = AnomalyWindow(0.0, 10.0)
        b = AnomalyWindow(5.0, 15.0)
        c = AnomalyWindow(10.0, 20.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching is not overlapping

    def test_duration(self):
        assert AnomalyWindow(24.0, 48.0).duration_hours == 24.0


class TestCrossValidation:
    def test_matching_channels_verify(self, month):
        # The paper's mutual-verification argument across accel/stress.
        generator = JulyTimeSeriesGenerator(samples_per_hour=4, seed=2021)
        hours, acc = month
        _, stress = generator.stress()
        acc_windows = detect_anomalies(hours, acc)
        stress_windows = detect_anomalies(hours, stress - np.median(stress))
        assert cross_validate(acc_windows, stress_windows)

    def test_disjoint_channels_fail(self):
        a = [AnomalyWindow(0.0, 10.0)]
        b = [AnomalyWindow(20.0, 30.0)]
        assert not cross_validate(a, b)

    def test_empty_windows_fail(self):
        assert not cross_validate([], [AnomalyWindow(0.0, 1.0)])


class TestCompliance:
    def test_quiet_month_compliant(self, month):
        hours, acc = month
        generator = JulyTimeSeriesGenerator(samples_per_hour=4, seed=2021)
        _, stress = generator.stress()
        report = check_compliance(Footbridge().limits, acc, stress)
        assert report.compliant

    def test_violation_detected(self):
        limits = Footbridge().limits
        acc = np.array([0.1, 0.9, 0.1])  # exceeds 0.7 m/s^2
        stress = np.array([-50.0])
        report = check_compliance(limits, acc, stress)
        assert not report.acceleration_ok
        assert not report.compliant

    def test_stress_violation(self):
        limits = Footbridge().limits
        report = check_compliance(limits, np.array([0.1]), np.array([400.0]))
        assert not report.stress_ok

    def test_rejects_empty_series(self):
        with pytest.raises(ShmError):
            check_compliance(Footbridge().limits, np.array([]), np.array([1.0]))


class TestBridgeMonitor:
    def test_update_grades_all_sections(self):
        monitor = BridgeMonitor(Footbridge())
        healths = monitor.update({"A": 1, "B": 2, "C": 0, "D": 3, "E": 1})
        assert len(healths) == 5
        assert monitor.bridge_grade() in "ABCDEF"

    def test_sparse_deck_grades_a(self):
        # COVID-era counts: a near-empty bridge is grade A everywhere.
        monitor = BridgeMonitor(Footbridge())
        monitor.update({s: 1 for s in "ABCDE"})
        assert monitor.bridge_grade() == "A"

    def test_crowded_section_degrades_grade(self):
        monitor = BridgeMonitor(Footbridge())
        monitor.update({"A": 0, "B": 0, "C": 150, "D": 0, "E": 0})
        assert monitor.bridge_grade() >= "C"

    def test_speed_falls_with_crowding(self):
        monitor = BridgeMonitor(Footbridge())
        healths = monitor.update({"A": 1, "B": 60, "C": 1, "D": 1, "E": 1})
        by_section = {h.section: h for h in healths}
        assert by_section["B"].mean_speed < by_section["A"].mean_speed

    def test_grade_fractions_sum_to_one(self):
        monitor = BridgeMonitor(Footbridge())
        for counts in ({"A": 1, "B": 1, "C": 1, "D": 1, "E": 1},
                       {"A": 5, "B": 9, "C": 2, "D": 0, "E": 3}):
            monitor.update(counts)
        assert sum(monitor.grade_fractions().values()) == pytest.approx(1.0)

    def test_requires_all_sections(self):
        monitor = BridgeMonitor(Footbridge())
        with pytest.raises(ShmError):
            monitor.update({"A": 1})

    def test_grade_before_update_raises(self):
        with pytest.raises(ShmError):
            BridgeMonitor(Footbridge()).bridge_grade()
