"""Asyncio gateway tests: byte parity with the threaded server, cache
invalidation on compaction, load shedding, keep-alive, and drain."""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve import gateway_background
from repro.store import SeriesKey, TelemetryStore, serve_background

KEY = SeriesKey("hq", "east", 1, "strain")
SERIES_QS = "building=hq&wall=east&node=1&metric=strain"


def _seed(tmp_path):
    store = TelemetryStore(tmp_path)
    hours = np.arange(0.0, 120.0, 0.5)
    store.append(KEY, hours, 120.0 + 2.0 * hours / 24.0)
    store.append(
        SeriesKey("hq", "east", 2, "strain"), hours, 118.0 + 0.1 * np.sin(hours)
    )
    store.compact()
    return store


@pytest.fixture()
def store(tmp_path):
    return _seed(tmp_path)


@pytest.fixture()
def gateway(store):
    gateway, thread = gateway_background(store, registry=MetricsRegistry())
    yield gateway
    gateway.shutdown()
    thread.join(timeout=5.0)


def request(port, method, target, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request(method, target, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        lowered = {k.lower(): v for k, v in response.getheaders()}
        return response.status, lowered, body
    finally:
        conn.close()


#: The parity matrix: every row must come back byte-identical from the
#: threaded reference server and the asyncio gateway -- success and
#: error payloads alike.  (/metrics and /healthz carry uptime/registry
#: state and are deliberately not byte-comparable.)
PARITY_MATRIX = [
    ("GET", "/stats"),
    ("GET", f"/series?{SERIES_QS}"),
    ("GET", f"/series?{SERIES_QS}&t0=0&t1=10"),
    ("GET", f"/series?{SERIES_QS}&resolution=daily"),
    ("GET", f"/series?{SERIES_QS}&resolution=hourly&limit=7"),
    ("GET", "/aggregate?metric=strain&agg=mean&resolution=hourly"
            "&group_by=node"),
    ("GET", "/health?building=hq"),
    ("GET", "/nope"),
    ("GET", "/aggregate?agg=mean"),
    ("GET", f"/series?{SERIES_QS}&t0=nan"),
    ("GET", f"/series?{SERIES_QS}&t0=inf"),
    ("GET", f"/series?{SERIES_QS}&limit=5&cursor=%%%"),
    ("GET", f"/series?{SERIES_QS}&cursor=eyJvIjogMH0="),
    ("POST", "/stats"),
    ("PUT", f"/series?{SERIES_QS}"),
    ("DELETE", "/health?building=hq"),
    ("HEAD", "/stats"),
    ("HEAD", f"/series?{SERIES_QS}"),
]


class TestParity:
    @pytest.mark.parametrize("method,target", PARITY_MATRIX)
    def test_matrix_row_is_byte_identical(self, store, gateway, method, target):
        server, thread = serve_background(store, registry=MetricsRegistry())
        try:
            t_status, t_headers, t_body = request(server.port, method, target)
            g_status, g_headers, g_body = request(gateway.port, method, target)
            assert g_status == t_status
            assert g_body == t_body
            for header in ("content-type", "allow", "etag"):
                assert g_headers.get(header) == t_headers.get(header)
            if method == "HEAD":
                assert g_body == b""
                assert (
                    g_headers["content-length"] == t_headers["content-length"]
                )
        finally:
            server.shutdown()
            thread.join(timeout=5.0)

    def test_head_advertises_get_length(self, gateway):
        g_status, g_headers, _ = request(gateway.port, "HEAD", "/stats")
        _, _, get_body = request(gateway.port, "GET", "/stats")
        assert g_status == 200
        assert int(g_headers["content-length"]) == len(get_body)

    def test_405_payload_and_allow(self, gateway):
        status, headers, body = request(gateway.port, "POST", "/stats")
        assert status == 405
        assert headers["allow"] == "GET, HEAD"
        assert "read-only" in json.loads(body)["error"]


class TestCacheInvalidation:
    def test_compaction_never_serves_stale_bytes(self, tmp_path):
        """query -> compact -> query must re-read, with exact counters."""
        store = _seed(tmp_path)
        gateway, thread = gateway_background(store, registry=MetricsRegistry())
        target = f"/series?{SERIES_QS}&resolution=hourly"
        try:
            _, _, first = request(gateway.port, "GET", target)
            _, _, second = request(gateway.port, "GET", target)
            assert second == first  # hot hit serves the pinned bytes
            # New samples + compact rewrite the hourly rollup in place.
            store.append(
                KEY, np.arange(120.0, 144.0, 0.5), np.full(48, 999.0)
            )
            store.compact()
            _, _, third = request(gateway.port, "GET", target)
            assert third != first
            payload = json.loads(third)
            assert payload["rows"] > json.loads(first)["rows"]
            assert max(payload["columns"]["max"]) == 999.0
            stats = gateway.cache.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 2
            assert stats["invalidations"] == 1
            assert stats["evictions"] == 0
        finally:
            gateway.shutdown()
            thread.join(timeout=5.0)

    def test_truncate_invalidates_too(self, store, gateway):
        target = f"/series?{SERIES_QS}&resolution=daily"
        _, _, first = request(gateway.port, "GET", target)
        store.truncate_from(48.0)
        store.compact()
        _, _, after = request(gateway.port, "GET", target)
        assert json.loads(after)["rows"] < json.loads(first)["rows"]

    def test_raw_resolution_bypasses_cache(self, store, gateway):
        request(gateway.port, "GET", f"/series?{SERIES_QS}")
        request(gateway.port, "GET", f"/series?{SERIES_QS}")
        assert gateway.cache.stats()["hits"] == 0


class TestLoadShedding:
    def test_saturated_queue_sheds_503_with_retry_after(self, store):
        registry = MetricsRegistry()
        gateway, thread = gateway_background(
            store, registry=registry, workers=1, max_queue=1
        )
        entered = threading.Event()
        release = threading.Event()
        original = gateway.core.handle

        def gated(method, path, params, if_none_match=None):
            if path == "/stats":
                entered.set()
                release.wait(timeout=10.0)
            return original(method, path, params, if_none_match)

        gateway.core.handle = gated
        results = {}

        def occupy():
            results["slow"] = request(gateway.port, "GET", "/stats")

        worker = threading.Thread(target=occupy)
        worker.start()
        try:
            assert entered.wait(timeout=5.0)
            status, headers, body = request(gateway.port, "GET", "/stats")
            assert status == 503
            assert headers["retry-after"] == "1"
            assert "overloaded" in json.loads(body)["error"]
        finally:
            release.set()
            worker.join(timeout=5.0)
            gateway.shutdown()
            thread.join(timeout=5.0)
        assert results["slow"][0] == 200
        counters = registry.snapshot()["counters"]
        assert counters["serve.shed"] == 1
        assert 'serve.requests{path=/stats,status=503}' in counters
        assert 'serve.requests{path=/stats,status=200}' in counters


class TestTransport:
    def test_keep_alive_reuses_one_connection(self, gateway):
        conn = http.client.HTTPConnection(
            "127.0.0.1", gateway.port, timeout=10.0
        )
        try:
            bodies = []
            for _ in range(3):
                conn.request("GET", "/stats")
                response = conn.getresponse()
                assert response.getheader("Connection") == "keep-alive"
                bodies.append(response.read())
            assert bodies[0] == bodies[1] == bodies[2]
        finally:
            conn.close()
        assert gateway.registry.snapshot()["counters"]["serve.connections"] == 1

    def test_large_bodies_stream_chunked(self, store):
        gateway, thread = gateway_background(
            store, registry=MetricsRegistry(), stream_chunk_bytes=512
        )
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", gateway.port, timeout=10.0
            )
            try:
                conn.request("GET", f"/series?{SERIES_QS}")
                response = conn.getresponse()
                assert response.getheader("Transfer-Encoding") == "chunked"
                chunked_body = response.read()
            finally:
                conn.close()
            _, _, plain = request(gateway.port, "GET", f"/series?{SERIES_QS}")
            assert chunked_body == plain
        finally:
            gateway.shutdown()
            thread.join(timeout=5.0)

    def test_etag_roundtrip_over_http(self, gateway):
        _, headers, _ = request(gateway.port, "GET", f"/series?{SERIES_QS}")
        status, revalidated, body = request(
            gateway.port, "GET", f"/series?{SERIES_QS}",
            headers={"If-None-Match": headers["etag"]},
        )
        assert status == 304
        assert body == b""
        assert revalidated["etag"] == headers["etag"]

    def test_malformed_request_line_is_400(self, gateway):
        import socket

        with socket.create_connection(
            ("127.0.0.1", gateway.port), timeout=10.0
        ) as sock:
            sock.sendall(b"BOGUS\r\n\r\n")
            raw = sock.recv(65536)
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"malformed request line" in raw


class TestLifecycle:
    def test_graceful_drain_completes_in_flight_request(self, store):
        gateway, thread = gateway_background(
            store, registry=MetricsRegistry(), drain_grace_s=5.0
        )
        entered = threading.Event()
        original = gateway.core.handle

        def slow(method, path, params, if_none_match=None):
            entered.set()
            time.sleep(0.3)
            return original(method, path, params, if_none_match)

        gateway.core.handle = slow
        results = {}

        def do():
            results["r"] = request(gateway.port, "GET", "/stats")

        worker = threading.Thread(target=do)
        worker.start()
        assert entered.wait(timeout=5.0)
        gateway.request_shutdown()
        worker.join(timeout=5.0)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results["r"][0] == 200
        assert json.loads(results["r"][2])["series_count"] == 2

    def test_shutdown_is_idempotent_and_threadsafe(self, store):
        gateway, thread = gateway_background(store, registry=MetricsRegistry())
        for _ in range(3):
            gateway.shutdown()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_port_unavailable_before_start(self, store):
        from repro.errors import StoreError
        from repro.serve import AsyncGateway

        with pytest.raises(StoreError, match="not started"):
            AsyncGateway(store).port


class TestGatewayMetrics:
    def test_metrics_exposes_gateway_counters(self, gateway):
        request(gateway.port, "GET", f"/series?{SERIES_QS}&resolution=hourly")
        request(gateway.port, "GET", f"/series?{SERIES_QS}&resolution=hourly")
        status, headers, body = request(gateway.port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert 'serve_requests{path="/series",status="200"} 2' in text
        assert "serve_cache_hits 1" in text
        assert "serve_cache_misses 1" in text
        assert "serve_connections" in text
        assert "serve_in_flight" in text
