"""Unit tests for spreading/absorption models and the range helper."""

import pytest

from repro.acoustics import (
    SpreadingModel,
    channel_amplitude_gain,
    guidance_exponent,
    range_for_gain,
)
from repro.errors import AcousticsError
from repro.materials import get_concrete

NC = get_concrete("NC").medium


class TestSpreadingModel:
    def test_unity_inside_reference(self):
        model = SpreadingModel(exponent=1.0, reference_distance=0.05)
        assert model.amplitude_gain(0.01) == 1.0
        assert model.amplitude_gain(0.05) == 1.0

    def test_spherical_inverse_distance(self):
        model = SpreadingModel(exponent=1.0, reference_distance=0.05)
        assert model.amplitude_gain(0.5) == pytest.approx(0.1)

    def test_cylindrical_inverse_sqrt(self):
        model = SpreadingModel(exponent=0.5, reference_distance=0.05)
        assert model.amplitude_gain(5.0) == pytest.approx(0.1)

    def test_guided_beats_spherical_at_distance(self):
        guided = SpreadingModel(exponent=0.5)
        bulk = SpreadingModel(exponent=1.0)
        assert guided.amplitude_gain(3.0) > bulk.amplitude_gain(3.0)

    def test_rejects_negative_distance(self):
        with pytest.raises(AcousticsError):
            SpreadingModel().amplitude_gain(-1.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(AcousticsError):
            SpreadingModel(exponent=2.0)


class TestGuidanceExponent:
    def test_thin_wall_guides_more(self):
        lam = 1941.0 / 230e3  # S-wavelength in NC
        thin = guidance_exponent(0.20, lam)
        thick = guidance_exponent(0.70, lam)
        assert thin < thick

    def test_bounds(self):
        lam = 1941.0 / 230e3
        for thickness in (0.05, 0.15, 0.5, 2.0):
            e = guidance_exponent(thickness, lam)
            assert 0.35 <= e <= 0.67

    def test_monotone_in_thickness(self):
        lam = 1941.0 / 230e3
        exponents = [guidance_exponent(t, lam) for t in (0.1, 0.2, 0.4, 0.8)]
        assert exponents == sorted(exponents)

    def test_rejects_nonpositive(self):
        with pytest.raises(AcousticsError):
            guidance_exponent(0.0, 0.01)


class TestChannelGain:
    def test_combines_spreading_and_absorption(self):
        model = SpreadingModel(exponent=0.5)
        gain = channel_amplitude_gain(NC, 1.0, 230e3, model)
        spreading_only = model.amplitude_gain(1.0)
        assert gain < spreading_only  # absorption always subtracts

    def test_gain_decreases_with_distance(self):
        model = SpreadingModel(exponent=0.5)
        gains = [channel_amplitude_gain(NC, d, 230e3, model) for d in (0.5, 1, 2, 4)]
        assert gains == sorted(gains, reverse=True)


class TestRangeForGain:
    def test_zero_when_even_contact_fails(self):
        model = SpreadingModel(exponent=1.0)
        assert range_for_gain(NC, 230e3, model, required_gain=1.0) in (
            0.0,
            model.reference_distance,
        ) or range_for_gain(NC, 230e3, model, required_gain=0.99999) >= 0.0

    def test_solves_the_boundary(self):
        model = SpreadingModel(exponent=0.5)
        required = 0.05
        distance = range_for_gain(NC, 230e3, model, required)
        at = channel_amplitude_gain(NC, distance, 230e3, model)
        assert at == pytest.approx(required, rel=0.01)

    def test_caps_at_max_distance(self):
        model = SpreadingModel(exponent=0.5)
        assert (
            range_for_gain(NC, 230e3, model, required_gain=1e-9, max_distance=3.0)
            == 3.0
        )

    def test_rejects_gain_out_of_range(self):
        model = SpreadingModel()
        with pytest.raises(AcousticsError):
            range_for_gain(NC, 230e3, model, required_gain=1.5)
