"""Tests for the content-addressed result cache (runtime.cache)."""

import json

import pytest

from repro.obs import observed
from repro.runtime import ResultCache, cache_key, library_versions, run_experiments
from repro.runtime import cache as cache_module


VERSIONS = {"python": "3", "numpy": "2", "scipy": "1", "repro": "1"}


def _key(**overrides):
    base = dict(
        source="def run(seed=0): pass",
        params={"seed": 0, "x": 1.5},
        seed=0,
        versions=VERSIONS,
    )
    base.update(overrides)
    return cache_key(**base)


class TestCacheKey:
    def test_key_is_stable(self):
        assert _key() == _key()

    def test_key_changes_when_module_source_changes(self):
        assert _key() != _key(source="def run(seed=0): return 1")

    def test_key_changes_with_parameters(self):
        assert _key() != _key(params={"seed": 0, "x": 2.5})

    def test_key_changes_with_seed(self):
        assert _key() != _key(seed=1, params={"seed": 1, "x": 1.5})

    def test_key_changes_with_library_versions(self):
        other = dict(VERSIONS, numpy="3")
        assert _key() != _key(versions=other)

    def test_default_versions_come_from_the_environment(self):
        versions = library_versions()
        assert set(versions) == {"python", "numpy", "scipy", "repro"}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        assert cache.load(key) is None
        cache.store(key, {"experiment": "x", "result": {"value": 3}})
        entry = cache.load(key)
        assert entry is not None
        assert entry["result"] == {"value": 3}

    def test_corrupted_entry_is_a_miss_and_is_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        cache.store(key, {"result": 1})
        cache.path_for(key).write_text("{ this is not json")
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_entry_without_result_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text('{"schema": "repro/cache-entry/v1"}')
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_wrong_schema_tag_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text('{"schema": "other/v9", "result": 1}')
        assert cache.load(key) is None


class TestWriteRace:
    """Inter-process store collisions tolerate the other writer's entry.

    Results are deterministic, so two processes racing on the same key
    computed the same bytes; last-writer-wins is correct and the loser
    must not crash the sweep.
    """

    def _racing_write(self, cache, key, winner_payload):
        """A write_json_atomic stand-in: the rename fails, but only
        after 'the other process' has landed its (identical) entry."""

        def fake_write(path, payload):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(winner_payload))
            raise OSError("rename refused: entry already exists")

        return fake_write

    def test_losing_writer_accepts_the_winners_entry(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        key = _key()
        winner = {
            "schema": "repro/cache-entry/v1", "key": key, "result": {"v": 3}
        }
        monkeypatch.setattr(
            cache_module, "write_json_atomic",
            self._racing_write(cache, key, winner),
        )
        with observed() as scope:
            path = cache.store(key, {"result": {"v": 3}})
            assert scope.registry.counter("cache.write_race").value == 1.0
        assert path == cache.path_for(key)
        assert cache.load(key)["result"] == {"v": 3}

    def test_oserror_without_an_entry_is_not_a_race(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)

        def unwritable(path, payload):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(cache_module, "write_json_atomic", unwritable)
        with observed() as scope:
            with pytest.raises(OSError, match="read-only"):
                cache.store(_key(), {"result": 1})
            assert scope.registry.counter("cache.write_race").value == 0.0

    def test_real_concurrent_stores_both_succeed(self, tmp_path):
        # No monkeypatching: two stores on the same key through the real
        # atomic-rename path; the entry is always one complete file.
        cache = ResultCache(tmp_path)
        key = _key()
        cache.store(key, {"result": {"v": 3}})
        cache.store(key, {"result": {"v": 3}})
        assert cache.load(key)["result"] == {"v": 3}


class TestRunnerCacheBehaviour:
    """End-to-end hit/miss/--force/corruption through run_experiments."""

    NAMES = ["fig13", "tables"]

    def test_second_run_hits_and_force_bypasses(self, tmp_path):
        first = run_experiments(
            names=self.NAMES, jobs=0, out_dir=tmp_path, quick=True
        )
        assert first.ok and first.cache_hits == 0
        assert all(o.cache == "miss" for o in first.outcomes)

        second = run_experiments(
            names=self.NAMES, jobs=0, out_dir=tmp_path, quick=True
        )
        assert second.ok and second.cache_hits == len(self.NAMES)
        assert second.manifest["totals"]["cache_hits"] == len(self.NAMES)

        forced = run_experiments(
            names=self.NAMES, jobs=0, out_dir=tmp_path, quick=True, force=True
        )
        assert forced.ok and forced.cache_hits == 0
        assert all(o.cache == "bypass" for o in forced.outcomes)
        assert forced.manifest["forced"] is True

    def test_cached_result_equals_computed_result(self, tmp_path):
        first = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        second = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        assert second.outcomes[0].cache == "hit"
        assert first.outcomes[0].result == second.outcomes[0].result

    def test_corrupted_cache_entry_recovers_by_recomputing(self, tmp_path):
        first = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        cache = ResultCache(tmp_path / ".cache")
        entry_path = cache.path_for(first.outcomes[0].cache_key)
        assert entry_path.exists()
        entry_path.write_text("garbage not json at all")

        second = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        assert second.ok
        assert second.outcomes[0].cache == "miss"  # recomputed, no crash
        assert first.outcomes[0].result == second.outcomes[0].result
        # ...and the slot healed: a third run hits again.
        third = run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        assert third.outcomes[0].cache == "hit"

    def test_parameter_change_misses(self, tmp_path):
        run_experiments(names=["fig13"], jobs=0, out_dir=tmp_path)
        changed = run_experiments(
            names=["fig13"],
            jobs=0,
            out_dir=tmp_path,
            overrides={"fig13": {"bitrates_kbps": [0.0, 2.0]}},
        )
        assert changed.outcomes[0].cache == "miss"
        assert changed.ok
