"""Unit tests for the shell mechanics (Eqn. 4, Sec. 4.1 anchors)."""

import pytest

from repro.errors import DesignError
from repro.materials import RESIN
from repro.node import (
    SphericalShell,
    max_building_height,
    pressure_difference,
    resin_shell,
    steel_shell,
)
from repro.units import ATMOSPHERIC_PRESSURE, GRAVITY


class TestEquation4:
    def test_formula(self):
        # dP = rho g h - P_air.
        assert pressure_difference(100.0, 2300.0) == pytest.approx(
            2300.0 * GRAVITY * 100.0 - ATMOSPHERIC_PRESSURE
        )

    def test_clamps_at_surface(self):
        assert pressure_difference(0.0) == 0.0
        assert pressure_difference(1.0) == 0.0  # atmosphere dominates

    def test_inverse(self):
        h = max_building_height(4.3e6, 2300.0)
        assert pressure_difference(h, 2300.0) == pytest.approx(4.3e6, rel=1e-9)

    def test_rejects_negative_height(self):
        with pytest.raises(DesignError):
            pressure_difference(-1.0)


class TestResinShell:
    """The paper's prototype anchors: dP_max ~ 4.3 MPa, h_max ~ 195 m."""

    @pytest.fixture
    def shell(self):
        return resin_shell()

    def test_max_pressure(self, shell):
        assert shell.max_pressure / 1e6 == pytest.approx(4.3, abs=0.1)

    def test_max_height(self, shell):
        assert shell.max_height() == pytest.approx(195.0, abs=3.0)

    def test_deformation_limited(self, shell):
        # The resin shell hits its displacement budget before its strength.
        assert shell.displacement_limited_pressure < shell.stress_limited_pressure

    def test_displacement_matches_fea(self, shell):
        # At dP_max the radial displacement ~ the paper's 0.158 mm URES.
        delta = shell.radial_displacement(shell.max_pressure)
        assert delta == pytest.approx(0.158e-3, rel=0.1)

    def test_survives_55_floors(self, shell):
        assert shell.survives(190.0)
        assert not shell.survives(220.0)

    def test_utilisation(self, shell):
        assert shell.utilisation(shell.max_height()) == pytest.approx(1.0, rel=1e-3)


class TestSteelShell:
    """The high-rise anchors: dP_max ~ 115.2 MPa, h_max ~ 4985 m."""

    @pytest.fixture
    def shell(self):
        return steel_shell()

    def test_max_pressure(self, shell):
        assert shell.max_pressure / 1e6 == pytest.approx(115.2, abs=0.5)

    def test_max_height(self, shell):
        assert shell.max_height(2360.0) == pytest.approx(4985.0, rel=0.01)

    def test_stress_limited(self, shell):
        assert shell.stress_limited_pressure < shell.displacement_limited_pressure

    def test_taller_than_any_building(self, shell):
        assert shell.max_height(2360.0) > 1000.0  # far above Burj Khalifa


class TestShellValidation:
    def test_membrane_stress_formula(self):
        shell = resin_shell()
        stress = shell.membrane_stress(1e6)
        assert stress == pytest.approx(1e6 * shell.radius / (2 * shell.thickness))

    def test_rejects_solid_sphere(self):
        with pytest.raises(DesignError):
            SphericalShell(outer_diameter=0.04, thickness=0.03)

    def test_rejects_material_without_moduli(self):
        from repro.materials import Medium

        bare = Medium(name="bare", density=1000.0, cp=2000.0, cs=1000.0)
        with pytest.raises(DesignError):
            SphericalShell(material=bare)

    def test_rejects_negative_pressure(self):
        with pytest.raises(DesignError):
            resin_shell().membrane_stress(-1.0)

    def test_thicker_wall_stronger(self):
        thin = SphericalShell(thickness=0.0015)
        thick = SphericalShell(thickness=0.003)
        assert thick.max_pressure > thin.max_pressure
