"""Unit tests for reflection/refraction and mode conversion (Fig. 4)."""

import math

import pytest

from repro.acoustics import (
    critical_angle,
    first_critical_angle,
    reflection_coefficient,
    refract,
    s_only_window,
    second_critical_angle,
    snell_angle,
    transmission_energy_fraction,
)
from repro.errors import AcousticsError, TotalReflectionError
from repro.materials import AIR, PLA, WATER, get_concrete

NC = get_concrete("NC").medium


class TestReflectionCoefficient:
    def test_concrete_air_is_nearly_total(self):
        # Paper Eqn. 1: R = 99.98 % for concrete/air.
        r = reflection_coefficient(4.66e6, 4.15e2)
        assert abs(r) == pytest.approx(0.9998, abs=1e-4)

    def test_equal_impedances_transmit_fully(self):
        assert reflection_coefficient(1e6, 1e6) == 0.0
        assert transmission_energy_fraction(1e6, 1e6) == pytest.approx(1.0)

    def test_sign_flips_with_direction(self):
        assert reflection_coefficient(1e6, 2e6) == -reflection_coefficient(2e6, 1e6)

    def test_energy_conservation(self):
        r = reflection_coefficient(4.66e6, 2.3e6)
        t = transmission_energy_fraction(4.66e6, 2.3e6)
        assert r * r + t == pytest.approx(1.0)

    def test_rejects_nonpositive_impedance(self):
        with pytest.raises(AcousticsError):
            reflection_coefficient(0.0, 1e6)


class TestSnell:
    def test_straight_through_at_normal_incidence(self):
        assert snell_angle(0.0, 1000.0, 3000.0) == 0.0

    def test_faster_medium_bends_away(self):
        out = snell_angle(math.radians(10.0), 1000.0, 3000.0)
        assert out > math.radians(10.0)

    def test_total_reflection_beyond_critical(self):
        with pytest.raises(TotalReflectionError) as err:
            snell_angle(math.radians(40.0), PLA.cp, NC.cp, mode="p")
        assert err.value.mode == "p"
        assert err.value.critical_deg == pytest.approx(34.0, abs=0.2)

    def test_critical_angle_requires_faster_output(self):
        with pytest.raises(AcousticsError):
            critical_angle(3000.0, 1000.0)

    def test_rejects_angle_out_of_range(self):
        with pytest.raises(AcousticsError):
            snell_angle(math.radians(95.0), 1000.0, 2000.0)


class TestCriticalAngles:
    def test_paper_window(self):
        # The PLA-on-concrete window is ~[34, 73] deg.
        low, high = s_only_window(PLA, NC)
        assert math.degrees(low) == pytest.approx(34.0, abs=0.5)
        assert math.degrees(high) == pytest.approx(73.0, abs=1.5)

    def test_first_below_second(self):
        assert first_critical_angle(PLA, NC) < second_critical_angle(PLA, NC)

    def test_no_s_window_into_fluid(self):
        with pytest.raises(AcousticsError):
            second_critical_angle(PLA, WATER)


class TestRefract:
    def test_normal_incidence_is_pure_p(self):
        result = refract(PLA, NC, 0.0)
        assert result.s_energy == pytest.approx(0.0, abs=1e-9)
        assert result.p_energy > 0.5  # most energy crosses (impedances similar)

    def test_energy_conserved_everywhere(self):
        for deg in range(0, 80, 5):
            result = refract(PLA, NC, math.radians(deg))
            total = result.reflected_energy + result.p_energy + result.s_energy
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_both_modes_coexist_below_first_critical(self):
        result = refract(PLA, NC, math.radians(20.0))
        assert result.p_energy > 0.0
        assert result.s_energy > 0.0

    def test_s_only_inside_window(self):
        result = refract(PLA, NC, math.radians(60.0))
        assert result.p_energy == pytest.approx(0.0, abs=1e-9)
        assert result.s_energy > 0.8
        assert result.p_angle is None
        assert result.s_angle is not None

    def test_total_reflection_beyond_second_critical(self):
        result = refract(PLA, NC, math.radians(78.0))
        assert result.reflected_energy == pytest.approx(1.0, abs=1e-6)
        assert result.p_angle is None
        assert result.s_angle is None

    def test_p_refracts_wider_than_s(self):
        # Paper Eqn. 3: Cp > Cs => theta_p > theta_s.
        result = refract(PLA, NC, math.radians(20.0))
        assert result.p_angle > result.s_angle

    def test_amplitudes_are_sqrt_of_energy(self):
        result = refract(PLA, NC, math.radians(50.0))
        assert result.s_amplitude == pytest.approx(math.sqrt(result.s_energy))

    def test_requires_solid_output(self):
        with pytest.raises(AcousticsError):
            refract(PLA, WATER, math.radians(10.0))

    def test_rejects_grazing_input(self):
        with pytest.raises(AcousticsError):
            refract(PLA, NC, math.radians(90.0))
