"""Unit tests for the wall-session simulator and deployment planner."""

import pytest

from repro.acoustics import StructureGeometry, paper_structures
from repro.errors import ProtocolError
from repro.link import (
    DeploymentError,
    PlacedNode,
    PowerUpLink,
    SessionTiming,
    WallSession,
    estimate_survey,
    plan_stations,
)
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment


def make_budget(length=8.0, thickness=0.20):
    wall = StructureGeometry(
        "session wall", length=length, thickness=thickness,
        medium=get_concrete("NC").medium,
    )
    return PowerUpLink(wall)


def make_nodes(distances, seed=0):
    return [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=i + 1,
                environment=Environment(temperature=20.0 + i),
                seed=seed + i,
            ),
            distance=d,
        )
        for i, d in enumerate(distances)
    ]


class TestSessionTiming:
    def test_slot_duration_positive(self):
        timing = SessionTiming()
        assert timing.slot_duration > 0.0

    def test_faster_uplink_shortens_slots(self):
        slow = SessionTiming(uplink_bitrate=1e3)
        fast = SessionTiming(uplink_bitrate=8e3)
        assert fast.slot_duration < slow.slot_duration


class TestWallSession:
    def test_full_session_reads_everyone(self):
        session = WallSession(
            budget=make_budget(),
            nodes=make_nodes([0.5, 1.0, 1.5, 2.0]),
            tx_voltage=250.0,
            seed=3,
        )
        result = session.run()
        assert result.coverage == 1.0
        assert set(result.reports) == {1, 2, 3, 4}
        for reports in result.reports.values():
            assert len(reports) == 3  # three channels each
        assert result.elapsed > 0.0
        assert result.reads_per_second > 0.0

    def test_out_of_range_nodes_stay_dark(self):
        budget = make_budget()
        reach = budget.max_range(50.0)
        session = WallSession(
            budget=budget,
            nodes=make_nodes([reach * 0.5, reach * 3.0]),
            tx_voltage=50.0,
            seed=4,
        )
        result = session.run()
        assert result.powered_nodes == [1]
        assert result.dark_nodes == [2]
        assert result.coverage == pytest.approx(0.5)

    def test_all_dark_session(self):
        budget = make_budget()
        session = WallSession(
            budget=budget,
            nodes=make_nodes([7.5, 7.9]),
            tx_voltage=20.0,
            seed=5,
        )
        result = session.run()
        assert result.powered_nodes == []
        assert result.reports == {}
        assert result.slots_used == 0

    def test_energy_accounting(self):
        session = WallSession(
            budget=make_budget(), nodes=make_nodes([0.5, 1.0]), seed=6
        )
        result = session.run()
        for node_id in result.powered_nodes:
            assert result.node_energy[node_id] > 0.0
            # ~360 uW for the session duration.
            assert result.node_energy[node_id] == pytest.approx(
                360e-6 * result.elapsed, rel=0.05
            )

    def test_requires_nodes(self):
        with pytest.raises(ProtocolError):
            WallSession(budget=make_budget(), nodes=[])

    def test_more_nodes_use_more_slots(self):
        small = WallSession(
            budget=make_budget(), nodes=make_nodes([0.5, 1.0]), seed=7
        ).run()
        large = WallSession(
            budget=make_budget(),
            nodes=make_nodes([0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.1, 2.4], seed=50),
            seed=7,
        ).run()
        assert large.slots_used >= small.slots_used


class TestDeploymentPlanner:
    def test_single_station_for_a_short_wall(self):
        budget = make_budget(length=4.0)
        plan = plan_stations(budget, tx_voltage=250.0)
        assert len(plan.stations) == 1
        assert plan.coverage_fraction() == pytest.approx(1.0)

    def test_long_wall_needs_more_stations(self):
        structures = {s.name: s for s in paper_structures()}
        wall = structures["S3 common wall"]  # 20 m long
        plan = plan_stations(PowerUpLink(wall), tx_voltage=250.0)
        assert len(plan.stations) >= 2
        assert plan.coverage_fraction() == pytest.approx(1.0)
        assert plan.uncovered_gaps() == []

    def test_low_voltage_needs_more_stations(self):
        structures = {s.name: s for s in paper_structures()}
        wall = structures["S3 common wall"]
        budget = PowerUpLink(wall)
        high = plan_stations(budget, tx_voltage=250.0)
        low = plan_stations(budget, tx_voltage=100.0)
        assert len(low.stations) > len(high.stations)

    def test_no_coverage_raises(self):
        budget = make_budget()
        with pytest.raises(DeploymentError):
            plan_stations(budget, tx_voltage=1.0)

    def test_margin_validation(self):
        with pytest.raises(DeploymentError):
            plan_stations(make_budget(), margin=0.0)


class TestSurveyEstimate:
    def test_scales_with_nodes(self):
        plan = plan_stations(make_budget(), tx_voltage=250.0)
        timing = SessionTiming()
        small = estimate_survey(plan, [2], timing.slot_duration)
        large = estimate_survey(plan, [10], timing.slot_duration)
        assert large.total_time > small.total_time
        assert large.air_time == pytest.approx(5.0 * small.air_time)

    def test_station_count_mismatch_raises(self):
        plan = plan_stations(make_budget(), tx_voltage=250.0)
        with pytest.raises(DeploymentError):
            estimate_survey(plan, [1, 2, 3], 0.1)

    def test_walk_time_included(self):
        plan = plan_stations(make_budget(), tx_voltage=250.0)
        estimate = estimate_survey(
            plan, [4], 0.05, walk_time_per_station=120.0
        )
        assert estimate.total_time >= 120.0
