"""Unit tests for the downlink and backscatter modulators."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.phy import BackscatterModulator, DownlinkModulator, PieTiming

SAMPLE_RATE = 1e6


class TestDownlinkModulator:
    def test_fsk_keeps_full_envelope(self):
        mod = DownlinkModulator(scheme="fsk")
        envelope, carrier = mod.drive_plan([0, 1], SAMPLE_RATE)
        assert np.all(envelope == 1.0)  # the PZT never stops
        assert set(np.unique(carrier)) == {mod.off_frequency, mod.resonant_frequency}

    def test_ook_drops_envelope(self):
        mod = DownlinkModulator(scheme="ook")
        envelope, carrier = mod.drive_plan([0], SAMPLE_RATE)
        assert 0.0 in np.unique(envelope)
        assert set(np.unique(carrier)) == {mod.resonant_frequency}

    def test_durations_follow_pie(self):
        timing = PieTiming(tari=100e-6, low=100e-6)
        mod = DownlinkModulator(timing=timing)
        envelope, _ = mod.drive_plan([0, 1], SAMPLE_RATE)
        expected = int((timing.zero_duration + timing.one_duration) * SAMPLE_RATE)
        assert envelope.size == expected

    def test_rejects_equal_frequencies(self):
        with pytest.raises(EncodingError):
            DownlinkModulator(resonant_frequency=230e3, off_frequency=230e3)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(EncodingError):
            DownlinkModulator(scheme="psk")


class TestBackscatterModulator:
    def test_samples_per_symbol_even(self):
        mod = BackscatterModulator(bitrate=1e3)
        n = mod.samples_per_symbol(SAMPLE_RATE)
        assert n % 2 == 0
        assert n == pytest.approx(SAMPLE_RATE / 1e3, abs=1)

    def test_switch_waveform_binary(self):
        mod = BackscatterModulator()
        switch = mod.switch_waveform([1, 0, 1], SAMPLE_RATE)
        assert set(np.unique(switch)) <= {0.0, 1.0}

    def test_switch_toggles_at_blf(self):
        mod = BackscatterModulator(blf=10e3, bitrate=1e3)
        switch = mod.switch_waveform([1, 1], SAMPLE_RATE)
        # FM0 of [1, 1] holds the baseband high for half the duration
        # (alternating levels), so expect ~2 transitions per BLF cycle
        # over that half.
        transitions = np.sum(np.abs(np.diff(switch)) > 0)
        duration = switch.size / SAMPLE_RATE
        assert transitions == pytest.approx(0.5 * 2 * 10e3 * duration, rel=0.35)

    def test_reflect_gates_the_carrier(self):
        mod = BackscatterModulator(reflective_gain=0.5)
        t = np.arange(int(2e-3 * SAMPLE_RATE)) / SAMPLE_RATE
        cbw = np.sin(2 * np.pi * 230e3 * t)
        reflected = mod.reflect(cbw, [1, 0], SAMPLE_RATE)
        assert reflected.size == cbw.size
        assert np.max(np.abs(reflected)) <= 0.5 + 1e-9

    def test_reflect_rejects_short_carrier(self):
        mod = BackscatterModulator(bitrate=1e3)
        with pytest.raises(EncodingError):
            mod.reflect(np.ones(10), [1, 0, 1, 1], SAMPLE_RATE)

    def test_sidebands(self):
        mod = BackscatterModulator(blf=10e3)
        low, high = mod.sideband_frequencies(230e3)
        assert low == pytest.approx(220e3)
        assert high == pytest.approx(240e3)

    def test_sidebands_reject_low_carrier(self):
        mod = BackscatterModulator(blf=10e3)
        with pytest.raises(EncodingError):
            mod.sideband_frequencies(5e3)

    def test_rejects_blf_below_bitrate(self):
        with pytest.raises(EncodingError):
            BackscatterModulator(blf=1e3, bitrate=2e3)


class TestSpectralSeparation:
    def test_backscatter_energy_at_sidebands(self):
        """The shifted-BLF scheme moves energy off the carrier (Fig. 24)."""
        from repro.phy import dsp

        mod = BackscatterModulator(blf=20e3, bitrate=2e3)
        n = mod.samples_per_symbol(SAMPLE_RATE) * 32
        t = np.arange(n) / SAMPLE_RATE
        cbw = np.sin(2 * np.pi * 230e3 * t)
        rng = np.random.default_rng(0)
        bits = list(rng.integers(0, 2, size=32))
        reflected = mod.reflect(cbw, bits, SAMPLE_RATE)

        freqs, psd = dsp.power_spectrum(reflected, SAMPLE_RATE)

        def band_power(center, width=4e3):
            mask = (freqs > center - width) & (freqs < center + width)
            return float(np.sum(psd[mask]))

        sideband = band_power(230e3 + 20e3) + band_power(230e3 - 20e3)
        guard = band_power(230e3 + 10e3, width=2e3)
        assert sideband > 5.0 * guard
