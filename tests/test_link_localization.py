"""Unit tests for capsule localization via round-trip ranging."""

import pytest

from repro.link import (
    LocalizationError,
    RangingMeasurement,
    WallLocalizer,
    locate,
    simulate_round_trip,
)
from repro.materials import get_concrete

CS = get_concrete("NC").cs


class TestRanging:
    def test_distance_from_round_trip(self):
        m = RangingMeasurement(
            station_position=0.0, round_trip_time=2.0 / CS, wave_speed=CS
        )
        assert m.distance == pytest.approx(1.0)

    def test_simulated_round_trip_exact_without_jitter(self):
        m = simulate_round_trip(0.0, 2.5, CS)
        assert m.distance == pytest.approx(2.5)

    def test_jitter_perturbs(self):
        import numpy as np

        rng = np.random.default_rng(0)
        m = simulate_round_trip(0.0, 2.5, CS, timing_jitter=1e-5, rng=rng)
        assert m.distance != pytest.approx(2.5, abs=1e-6)

    def test_rejects_negative_rtt(self):
        with pytest.raises(LocalizationError):
            RangingMeasurement(0.0, -1.0, CS)


class TestLocate:
    def test_exact_two_stations(self):
        node = 3.2
        measurements = [
            simulate_round_trip(0.0, node, CS),
            simulate_round_trip(8.0, node, CS),
        ]
        estimate, residual = locate(measurements)
        assert estimate == pytest.approx(node, abs=1e-9)
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_resolves_side_ambiguity(self):
        # A single station cannot tell +d from -d; a second one can.
        node = 1.0
        measurements = [
            simulate_round_trip(4.0, node, CS),  # ambiguous: 1.0 or 7.0
            simulate_round_trip(0.0, node, CS),
        ]
        estimate, _ = locate(measurements)
        assert estimate == pytest.approx(1.0, abs=1e-9)

    def test_requires_two_stations(self):
        with pytest.raises(LocalizationError):
            locate([simulate_round_trip(0.0, 1.0, CS)])

    def test_three_stations_beat_two_under_jitter(self):
        import numpy as np

        node = 5.0
        jitter = 2e-5
        errors = {}
        for n_stations, positions in ((2, [0.0, 10.0]), (4, [0.0, 3.0, 7.0, 10.0])):
            rng = np.random.default_rng(1)
            trials = []
            for _ in range(200):
                ms = [
                    simulate_round_trip(p, node, CS, timing_jitter=jitter, rng=rng)
                    for p in positions
                ]
                estimate, _ = locate(ms)
                trials.append(abs(estimate - node))
            errors[n_stations] = float(np.mean(trials))
        assert errors[4] < errors[2]


class TestWallLocalizer:
    def test_survey_accuracy_at_paper_timing(self):
        # 1 MS/s capture -> ~1 us timestamps -> ~mm-cm ranging accuracy.
        localizer = WallLocalizer(
            station_positions=[0.0, 10.0, 20.0],
            wave_speed=CS,
            timing_jitter=1e-6,
            seed=2,
        )
        nodes = [1.5, 6.0, 13.7, 18.2]
        results = localizer.survey(nodes)
        for true, (estimate, residual) in zip(nodes, results):
            assert estimate == pytest.approx(true, abs=0.02)
            assert residual < 0.05

    def test_expected_accuracy_scale(self):
        localizer = WallLocalizer(
            station_positions=[0.0, 10.0], wave_speed=CS, timing_jitter=1e-6
        )
        # 0.5 * 1 us * 1941 m/s / sqrt(2) ~ 0.7 mm.
        assert localizer.expected_accuracy() == pytest.approx(
            0.5 * 1e-6 * CS / (2**0.5)
        )

    def test_requires_two_stations(self):
        with pytest.raises(LocalizationError):
            WallLocalizer(station_positions=[0.0], wave_speed=CS)
