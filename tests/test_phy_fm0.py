"""Unit tests for FM0 coding and the ML decoder."""

import numpy as np
import pytest

from repro.errors import DecodingError, EncodingError
from repro.phy import (
    Fm0Decoder,
    bipolar,
    fm0_encode_baseband,
    fm0_encode_levels,
)


class TestEncodeLevels:
    def test_boundary_inversion_every_symbol(self):
        pairs = fm0_encode_levels([1, 1, 1], initial_level=1)
        # Bit 1 holds its level across the symbol; consecutive symbols flip.
        assert pairs == [(0, 0), (1, 1), (0, 0)]

    def test_bit_zero_flips_mid_symbol(self):
        pairs = fm0_encode_levels([0], initial_level=1)
        first, second = pairs[0]
        assert first != second

    def test_bit_one_holds_level(self):
        pairs = fm0_encode_levels([1], initial_level=0)
        first, second = pairs[0]
        assert first == second

    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            fm0_encode_levels([0, 1, 2])

    def test_rejects_bad_initial_level(self):
        with pytest.raises(EncodingError):
            fm0_encode_levels([0], initial_level=5)


class TestEncodeBaseband:
    def test_length(self):
        baseband = fm0_encode_baseband([1, 0, 1], 10)
        assert baseband.size == 30

    def test_rejects_odd_samples_per_symbol(self):
        with pytest.raises(EncodingError):
            fm0_encode_baseband([1], 7)

    def test_every_symbol_boundary_transitions(self):
        baseband = fm0_encode_baseband([1, 1, 0, 1], 8)
        for boundary in (8, 16, 24):
            assert baseband[boundary - 1] != baseband[boundary]


class TestDecoder:
    @pytest.mark.parametrize("n", [2, 4, 10, 16])
    def test_clean_round_trip(self, n):
        rng = np.random.default_rng(0)
        bits = list(rng.integers(0, 2, size=64))
        waveform = bipolar(fm0_encode_baseband(bits, n))
        decoder = Fm0Decoder(samples_per_symbol=n)
        assert decoder.decode(waveform) == bits

    def test_noisy_round_trip(self):
        rng = np.random.default_rng(1)
        bits = list(rng.integers(0, 2, size=200))
        waveform = bipolar(fm0_encode_baseband(bits, 10))
        noisy = waveform + rng.normal(0.0, 0.4, size=waveform.size)
        decoder = Fm0Decoder(samples_per_symbol=10)
        decoded = decoder.decode(noisy)
        errors = sum(1 for a, b in zip(decoded, bits) if a != b)
        assert errors == 0  # 0.4 sigma over 10 samples is easy

    def test_heavy_noise_still_mostly_right(self):
        rng = np.random.default_rng(2)
        bits = list(rng.integers(0, 2, size=500))
        waveform = bipolar(fm0_encode_baseband(bits, 10))
        noisy = waveform + rng.normal(0.0, 1.5, size=waveform.size)
        decoded = Fm0Decoder(samples_per_symbol=10).decode(noisy)
        errors = sum(1 for a, b in zip(decoded, bits) if a != b)
        assert errors / len(bits) < 0.25

    def test_amplitude_invariance(self):
        bits = [1, 0, 0, 1, 1, 0]
        waveform = bipolar(fm0_encode_baseband(bits, 8))
        decoder = Fm0Decoder(samples_per_symbol=8)
        assert decoder.decode(0.01 * waveform) == bits
        assert decoder.decode(100.0 * waveform) == bits

    def test_rejects_partial_symbol(self):
        decoder = Fm0Decoder(samples_per_symbol=10)
        with pytest.raises(DecodingError):
            decoder.decode(np.ones(25))

    def test_rejects_empty(self):
        decoder = Fm0Decoder(samples_per_symbol=10)
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros(0))

    def test_rejects_odd_spb(self):
        with pytest.raises(DecodingError):
            Fm0Decoder(samples_per_symbol=9)


class TestBipolar:
    def test_mapping(self):
        out = bipolar(np.array([0.0, 1.0, 0.0]))
        assert list(out) == [-1.0, 1.0, -1.0]
