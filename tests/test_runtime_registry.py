"""Tests for the experiment registry (runtime.registry)."""

import inspect

import pytest

from repro import experiments
from repro.errors import RegistryError
from repro.runtime import experiment_names, experiment_registry, get_spec
from repro.runtime.registry import registry_name


class TestDiscovery:
    def test_every_experiment_module_is_registered(self):
        assert len(experiment_names()) == len(experiments.__all__)

    def test_names_are_short_figure_ids(self):
        names = experiment_names()
        assert "fig15" in names
        assert "tables" in names
        assert "appendix_sensors" in names
        assert "fig15_ber_vs_snr" not in names

    def test_registry_order_follows_module_order(self):
        expected = [registry_name(short) for short in experiments.__all__]
        assert experiment_names() == expected

    def test_registry_name_mapping(self):
        assert registry_name("fig15_ber_vs_snr") == "fig15"
        assert registry_name("downlink_reliability") == "downlink_reliability"


class TestSpecs:
    def test_every_spec_declares_an_integer_seed(self):
        for spec in experiment_registry().values():
            assert isinstance(spec.seed, int), spec.name
            assert spec.default_params["seed"] == spec.seed

    def test_default_params_match_run_signature(self):
        for spec in experiment_registry().values():
            signature = inspect.signature(spec.module().run)
            defaults = {
                name: param.default
                for name, param in signature.parameters.items()
            }
            assert dict(spec.default_params) == defaults, spec.name

    def test_titles_come_from_module_docstrings(self):
        spec = get_spec("fig15")
        assert "Fig. 15" in spec.title

    def test_quick_params_are_a_subset_of_run_parameters(self):
        for spec in experiment_registry().values():
            unknown = set(spec.quick_params) - set(spec.default_params)
            assert not unknown, f"{spec.name}: {unknown}"

    def test_params_merges_defaults_quick_and_overrides(self):
        spec = get_spec("fig15")
        params = spec.params({"total_bits": 123}, quick=True)
        assert params["total_bits"] == 123  # override beats quick
        assert params["seed"] == spec.seed

    def test_unknown_override_is_rejected(self):
        with pytest.raises(RegistryError):
            get_spec("fig15").params({"not_a_param": 1})

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(RegistryError):
            get_spec("fig99")

    def test_source_returns_module_text(self):
        assert "def run(" in get_spec("fig13").source()

    def test_execute_runs_the_module(self):
        result = get_spec("fig13").execute()
        assert result.standby_power > 0.0
