"""The bench-trend regression gate (repro/obs/trend.py, ``obs trend``)."""

import json

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs.trend import (
    TREND_SCHEMA,
    evaluate,
    load_bench,
    load_history,
    record_history,
)


def write_bench(
    directory, speedup=31.0, ingest=3_800_000.0, p95_ms=2.2,
    overhead=0.8, smoke=False,
):
    (directory / "BENCH_phy.json").write_text(json.dumps({
        "schema": "repro/bench-phy/v1", "smoke": smoke,
        "speedup_batch_vs_scalar": speedup,
        "batch": {"packets_per_s": 2000},
    }))
    (directory / "BENCH_store.json").write_text(json.dumps({
        "schema": "repro/bench-store/v1", "smoke": smoke,
        "ingest_rows_per_s": ingest, "range_query_p95_ms": p95_ms,
    }))
    (directory / "BENCH_obs.json").write_text(json.dumps({
        "schema": "repro/bench-obs/v1", "smoke": smoke,
        "overhead_pct": overhead,
    }))


def by_metric(verdicts):
    return {v["metric"]: v for v in verdicts}


class TestLoading:
    def test_missing_files_yield_missing_verdicts(self, tmp_path):
        verdicts = by_metric(evaluate(load_bench(tmp_path), []))
        assert all(v["verdict"] == "missing" for v in verdicts.values())

    def test_malformed_bench_raises(self, tmp_path):
        (tmp_path / "BENCH_phy.json").write_text("{nope")
        with pytest.raises(ObsError):
            load_bench(tmp_path)

    def test_history_roundtrip(self, tmp_path):
        write_bench(tmp_path)
        history_path = tmp_path / "hist.jsonl"
        record = record_history(history_path, load_bench(tmp_path))
        assert record["schema"] == TREND_SCHEMA
        loaded = load_history(history_path)
        assert len(loaded) == 1
        assert loaded[0]["metrics"]["phy.speedup_batch_vs_scalar"] == 31.0

    def test_history_bad_schema_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"schema": "wrong/v9", "metrics": {}}\n')
        with pytest.raises(ObsError):
            load_history(path)

    def test_smoke_readings_are_not_recorded(self, tmp_path):
        write_bench(tmp_path, smoke=True)
        with pytest.raises(ObsError):
            record_history(tmp_path / "hist.jsonl", load_bench(tmp_path))


class TestVerdicts:
    def test_healthy_readings_pass(self, tmp_path):
        write_bench(tmp_path)
        verdicts = by_metric(evaluate(load_bench(tmp_path), []))
        assert verdicts["phy.speedup_batch_vs_scalar"]["verdict"] == "no-baseline"
        assert not verdicts["phy.speedup_batch_vs_scalar"]["reasons"]

    def test_absolute_floor_violation_regresses_without_history(self, tmp_path):
        write_bench(tmp_path, speedup=5.0)  # < the promised 10x
        verdicts = by_metric(evaluate(load_bench(tmp_path), []))
        entry = verdicts["phy.speedup_batch_vs_scalar"]
        assert entry["verdict"] == "regress"
        assert "floor" in entry["reasons"][0]

    def test_absolute_ceiling_violation_for_lower_is_better(self, tmp_path):
        write_bench(tmp_path, overhead=4.5)  # > the 2% budget
        verdicts = by_metric(evaluate(load_bench(tmp_path), []))
        assert verdicts["obs.overhead_pct"]["verdict"] == "regress"

    def test_relative_slide_against_history_regresses(self, tmp_path):
        write_bench(tmp_path)
        history_path = tmp_path / "hist.jsonl"
        record_history(history_path, load_bench(tmp_path))
        write_bench(tmp_path, ingest=2_000_000.0)  # -47% vs baseline
        verdicts = by_metric(evaluate(
            load_bench(tmp_path), load_history(history_path), tolerance=0.25
        ))
        entry = verdicts["store.ingest_rows_per_s"]
        assert entry["verdict"] == "regress"
        assert any("baseline" in r for r in entry["reasons"])

    def test_slide_within_tolerance_passes(self, tmp_path):
        write_bench(tmp_path)
        history_path = tmp_path / "hist.jsonl"
        record_history(history_path, load_bench(tmp_path))
        write_bench(tmp_path, ingest=3_100_000.0)  # -18%: inside 25%
        verdicts = by_metric(evaluate(
            load_bench(tmp_path), load_history(history_path), tolerance=0.25
        ))
        assert verdicts["store.ingest_rows_per_s"]["verdict"] == "pass"

    def test_lower_is_better_slide_regresses_upward(self, tmp_path):
        write_bench(tmp_path)
        history_path = tmp_path / "hist.jsonl"
        record_history(history_path, load_bench(tmp_path))
        write_bench(tmp_path, p95_ms=4.0)  # +82% latency
        verdicts = by_metric(evaluate(
            load_bench(tmp_path), load_history(history_path)
        ))
        assert verdicts["store.range_query_p95_ms"]["verdict"] == "regress"

    def test_smoke_mode_is_exempt_from_gating(self, tmp_path):
        write_bench(tmp_path, speedup=1.0, smoke=True)  # way under floor
        verdicts = by_metric(evaluate(load_bench(tmp_path), []))
        assert verdicts["phy.speedup_batch_vs_scalar"]["verdict"] == "smoke"

    def test_baseline_is_the_median_of_history(self, tmp_path):
        write_bench(tmp_path)
        history_path = tmp_path / "hist.jsonl"
        for ingest in (3_000_000.0, 4_000_000.0, 8_000_000.0):
            write_bench(tmp_path, ingest=ingest)
            record_history(history_path, load_bench(tmp_path))
        write_bench(tmp_path, ingest=3_500_000.0)
        verdicts = by_metric(evaluate(
            load_bench(tmp_path), load_history(history_path)
        ))
        entry = verdicts["store.ingest_rows_per_s"]
        assert entry["baseline"] == 4_000_000.0  # not dragged by the 8M run
        assert entry["verdict"] == "pass"

    def test_negative_tolerance_rejected(self, tmp_path):
        write_bench(tmp_path)
        with pytest.raises(ObsError):
            evaluate(load_bench(tmp_path), [], tolerance=-0.1)


class TestCli:
    def test_cli_exits_zero_on_healthy_bench(self, tmp_path, capsys):
        write_bench(tmp_path)
        code = main([
            "obs", "trend", "--bench-dir", str(tmp_path),
            "--history", str(tmp_path / "hist.jsonl"),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cli_exits_nonzero_on_injected_regression(self, tmp_path, capsys):
        write_bench(tmp_path, speedup=3.0)
        code = main([
            "obs", "trend", "--bench-dir", str(tmp_path),
            "--history", str(tmp_path / "hist.jsonl"),
        ])
        assert code == 1
        assert "1 regression(s)" in capsys.readouterr().out

    def test_cli_record_appends_history(self, tmp_path):
        write_bench(tmp_path)
        history = tmp_path / "hist.jsonl"
        assert main([
            "obs", "trend", "--bench-dir", str(tmp_path),
            "--history", str(history), "--record",
        ]) == 0
        assert len(load_history(history)) == 1

    def test_cli_json_output(self, tmp_path, capsys):
        write_bench(tmp_path)
        code = main([
            "obs", "trend", "--bench-dir", str(tmp_path),
            "--history", str(tmp_path / "hist.jsonl"), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] == 0
        assert len(payload["verdicts"]) >= 5

    def test_cli_gates_on_the_committed_bench_artifacts(self):
        # The acceptance check: the repo's own BENCH files pass.
        assert main([
            "obs", "trend", "--bench-dir", ".",
            "--history", "BENCH_HISTORY.jsonl",
        ]) == 0
