"""Unit tests for the harvest-aware energy scheduler."""

import pytest

from repro.errors import PowerError
from repro.node import EnergyScheduler


@pytest.fixture
def scheduler():
    return EnergyScheduler()


class TestReportCosts:
    def test_report_duration(self, scheduler):
        assert scheduler.report_duration() == pytest.approx(0.1)  # 100 bits @ 1 kbps

    def test_report_energy_scale(self, scheduler):
        # ~360 uW for 0.1 s -> ~36 uJ.
        assert scheduler.report_energy() == pytest.approx(36e-6, rel=0.05)

    def test_rejects_bad_parameters(self):
        with pytest.raises(PowerError):
            EnergyScheduler(bitrate=0.0)
        with pytest.raises(PowerError):
            EnergyScheduler(report_bits=0)
        with pytest.raises(PowerError):
            EnergyScheduler(sleep_overhead=1.0)


class TestPlans:
    def test_strong_field_is_continuous(self, scheduler):
        plan = scheduler.plan(3.0)
        assert plan.continuous
        assert plan.duty_cycle == 1.0
        assert plan.report_interval == scheduler.report_duration()

    def test_weak_field_duty_cycles(self, scheduler):
        # Just above activation, the harvest is below the active draw.
        plan = scheduler.plan(0.55)
        assert not plan.continuous
        assert 0.0 < plan.duty_cycle < 1.0
        assert plan.report_interval > scheduler.report_duration()

    def test_duty_cycle_matches_energy_balance(self, scheduler):
        plan = scheduler.plan(0.6)
        usable = plan.harvested_power * (1.0 - scheduler.sleep_overhead)
        # Average consumption over the cycle cannot exceed the usable
        # harvest (the definition of sustainability).
        average = (
            plan.active_power * plan.duty_cycle
            + scheduler.mcu.power("sleep") * (1.0 - plan.duty_cycle)
        )
        assert average <= usable * 1.01

    def test_stronger_field_faster_reports(self, scheduler):
        weak = scheduler.plan(0.55)
        strong = scheduler.plan(0.9)
        assert strong.report_interval < weak.report_interval

    def test_below_activation_raises(self, scheduler):
        with pytest.raises(PowerError):
            scheduler.plan(0.3)

    def test_reports_per_hour(self, scheduler):
        plan = scheduler.plan(2.0)
        assert plan.reports_per_hour == pytest.approx(3600.0 / plan.report_interval)


class TestMinimumContinuousField:
    def test_boundary_is_consistent(self, scheduler):
        v_min = scheduler.minimum_continuous_field()
        assert scheduler.plan(v_min * 1.01).continuous
        below = scheduler.plan(v_min * 0.97)
        assert not below.continuous

    def test_within_practical_band(self, scheduler):
        # Continuous operation should need more than bare activation but
        # far less than the 6 m-range field strengths.
        v_min = scheduler.minimum_continuous_field()
        assert 0.5 < v_min < 3.0


class TestSweep:
    def test_sweep_marks_dead_zones(self, scheduler):
        plans = scheduler.sweep([0.2, 0.6, 2.0])
        assert plans[0][1] is None
        assert plans[1][1] is not None and not plans[1][1].continuous
        assert plans[2][1] is not None and plans[2][1].continuous
