"""Unit tests for body-wave fundamentals and beam geometry."""

import math

import pytest

from repro.acoustics import (
    PlaneWave,
    beam_cone_volume,
    half_beam_angle,
    near_field_length,
    velocity_ratio,
)
from repro.errors import AcousticsError
from repro.materials import AIR, get_concrete

NC = get_concrete("NC").medium


class TestHalfBeamAngle:
    def test_paper_example(self):
        # D = 40 mm, f = 230 kHz, Cp = 3338 m/s -> alpha ~ 11 deg.
        alpha = half_beam_angle(0.040, 230e3, NC.cp)
        assert math.degrees(alpha) == pytest.approx(11.0, abs=0.5)

    def test_larger_disc_narrower_beam(self):
        a_small = half_beam_angle(0.020, 230e3, NC.cp)
        a_large = half_beam_angle(0.040, 230e3, NC.cp)
        assert a_large < a_small

    def test_higher_frequency_narrower_beam(self):
        a_low = half_beam_angle(0.040, 150e3, NC.cp)
        a_high = half_beam_angle(0.040, 300e3, NC.cp)
        assert a_high < a_low

    def test_subwavelength_disc_rejected(self):
        with pytest.raises(AcousticsError):
            half_beam_angle(0.001, 50e3, NC.cp)

    def test_rejects_nonpositive(self):
        with pytest.raises(AcousticsError):
            half_beam_angle(0.0, 230e3, 3000.0)


class TestBeamConeVolume:
    def test_paper_cone(self):
        # ~132 cm^3 for alpha ~ 11 deg through 15 cm (Sec. 3.2).
        alpha = half_beam_angle(0.040, 230e3, NC.cp)
        volume = beam_cone_volume(alpha, 0.15)
        assert volume * 1e6 == pytest.approx(132.0, rel=0.15)

    def test_volume_grows_with_depth(self):
        alpha = math.radians(11.0)
        assert beam_cone_volume(alpha, 0.30) > beam_cone_volume(alpha, 0.15)

    def test_rejects_bad_angle(self):
        with pytest.raises(AcousticsError):
            beam_cone_volume(0.0, 0.15)
        with pytest.raises(AcousticsError):
            beam_cone_volume(math.pi / 2.0, 0.15)


class TestPlaneWave:
    def test_wavelength_in_concrete(self):
        wave = PlaneWave(mode="s", frequency=230e3)
        assert wave.wavelength_in(NC) == pytest.approx(1941.0 / 230e3)

    def test_wavenumber(self):
        wave = PlaneWave(mode="p", frequency=230e3)
        k = wave.wavenumber_in(NC)
        assert k == pytest.approx(2 * math.pi * 230e3 / 3338.0)

    def test_s_wave_in_fluid_rejected(self):
        wave = PlaneWave(mode="s", frequency=230e3)
        with pytest.raises(Exception):
            wave.velocity_in(AIR)

    def test_invalid_mode_rejected(self):
        with pytest.raises(AcousticsError):
            PlaneWave(mode="r", frequency=230e3)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(AcousticsError):
            PlaneWave(mode="p", frequency=230e3, amplitude=-1.0)


class TestNearField:
    def test_formula(self):
        n = near_field_length(0.040, 230e3, NC.cp)
        assert n == pytest.approx(0.040**2 * 230e3 / (4 * NC.cp))

    def test_rejects_nonpositive(self):
        with pytest.raises(AcousticsError):
            near_field_length(0.0, 1.0, 1.0)


class TestVelocityRatio:
    def test_concrete_ratio(self):
        assert velocity_ratio(NC) == pytest.approx(1941.0 / 3338.0)

    def test_fluid_rejected(self):
        with pytest.raises(AcousticsError):
            velocity_ratio(AIR)
