"""Unit tests for the Helmholtz resonator array (Eqn. 5, Fig. 8d)."""

import math

import pytest

from repro.acoustics import (
    HelmholtzResonator,
    HelmholtzResonatorArray,
    design_resonator,
    paper_resonator,
    speed_for_target,
)
from repro.errors import DesignError


class TestEquation5:
    def test_formula(self):
        hr = paper_resonator()
        cs = 2000.0
        expected = (cs / (2 * math.pi)) * math.sqrt(
            3 * hr.neck_area / (4 * hr.cavity_volume * hr.neck_length)
        )
        assert hr.resonant_frequency(cs) == pytest.approx(expected)

    def test_paper_geometry(self):
        hr = paper_resonator()
        assert hr.neck_area == pytest.approx(0.78e-6)
        assert hr.cavity_volume == pytest.approx(2.76e-9)
        assert hr.neck_length == pytest.approx(0.8e-3)

    def test_paper_geometry_targets_230khz_in_hp_concrete(self):
        # The required S-speed (~2.8 km/s) matches UHPC-class concrete.
        speed = speed_for_target(paper_resonator(), 230e3)
        assert 2500.0 < speed < 3100.0

    def test_resonance_scales_linearly_with_speed(self):
        hr = paper_resonator()
        assert hr.resonant_frequency(4000.0) == pytest.approx(
            2.0 * hr.resonant_frequency(2000.0)
        )

    def test_bigger_cavity_lower_frequency(self):
        small = HelmholtzResonator(0.78e-6, 0.8e-3, 2.0e-9)
        large = HelmholtzResonator(0.78e-6, 0.8e-3, 4.0e-9)
        assert large.resonant_frequency(2000.0) < small.resonant_frequency(2000.0)

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(DesignError):
            HelmholtzResonator(0.0, 0.8e-3, 2.76e-9)
        with pytest.raises(DesignError):
            HelmholtzResonator(0.78e-6, -1.0, 2.76e-9)


class TestAmplification:
    def test_peak_at_resonance(self):
        hr = paper_resonator()
        cs = 2800.0
        f0 = hr.resonant_frequency(cs)
        assert hr.amplification(f0, cs) > hr.amplification(f0 * 0.5, cs)
        assert hr.amplification(f0, cs) > hr.amplification(f0 * 2.0, cs)

    def test_never_attenuates(self):
        hr = paper_resonator()
        for f in (50e3, 150e3, 230e3, 500e3):
            assert hr.amplification(f, 2800.0) >= 1.0

    def test_array_beats_single(self):
        hr = paper_resonator()
        array = HelmholtzResonatorArray(hr, count=7)
        cs = 2800.0
        f0 = hr.resonant_frequency(cs)
        assert array.amplification(f0, cs) > hr.amplification(f0, cs)

    def test_array_gain_sublinear(self):
        hr = paper_resonator()
        cs = 2800.0
        f0 = hr.resonant_frequency(cs)
        small = HelmholtzResonatorArray(hr, count=4).amplification(f0, cs)
        large = HelmholtzResonatorArray(hr, count=16).amplification(f0, cs)
        assert large < 4.0 * small

    def test_rejects_empty_array(self):
        with pytest.raises(DesignError):
            HelmholtzResonatorArray(paper_resonator(), count=0)


class TestDesignResonator:
    def test_hits_target(self):
        hr = design_resonator(230e3, 1941.0)
        assert hr.resonant_frequency(1941.0) == pytest.approx(230e3, rel=1e-9)

    def test_slower_medium_needs_smaller_cavity(self):
        fast = design_resonator(230e3, 2800.0)
        slow = design_resonator(230e3, 1941.0)
        assert slow.cavity_volume < fast.cavity_volume

    def test_rejects_nonpositive_target(self):
        with pytest.raises(DesignError):
            design_resonator(0.0, 1941.0)
