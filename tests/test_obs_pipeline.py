"""The obs -> store telemetry pipeline (repro/obs/pipeline.py).

Covers the recorder's delta semantics, the campaign heartbeat's
zero-effect-on-result-bytes contract, survival of ``_obs`` series
through compaction, HTTP serving of the self-telemetry, and the
resume-healing rule that protects foreign ``_obs`` walls.
"""

import json
import urllib.request

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.driver import Campaign, result_hash
from repro.errors import CampaignError, ObsError
from repro.obs import MetricsRegistry, observed
from repro.obs.pipeline import MetricsRecorder, sanitize_store_metric
from repro.store import (
    OBS_BUILDING,
    QueryEngine,
    SeriesKey,
    TelemetryStore,
    compact_store,
    serve_background,
)


def small_config(**overrides):
    defaults = dict(
        epochs=4, nodes=3, hours_per_epoch=24, samples_per_hour=2,
        seed=5, storm_period_epochs=3, storm_duration_epochs=1,
        checkpoint_interval=2, epoch_timeout_s=0.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def obs_metrics(store):
    return {k.metric for k in store.keys() if k.building == OBS_BUILDING}


class TestSanitizeStoreMetric:
    def test_plain_names_pass_through(self):
        assert sanitize_store_metric("campaign.epoch_wall_s") == \
            "campaign.epoch_wall_s"

    def test_labels_flatten_into_dotted_segments(self):
        assert sanitize_store_metric(
            "serve.requests{path=/series,status=200}"
        ) == "serve.requests.path.-series.status.200"

    def test_illegal_characters_become_dashes(self):
        sanitized = sanitize_store_metric('weird{q="a b"}')
        assert " " not in sanitized and '"' not in sanitized

    def test_long_names_truncate_with_stable_digest(self):
        long_a = sanitize_store_metric("x" * 100 + "a")
        long_b = sanitize_store_metric("x" * 100 + "b")
        assert len(long_a) <= 64 and len(long_b) <= 64
        assert long_a != long_b
        assert long_a == sanitize_store_metric("x" * 100 + "a")

    def test_result_is_a_valid_series_key_component(self):
        for ugly in ("{}", "9.lives", "a/b:c", "x" * 200):
            SeriesKey(OBS_BUILDING, "serve", 0, sanitize_store_metric(ugly))


class TestRecorder:
    def test_no_registry_records_nothing(self, tmp_path):
        recorder = MetricsRecorder(TelemetryStore(tmp_path))
        assert recorder.record(t=1.0) == 0
        assert recorder.ticks == 0

    def test_first_tick_writes_zero_valued_series(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("idle.counter")
        registry.histogram("idle.hist")
        MetricsRecorder(store, registry=registry).record(t=1.0)
        metrics = obs_metrics(store)
        assert "idle.counter" in metrics
        assert "idle.hist.count" in metrics and "idle.hist.sum" in metrics

    def test_counters_record_deltas_only_on_change(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("jobs").inc(5)
        recorder = MetricsRecorder(store, registry=registry)
        recorder.record(t=1.0)
        recorder.record(t=2.0)  # unchanged: no new sample
        registry.counter("jobs").inc(2)
        recorder.record(t=3.0)
        data = QueryEngine(store).series(
            SeriesKey(OBS_BUILDING, "campaign", 0, "jobs")
        )
        assert list(data["t"]) == [1.0, 3.0]
        assert list(data["value"]) == [5.0, 2.0]

    def test_gauges_record_every_tick(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        recorder = MetricsRecorder(store, registry=registry)
        recorder.record(t=1.0)
        recorder.record(t=2.0)
        data = QueryEngine(store).series(
            SeriesKey(OBS_BUILDING, "campaign", 0, "depth")
        )
        assert list(data["value"]) == [4.0, 4.0]

    def test_histogram_quantiles_land_inside_their_bucket(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.02, 0.03, 0.05, 0.5):
            hist.observe(v)
        MetricsRecorder(store, registry=registry).record(t=1.0)
        engine = QueryEngine(store)
        p50 = engine.latest(SeriesKey(OBS_BUILDING, "campaign", 0, "lat.p50"))
        mean = engine.latest(SeriesKey(OBS_BUILDING, "campaign", 0, "lat.mean"))
        assert 0.01 <= p50["value"] <= 0.1  # 2nd of 4 obs: the 0.1 bucket
        assert mean["value"] == pytest.approx(0.15)

    def test_self_metrics_flow_through_next_tick(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        recorder = MetricsRecorder(store, registry=registry)
        recorder.record(t=1.0)
        recorder.record(t=2.0)
        assert "obs.pipeline.records" in obs_metrics(store)
        assert recorder.ticks == 2

    def test_periodic_mode_records_and_stops(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        recorder = MetricsRecorder(
            store, registry=registry, clock=lambda: 1.0
        )
        recorder.start(interval_s=0.01)
        with pytest.raises(ObsError):
            recorder.start()
        recorder.stop()
        assert recorder.ticks >= 1
        recorder.stop()  # second stop is a no-op

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ObsError):
            MetricsRecorder(TelemetryStore(tmp_path), interval_s=0.0)

    def test_bad_flush_every_rejected(self, tmp_path):
        with pytest.raises(ObsError):
            MetricsRecorder(TelemetryStore(tmp_path), flush_every=0)

    def test_flush_every_buffers_ticks_until_cadence(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        recorder = MetricsRecorder(store, registry=registry, flush_every=3)
        recorder.record(t=1.0)
        recorder.record(t=2.0)
        assert obs_metrics(store) == set()  # still buffered in memory
        recorder.record(t=3.0)  # third tick crosses the cadence
        data = QueryEngine(store).series(
            SeriesKey(OBS_BUILDING, "campaign", 0, "depth")
        )
        assert list(data["t"]) == [1.0, 2.0, 3.0]

    def test_explicit_flush_drains_the_buffer(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        recorder = MetricsRecorder(store, registry=registry, flush_every=10)
        recorder.record(t=1.0)
        assert obs_metrics(store) == set()
        recorder.flush()
        assert "c" in obs_metrics(store)
        recorder.flush()  # empty buffer: a no-op

    def test_stop_flushes_buffered_ticks(self, tmp_path):
        store = TelemetryStore(tmp_path)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        recorder = MetricsRecorder(store, registry=registry, flush_every=10)
        recorder.record(t=1.0)
        recorder.stop()  # never started: still drains the buffer
        assert "c" in obs_metrics(store)

    def test_record_obs_without_store_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            Campaign(small_config(), record_obs=True)


class TestCampaignHeartbeat:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        """One observed campaign with heartbeat, plus its plain twin."""
        base = tmp_path_factory.mktemp("heartbeat")
        plain = run_campaign(small_config())
        with observed():
            outcome = run_campaign(
                small_config(), state_dir=base / "state",
                store_dir=base / "store", record_obs=True,
            )
        return plain, outcome, TelemetryStore(base / "store", create=False)

    def test_result_bytes_identical_with_and_without_obs(self, recorded):
        plain, outcome, _ = recorded
        assert result_hash(outcome.result) == result_hash(plain.result)

    def test_required_series_exist_even_in_a_clean_run(self, recorded):
        _, _, store = recorded
        metrics = obs_metrics(store)
        for required in (
            "campaign.epoch_wall_s",
            "campaign.degradations",
            "campaign.epoch_timeouts",
            "campaign.checkpoint_s.count",
            "campaign.checkpoint_s.sum",
            "campaign.export_s.count",
            "campaign.epochs_run",
            "process.max_rss_kb",
        ):
            assert required in metrics, required

    def test_heartbeat_ticks_on_epoch_boundaries(self, recorded):
        # Each tick is stamped at the completed epoch's start hour.
        _, _, store = recorded
        data = QueryEngine(store).series(
            SeriesKey(OBS_BUILDING, "campaign", 0, "campaign.epoch")
        )
        assert list(data["t"]) == [0.0, 24.0, 48.0, 72.0]
        assert list(data["value"]) == [1.0, 2.0, 3.0, 4.0]

    def test_obs_series_survive_compaction(self, recorded):
        _, _, store = recorded
        compact_store(store)
        key = SeriesKey(OBS_BUILDING, "campaign", 0, "campaign.epochs_run")
        hourly = QueryEngine(store).series(key, resolution="hourly")
        assert hourly["t"].size > 0
        assert float(hourly["count"].sum()) == 4.0

    def test_obs_series_served_over_http(self, recorded):
        _, _, store = recorded
        server, _thread = serve_background(store)
        base = f"http://127.0.0.1:{server.port}"
        try:
            series = json.loads(urllib.request.urlopen(
                base + "/series?building=_obs&wall=campaign&node=0"
                "&metric=campaign.epoch_wall_s"
            ).read())
            assert series["rows"] == 4
            healthz = json.loads(
                urllib.request.urlopen(base + "/healthz").read()
            )
            assert healthz["status"] == "ok"
            assert healthz["campaign"]["last_epoch"] == 4.0
            metrics_text = urllib.request.urlopen(base + "/metrics").read()
            assert b"# TYPE serve_requests counter" in metrics_text
        finally:
            server.shutdown()


class TestResumeHealing:
    def test_resume_truncates_campaign_obs_but_not_foreign_walls(
        self, tmp_path
    ):
        state_dir, store_dir = tmp_path / "state", tmp_path / "store"
        with observed():
            run_campaign(
                small_config(), state_dir=state_dir, store_dir=store_dir,
                record_obs=True,
            )
        store = TelemetryStore(store_dir, create=False)
        # A serve-tier recorder using wall-clock hours writes far in
        # the "future" relative to campaign epoch-time.
        foreign = SeriesKey(OBS_BUILDING, "serve", 0, "serve.requests")
        store.append(foreign, [500_000.0], [3.0])
        campaign, state = Campaign.resume(
            state_dir, store_dir=store_dir, record_obs=True
        )
        # Checkpoint interval 2 on a 4-epoch campaign resumes at 4;
        # shrink the horizon so the boundary actually cuts something.
        healed = TelemetryStore(store_dir, create=False)
        assert QueryEngine(healed).latest(foreign)["value"] == 3.0
        heartbeats = QueryEngine(healed).series(
            SeriesKey(OBS_BUILDING, "campaign", 0, "campaign.epoch")
        )
        assert all(t < state.epoch * 24.0 for t in heartbeats["t"])

    def test_resume_from_midpoint_replays_heartbeats(self, tmp_path):
        state_dir, store_dir = tmp_path / "state", tmp_path / "store"
        boom = {"armed": False}

        def hook(epoch):
            if boom["armed"] and epoch == 2:
                raise KeyboardInterrupt  # simulate a hard stop

        boom["armed"] = True
        with observed():
            try:
                run_campaign(
                    small_config(), state_dir=state_dir,
                    store_dir=store_dir, record_obs=True, epoch_hook=hook,
                )
            except KeyboardInterrupt:
                pass
        boom["armed"] = False
        with observed():
            campaign, state = Campaign.resume(
                state_dir, store_dir=store_dir, record_obs=True
            )
            outcome = campaign.run(state)
        assert outcome.completed
        plain = run_campaign(small_config())
        assert result_hash(outcome.result) == result_hash(plain.result)
        data = QueryEngine(
            TelemetryStore(store_dir, create=False)
        ).series(SeriesKey(OBS_BUILDING, "campaign", 0, "campaign.epoch"))
        assert list(data["t"]) == [0.0, 24.0, 48.0, 72.0]
        assert list(data["value"]) == [1.0, 2.0, 3.0, 4.0]
