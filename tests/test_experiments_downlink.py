"""Tests for the downlink-reliability extension experiment."""

import pytest

from repro.experiments import downlink_reliability


@pytest.fixture(scope="module")
def result():
    return downlink_reliability.run(packets_per_point=25)


class TestDownlinkReliability:
    def test_waterfall_shape(self, result):
        rates = [p.packet_error_rate for p in result.points]
        # Monotone non-increasing within tolerance.
        for earlier, later in zip(rates, rates[1:]):
            assert later <= earlier + 0.1

    def test_hopeless_at_0db(self, result):
        assert result.per_at(0.0) > 0.8

    def test_clean_at_high_snr(self, result):
        assert result.per_at(12.0) == 0.0
        assert result.per_at(20.0) == 0.0

    def test_working_snr_in_waterfall(self, result):
        working = result.working_snr(max_per=0.05)
        assert 3.0 <= working <= 9.0

    def test_per_accounting(self, result):
        for point in result.points:
            assert 0 <= point.packet_errors <= point.packets

    def test_reproducible(self):
        a = downlink_reliability.run(packets_per_point=10, snrs_db=[6.0])
        b = downlink_reliability.run(packets_per_point=10, snrs_db=[6.0])
        assert a.per_at(6.0) == b.per_at(6.0)
