"""Property-based tests for the extension modules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import Arrival, sound_arrivals
from repro.link import locate, simulate_round_trip
from repro.node import EnergyScheduler
from repro.shm import strain_capacity_margin


class TestSoundingInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=5e-3),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_metrics_nonnegative_and_consistent(self, raw):
        arrivals = [
            Arrival(delay=d, amplitude=a, bounces=0, path_length=1.0)
            for d, a in raw
        ]
        sounding = sound_arrivals(arrivals)
        assert sounding.rms_delay_spread >= 0.0
        assert sounding.mean_excess_delay >= 0.0
        assert sounding.coherence_bandwidth > 0.0
        assert 1 <= sounding.n_significant_paths <= len(arrivals)

    @given(
        st.floats(min_value=1e-5, max_value=1e-3),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_spread_bounded_by_span(self, tau, amplitude):
        arrivals = [
            Arrival(delay=0.0, amplitude=1.0, bounces=0, path_length=1.0),
            Arrival(delay=tau, amplitude=amplitude, bounces=1, path_length=2.0),
        ]
        sounding = sound_arrivals(arrivals, power_floor=1e-6)
        assert sounding.rms_delay_spread <= tau / 2.0 + 1e-12


class TestLocalizationInvariants:
    @given(
        st.floats(min_value=0.1, max_value=19.9),
        st.floats(min_value=1000.0, max_value=4000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_noiseless_localization_is_exact(self, node, speed):
        measurements = [
            simulate_round_trip(0.0, node, speed),
            simulate_round_trip(20.0, node, speed),
        ]
        estimate, residual = locate(measurements)
        assert estimate == pytest.approx(node, abs=1e-6)
        assert residual == pytest.approx(0.0, abs=1e-6)

    @given(
        st.floats(min_value=0.5, max_value=9.5),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_jittered_estimate_stays_close(self, node, seed):
        rng = np.random.default_rng(seed)
        measurements = [
            simulate_round_trip(p, node, 1941.0, timing_jitter=1e-6, rng=rng)
            for p in (0.0, 5.0, 10.0)
        ]
        estimate, _ = locate(measurements)
        assert abs(estimate - node) < 0.05


class TestSchedulerInvariants:
    @given(st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_plans_are_sustainable(self, voltage):
        scheduler = EnergyScheduler()
        plan = scheduler.plan(voltage)
        assert 0.0 < plan.duty_cycle <= 1.0
        assert plan.report_interval >= scheduler.report_duration() - 1e-12
        # Sustainability: average draw within the usable harvest.
        usable = plan.harvested_power * (1.0 - scheduler.sleep_overhead)
        average = (
            plan.active_power * plan.duty_cycle
            + scheduler.mcu.power("sleep") * (1.0 - plan.duty_cycle)
        )
        assert average <= usable * 1.01

    @given(
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_stronger_fields_never_slow_reports(self, voltage, extra):
        scheduler = EnergyScheduler()
        weak = scheduler.plan(voltage)
        strong = scheduler.plan(voltage + extra)
        assert strong.report_interval <= weak.report_interval * 1.0001


class TestCapacityMarginInvariants:
    @given(
        st.floats(min_value=0.0, max_value=10_000.0),
        st.floats(min_value=1e-4, max_value=1e-2),
    )
    @settings(max_examples=60, deadline=None)
    def test_margin_in_unit_interval(self, strain, capacity):
        margin = strain_capacity_margin(strain, capacity)
        assert 0.0 <= margin <= 1.0

    @given(st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=40, deadline=None)
    def test_margin_monotone_in_strain(self, strain):
        a = strain_capacity_margin(strain, 0.00263)
        b = strain_capacity_margin(strain + 100.0, 0.00263)
        assert b <= a


class TestFdmaInvariants:
    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=24),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_two_node_round_trip(self, bits, seed):
        from repro.phy import FdmaPlan, FdmaReceiver, composite_waveform

        plan = FdmaPlan(
            carrier=230e3, bitrate=1e3, blf_by_node={1: 12e3, 2: 24e3}
        )
        payloads = {1: list(bits), 2: list(reversed(bits))}
        waveform = composite_waveform(
            plan, payloads, 1e6, noise_floor=1e-3, seed=seed
        )
        receiver = FdmaReceiver(plan=plan)
        assert receiver.decode_all(waveform, len(bits)) == payloads
