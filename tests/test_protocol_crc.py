"""Unit tests for CRC-5/CRC-16 and bit helpers."""

import pytest

from repro.errors import CrcError, ProtocolError
from repro.protocol import (
    append_crc16,
    bits_from_int,
    crc5,
    crc16,
    int_from_bits,
    verify_crc16,
)


class TestBitHelpers:
    def test_round_trip(self):
        for value, width in ((0, 4), (5, 4), (0xFFFF, 16), (0xABCD, 16)):
            assert int_from_bits(bits_from_int(value, width)) == value

    def test_big_endian(self):
        assert bits_from_int(0b1010, 4) == [1, 0, 1, 0]

    def test_rejects_overflow(self):
        with pytest.raises(ProtocolError):
            bits_from_int(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ProtocolError):
            bits_from_int(-1, 4)

    def test_rejects_non_binary_bits(self):
        with pytest.raises(ProtocolError):
            int_from_bits([0, 2, 1])


class TestCrc5:
    def test_length(self):
        assert len(crc5([0, 1, 0, 1])) == 5

    def test_deterministic(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        assert crc5(bits) == crc5(bits)

    def test_sensitive_to_single_flip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 0]
        flipped = bits.copy()
        flipped[3] ^= 1
        assert crc5(bits) != crc5(flipped)

    def test_rejects_non_binary(self):
        with pytest.raises(ProtocolError):
            crc5([0, 3])


class TestCrc16:
    def test_length(self):
        assert len(crc16([1, 0, 1])) == 16

    def test_round_trip(self):
        payload = [1, 0, 1, 1, 0, 0, 1, 0]
        assert verify_crc16(append_crc16(payload)) == payload

    def test_detects_corruption(self):
        message = append_crc16([1, 0, 1, 1, 0, 0, 1, 0])
        message[2] ^= 1
        with pytest.raises(CrcError):
            verify_crc16(message)

    def test_detects_crc_corruption(self):
        message = append_crc16([1, 0, 1, 1])
        message[-1] ^= 1
        with pytest.raises(CrcError):
            verify_crc16(message)

    def test_rejects_short_message(self):
        with pytest.raises(ProtocolError):
            verify_crc16([1] * 16)

    def test_detects_burst_errors(self):
        payload = [0, 1] * 16
        message = append_crc16(payload)
        for start in range(0, len(payload) - 4):
            corrupted = message.copy()
            for i in range(start, start + 4):
                corrupted[i] ^= 1
            with pytest.raises(CrcError):
                verify_crc16(corrupted)
