"""Unit tests for the foreign-object channel and carrier fine-tuning."""

import pytest

from repro.acoustics import ConcreteBlock
from repro.errors import AcousticsError
from repro.link import CarrierTuner, ForeignObjectChannel, Notch
from repro.materials import get_concrete


def make_channel(**kwargs):
    block = ConcreteBlock(get_concrete("NC"), 0.15)
    defaults = dict(block=block, seed=4)
    defaults.update(kwargs)
    return ForeignObjectChannel(**defaults)


class TestNotch:
    def test_full_depth_at_centre(self):
        notch = Notch(frequency=230e3, depth_db=20.0, width=2e3)
        assert notch.gain(230e3) == pytest.approx(0.1)

    def test_recovers_away_from_centre(self):
        notch = Notch(frequency=230e3, depth_db=20.0, width=2e3)
        assert notch.gain(250e3) > 0.9

    def test_symmetric(self):
        notch = Notch(frequency=230e3, depth_db=12.0, width=3e3)
        assert notch.gain(227e3) == pytest.approx(notch.gain(233e3))


class TestForeignObjectChannel:
    def test_clean_channel_matches_smooth_response(self):
        channel = make_channel(n_objects=0)
        from repro.acoustics import FrequencyResponse

        smooth = FrequencyResponse(channel.block)
        assert channel.gain(230e3) == pytest.approx(smooth.gain(230e3))

    def test_notches_only_attenuate(self):
        clean = make_channel(n_objects=0)
        dirty = make_channel(n_objects=5)
        for f in (200e3, 215e3, 230e3, 245e3):
            assert dirty.gain(f) <= clean.gain(f) + 1e-12

    def test_degradation_nonnegative(self):
        channel = make_channel(n_objects=4)
        for f in (200e3, 230e3, 260e3):
            assert channel.degradation_db(f) >= 0.0

    def test_notch_count(self):
        assert len(make_channel(n_objects=7).notches) == 7

    def test_reproducible_with_seed(self):
        a = make_channel(seed=9).notches
        b = make_channel(seed=9).notches
        assert a == b

    def test_explicit_notches_respected(self):
        notch = Notch(frequency=230e3, depth_db=30.0, width=2e3)
        channel = make_channel(n_objects=0, notches=[notch])
        assert channel.degradation_db(230e3) == pytest.approx(30.0, abs=0.5)

    def test_rejects_invalid_band(self):
        with pytest.raises(AcousticsError):
            make_channel(band=(250e3, 200e3))


class TestCarrierTuner:
    def test_detects_and_escapes_a_notch_on_the_carrier(self):
        # A deep notch lands exactly on 230 kHz; tuning must move off it.
        notch = Notch(frequency=230e3, depth_db=25.0, width=2e3)
        channel = make_channel(n_objects=0, notches=[notch])
        tuner = CarrierTuner()
        result = tuner.tune(channel)
        assert result.retuned
        assert abs(result.carrier - 230e3) > 2e3
        assert result.gain_db > channel.gain_db(230e3) + 10.0

    def test_stays_put_on_a_clean_channel(self):
        channel = make_channel(n_objects=0)
        tuner = CarrierTuner()
        result = tuner.tune(channel)
        # The clean response peaks near the carrier band centre; the
        # hysteresis keeps the default carrier unless a candidate clearly
        # wins.
        assert abs(result.carrier - 230e3) < 30e3

    def test_hysteresis_blocks_marginal_moves(self):
        channel = make_channel(n_objects=0)
        sticky = CarrierTuner(hysteresis_db=100.0)
        result = sticky.tune(channel)
        assert not result.retuned
        assert result.carrier == 230e3

    def test_improvement_reported(self):
        notch = Notch(frequency=230e3, depth_db=20.0, width=2e3)
        channel = make_channel(n_objects=0, notches=[notch])
        result = CarrierTuner().tune(channel)
        assert result.improvement_db > 0.0

    def test_track_over_channel_states(self):
        channels = [make_channel(seed=s, n_objects=3) for s in range(4)]
        tuner = CarrierTuner()
        results = tuner.track(channels)
        assert len(results) == 4
        # The tuner should never end a pass on a carrier that a probe
        # beat by more than the hysteresis.
        for result in results:
            best = max(g for _, g in result.probed)
            assert result.gain_db >= best - tuner.hysteresis_db - 1e-9

    def test_candidates_include_carrier(self):
        tuner = CarrierTuner(carrier=231e3)
        assert 231e3 in tuner.candidates()

    def test_rejects_carrier_outside_band(self):
        with pytest.raises(AcousticsError):
            CarrierTuner(carrier=300e3)

    def test_rejects_tiny_grid(self):
        with pytest.raises(AcousticsError):
            CarrierTuner(n_candidates=1)
