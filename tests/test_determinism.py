"""Determinism tests: same seed, same bits -- across simulators and runner.

The paper's Monte-Carlo experiments are only auditable if a pinned seed
reproduces the exact serialized result.  These tests pin that contract
for the three link simulators and for the parallel runner (scheduling
must never leak into results).
"""

import numpy as np

from repro.acoustics import ConcreteBlock
from repro.link import (
    DEFAULT_SIMULATION_SEED,
    DownlinkSimulator,
    UplinkBasebandSimulator,
    UplinkPassbandSimulator,
)
from repro.materials import get_concrete
from repro.runtime import canonical_json, run_experiments

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0] * 25


class TestUplinkBasebandDeterminism:
    def test_same_seed_bit_identical_serialized_result(self):
        a = UplinkBasebandSimulator(seed=42).run(PAYLOAD, 1e3, 6.0)
        b = UplinkBasebandSimulator(seed=42).run(PAYLOAD, 1e3, 6.0)
        assert canonical_json(a) == canonical_json(b)

    def test_same_seed_identical_ber_sweep(self):
        a = UplinkBasebandSimulator(seed=9).measure_ber(5.0, total_bits=2_000)
        b = UplinkBasebandSimulator(seed=9).measure_ber(5.0, total_bits=2_000)
        assert a == b

    def test_different_seeds_draw_different_noise(self):
        a = UplinkBasebandSimulator(seed=1).measure_ber(5.0, total_bits=2_000)
        b = UplinkBasebandSimulator(seed=2).measure_ber(5.0, total_bits=2_000)
        assert a != b

    def test_default_construction_is_reproducible(self):
        """The seed=None non-reproducibility fix: defaults are seeded."""
        assert UplinkBasebandSimulator().seed == DEFAULT_SIMULATION_SEED
        a = UplinkBasebandSimulator().measure_ber(5.0, total_bits=1_000)
        b = UplinkBasebandSimulator().measure_ber(5.0, total_bits=1_000)
        assert a == b

    def test_explicit_none_still_opts_into_entropy(self):
        sim = UplinkBasebandSimulator(seed=None)
        assert sim.seed is None


class TestUplinkPassbandDeterminism:
    BITS = [1, 0, 1, 1, 0, 0]

    def test_same_seed_bit_identical_waveform(self):
        a = UplinkPassbandSimulator(seed=7).received_waveform(self.BITS)
        b = UplinkPassbandSimulator(seed=7).received_waveform(self.BITS)
        assert np.array_equal(a, b)

    def test_same_seed_bit_identical_serialized_result(self):
        a = UplinkPassbandSimulator(seed=7).run(self.BITS)
        b = UplinkPassbandSimulator(seed=7).run(self.BITS)
        assert canonical_json(a) == canonical_json(b)

    def test_different_seeds_differ(self):
        a = UplinkPassbandSimulator(seed=7).received_waveform(self.BITS)
        b = UplinkPassbandSimulator(seed=8).received_waveform(self.BITS)
        assert not np.array_equal(a, b)

    def test_default_construction_is_reproducible(self):
        a = UplinkPassbandSimulator().received_waveform(self.BITS)
        b = UplinkPassbandSimulator().received_waveform(self.BITS)
        assert np.array_equal(a, b)


class TestDownlinkDeterminism:
    def _sim(self):
        return DownlinkSimulator(ConcreteBlock(get_concrete("NC"), 0.15))

    def test_symbol_waveforms_are_reproducible(self):
        for scheme in ("fsk", "ook"):
            a = self._sim().symbol_waveform(2e3, scheme)
            b = self._sim().symbol_waveform(2e3, scheme)
            assert np.array_equal(a, b), scheme

    def test_symbol_snr_is_reproducible(self):
        assert self._sim().symbol_snr_db(2e3, "fsk") == self._sim().symbol_snr_db(
            2e3, "fsk"
        )


class TestRunnerDeterminism:
    """Parallel scheduling must not leak into serialized results."""

    NAMES = ["fig04", "fig13", "fig16", "tables"]

    def test_parallel_order_does_not_change_results(self, tmp_path):
        inline = run_experiments(
            names=self.NAMES, jobs=0, out_dir=tmp_path / "inline", force=True
        )
        wide = run_experiments(
            names=self.NAMES, jobs=4, out_dir=tmp_path / "wide", force=True
        )
        assert inline.ok and wide.ok
        for a, b in zip(inline.outcomes, wide.outcomes):
            assert a.name == b.name
            assert a.cache_key == b.cache_key
            assert canonical_json(a.result) == canonical_json(b.result)

    def test_reversed_request_order_same_per_experiment_bytes(self, tmp_path):
        forward = run_experiments(
            names=self.NAMES, jobs=2, out_dir=tmp_path / "fwd", force=True
        )
        backward = run_experiments(
            names=list(reversed(self.NAMES)),
            jobs=2,
            out_dir=tmp_path / "bwd",
            force=True,
        )
        fwd = {o.name: o for o in forward.outcomes}
        bwd = {o.name: o for o in backward.outcomes}
        for name in self.NAMES:
            assert canonical_json(fwd[name].result) == canonical_json(
                bwd[name].result
            )
