"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    SpreadingModel,
    reflection_coefficient,
    refract,
    transmission_energy_fraction,
)
from repro.materials import PLA, Medium, get_concrete, lame_parameters
from repro.phy import (
    Fm0Decoder,
    PieTiming,
    bipolar,
    decode_intervals,
    duty_cycle,
    fm0_encode_baseband,
    fm0_encode_levels,
    pie_encode,
)
from repro.protocol import (
    append_crc16,
    bits_from_int,
    crc16,
    int_from_bits,
    verify_crc16,
)
from repro.shm import grade, pedestrian_area_occupancy

NC = get_concrete("NC").medium

bits_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=128)


class TestBoundaryInvariants:
    @given(st.floats(min_value=0.0, max_value=79.0))
    @settings(max_examples=80, deadline=None)
    def test_energy_conservation(self, angle_deg):
        result = refract(PLA, NC, math.radians(angle_deg))
        total = result.reflected_energy + result.p_energy + result.s_energy
        assert total == pytest.approx(1.0, abs=1e-6)
        assert result.reflected_energy >= -1e-12
        assert result.p_energy >= -1e-12
        assert result.s_energy >= -1e-12

    @given(
        st.floats(min_value=1e3, max_value=1e8),
        st.floats(min_value=1e3, max_value=1e8),
    )
    @settings(max_examples=50, deadline=None)
    def test_reflection_antisymmetric_and_bounded(self, z1, z2):
        r = reflection_coefficient(z1, z2)
        assert -1.0 < r < 1.0
        assert r == pytest.approx(-reflection_coefficient(z2, z1))
        assert r * r + transmission_energy_fraction(z1, z2) == pytest.approx(1.0)


class TestMaterialInvariants:
    @given(
        st.floats(min_value=1e8, max_value=5e11),
        st.floats(min_value=-0.4, max_value=0.45),
        st.floats(min_value=500.0, max_value=9000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_derived_velocities_ordered(self, modulus, poisson, density):
        medium = Medium.from_elastic_moduli("x", density, modulus, poisson)
        assert medium.cp > medium.cs > 0.0

    @given(st.floats(min_value=1e8, max_value=5e11),
           st.floats(min_value=-0.4, max_value=0.45))
    @settings(max_examples=60, deadline=None)
    def test_lame_mu_positive(self, modulus, poisson):
        _, mu = lame_parameters(modulus, poisson)
        assert mu > 0.0


class TestSpreadingInvariants:
    @given(
        st.floats(min_value=0.35, max_value=1.0),
        st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_gain_bounded_and_monotone(self, exponent, distance):
        model = SpreadingModel(exponent=exponent)
        gain = model.amplitude_gain(distance)
        assert 0.0 < gain <= 1.0
        assert model.amplitude_gain(distance + 1.0) <= gain


class TestPieInvariants:
    @given(bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, bits):
        timing = PieTiming()
        assert decode_intervals(pie_encode(bits, timing), timing) == bits

    @given(bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_duty_cycle_at_least_half(self, bits):
        # The paper's power-delivery guarantee: >= 50 % of peak power.
        assert duty_cycle(bits) >= 0.5 - 1e-12

    @given(bits_strategy)
    @settings(max_examples=50, deadline=None)
    def test_segment_count(self, bits):
        assert len(pie_encode(bits)) == 2 * len(bits)


class TestFm0Invariants:
    @given(bits_strategy, st.sampled_from([2, 4, 8, 10]))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, bits, spb):
        waveform = bipolar(fm0_encode_baseband(bits, spb))
        decoder = Fm0Decoder(samples_per_symbol=spb)
        assert decoder.decode(waveform) == bits

    @given(bits_strategy)
    @settings(max_examples=60, deadline=None)
    def test_boundary_always_inverts(self, bits):
        pairs = fm0_encode_levels(bits)
        previous_end = 1  # initial level
        for bit, (first, second) in zip(bits, pairs):
            assert first == 1 - previous_end  # boundary inversion
            if bit == 0:
                assert second == 1 - first  # mid-symbol inversion
            else:
                assert second == first
            previous_end = second

    @given(bits_strategy, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_decoder_resists_moderate_noise(self, bits, seed):
        rng = np.random.default_rng(seed)
        waveform = bipolar(fm0_encode_baseband(bits, 10))
        noisy = waveform + rng.normal(0.0, 0.3, size=waveform.size)
        decoded = Fm0Decoder(samples_per_symbol=10).decode(noisy)
        errors = sum(1 for a, b in zip(decoded, bits) if a != b)
        assert errors <= max(1, len(bits) // 20)


class TestCrcInvariants:
    @given(bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, bits):
        assert verify_crc16(append_crc16(bits)) == bits

    @given(bits_strategy, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_single_bit_flip_always_detected(self, bits, position):
        from repro.errors import CrcError

        message = append_crc16(bits)
        index = position % len(message)
        message[index] ^= 1
        with pytest.raises(CrcError):
            verify_crc16(message)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60, deadline=None)
    def test_bits_int_round_trip(self, value):
        assert int_from_bits(bits_from_int(value, 16)) == value


class TestPaoInvariants:
    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_more_people_never_improves_grade(self, area, people):
        from repro.shm import GRADES

        sparse = grade(pedestrian_area_occupancy(area, people))
        crowded = grade(pedestrian_area_occupancy(area, people + 1))
        assert GRADES.index(crowded) >= GRADES.index(sparse)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.sampled_from(["united_states", "hong_kong", "bangkok", "manila"]))
    @settings(max_examples=80, deadline=None)
    def test_grade_always_defined(self, pao, region):
        assert grade(pao, region) in "ABCDEF"


class TestShellInvariants:
    @given(st.floats(min_value=0.0015, max_value=0.01))
    @settings(max_examples=40, deadline=None)
    def test_thicker_is_stronger(self, thickness):
        from repro.node import SphericalShell

        shell = SphericalShell(thickness=thickness)
        thicker = SphericalShell(thickness=thickness * 1.2)
        assert thicker.max_pressure > shell.max_pressure
        assert thicker.max_height() > shell.max_height()

    @given(st.floats(min_value=0.0, max_value=300.0))
    @settings(max_examples=60, deadline=None)
    def test_survival_consistent_with_utilisation(self, height):
        from repro.node import resin_shell

        shell = resin_shell()
        assert shell.survives(height) == (shell.utilisation(height) <= 1.0)


class TestHarvesterInvariants:
    @given(st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_cold_start_positive_and_bounded(self, voltage):
        from repro.circuits import EnergyHarvester

        harvester = EnergyHarvester()
        t = harvester.cold_start_time(voltage)
        assert 0.0 < t <= 0.056

    @given(
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_field_never_slower(self, voltage, extra):
        from repro.circuits import EnergyHarvester

        harvester = EnergyHarvester()
        assert harvester.cold_start_time(voltage + extra) <= harvester.cold_start_time(
            voltage
        )
