"""Unit tests for the material database and Lamé algebra."""

import math

import pytest

from repro.errors import MaterialError
from repro.materials import (
    AIR,
    ALLOY_STEEL,
    PLA,
    RESIN,
    WATER,
    Medium,
    all_concretes,
    get_concrete,
    lame_parameters,
    p_wave_velocity,
    s_wave_velocity,
)


class TestLameParameters:
    def test_known_values(self):
        # E = 27.8 GPa, nu = 0.18 (Table 1 NC).
        lam, mu = lame_parameters(27.8e9, 0.18)
        assert mu == pytest.approx(27.8e9 / (2 * 1.18))
        assert lam == pytest.approx(27.8e9 * 0.18 / (1.18 * 0.64))

    def test_velocity_relationship(self):
        # Cp > Cs always, via Eqns. 8/10 of the paper.
        lam, mu = lame_parameters(52.5e9, 0.21)
        cp = p_wave_velocity(lam, mu, 2400.0)
        cs = s_wave_velocity(mu, 2400.0)
        assert cp > cs

    def test_poisson_ratio_bounds(self):
        with pytest.raises(MaterialError):
            lame_parameters(1e9, 0.5)
        with pytest.raises(MaterialError):
            lame_parameters(1e9, -1.0)

    def test_negative_modulus_rejected(self):
        with pytest.raises(MaterialError):
            lame_parameters(-1e9, 0.2)

    def test_zero_density_rejected(self):
        with pytest.raises(MaterialError):
            p_wave_velocity(1e9, 1e9, 0.0)
        with pytest.raises(MaterialError):
            s_wave_velocity(1e9, -5.0)


class TestMedium:
    def test_impedances(self):
        m = Medium(name="x", density=2000.0, cp=3000.0, cs=1800.0)
        assert m.impedance_p == pytest.approx(6.0e6)
        assert m.impedance_s == pytest.approx(3.6e6)

    def test_fluid_has_no_shear(self):
        assert AIR.is_fluid
        assert WATER.is_fluid
        with pytest.raises(MaterialError):
            AIR.velocity("s")

    def test_velocity_lookup(self):
        m = Medium(name="x", density=2000.0, cp=3000.0, cs=1800.0)
        assert m.velocity("p") == 3000.0
        assert m.velocity("S") == 1800.0
        with pytest.raises(MaterialError):
            m.velocity("q")

    def test_cs_must_be_below_cp(self):
        with pytest.raises(MaterialError):
            Medium(name="bad", density=1000.0, cp=1000.0, cs=1200.0)

    def test_attenuation_scales_with_distance(self):
        m = Medium(name="x", density=2000.0, cp=3000.0, attenuation_db_per_m=2.0)
        assert m.attenuation_db(230e3, 2.0) == pytest.approx(
            2.0 * m.attenuation_db(230e3, 1.0)
        )

    def test_attenuation_frequency_power_law(self):
        m = Medium(
            name="x",
            density=2000.0,
            cp=3000.0,
            attenuation_db_per_m=2.0,
            attenuation_ref_hz=230e3,
            attenuation_exponent=1.0,
        )
        assert m.attenuation_db(460e3, 1.0) == pytest.approx(4.0)

    def test_attenuation_rejects_negative_distance(self):
        with pytest.raises(MaterialError):
            AIR.attenuation_db(1e3, -1.0)

    def test_from_elastic_moduli_round_trip(self):
        m = Medium.from_elastic_moduli(
            name="resin", density=1180.0, youngs_modulus=2.2e9, poisson_ratio=0.35
        )
        lam, mu = lame_parameters(2.2e9, 0.35)
        assert m.cp == pytest.approx(math.sqrt((lam + 2 * mu) / 1180.0))
        assert m.cs == pytest.approx(math.sqrt(mu / 1180.0))


class TestConcreteDatabase:
    def test_three_concretes(self):
        names = [c.name for c in all_concretes()]
        assert names == ["NC", "UHPC", "UHPFRC"]

    def test_lookup_is_case_insensitive(self):
        assert get_concrete("nc").name == "NC"
        assert get_concrete("  uhpc ").name == "UHPC"

    def test_uhpssc_alias(self):
        # The appendix table header calls UHPFRC 'UHPSSC'.
        assert get_concrete("UHPSSC").name == "UHPFRC"

    def test_unknown_concrete_raises(self):
        with pytest.raises(MaterialError):
            get_concrete("granite")

    def test_nc_reference_velocities(self):
        nc = get_concrete("NC")
        assert nc.cp == pytest.approx(3338.0)
        assert nc.cs == pytest.approx(1941.0)

    def test_s_wave_roughly_40_percent_slower(self):
        for concrete in all_concretes():
            ratio = concrete.cs / concrete.cp
            assert 0.55 < ratio < 0.62  # "typically 40 % slower"

    def test_uhpc_faster_than_nc(self):
        assert get_concrete("UHPC").cp > get_concrete("NC").cp

    def test_table1_properties(self):
        nc = get_concrete("NC")
        assert nc.compressive_strength == pytest.approx(54.1e6)
        assert nc.elastic_modulus == pytest.approx(27.8e9)
        assert nc.poisson_ratio == pytest.approx(0.18)
        assert nc.peak_strain == pytest.approx(0.00263)
        uhpfrc = get_concrete("UHPFRC")
        assert uhpfrc.compressive_strength == pytest.approx(215.0e6)

    def test_table1_mix_totals_give_plausible_density(self):
        # UHPFRC's 471 kg/m^3 of steel fibre pushes it near 2760 kg/m^3.
        for concrete in all_concretes():
            assert 2200.0 < concrete.density < 2800.0

    def test_mix_water_to_binder(self):
        nc = get_concrete("NC")
        assert nc.mix.water_to_binder == pytest.approx(175.0 / 500.0)

    def test_steel_fiber_only_in_uhpfrc(self):
        assert get_concrete("NC").mix.steel_fiber == 0
        assert get_concrete("UHPC").mix.steel_fiber == 0
        assert get_concrete("UHPFRC").mix.steel_fiber == 471

    def test_stronger_concrete_attenuates_less(self):
        nc = get_concrete("NC").medium
        uhpc = get_concrete("UHPC").medium
        assert uhpc.attenuation_db(230e3, 1.0) < nc.attenuation_db(230e3, 1.0)


class TestCommonMedia:
    def test_air_impedance_matches_paper(self):
        # Z_air ~ 4.15e2 kg/m^2 s (paper Sec. 3.2).
        assert AIR.impedance_p == pytest.approx(415.0, rel=0.01)

    def test_pla_critical_angle_calibration(self):
        # Cp_pla chosen so arcsin(Cp_pla / Cp_nc) = 34 deg.
        nc = get_concrete("NC")
        assert math.degrees(math.asin(PLA.cp / nc.cp)) == pytest.approx(34.0, abs=0.1)

    def test_resin_moduli(self):
        assert RESIN.youngs_modulus == pytest.approx(2.2e9)
        assert RESIN.poisson_ratio == pytest.approx(0.35)

    def test_steel_is_stiff(self):
        assert ALLOY_STEEL.youngs_modulus > 100e9
        assert not ALLOY_STEEL.is_fluid
