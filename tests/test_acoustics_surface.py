"""Unit tests for the Rayleigh surface-wave model."""

import pytest

from repro.acoustics import (
    SurfaceWavePath,
    leakage_ratio,
    penetration_depth,
    rayleigh_velocity,
)
from repro.errors import AcousticsError
from repro.materials import AIR, get_concrete

NC = get_concrete("NC").medium


class TestRayleighVelocity:
    def test_below_shear_velocity(self):
        assert rayleigh_velocity(NC) < NC.cs

    def test_classic_ratio(self):
        # C_R / Cs ~ 0.9 for typical solids.
        assert rayleigh_velocity(NC) / NC.cs == pytest.approx(0.92, abs=0.03)

    def test_uses_poisson_ratio(self):
        uhpc = get_concrete("UHPC").medium
        nc_ratio = rayleigh_velocity(NC) / NC.cs
        uhpc_ratio = rayleigh_velocity(uhpc) / uhpc.cs
        assert uhpc_ratio > nc_ratio  # nu 0.21 > 0.18

    def test_rejects_fluids(self):
        with pytest.raises(AcousticsError):
            rayleigh_velocity(AIR)


class TestPenetrationDepth:
    def test_one_wavelength_scale(self):
        depth = penetration_depth(NC, 230e3)
        assert depth == pytest.approx(rayleigh_velocity(NC) / 230e3)

    def test_deep_nodes_invisible(self):
        # A capsule 10 cm deep sits many penetration depths down at 230 kHz.
        assert penetration_depth(NC, 230e3) < 0.02

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(AcousticsError):
            penetration_depth(NC, 0.0)


class TestSurfaceWavePath:
    def test_gain_decreases_with_length(self):
        short = SurfaceWavePath(NC, length=0.2)
        long = SurfaceWavePath(NC, length=2.0)
        assert short.amplitude_gain(230e3) > long.amplitude_gain(230e3)

    def test_edges_strip_energy(self):
        # Sec. 3.3: sharp edges and corners filter surface waves out.
        smooth = SurfaceWavePath(NC, length=0.3, edges_crossed=0)
        blocky = SurfaceWavePath(NC, length=0.3, edges_crossed=2)
        assert blocky.amplitude_gain(230e3) < 0.1 * smooth.amplitude_gain(230e3)

    def test_delay_uses_rayleigh_speed(self):
        path = SurfaceWavePath(NC, length=1.0)
        assert path.delay() == pytest.approx(1.0 / rayleigh_velocity(NC))

    def test_rejects_bad_geometry(self):
        with pytest.raises(AcousticsError):
            SurfaceWavePath(NC, length=-1.0)
        with pytest.raises(AcousticsError):
            SurfaceWavePath(NC, length=1.0, edge_transmission=2.0)


class TestLeakageRatio:
    def test_paper_order_of_magnitude(self):
        # Sec. 3.4: leakage ~10x the backscatter at the reader RX.
        # Backscatter round trip at ~1 m in a guided wall ~ a few percent.
        ratio = leakage_ratio(NC, tx_rx_separation=0.20, backscatter_gain=0.012)
        assert 5.0 < ratio < 30.0

    def test_separation_helps(self):
        near = leakage_ratio(NC, 0.2, backscatter_gain=0.01)
        far = leakage_ratio(NC, 1.5, backscatter_gain=0.01)
        assert far < near

    def test_rejects_bad_inputs(self):
        with pytest.raises(AcousticsError):
            leakage_ratio(NC, 0.2, backscatter_gain=0.0)
