"""Advisory partition-lock tests (ISSUE 8 satellite).

Two writers must never append to the same building partition; a lock
left by a dead pid must be reclaimed loudly instead of wedging the
partition forever.
"""

import json
import os

import pytest

from repro.errors import PartitionLockError
from repro.obs import observed, obs_registry
from repro.store import (
    LOCK_FILENAME,
    PartitionLock,
    SeriesKey,
    TelemetryStore,
    pid_alive,
)

KEY = SeriesKey("tower", "north", 1, "strain")


def _lock_path(store):
    return store.segments_dir / KEY.building / LOCK_FILENAME


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_nonsense_pids_are_dead(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)

    def test_unused_pid_is_dead(self):
        # Fork a child and reap it: its pid is guaranteed dead.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert not pid_alive(pid)


class TestPartitionLock:
    def test_acquire_writes_owner_pid(self, tmp_path):
        lock = PartitionLock(tmp_path, "tower").acquire()
        payload = json.loads((tmp_path / "tower" / LOCK_FILENAME).read_text())
        assert payload["pid"] == os.getpid()
        assert payload["building"] == "tower"
        lock.release()
        assert not (tmp_path / "tower" / LOCK_FILENAME).exists()

    def test_reacquire_by_same_holder_is_idempotent(self, tmp_path):
        lock = PartitionLock(tmp_path, "tower").acquire()
        assert lock.acquire() is lock
        lock.release()
        lock.release()  # idempotent

    def test_live_foreign_owner_refused(self, tmp_path):
        PartitionLock(tmp_path, "tower").acquire()
        # A second lock object simulates a second live process: the
        # lockfile's pid (ours) is alive, so acquisition must fail.
        with pytest.raises(PartitionLockError, match="locked by live pid"):
            PartitionLock(tmp_path, "tower").acquire()

    def test_dead_owner_reclaimed_loudly(self, tmp_path):
        path = tmp_path / "tower" / LOCK_FILENAME
        path.parent.mkdir(parents=True)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        path.write_text(json.dumps(
            {"schema": "repro/store-lock/v1", "building": "tower",
             "pid": pid}
        ))
        with observed():
            PartitionLock(tmp_path, "tower").acquire()
            snapshot = obs_registry().snapshot()
        assert snapshot["counters"]["store.locks_reclaimed"] == 1
        assert json.loads(path.read_text())["pid"] == os.getpid()

    def test_garbage_lockfile_reclaimed(self, tmp_path):
        path = tmp_path / "tower" / LOCK_FILENAME
        path.parent.mkdir(parents=True)
        path.write_text("not json{")
        PartitionLock(tmp_path, "tower").acquire()
        assert json.loads(path.read_text())["pid"] == os.getpid()


class TestWriterLocking:
    def test_writer_locks_partition_while_open(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            writer.add_sample(KEY, 0.0, 1.0)
            assert _lock_path(store).exists()
        assert not _lock_path(store).exists()

    def test_concurrent_writers_conflict_on_one_building(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with store.writer() as writer:
            writer.add_sample(KEY, 0.0, 1.0)
            other = TelemetryStore(tmp_path, create=False).writer()
            with pytest.raises(PartitionLockError):
                other.add_sample(KEY, 1.0, 2.0)

    def test_different_buildings_do_not_conflict(self, tmp_path):
        store = TelemetryStore(tmp_path)
        other_key = SeriesKey("annex", "north", 1, "strain")
        with store.writer() as first:
            first.add_sample(KEY, 0.0, 1.0)
            with TelemetryStore(tmp_path, create=False).writer() as second:
                second.add_sample(other_key, 0.0, 1.0)

    def test_lock_released_even_when_writer_body_raises(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.writer() as writer:
                writer.add_sample(KEY, 0.0, 1.0)
                raise RuntimeError("epoch exploded")
        with store.writer() as writer:  # partition is free again
            writer.add_sample(KEY, 1.0, 2.0)

    def test_lock_false_disables_locking(self, tmp_path):
        store = TelemetryStore(tmp_path)
        with store.writer(lock=False) as writer:
            writer.add_sample(KEY, 0.0, 1.0)
            assert not _lock_path(store).exists()

    def test_crashed_writer_lock_reclaimed_by_next_writer(self, tmp_path):
        store = TelemetryStore(tmp_path)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        lock_path = _lock_path(store)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(json.dumps(
            {"schema": "repro/store-lock/v1",
             "building": KEY.building, "pid": pid}
        ))
        with store.writer() as writer:
            writer.add_sample(KEY, 0.0, 1.0)
        assert store.read(KEY)["t"].size == 1
