"""Unit tests for the ring effect and its FSK suppression (Fig. 7)."""

import numpy as np
import pytest

from repro.acoustics import (
    ConcreteBlock,
    FrequencyResponse,
    RingdownModel,
    fsk_symbol_waveform,
    low_edge_residual,
    ook_symbol_waveform,
)
from repro.errors import AcousticsError
from repro.materials import get_concrete

SAMPLE_RATE = 4e6
EDGE = 0.5e-3


@pytest.fixture
def ring():
    return RingdownModel()


@pytest.fixture
def response():
    return FrequencyResponse(ConcreteBlock(get_concrete("NC"), 0.15))


class TestRingdownModel:
    def test_time_constant_formula(self, ring):
        import math

        assert ring.time_constant == pytest.approx(
            ring.quality_factor / (math.pi * ring.frequency)
        )

    def test_paper_tail_duration(self, ring):
        # Fig. 7a: the tail consumes ~0.3 ms after the transition.
        assert ring.tail_duration() == pytest.approx(0.35e-3, rel=0.3)

    def test_envelope_decays(self, ring):
        t = np.array([0.0, 1e-4, 3e-4, 1e-3])
        env = ring.envelope(t)
        assert np.all(np.diff(env) < 0)

    def test_envelope_unity_before_release(self, ring):
        env = ring.envelope(np.array([-1e-4, 0.0]))
        assert env[0] == 1.0

    def test_rejects_bad_threshold(self, ring):
        with pytest.raises(AcousticsError):
            ring.tail_duration(threshold=0.0)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(AcousticsError):
            RingdownModel(quality_factor=0.0)


class TestOokWaveform:
    def test_tail_leaks_into_low_edge(self, ring):
        waveform = ook_symbol_waveform(ring, EDGE, EDGE, SAMPLE_RATE)
        residual = low_edge_residual(waveform, EDGE, SAMPLE_RATE)
        assert residual > 0.1  # substantial leakage: the ring effect

    def test_tail_decays_by_end_of_low_edge(self, ring):
        waveform = ook_symbol_waveform(ring, EDGE, EDGE, SAMPLE_RATE)
        n_high = int(EDGE * SAMPLE_RATE)
        tail_start = np.max(np.abs(waveform[n_high : n_high + n_high // 8]))
        tail_end = np.max(np.abs(waveform[-n_high // 8 :]))
        assert tail_end < 0.5 * tail_start

    def test_rejects_bad_durations(self, ring):
        with pytest.raises(AcousticsError):
            ook_symbol_waveform(ring, 0.0, EDGE, SAMPLE_RATE)


class TestFskWaveform:
    def test_fsk_suppresses_tail(self, ring, response):
        # Fig. 7b: the concrete suppresses the low edge naturally.
        ook = ook_symbol_waveform(ring, EDGE, EDGE, SAMPLE_RATE)
        fsk = fsk_symbol_waveform(ring, response, EDGE, EDGE, SAMPLE_RATE)
        assert low_edge_residual(fsk, EDGE, SAMPLE_RATE) < low_edge_residual(
            ook, EDGE, SAMPLE_RATE
        )

    def test_fsk_high_edge_full_amplitude(self, ring, response):
        waveform = fsk_symbol_waveform(ring, response, EDGE, EDGE, SAMPLE_RATE)
        n_high = int(EDGE * SAMPLE_RATE)
        assert np.max(np.abs(waveform[:n_high])) == pytest.approx(1.0, rel=0.05)

    def test_fsk_low_edge_nonzero(self, ring, response):
        # The off tone is suppressed, not silenced.
        waveform = fsk_symbol_waveform(ring, response, EDGE, EDGE, SAMPLE_RATE)
        n_high = int(EDGE * SAMPLE_RATE)
        assert np.max(np.abs(waveform[n_high:])) > 0.0


class TestLowEdgeResidual:
    def test_clean_ook_reference(self):
        # A waveform that truly stops has near-zero residual.
        n = int(EDGE * SAMPLE_RATE)
        t = np.arange(2 * n) / SAMPLE_RATE
        clean = np.where(t < EDGE, np.sin(2 * np.pi * 230e3 * t), 0.0)
        assert low_edge_residual(clean, EDGE, SAMPLE_RATE) == pytest.approx(0.0)

    def test_rejects_degenerate_split(self):
        # High edge covering the whole waveform leaves no low edge.
        with pytest.raises(AcousticsError):
            low_edge_residual(np.ones(10), 1.0, 10.0)
