"""Unit tests for the concrete frequency response model (Fig. 5b)."""

import pytest

from repro.acoustics import (
    CARRIER_BAND,
    OFF_RESONANT_FREQUENCY,
    RESONANT_FREQUENCY,
    ConcreteBlock,
    FrequencyResponse,
    paper_test_blocks,
)
from repro.errors import AcousticsError
from repro.materials import get_concrete


@pytest.fixture
def nc_block():
    return ConcreteBlock(get_concrete("NC"), 0.15)


class TestConcreteBlock:
    def test_label(self, nc_block):
        assert nc_block.label == "NC-15cm"

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(AcousticsError):
            ConcreteBlock(get_concrete("NC"), 0.0)

    def test_paper_blocks(self):
        labels = [b.label for b in paper_test_blocks()]
        assert labels == ["NC-7cm", "NC-15cm", "UHPC-15cm", "UHPFRC-15cm"]


class TestResonance:
    def test_all_blocks_resonate_in_carrier_band(self):
        low, high = CARRIER_BAND
        for block in paper_test_blocks():
            f0 = FrequencyResponse(block).resonant_frequency
            assert low <= f0 <= high

    def test_peak_gain_at_resonance(self, nc_block):
        response = FrequencyResponse(nc_block)
        f0 = response.resonant_frequency
        assert response.gain(f0) > response.gain(f0 * 0.6)
        assert response.gain(f0) > response.gain(f0 * 1.6)

    def test_rapid_rolloff_above_band(self, nc_block):
        # "beyond which the propagation attenuates rapidly"
        response = FrequencyResponse(nc_block)
        assert response.gain(400e3) < 0.5 * response.gain(230e3)


class TestAmplitudes:
    def test_uhpc_peak_far_above_nc(self):
        # Paper finding 2: UHPC/UHPFRC peaks >> NC peak.
        nc = FrequencyResponse(ConcreteBlock(get_concrete("NC"), 0.15))
        uhpc = FrequencyResponse(ConcreteBlock(get_concrete("UHPC"), 0.15))
        assert uhpc.rx_amplitude(230e3) > 2.0 * nc.rx_amplitude(230e3)

    def test_thinner_block_responds_stronger(self):
        thin = FrequencyResponse(ConcreteBlock(get_concrete("NC"), 0.07))
        thick = FrequencyResponse(ConcreteBlock(get_concrete("NC"), 0.15))
        assert thin.rx_amplitude(230e3) > thick.rx_amplitude(230e3)

    def test_amplitude_scales_with_drive(self, nc_block):
        response = FrequencyResponse(nc_block)
        assert response.rx_amplitude(230e3, 200.0) == pytest.approx(
            2.0 * response.rx_amplitude(230e3, 100.0)
        )

    def test_rejects_nonpositive_drive(self, nc_block):
        with pytest.raises(AcousticsError):
            FrequencyResponse(nc_block).rx_amplitude(230e3, 0.0)

    def test_rejects_nonpositive_frequency(self, nc_block):
        with pytest.raises(AcousticsError):
            FrequencyResponse(nc_block).gain(0.0)


class TestSweep:
    def test_sweep_shape(self, nc_block):
        response = FrequencyResponse(nc_block)
        points = response.sweep([100e3, 200e3, 300e3])
        assert len(points) == 3
        assert all(amp >= 0.0 for _, amp in points)

    def test_sweep_peak_in_band(self, nc_block):
        response = FrequencyResponse(nc_block)
        freqs = [20e3 + 10e3 * i for i in range(39)]
        points = response.sweep(freqs)
        peak_f, _ = max(points, key=lambda p: p[1])
        assert CARRIER_BAND[0] <= peak_f <= CARRIER_BAND[1]


class TestOffResonanceSuppression:
    def test_positive_suppression(self, nc_block):
        # The FSK-in/OOK-out mechanism needs the 180 kHz tone suppressed.
        response = FrequencyResponse(nc_block)
        assert response.off_resonance_suppression_db() > 3.0

    def test_default_frequencies(self):
        assert RESONANT_FREQUENCY == 230e3
        assert OFF_RESONANT_FREQUENCY == 180e3
