"""Compaction correctness/determinism and the query engine's answers."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.shm.damage import DamageAlarm
from repro.store import (
    DAILY,
    HOURLY,
    RAW,
    QueryEngine,
    SeriesKey,
    TelemetryStore,
    rollup,
)

rng = np.random.default_rng(42)


def _reference_rollup(t, v, width):
    """Straight-line python reference for the vectorized rollup."""
    buckets = {}
    for ti, vi in zip(t, v):
        buckets.setdefault(np.floor(ti / width) * width, []).append(vi)
    out = []
    for bucket in sorted(buckets):
        values = buckets[bucket]
        out.append(
            (bucket, min(values), sum(values) / len(values), max(values),
             float(len(values)))
        )
    return out


class TestRollup:
    def test_matches_reference(self):
        t = np.sort(rng.uniform(0.0, 100.0, size=500))
        v = rng.normal(0.0, 10.0, size=500)
        got = rollup(t, v, 1.0)
        want = _reference_rollup(t, v, 1.0)
        assert got[0].size == len(want)
        for i, (bucket, lo, mean, hi, count) in enumerate(want):
            assert got[0][i] == pytest.approx(bucket)
            assert got[1][i] == pytest.approx(lo)
            assert got[2][i] == pytest.approx(mean)
            assert got[3][i] == pytest.approx(hi)
            assert got[4][i] == count

    def test_empty_input(self):
        out = rollup(np.empty(0), np.empty(0), 1.0)
        assert all(col.size == 0 for col in out)

    def test_bad_width(self):
        with pytest.raises(StoreError):
            rollup(np.array([1.0]), np.array([1.0]), 0.0)

    def test_buckets_epoch_aligned(self):
        # Appending later samples must not shift earlier buckets.
        t1, v1 = np.array([5.5, 5.7]), np.array([1.0, 3.0])
        full_t = np.array([5.5, 5.7, 6.1])
        full_v = np.array([1.0, 3.0, 9.0])
        first = rollup(t1, v1, 1.0)
        both = rollup(full_t, full_v, 1.0)
        assert both[0][0] == first[0][0] == 5.0
        assert both[2][0] == first[2][0] == 2.0


@pytest.fixture()
def populated(tmp_path):
    store = TelemetryStore(tmp_path)
    keys = [
        SeriesKey("b", "north", 1, "strain"),
        SeriesKey("b", "north", 2, "strain"),
        SeriesKey("b", "south", 3, "strain"),
    ]
    t = np.arange(0.0, 96.0, 0.5)
    for i, key in enumerate(keys):
        store.append(key, t, 100.0 + 10.0 * i + np.sin(t + i))
    return store, keys, t


class TestCompaction:
    def test_compact_is_deterministic(self, populated):
        store, keys, _ = populated
        store.compact()
        first = {
            key: store.segment(key).seg_path(HOURLY).read_bytes()
            for key in keys
        }
        store.compact()
        for key in keys:
            assert (
                store.segment(key).seg_path(HOURLY).read_bytes()
                == first[key]
            )

    def test_compact_summary(self, populated):
        store, keys, t = populated
        summary = store.compact()
        assert summary["series"] == len(keys)
        assert summary["raw_rows"] == t.size * len(keys)
        assert summary["rollup_rows"][HOURLY] == 96 * len(keys)
        assert summary["rollup_rows"][DAILY] == 4 * len(keys)


class TestQueryEngine:
    def test_select_filters(self, populated):
        store, keys, _ = populated
        engine = QueryEngine(store)
        assert engine.select() == keys
        assert engine.select(wall="north") == keys[:2]
        assert engine.select(node_id=3) == [keys[2]]
        assert engine.select(metric="nope") == []

    def test_series_raw_window(self, populated):
        store, keys, _ = populated
        engine = QueryEngine(store)
        data = engine.series(keys[0], t0=10.0, t1=20.0)
        assert data["t"][0] >= 10.0 and data["t"][-1] <= 20.0

    def test_rollup_on_the_fly_matches_compacted(self, populated):
        store, keys, _ = populated
        engine = QueryEngine(store)
        lazy = engine.series(keys[0], resolution=HOURLY)
        store.compact()
        compacted = engine.series(keys[0], resolution=HOURLY)
        for column in ("t", "min", "mean", "max", "count"):
            assert np.allclose(lazy[column], compacted[column])

    def test_unknown_resolution(self, populated):
        store, keys, _ = populated
        with pytest.raises(StoreError):
            QueryEngine(store).series(keys[0], resolution="weekly")

    @pytest.mark.parametrize("agg", ["count", "min", "max", "sum", "mean"])
    def test_rollup_aggregate_matches_raw(self, populated, agg):
        store, _, _ = populated
        store.compact()
        engine = QueryEngine(store)
        raw = engine.aggregate("strain", agg, resolution=RAW)["value"]
        hourly = engine.aggregate("strain", agg, resolution=HOURLY)["value"]
        daily = engine.aggregate("strain", agg, resolution=DAILY)["value"]
        assert hourly == pytest.approx(raw, rel=1e-12)
        assert daily == pytest.approx(raw, rel=1e-12)

    def test_group_by_wall(self, populated):
        store, _, t = populated
        engine = QueryEngine(store)
        result = engine.aggregate("strain", "count", group_by="wall")
        assert result["groups"] == {
            "b/north": 2.0 * t.size, "b/south": 1.0 * t.size,
        }

    def test_group_by_node(self, populated):
        store, keys, t = populated
        engine = QueryEngine(store)
        result = engine.aggregate("strain", "count", group_by="node")
        assert result["groups"]["b/north/1"] == t.size

    def test_no_matching_series(self, populated):
        store, _, _ = populated
        engine = QueryEngine(store)
        result = engine.aggregate("ghost", "mean")
        assert result["value"] is None and result["series"] == 0

    def test_bad_agg_and_group_by(self, populated):
        store, _, _ = populated
        engine = QueryEngine(store)
        with pytest.raises(StoreError):
            engine.aggregate("strain", "median")
        with pytest.raises(StoreError):
            engine.aggregate("strain", "mean", group_by="building")

    def test_latest(self, populated):
        store, keys, t = populated
        engine = QueryEngine(store)
        last = engine.latest(keys[0])
        assert last["t"] == t[-1]
        assert engine.latest(SeriesKey("b", "w", 9, "x")) is None


class TestDamageQueries:
    def _drifting_store(self, tmp_path, drift_per_day=3.0, days=60):
        store = TelemetryStore(tmp_path)
        hours = np.arange(0.0, days * 24.0, 2.0)
        healthy = 120.0 + 5.0 * np.sin(hours / 7.0)
        drifting = healthy + drift_per_day * hours / 24.0
        store.append(SeriesKey("hq", "east", 1, "strain"), hours, healthy)
        store.append(SeriesKey("hq", "east", 2, "strain"), hours, drifting)
        store.compact()
        return store

    def test_drifting_capsule_alarms(self, tmp_path):
        engine = QueryEngine(self._drifting_store(tmp_path))
        alarm = engine.strain_alarm(SeriesKey("hq", "east", 2, "strain"))
        assert isinstance(alarm, DamageAlarm)
        assert alarm.severity == "critical"
        assert alarm.drift_estimate == pytest.approx(3.0, rel=0.1)

    def test_healthy_capsule_silent(self, tmp_path):
        engine = QueryEngine(self._drifting_store(tmp_path))
        assert (
            engine.strain_alarm(SeriesKey("hq", "east", 1, "strain")) is None
        )

    def test_degradation_report(self, tmp_path):
        engine = QueryEngine(self._drifting_store(tmp_path))
        report = engine.degradation_report("hq")
        assert report["grade"] == "critical"
        assert report["degraded_walls"] == ["east"]
        flagged = {s["node_id"] for s in report["attention"]}
        assert flagged == {2}

    def test_stale_capsule_unreachable(self, tmp_path):
        store = self._drifting_store(tmp_path)
        # Node 3 stopped reporting long before the others.
        store.append(
            SeriesKey("hq", "east", 3, "strain"), [0.0, 24.0], [100.0, 101.0]
        )
        monitor = QueryEngine(store).building_view("hq", stale_hours=100.0)
        by_node = {
            c.node_id: c for w in monitor.walls() for c in w.capsules
        }
        assert not by_node[3].reachable
        assert by_node[1].reachable

    def test_missing_building_is_loud(self, tmp_path):
        engine = QueryEngine(self._drifting_store(tmp_path))
        with pytest.raises(StoreError):
            engine.building_view("atlantis")
