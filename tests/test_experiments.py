"""Anchor tests: every experiment module reproduces its paper artifact."""

import math

import numpy as np
import pytest

from repro import experiments as ex


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig04_mode_amplitudes.run(step_deg=2.0)

    def test_critical_angles(self, result):
        assert result.first_critical_deg == pytest.approx(34.0, abs=0.5)
        assert result.second_critical_deg == pytest.approx(73.0, abs=1.5)

    def test_p_dominates_at_small_angles(self, result):
        assert result.dominant_mode(5.0) == "p"

    def test_s_dominates_in_window(self, result):
        for angle in (40.0, 50.0, 60.0, 70.0):
            assert result.dominant_mode(angle) == "s"

    def test_nothing_beyond_second_critical(self, result):
        assert result.dominant_mode(78.0) == "none"


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig05_frequency_response.run()

    def test_four_blocks(self, result):
        assert set(result.curves) == {
            "NC-7cm",
            "NC-15cm",
            "UHPC-15cm",
            "UHPFRC-15cm",
        }

    def test_all_peaks_in_carrier_band(self, result):
        # Paper finding 1: resonance between 200-250 kHz for every block.
        for label in result.curves:
            assert result.peak_in_carrier_band(label), label

    def test_uhpc_peaks_dominate_nc(self, result):
        # Paper finding 2.
        nc = result.curves["NC-15cm"].peak[1]
        uhpc = result.curves["UHPC-15cm"].peak[1]
        uhpfrc = result.curves["UHPFRC-15cm"].peak[1]
        assert uhpc > 2.0 * nc
        assert uhpfrc >= uhpc


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig07_ring_effect.run()

    def test_tail_duration_near_0_3ms(self, result):
        assert result.tail_duration == pytest.approx(0.3e-3, rel=0.35)

    def test_fsk_suppresses(self, result):
        assert result.suppression_ratio > 2.0

    def test_waveform_lengths(self, result):
        assert result.ook_waveform.size == result.fsk_waveform.size


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig12_range_vs_voltage.run()

    def test_six_curves(self, result):
        assert len(result.curves) == 6

    def test_best_link_exceeds_6m(self, result):
        # "a maximum power-up range of more than 6 m".
        label, best = result.max_range()
        assert best > 6.0
        assert label == "S3 common wall"

    def test_s3_anchor_at_50v(self, result):
        assert result.curves["S3 common wall"].range_at(50.0) == pytest.approx(
            1.34, rel=0.15
        )

    def test_pab_pool1_anchor(self, result):
        assert result.curves["PAB pool 1"].range_at(50.0) == pytest.approx(
            0.19, rel=0.15
        )


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig13_power_consumption.run()

    def test_standby_80uw(self, result):
        assert result.standby_power * 1e6 == pytest.approx(80.1)

    def test_active_360uw_flat(self, result):
        assert result.active_mean * 1e6 == pytest.approx(360.0, rel=0.02)
        assert result.active_spread * 1e6 < 5.0


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig14_cold_start.run()

    def test_anchors(self, result):
        assert result.minimum_activation_voltage == pytest.approx(0.5)
        assert result.time_at(0.5) == pytest.approx(55e-3, rel=0.05)
        assert result.time_at(2.0) == pytest.approx(4.4e-3, rel=0.05)

    def test_monotone(self, result):
        times = [t for _, t in result.points]
        assert times == sorted(times, reverse=True)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig15_ber_vs_snr.run(total_bits=6000)

    def test_coin_flip_at_2db(self, result):
        point = next(p for p in result.ecocapsule if p.snr_db == 2.0)
        assert point.ber == pytest.approx(0.5, abs=0.1)

    def test_floor_at_8db(self, result):
        assert result.floor_snr("ecocapsule", 1e-4) == pytest.approx(8.0, abs=1.0)

    def test_pab_floor_later(self, result):
        assert result.floor_snr("pab", 1e-4) > result.floor_snr(
            "ecocapsule", 1e-4
        )

    def test_monotone_waterfall(self, result):
        bers = [p.ber for p in result.ecocapsule]
        for earlier, later in zip(bers, bers[1:]):
            assert later <= earlier + 0.05


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig16_snr_vs_bitrate.run()

    def test_knees(self, result):
        assert result.ecocapsule_knee == pytest.approx(13e3, rel=0.05)
        assert result.pab_knee == pytest.approx(3e3, rel=0.1)

    def test_u2b_crossover(self, result):
        assert result.u2b_crossover == pytest.approx(9e3, rel=0.1)

    def test_three_curves(self, result):
        assert set(result.curves) == {"EcoCapsule", "PAB", "U2B"}


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig17_throughput.run(measure_bits=2000)

    def test_all_above_13kbps(self, result):
        # "The resulting throughputs are all more than 13 kbps".
        for row in result.rows.values():
            assert row.measured_throughput > 12e3

    def test_uhpc_advantage_about_2kbps(self, result):
        # "throughputs in UHPFRC and UHPC are about 2 kbps higher".
        assert result.advantage_over_nc("UHPC") == pytest.approx(2e3, abs=1.2e3)
        assert result.advantage_over_nc("UHPFRC") == pytest.approx(2e3, abs=1.2e3)


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig18_snr_vs_position.run(trials=120)

    def test_margins_beat_middle(self, result):
        assert result.median("top") > result.median("middle")
        assert result.median("bottom") > result.median("middle")

    def test_median_levels(self, result):
        # Paper: ~11/8 dB at the margins vs ~7 dB in the middle.
        assert result.median("middle") == pytest.approx(7.0, abs=2.5)
        assert result.median("top") == pytest.approx(11.0, abs=3.0)

    def test_cdf_monotone(self, result):
        cdf = result.cdf("middle")
        probs = [p for _, p in cdf]
        assert probs == sorted(probs)


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig19_prism_effect.run()

    def test_peak_in_window(self, result):
        angle, snr = result.peak
        assert result.window_deg[0] <= angle <= result.window_deg[1]
        assert snr == pytest.approx(15.0, abs=1.0)

    def test_drop_at_15_degrees(self, result):
        # "The SNR drops by 73 % ... at 15 deg": the measured SNR falls
        # to ~27 % of the peak value (Fig. 19's y-axis reading).
        assert result.snr_at(15.0) == pytest.approx(0.27 * result.peak[1], abs=2.0)

    def test_drop_at_30_degrees(self, result):
        # "... and 30 % at 30 deg".
        assert result.snr_at(30.0) == pytest.approx(0.70 * result.peak[1], abs=2.0)

    def test_drop_at_30_degrees_smaller(self, result):
        drop_15 = result.peak[1] - result.snr_at(15.0)
        drop_30 = result.peak[1] - result.snr_at(30.0)
        assert drop_30 < drop_15

    def test_zero_degrees_locally_high(self, result):
        # Direct contact (single P mode) beats the mixed-mode angles.
        assert result.snr_at(0.0) > result.snr_at(15.0)


class TestFig20:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig20_fsk_vs_ook.run()

    def test_gain_3_to_5x(self, result):
        low, high = result.gain_range
        assert low > 2.0
        assert high < 8.0

    def test_fsk_always_wins(self, result):
        for (b, fsk), (_, ook) in zip(result.fsk, result.ook):
            assert fsk > ook


class TestFig21:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig21_pilot_study.run(samples_per_hour=4)

    def test_storm_detected_in_both_channels(self, result):
        assert result.storm_detected_in_both

    def test_sensors_mutually_verified(self, result):
        assert result.sensors_mutually_verified

    def test_structurally_compliant(self, result):
        assert result.compliance.compliant

    def test_health_b_or_above(self, result):
        # "the bridge health always remained at B or above levels".
        assert result.health_at_or_above_b

    def test_five_sections_reported(self, result):
        assert len(result.section_health) == 5


class TestFig22:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig22_backscatter_waveform.run()

    def test_idle_region_4ms(self, result):
        assert result.idle_samples == int(4e-3 * result.sample_rate)

    def test_square_wave_modulation(self, result):
        assert result.modulation_depth > 1.3

    def test_edge_duration_half_ms(self, result):
        # Fig. 22: "Each of the high- and low-voltage edges takes 0.5 ms".
        assert result.edge_duration == pytest.approx(0.5e-3)


class TestFig24:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig24_self_interference.run()

    def test_three_peaks(self, result):
        # CBW + two AM sidebands.
        peaks = result.peak_frequencies(3)
        expected = sorted(
            [result.carrier, result.carrier - result.blf, result.carrier + result.blf]
        )
        for found, want in zip(peaks, expected):
            assert found == pytest.approx(want, abs=1.5e3)

    def test_guard_band_clean(self, result):
        assert result.guard_band_depth_db() > 10.0


class TestTables:
    def test_table1_rows(self):
        rows = ex.tables.table1()
        assert [r.concrete for r in rows] == ["NC", "UHPC", "UHPFRC"]
        nc = rows[0]
        assert nc.fco_mpa == pytest.approx(54.1)
        assert nc.mix["cement"] == 300

    def test_table2_regions(self):
        table = ex.tables.table2()
        assert set(table) == {"united_states", "hong_kong", "bangkok", "manila"}
        assert table["hong_kong"]["A"] == pytest.approx(3.25)

    def test_table2_examples_consistent(self):
        for pao, region, letter in ex.tables.table2_examples():
            from repro.shm import grade

            assert grade(pao, region) == letter

    def test_shell_design_points(self):
        points = {p.material: p for p in ex.tables.shell_design_points()}
        assert points["SLA resin"].max_pressure_mpa == pytest.approx(4.3, abs=0.1)
        assert points["SLA resin"].max_height_m == pytest.approx(195.0, abs=3.0)
        assert points["alloy steel"].max_pressure_mpa == pytest.approx(115.2, abs=0.5)
        assert points["alloy steel"].max_height_m == pytest.approx(4985.0, rel=0.01)

    def test_hra_design_point(self):
        point = ex.tables.hra_design_point()
        assert point.neck_area_mm2 == pytest.approx(0.78)
        assert point.cavity_volume_mm3 == pytest.approx(2.76)
        assert point.neck_length_mm == pytest.approx(0.8)
        assert point.resonance_at_design_speed == pytest.approx(230e3)


class TestAppendix:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.appendix_sensors.run(samples_per_hour=4)

    def test_all_channels_present(self, result):
        assert len(result.summaries) == 11

    def test_channels_in_expected_bands(self, result):
        for name in result.summaries:
            assert result.in_band(name), name

    def test_response_channels_show_storm(self, result):
        for name in ("acceleration_1", "acceleration_4", "stress_1", "stress_2"):
            assert result.summaries[name].storm_contrast > 1.2, name
