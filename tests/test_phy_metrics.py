"""Unit tests for link-quality metrics."""

import math

import pytest

from repro.phy import (
    LinkStatistics,
    MetricsError,
    bit_error_rate,
    bit_errors,
    fm0_ber_theoretical,
    q_function,
    throughput,
)


class TestBitErrors:
    def test_counts_differences(self):
        assert bit_errors([0, 1, 1, 0], [0, 1, 0, 1]) == 2

    def test_identical_is_zero(self):
        assert bit_errors([1, 0, 1], [1, 0, 1]) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(MetricsError):
            bit_errors([0, 1], [0])

    def test_ber(self):
        assert bit_error_rate([0, 1, 1, 0], [1, 1, 1, 0]) == pytest.approx(0.25)

    def test_ber_rejects_empty(self):
        with pytest.raises(MetricsError):
            bit_error_rate([], [])


class TestThroughput:
    def test_definition(self):
        # "the number of bits correctly decoded by the reader per second"
        assert throughput(13000, 1.0) == pytest.approx(13e3)

    def test_rejects_zero_duration(self):
        with pytest.raises(MetricsError):
            throughput(100, 0.0)

    def test_rejects_negative_bits(self):
        with pytest.raises(MetricsError):
            throughput(-1, 1.0)


class TestQFunction:
    def test_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        assert q_function(1.0) > q_function(2.0) > q_function(3.0)

    def test_known_value(self):
        # Q(1.6449) ~ 0.05.
        assert q_function(1.6449) == pytest.approx(0.05, rel=1e-3)


class TestTheoreticalBer:
    def test_decreases_with_snr(self):
        bers = [fm0_ber_theoretical(snr) for snr in (0.0, 5.0, 10.0, 15.0)]
        assert bers == sorted(bers, reverse=True)

    def test_never_exceeds_half(self):
        assert fm0_ber_theoretical(-20.0) <= 0.5


class TestLinkStatistics:
    def test_accumulates(self):
        stats = LinkStatistics()
        stats.record([0, 1, 1, 0], [0, 1, 0, 0], duration=1.0)
        stats.record([1, 1], [1, 1], duration=0.5)
        assert stats.bits_sent == 6
        assert stats.ber == pytest.approx(1.0 / 6.0)
        assert stats.throughput == pytest.approx(5.0 / 1.5)
        assert stats.trials == 2

    def test_rejects_negative_duration(self):
        stats = LinkStatistics()
        with pytest.raises(MetricsError):
            stats.record([0], [0], duration=-1.0)

    def test_ber_requires_data(self):
        with pytest.raises(MetricsError):
            LinkStatistics().ber
