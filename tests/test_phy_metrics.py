"""Unit tests for link-quality metrics."""

import math

import pytest

from repro.phy import (
    LinkStatistics,
    MetricsError,
    bit_error_rate,
    bit_errors,
    fm0_ber_theoretical,
    q_function,
    throughput,
)


class TestBitErrors:
    def test_counts_differences(self):
        assert bit_errors([0, 1, 1, 0], [0, 1, 0, 1]) == 2

    def test_identical_is_zero(self):
        assert bit_errors([1, 0, 1], [1, 0, 1]) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(MetricsError):
            bit_errors([0, 1], [0])

    def test_ber(self):
        assert bit_error_rate([0, 1, 1, 0], [1, 1, 1, 0]) == pytest.approx(0.25)

    def test_ber_rejects_empty(self):
        with pytest.raises(MetricsError):
            bit_error_rate([], [])


class TestThroughput:
    def test_definition(self):
        # "the number of bits correctly decoded by the reader per second"
        assert throughput(13000, 1.0) == pytest.approx(13e3)

    def test_rejects_zero_duration(self):
        with pytest.raises(MetricsError):
            throughput(100, 0.0)

    def test_rejects_negative_bits(self):
        with pytest.raises(MetricsError):
            throughput(-1, 1.0)


class TestQFunction:
    def test_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        assert q_function(1.0) > q_function(2.0) > q_function(3.0)

    def test_known_value(self):
        # Q(1.6449) ~ 0.05.
        assert q_function(1.6449) == pytest.approx(0.05, rel=1e-3)


class TestTheoreticalBer:
    def test_decreases_with_snr(self):
        bers = [fm0_ber_theoretical(snr) for snr in (0.0, 5.0, 10.0, 15.0)]
        assert bers == sorted(bers, reverse=True)

    def test_never_exceeds_half(self):
        assert fm0_ber_theoretical(-20.0) <= 0.5


class TestLinkStatistics:
    def test_accumulates(self):
        stats = LinkStatistics()
        stats.record([0, 1, 1, 0], [0, 1, 0, 0], duration=1.0)
        stats.record([1, 1], [1, 1], duration=0.5)
        assert stats.bits_sent == 6
        assert stats.ber == pytest.approx(1.0 / 6.0)
        assert stats.throughput == pytest.approx(5.0 / 1.5)
        assert stats.trials == 2

    def test_rejects_negative_duration(self):
        stats = LinkStatistics()
        with pytest.raises(MetricsError):
            stats.record([0], [0], duration=-1.0)

    def test_ber_requires_data(self):
        with pytest.raises(MetricsError):
            LinkStatistics().ber


class TestArrayDtypeContracts:
    """Batching surfaced these: metrics must accept arrays and return
    built-in Python types (no np.int64/np.float64 leaking into result
    dataclasses or JSON manifests)."""

    def test_bit_errors_accepts_numpy_arrays(self):
        import numpy as np

        sent = np.array([0, 1, 1, 0])
        received = np.array([1, 1, 0, 0])
        errors = bit_errors(sent, received)
        assert errors == 2
        assert type(errors) is int

    def test_bit_errors_mixed_list_and_array(self):
        import numpy as np

        assert bit_errors([0, 1, 0], np.array([0, 0, 0])) == 1

    def test_bit_errors_2d_batch(self):
        import numpy as np

        decoded = np.array([[0, 1], [1, 1]])
        sent = np.array([[0, 0], [1, 1]])
        assert bit_errors(decoded, sent) == 1

    def test_bit_errors_shape_mismatch_raises(self):
        import numpy as np

        with pytest.raises(MetricsError):
            bit_errors(np.zeros(3), np.zeros(4))
        with pytest.raises(MetricsError):
            bit_errors(np.zeros((2, 2)), np.zeros(4))

    def test_bit_error_rate_returns_builtin_float(self):
        import numpy as np

        rate = bit_error_rate(np.array([0, 1, 1, 0]), np.array([1, 1, 1, 0]))
        assert rate == 0.25
        assert type(rate) is float

    def test_bit_error_rate_2d_uses_total_bits(self):
        import numpy as np

        rate = bit_error_rate(np.zeros((2, 4)), np.ones((2, 4)))
        assert rate == 1.0

    def test_bit_error_rate_empty_array_raises(self):
        import numpy as np

        with pytest.raises(MetricsError):
            bit_error_rate(np.zeros(0), np.zeros(0))
