"""Property-based robustness tests (hypothesis) for the coding layers.

Two guarantees the fault-injection layer leans on, stated as
properties rather than examples:

* the Gen2 CRCs detect *every* contiguous burst error up to their
  degree (16 bits for CRC-16/CCITT, 5 for CRC-5) anywhere in the
  codeword -- this is what makes `uplink_ber` corruption surface as
  clean retries instead of silently wrong sensor values;
* the FM0 ML correlator decodes exactly through sample-level noise up
  to its correlation margin (fewer than ``samples_per_symbol / 4``
  inverted samples in any symbol).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrcError
from repro.phy import Fm0Decoder, bipolar, fm0_encode_baseband as encode_baseband
from repro.protocol import append_crc16, crc5, verify_crc16

payload_bits = st.lists(st.integers(0, 1), min_size=1, max_size=64)


def burst_strategy(max_len):
    """(offset_fraction, burst_bits) with the end bits set, len <= max_len."""
    return st.tuples(
        st.floats(0.0, 1.0, allow_nan=False),
        st.lists(st.integers(0, 1), min_size=1, max_size=max_len).map(
            lambda bits: [1] + bits[1:-1] + [1] if len(bits) > 1 else [1]
        ),
    )


def apply_burst(codeword, offset_fraction, burst):
    """XOR ``burst`` into the codeword at a position scaled to fit."""
    span = len(codeword) - len(burst)
    if span < 0:
        return None
    start = int(round(offset_fraction * span))
    corrupted = list(codeword)
    for i, bit in enumerate(burst):
        corrupted[start + i] ^= bit
    return corrupted


class TestCrcBurstDetection:
    @given(payload=payload_bits, burst=burst_strategy(16))
    @settings(max_examples=200, deadline=None)
    def test_crc16_detects_every_burst_up_to_degree(self, payload, burst):
        codeword = append_crc16(payload)
        corrupted = apply_burst(codeword, *burst)
        if corrupted is None or corrupted == codeword:
            return
        with pytest.raises(CrcError):
            verify_crc16(corrupted)

    @given(payload=payload_bits, burst=burst_strategy(5))
    @settings(max_examples=200, deadline=None)
    def test_crc5_detects_every_burst_up_to_degree(self, payload, burst):
        codeword = payload + crc5(payload)
        corrupted = apply_burst(codeword, *burst)
        if corrupted is None or corrupted == codeword:
            return
        body, check = corrupted[: len(payload)], corrupted[len(payload) :]
        assert crc5(body) != check

    @given(payload=payload_bits)
    @settings(max_examples=100, deadline=None)
    def test_clean_codewords_always_verify(self, payload):
        assert verify_crc16(append_crc16(payload)) == payload
        assert crc5(payload) == crc5(list(payload))


class TestFm0RoundTrip:
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=48),
        samples_per_symbol=st.sampled_from([4, 8, 12, 16]),
        initial_level=st.integers(0, 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_clean_round_trip(self, bits, samples_per_symbol, initial_level):
        waveform = bipolar(
            encode_baseband(bits, samples_per_symbol, initial_level)
        )
        decoder = Fm0Decoder(
            samples_per_symbol=samples_per_symbol,
            initial_level=initial_level,
        )
        assert decoder.decode(waveform) == bits

    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=32),
        samples_per_symbol=st.sampled_from([8, 12, 16]),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip_survives_sub_margin_sample_flips(
        self, bits, samples_per_symbol, data
    ):
        """Exact decode with < samples_per_symbol/4 inverted samples per
        symbol: the correct basis keeps a positive correlation margin
        over every competitor, so the ML decision cannot flip."""
        waveform = bipolar(encode_baseband(bits, samples_per_symbol))
        max_flips = (samples_per_symbol - 1) // 4  # strictly < n/4
        for symbol_index in range(len(bits)):
            n_flips = data.draw(
                st.integers(0, max_flips), label=f"flips[{symbol_index}]"
            )
            if n_flips == 0:
                continue
            positions = data.draw(
                st.lists(
                    st.integers(0, samples_per_symbol - 1),
                    min_size=n_flips,
                    max_size=n_flips,
                    unique=True,
                ),
                label=f"positions[{symbol_index}]",
            )
            for position in positions:
                waveform[symbol_index * samples_per_symbol + position] *= -1.0
        decoder = Fm0Decoder(samples_per_symbol=samples_per_symbol)
        assert decoder.decode(waveform) == bits

    def test_margin_is_tight(self):
        """At exactly n/4 inversions a symbol *can* tie/flip -- the
        sub-margin bound above is the strongest exact guarantee."""
        n = 8
        bits = [1, 1]
        waveform = bipolar(encode_baseband(bits, n))
        # Invert n/4 = 2 samples in the first half of symbol 0: the
        # bit-0 basis (which agrees on the second half after a phase
        # slip hypothesis) can now tie the bit-1 score.
        corrupted = waveform.copy()
        corrupted[0] *= -1.0
        corrupted[1] *= -1.0
        decoded = Fm0Decoder(samples_per_symbol=n).decode(corrupted)
        # Not asserting failure -- just that the decoder stays total
        # (no exception) at and beyond the margin.
        assert len(decoded) == len(bits)
