"""Edge-coverage tests across modules: paths the main suites skim over."""

import numpy as np
import pytest

from repro.errors import AcousticsError, DesignError, PowerError, ProtocolError


class TestReaderAutoCarrier:
    def test_decode_with_estimated_carrier(self):
        """The receiver must decode without being told the carrier."""
        from repro.phy import BackscatterModulator
        from repro.reader import ReaderReceiver

        mod = BackscatterModulator(blf=10e3, bitrate=1e3)
        n = mod.samples_per_symbol(1e6) * 8
        t = np.arange(n) / 1e6
        cbw = np.sin(2 * np.pi * 230e3 * t)
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        capture = 0.5 * cbw + 0.05 * mod.reflect(cbw, bits, 1e6)
        receiver = ReaderReceiver(modulator=mod)
        assert receiver.decode(capture, len(bits)) == bits  # carrier=None


class TestTransducerEdges:
    def test_node_disc_lower_voltage_rating(self):
        from repro.transducer import node_disc, reader_tx_disc

        assert node_disc().max_voltage < reader_tx_disc().max_voltage

    def test_matching_network_detune_symmetype(self):
        from repro.transducer import MatchingNetwork

        match = MatchingNetwork(tuned_frequency=230e3)
        assert match.efficiency(230e3) > match.efficiency(150e3)
        with pytest.raises(DesignError):
            match.efficiency(0.0)

    def test_transmit_chain_rejects_nonpositive_request(self):
        from repro.transducer import TransmitChain, reader_tx_disc

        chain = TransmitChain(disc=reader_tx_disc())
        with pytest.raises(DesignError):
            chain.effective_drive_voltage(0.0, 230e3)


class TestChannelEdges:
    def test_direct_contact_channel_without_prism(self):
        from repro.acoustics import AcousticChannel, StructureGeometry
        from repro.materials import get_concrete

        wall = StructureGeometry(
            "wall", length=5.0, thickness=0.2,
            medium=get_concrete("NC").medium,
        )
        channel = AcousticChannel(structure=wall, max_bounces=5)
        assert channel.injection_gain == pytest.approx(0.9)
        assert channel.hra_gain == 1.0

    def test_spreading_model_derived_from_structure(self):
        from repro.acoustics import AcousticChannel, StructureGeometry
        from repro.materials import get_concrete

        nc = get_concrete("NC").medium
        thin = AcousticChannel(
            structure=StructureGeometry("t", 5.0, 0.15, nc), max_bounces=5
        )
        thick = AcousticChannel(
            structure=StructureGeometry("T", 5.0, 0.7, nc), max_bounces=5
        )
        assert thin.spreading.exponent < thick.spreading.exponent


class TestSessionTimingEdges:
    def test_slot_duration_components(self):
        from repro.link import SessionTiming
        from repro.phy import PieTiming

        timing = SessionTiming(
            pie=PieTiming(tari=100e-6, low=100e-6),
            uplink_bitrate=2e3,
            command_bits=10,
            reply_bits=20,
            turnaround=0.5e-3,
        )
        expected = 10 * (3 * 100e-6 + 100e-6) + 0.5e-3 + 20 / 2e3 + 0.5e-3
        assert timing.slot_duration == pytest.approx(expected)


class TestHarvesterEdges:
    def test_harvested_power_zero_below_regulation(self):
        from repro.circuits import EnergyHarvester

        harvester = EnergyHarvester()
        # Just above the diode drop but the pump output stays below the
        # LDO's minimum input.
        assert harvester.harvested_power(0.25) == 0.0

    def test_can_power_up_requires_both_conditions(self):
        from repro.circuits import EnergyHarvester, VoltageMultiplier

        # A single-stage pump cannot double 0.5 V past the LDO dropout.
        weak = EnergyHarvester(multiplier=VoltageMultiplier(stages=1))
        assert not weak.can_power_up(0.5)
        assert weak.can_power_up(1.2)


class TestProtocolEdges:
    def test_query_rep_in_ready_state_is_silent(self):
        from repro.protocol import NodeStateMachine, QueryRep

        node = NodeStateMachine(node_id=1, read_sensor=lambda c: 0.0, seed=0)
        assert node.handle(QueryRep()) is None
        assert node.state == "ready"

    def test_acknowledged_released_by_query_rep(self):
        from repro.protocol import Ack, NodeStateMachine, Query, QueryRep

        node = NodeStateMachine(node_id=1, read_sensor=lambda c: 0.0, seed=0)
        reply = node.handle(Query(q=0))
        node.handle(Ack(rn16=reply.rn16))
        node.handle(QueryRep())
        assert node.state == "ready"

    def test_inventory_rejects_unknown_node_lookup(self):
        from repro.protocol import NodeStateMachine, TdmaInventory

        inventory = TdmaInventory(
            nodes=[NodeStateMachine(node_id=1, read_sensor=lambda c: 0.0)]
        )
        with pytest.raises(ProtocolError):
            inventory._node_by_id(99)


class TestFrequencyResponseEdges:
    def test_rejects_nonpositive_quality(self):
        from repro.acoustics import ConcreteBlock, FrequencyResponse
        from repro.materials import get_concrete

        block = ConcreteBlock(get_concrete("NC"), 0.15)
        with pytest.raises(AcousticsError):
            FrequencyResponse(block, quality_factor=0.0)

    def test_higher_q_narrower_band(self):
        from repro.acoustics import ConcreteBlock, FrequencyResponse
        from repro.materials import get_concrete

        block = ConcreteBlock(get_concrete("NC"), 0.15)
        broad = FrequencyResponse(block, quality_factor=3.0)
        narrow = FrequencyResponse(block, quality_factor=12.0)
        f0 = broad.resonant_frequency
        off = f0 * 0.8
        assert narrow.gain(off) / narrow.gain(f0) < broad.gain(off) / broad.gain(f0)


class TestShellEdges:
    def test_displacement_grows_linearly_with_pressure(self):
        from repro.node import resin_shell

        shell = resin_shell()
        assert shell.radial_displacement(2e6) == pytest.approx(
            2.0 * shell.radial_displacement(1e6)
        )

    def test_zero_height_survives(self):
        from repro.node import resin_shell

        assert resin_shell().survives(0.0)

    def test_max_height_positive_density_required(self):
        from repro.node import max_building_height

        with pytest.raises(DesignError):
            max_building_height(1e6, concrete_density=0.0)


class TestCapsuleFieldEdges:
    def test_exact_activation_threshold_powers(self):
        from repro.node import EcoCapsule

        capsule = EcoCapsule(node_id=1, seed=0)
        assert capsule.apply_field(0.5)

    def test_power_budget_fails_when_dark(self):
        from repro.node import EcoCapsule

        capsule = EcoCapsule(node_id=1, seed=0)
        capsule.apply_field(0.0)
        assert not capsule.power_budget_ok(1e3)
