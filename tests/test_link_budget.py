"""Unit tests for the power-up link budget (Fig. 12 anchors)."""

import pytest

from repro.acoustics import StructureGeometry, paper_structures
from repro.errors import PowerError
from repro.link import PowerUpLink, harvested_headroom_db
from repro.materials import get_concrete

NC = get_concrete("NC").medium


def structure_by_name(name):
    for s in paper_structures():
        if s.name.startswith(name):
            return s
    raise KeyError(name)


class TestNodeVoltage:
    def test_linear_in_tx_voltage(self):
        link = PowerUpLink(structure_by_name("S3"))
        v1 = link.node_voltage(1.0, 50.0)
        v4 = link.node_voltage(1.0, 200.0)
        assert v4 == pytest.approx(4.0 * v1)

    def test_decreases_with_distance(self):
        link = PowerUpLink(structure_by_name("S3"))
        voltages = [link.node_voltage(d, 100.0) for d in (0.5, 1.0, 2.0, 4.0)]
        assert voltages == sorted(voltages, reverse=True)

    def test_rejects_nonpositive_voltage(self):
        link = PowerUpLink(structure_by_name("S3"))
        with pytest.raises(PowerError):
            link.node_voltage(1.0, 0.0)


class TestFig12Anchors:
    """The paper's measured ranges (cm) within model tolerance."""

    def test_s3_wall_at_50v(self):
        link = PowerUpLink(structure_by_name("S3"))
        assert link.max_range(50.0) == pytest.approx(1.34, rel=0.15)

    def test_s3_wall_at_200v(self):
        link = PowerUpLink(structure_by_name("S3"))
        assert link.max_range(200.0) == pytest.approx(5.0, rel=0.15)

    def test_s3_exceeds_6m_at_250v(self):
        link = PowerUpLink(structure_by_name("S3"))
        assert link.max_range(250.0) > 6.0

    def test_s2_column_at_50v(self):
        link = PowerUpLink(structure_by_name("S2"))
        assert link.max_range(50.0) == pytest.approx(0.56, rel=0.20)

    def test_s2_column_at_200v(self):
        link = PowerUpLink(structure_by_name("S2"))
        assert link.max_range(200.0) == pytest.approx(2.35, rel=0.15)

    def test_s4_wall_at_50v(self):
        link = PowerUpLink(structure_by_name("S4"))
        assert link.max_range(50.0) == pytest.approx(0.60, rel=0.20)

    def test_s1_caps_at_slab_length(self):
        link = PowerUpLink(structure_by_name("S1"))
        assert link.max_range(200.0) == pytest.approx(1.50)

    def test_narrow_structures_outrange_wide_ones(self):
        # The paper's finding 2: narrow structures guide energy.
        s3 = PowerUpLink(structure_by_name("S3"))
        s4 = PowerUpLink(structure_by_name("S4"))
        s2 = PowerUpLink(structure_by_name("S2"))
        for v in (50.0, 100.0, 200.0):
            assert s3.max_range(v) > s4.max_range(v) > s2.max_range(v)

    def test_higher_voltage_longer_range(self):
        # The paper's finding 1.
        link = PowerUpLink(structure_by_name("S3"))
        ranges = [link.max_range(v) for v in (25.0, 50.0, 100.0, 200.0)]
        assert ranges == sorted(ranges)


class TestPowersUp:
    def test_within_range(self):
        link = PowerUpLink(structure_by_name("S3"))
        reach = link.max_range(100.0)
        assert link.powers_up(reach * 0.9, 100.0)
        assert not link.powers_up(reach * 1.1, 100.0)

    def test_never_beyond_structure(self):
        link = PowerUpLink(structure_by_name("S1"))
        assert not link.powers_up(2.0, 250.0)  # slab is 1.5 m long


class TestMinimumVoltage:
    def test_inverse_of_max_range(self):
        link = PowerUpLink(structure_by_name("S3"))
        needed = link.minimum_voltage(2.0)
        assert link.max_range(needed) == pytest.approx(2.0, rel=0.02)

    def test_unreachable_raises(self):
        link = PowerUpLink(structure_by_name("S3"))
        with pytest.raises(PowerError):
            link.minimum_voltage(15.0)

    def test_beyond_structure_raises(self):
        link = PowerUpLink(structure_by_name("S1"))
        with pytest.raises(PowerError):
            link.minimum_voltage(3.0)


class TestHeadroom:
    def test_positive_inside_range(self):
        link = PowerUpLink(structure_by_name("S3"))
        assert harvested_headroom_db(link, 1.0, 200.0) > 0.0

    def test_negative_outside_range(self):
        link = PowerUpLink(structure_by_name("S3"))
        assert harvested_headroom_db(link, 8.0, 50.0) < 0.0

    def test_range_curve_shape(self):
        link = PowerUpLink(structure_by_name("S4"))
        curve = link.range_curve([50.0, 100.0, 200.0])
        assert [v for v, _ in curve] == [50.0, 100.0, 200.0]
        ranges = [r for _, r in curve]
        assert ranges == sorted(ranges)
