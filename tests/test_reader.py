"""Unit tests for the reader's transmitter and receiver."""

import math

import numpy as np
import pytest

from repro.acoustics import WavePrism
from repro.errors import DecodingError, DesignError
from repro.materials import PLA, get_concrete
from repro.phy import BackscatterModulator, DownlinkModulator, PieTiming
from repro.protocol import Query
from repro.reader import ReaderReceiver, ReaderTransmitter

NC = get_concrete("NC").medium
SAMPLE_RATE = 1e6


@pytest.fixture
def transmitter():
    timing = PieTiming(tari=100e-6, low=100e-6)
    return ReaderTransmitter(
        prism=WavePrism(PLA, NC),
        modulator=DownlinkModulator(timing=timing),
        drive_voltage=100.0,
    )


class TestTransmitter:
    def test_rejects_over_rail(self):
        with pytest.raises(DesignError):
            ReaderTransmitter(drive_voltage=400.0)

    def test_cbw_is_continuous(self, transmitter):
        cbw = transmitter.cbw(1e-3, SAMPLE_RATE)
        assert cbw.size == int(1e-3 * SAMPLE_RATE)
        # Envelope never drops: check RMS over windows.
        windows = cbw.reshape(10, -1)
        rms = np.sqrt(np.mean(windows**2, axis=1))
        assert np.min(rms) > 0.5 * np.max(rms)

    def test_command_waveform_length(self, transmitter):
        timing = transmitter.modulator.timing
        waveform = transmitter.command_waveform([0, 1], SAMPLE_RATE)
        expected = int((timing.zero_duration + timing.one_duration) * SAMPLE_RATE)
        assert waveform.size == expected

    def test_command_for_packet(self, transmitter):
        waveform = transmitter.command_waveform_for_packet(Query(q=2), SAMPLE_RATE)
        assert waveform.size > 0

    def test_effective_voltage_below_requested(self, transmitter):
        assert transmitter.effective_peak_voltage() < transmitter.drive_voltage

    def test_node_field_scales_with_gain(self, transmitter):
        assert transmitter.node_field_amplitude(0.1) == pytest.approx(
            10.0 * transmitter.node_field_amplitude(0.01)
        )

    def test_node_field_rejects_negative_gain(self, transmitter):
        with pytest.raises(DesignError):
            transmitter.node_field_amplitude(-0.1)


class TestReceiver:
    def make_uplink_capture(self, bits, blf=10e3, bitrate=1e3, gain=0.05,
                            leakage=10.0, noise=1e-3, seed=0):
        mod = BackscatterModulator(blf=blf, bitrate=bitrate)
        n = mod.samples_per_symbol(SAMPLE_RATE) * len(bits)
        t = np.arange(n) / SAMPLE_RATE
        cbw = np.sin(2 * np.pi * 230e3 * t)
        reflected = mod.reflect(cbw, bits, SAMPLE_RATE)
        rng = np.random.default_rng(seed)
        capture = (
            leakage * gain * cbw
            + gain * reflected
            + rng.normal(0.0, noise, size=n)
        )
        return capture, mod

    def test_carrier_estimation_sees_cbw(self):
        capture, mod = self.make_uplink_capture([1, 0, 1, 1])
        receiver = ReaderReceiver(modulator=mod)
        assert receiver.estimate_carrier(capture) == pytest.approx(230e3, rel=1e-3)

    def test_decodes_uplink_bits(self):
        rng = np.random.default_rng(3)
        bits = list(rng.integers(0, 2, size=16))
        capture, mod = self.make_uplink_capture(bits)
        receiver = ReaderReceiver(modulator=mod)
        assert receiver.decode(capture, len(bits), carrier=230e3) == bits

    def test_decode_despite_self_interference(self):
        # 10x leakage (Sec. 3.4) must not break the sideband decoding.
        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        capture, mod = self.make_uplink_capture(bits, leakage=10.0)
        receiver = ReaderReceiver(modulator=mod)
        assert receiver.decode(capture, len(bits), carrier=230e3) == bits

    def test_decode_rejects_short_capture(self):
        capture, mod = self.make_uplink_capture([1, 0])
        receiver = ReaderReceiver(modulator=mod)
        with pytest.raises(DecodingError):
            receiver.decode(capture, 100, carrier=230e3)

    def test_uplink_snr_positive_for_clean_link(self):
        bits = [1, 0] * 16
        capture, mod = self.make_uplink_capture(bits, noise=1e-4)
        receiver = ReaderReceiver(modulator=mod)
        assert receiver.uplink_snr_db(capture, carrier=230e3) > 3.0

    def test_spectrum_shape(self):
        capture, mod = self.make_uplink_capture([1, 0, 1, 0])
        receiver = ReaderReceiver(modulator=mod)
        freqs, psd = receiver.spectrum(capture)
        assert freqs.size == psd.size
        assert freqs[np.argmax(psd)] == pytest.approx(230e3, rel=0.01)
