"""Unit tests for the node's envelope detector and level shifter."""

import numpy as np
import pytest

from repro.circuits import EnvelopeDetector, LevelShifter, edge_intervals
from repro.errors import DecodingError

SAMPLE_RATE = 4e6


def ook_burst(on_time, off_time, carrier=230e3, sample_rate=SAMPLE_RATE):
    """A carrier burst followed by silence."""
    n_on = int(on_time * sample_rate)
    n_off = int(off_time * sample_rate)
    t = np.arange(n_on) / sample_rate
    return np.concatenate([np.sin(2 * np.pi * carrier * t), np.zeros(n_off)])


class TestEnvelopeDetector:
    def test_tracks_a_burst(self):
        detector = EnvelopeDetector()
        waveform = ook_burst(0.5e-3, 0.5e-3)
        envelope = detector.detect(waveform, SAMPLE_RATE)
        n_on = int(0.5e-3 * SAMPLE_RATE)
        on_level = np.mean(envelope[n_on // 2 : n_on])
        off_level = np.mean(envelope[-n_on // 4 :])
        assert on_level > 5.0 * off_level

    def test_envelope_nonnegative(self):
        detector = EnvelopeDetector()
        envelope = detector.detect(ook_burst(1e-4, 1e-4), SAMPLE_RATE)
        assert np.all(envelope >= 0.0)

    def test_rejects_low_sample_rate(self):
        detector = EnvelopeDetector(cutoff=40e3)
        with pytest.raises(DecodingError):
            detector.detect(np.ones(100), 50e3)

    def test_diode_drop_subtracts(self):
        hard = EnvelopeDetector(diode_drop=0.5)
        soft = EnvelopeDetector(diode_drop=0.0)
        waveform = 0.6 * ook_burst(1e-4, 1e-4)
        assert np.max(hard.detect(waveform, SAMPLE_RATE)) < np.max(
            soft.detect(waveform, SAMPLE_RATE)
        )


class TestLevelShifter:
    def test_binarizes_a_square_envelope(self):
        shifter = LevelShifter()
        envelope = np.concatenate([np.ones(100), np.zeros(100), np.ones(100)])
        bits = shifter.binarize(envelope)
        assert bits[50] == 1
        assert bits[150] == 0
        assert bits[250] == 1

    def test_hysteresis_rejects_small_ripple(self):
        shifter = LevelShifter(high_fraction=0.6, low_fraction=0.3)
        # Ripple between 0.8 and 1.0 never crosses the low threshold.
        envelope = 0.9 + 0.1 * np.sin(np.linspace(0, 20 * np.pi, 400))
        bits = shifter.binarize(envelope)
        assert np.all(bits[10:] == 1)

    def test_rejects_silent_envelope(self):
        with pytest.raises(DecodingError):
            LevelShifter().binarize(np.zeros(10))

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(DecodingError):
            LevelShifter(high_fraction=0.3, low_fraction=0.5)


class TestEdgeIntervals:
    def test_measures_durations(self):
        binary = np.concatenate([np.ones(100), np.zeros(50), np.ones(150)])
        intervals = edge_intervals(binary, sample_rate=1000.0)
        assert intervals == pytest.approx([0.1, 0.05, 0.15])

    def test_rejects_flat_stream(self):
        with pytest.raises(DecodingError):
            edge_intervals(np.ones(100), 1000.0)

    def test_rejects_tiny_stream(self):
        with pytest.raises(DecodingError):
            edge_intervals(np.ones(1), 1000.0)


class TestFullDownlinkChain:
    def test_ook_to_bits(self):
        """Envelope detect + binarize + edge timing recovers a PIE stream."""
        from repro.phy import PieTiming, decode_edge_durations, pie_encode_baseband

        timing = PieTiming(tari=250e-6, low=250e-6)
        bits = [0, 1, 1, 0, 1]
        baseband = pie_encode_baseband(bits, SAMPLE_RATE, timing)
        t = np.arange(baseband.size) / SAMPLE_RATE
        waveform = baseband * np.sin(2 * np.pi * 230e3 * t)

        detector = EnvelopeDetector()
        envelope = detector.detect(waveform, SAMPLE_RATE)
        binary = LevelShifter().binarize(envelope)
        durations = edge_intervals(binary, SAMPLE_RATE)
        decoded = decode_edge_durations(durations, int(binary[0]), timing)
        assert decoded == bits
