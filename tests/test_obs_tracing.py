"""Tests for the tracer (obs.tracing), profiler and event log."""

import json
import threading

from repro.obs import (
    EventLog,
    NULL_TRACER,
    NullTracer,
    ProfileProbe,
    TRACE_SCHEMA,
    Tracer,
    obs_span,
    observed,
    validate_chrome_trace,
    validate_profile,
)
from repro.obs.tracing import _NULL_SPAN


class TestSpans:
    def test_span_records_name_args_and_duration(self):
        tracer = Tracer(process_label="test")
        with tracer.span("work", kind="unit") as span:
            span.set(extra=1)
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["args"] == {"kind": "unit", "extra": 1}
        assert record["duration_ns"] >= 0
        assert record["parent"] is None

    def test_nested_spans_record_their_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["outer"]["parent"] is None
        # Sibling after the nest has no parent again.
        with tracer.span("after"):
            pass
        assert tracer.records()[-1]["parent"] is None

    def test_threads_keep_independent_span_stacks(self):
        tracer = Tracer()
        ready = threading.Event()

        def other_thread():
            with tracer.span("thread-span"):
                ready.set()

        with tracer.span("main-span"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        by_name = {r["name"]: r for r in tracer.records()}
        # The other thread's span must not pick up main's open span.
        assert by_name["thread-span"]["parent"] is None
        assert by_name["thread-span"]["tid"] != by_name["main-span"]["tid"]


class TestChromeExport:
    def test_export_is_valid_and_json_serializable(self):
        tracer = Tracer(process_label="runner")
        with tracer.span("a", seed=7):
            with tracer.span("b"):
                pass
        trace = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        assert trace["otherData"]["spans"] == 2

    def test_export_contains_complete_and_metadata_events(self):
        tracer = Tracer(process_label="runner")
        with tracer.span("a"):
            pass
        events = tracer.to_chrome_trace()["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("X") == 1
        assert phases.count("M") == 1
        meta = next(e for e in events if e["ph"] == "M")
        assert meta["args"]["name"] == "runner"

    def test_merged_worker_records_keep_their_process_label(self):
        parent, worker = Tracer(process_label="parent"), Tracer()
        with worker.span("remote"):
            pass
        parent.add_records(worker.records(), process_label="worker-1")
        trace = parent.to_chrome_trace()
        meta = next(e for e in trace["traceEvents"] if e["ph"] == "M")
        assert meta["args"]["name"] == "worker-1"
        assert validate_chrome_trace(trace) == []

    def test_validator_flags_malformed_events(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]
        assert validate_chrome_trace({}) == ["trace has no traceEvents list"]
        problems = validate_chrome_trace({
            "traceEvents": [
                {"name": "", "ph": "Z", "ts": -1, "pid": "x", "tid": 0},
                {"name": "ok", "ph": "X", "ts": 0, "pid": 1, "tid": 1},
            ]
        })
        assert any("missing or empty name" in p for p in problems)
        assert any("unsupported phase" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("pid is not an integer" in p for p in problems)
        assert any("complete event has bad dur" in p for p in problems)


class TestDisabledMode:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("ignored", detail=1) as span:
            span.set(more=2)
        assert NULL_TRACER.records() == []
        assert validate_chrome_trace(NULL_TRACER.to_chrome_trace()) == []

    def test_null_tracer_reuses_one_span_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b") is _NULL_SPAN
        assert isinstance(NULL_TRACER, NullTracer)

    def test_obs_span_is_noop_when_disabled(self):
        with obs_span("outside-any-scope") as span:
            assert span is _NULL_SPAN

    def test_obs_span_records_inside_scope(self):
        with observed() as scope:
            with obs_span("scoped", run="x"):
                pass
        (record,) = scope.tracer.records()
        assert record["name"] == "scoped"
        assert record["args"] == {"run": "x"}


class TestProfileProbe:
    def test_measures_wall_cpu_and_memory(self):
        with ProfileProbe() as probe:
            sum(range(100_000))
            buf = bytearray(2_000_000)
            del buf
        assert probe.wall_s >= 0.0
        assert probe.cpu_s >= 0.0
        assert probe.max_rss_kb is None or probe.max_rss_kb > 0
        # The 2 MB bytearray must show up in the allocation peak.
        assert probe.py_alloc_peak_kb >= 1_000

    def test_as_dict_validates(self):
        with ProfileProbe(trace_allocations=False) as probe:
            pass
        payload = probe.as_dict()
        assert validate_profile(payload)
        assert payload["py_alloc_peak_kb"] is None

    def test_validate_profile_rejects_malformed(self):
        assert not validate_profile(None)
        assert not validate_profile({"wall_s": 0.1})  # cpu_s missing
        assert not validate_profile({"wall_s": "fast", "cpu_s": 0.0})
        assert not validate_profile(
            {"wall_s": 0.1, "cpu_s": 0.1, "max_rss_kb": "big"}
        )
        assert validate_profile(
            {"wall_s": 0.1, "cpu_s": 0.1, "max_rss_kb": None,
             "py_alloc_peak_kb": 12}
        )


class TestEventLog:
    def test_emit_and_snapshot(self):
        log = EventLog()
        log.emit("warning", "cache.corrupt_entry", key="abc", reason="json")
        snapshot = log.snapshot()
        assert snapshot["dropped"] == 0
        (event,) = snapshot["events"]
        assert event["level"] == "warning"
        assert event["fields"] == {"key": "abc", "reason": "json"}
        assert log.count() == 1
        assert log.count("warning") == 1
        assert log.count("error") == 0

    def test_capacity_bound_drops_oldest(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("info", f"e{i}")
        snapshot = log.snapshot()
        assert [e["name"] for e in snapshot["events"]] == ["e3", "e4"]
        assert snapshot["dropped"] == 3

    def test_absorb_folds_worker_events(self):
        parent, worker = EventLog(), EventLog()
        worker.emit("warning", "w1", node=1)
        parent.emit("info", "local")
        parent.absorb(worker.snapshot())
        assert parent.count() == 2
        assert parent.count("warning") == 1
        parent.absorb("not-a-snapshot")  # ignored, not an error
        assert parent.count() == 2
