"""Scalar-vs-batched PHY equivalence harness (hypothesis property tests).

The contract under test (see ``docs/PERFORMANCE.md``): the float64
batch kernels in ``repro.phy.batch`` are **bit-identical** to the
scalar reference in ``repro.phy.fm0`` -- encoded levels, waveforms,
matched-filter decisions and end-to-end Monte-Carlo BERs all match
exactly, across random seeds, SNRs, frame lengths and trial counts,
including degenerate shapes (0 trials, 1 symbol).  The float32 fast
path is held to a documented tolerance instead (its matched-filter
scores carry ~1e-7 relative error, so bit decisions may differ on
razor-thin ties).

CI runs this file under multiple ``PYTHONHASHSEED`` values (stage 8 of
scripts/ci.sh): any divergence beyond the documented tolerances is a
release blocker.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.link.simulation import UplinkBasebandSimulator
from repro.phy import (
    Fm0BatchDecoder,
    Fm0Decoder,
    bipolar,
    default_engine,
    encode_baseband_batch,
    encode_levels_batch,
    fm0_encode_baseband,
    fm0_encode_levels,
    matched_filter_bank,
    resolve_engine,
    use_engine,
)
from repro.phy.batch import EngineError, count_bit_errors

bit_frames = st.lists(st.integers(0, 1), min_size=1, max_size=96)
sps_strategy = st.sampled_from([2, 4, 6, 10, 16])
levels_strategy = st.sampled_from([0, 1])


def random_bit_matrix(seed, trials, symbols):
    return np.random.default_rng(seed).integers(0, 2, size=(trials, symbols))


class TestEncodeEquivalence:
    @given(bits=bit_frames, initial=levels_strategy)
    @settings(max_examples=120, deadline=None)
    def test_levels_match_scalar_exactly(self, bits, initial):
        scalar = fm0_encode_levels(bits, initial_level=initial)
        batch = encode_levels_batch(bits, initial_level=initial)
        assert batch.shape == (1, len(bits), 2)
        assert [tuple(pair) for pair in batch[0].tolist()] == scalar

    @given(bits=bit_frames, sps=sps_strategy, initial=levels_strategy)
    @settings(max_examples=120, deadline=None)
    def test_baseband_bit_identical(self, bits, sps, initial):
        scalar = fm0_encode_baseband(bits, sps, initial_level=initial)
        batch = encode_baseband_batch(bits, sps, initial_level=initial)
        # Bit-identical, not just allclose: same values, same dtype.
        assert batch.dtype == scalar.dtype == np.float64
        assert np.array_equal(batch[0], scalar)

    @given(
        seed=st.integers(0, 2**31),
        trials=st.integers(1, 12),
        symbols=st.integers(1, 48),
        sps=sps_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_matrix_rows_match_per_frame_encode(
        self, seed, trials, symbols, sps
    ):
        matrix = random_bit_matrix(seed, trials, symbols)
        batch = encode_baseband_batch(matrix, sps)
        for row in range(trials):
            assert np.array_equal(
                batch[row], fm0_encode_baseband(list(matrix[row]), sps)
            )

    def test_degenerate_shapes(self):
        assert encode_levels_batch(np.zeros((0, 5), dtype=int)).shape == (0, 5, 2)
        assert encode_levels_batch(np.zeros((3, 0), dtype=int)).shape == (3, 0, 2)
        assert encode_baseband_batch(np.zeros((0, 5), dtype=int), 4).shape == (0, 20)
        one = encode_baseband_batch([1], 4)
        assert np.array_equal(one[0], fm0_encode_baseband([1], 4))

    def test_rejects_what_the_scalar_rejects(self):
        with pytest.raises(EncodingError):
            encode_levels_batch([0, 2, 1])
        with pytest.raises(EncodingError):
            encode_levels_batch([0, 1], initial_level=7)
        with pytest.raises(EncodingError):
            encode_baseband_batch([0, 1], 3)
        with pytest.raises(EncodingError):
            encode_levels_batch(np.zeros((2, 2, 2), dtype=int))


class TestFilterBank:
    @given(sps=sps_strategy)
    @settings(max_examples=10, deadline=None)
    def test_bank_matches_scalar_basis_stacking(self, sps):
        decoder = Fm0Decoder(samples_per_symbol=sps)
        stacked = np.stack(
            [
                decoder._bases[0][0],
                decoder._bases[0][1],
                decoder._bases[1][0],
                decoder._bases[1][1],
            ]
        )
        assert np.array_equal(matched_filter_bank(sps), stacked)

    def test_bank_is_cached_and_frozen(self):
        bank = matched_filter_bank(10)
        assert bank is matched_filter_bank(10)
        with pytest.raises(ValueError):
            bank[0, 0] = 5.0


class TestDecodeEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        trials=st.integers(1, 10),
        symbols=st.integers(1, 40),
        sps=sps_strategy,
        snr_db=st.floats(min_value=-4.0, max_value=14.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_noisy_decode_bit_identical(
        self, seed, trials, symbols, sps, snr_db
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, size=(trials, symbols))
        clean = bipolar(encode_baseband_batch(matrix, sps))
        sigma = 10.0 ** (-snr_db / 20.0)
        noisy = clean + rng.normal(0.0, sigma, size=clean.shape)

        batch_bits = Fm0BatchDecoder(samples_per_symbol=sps).decode(noisy)
        scalar = Fm0Decoder(samples_per_symbol=sps)
        for row in range(trials):
            assert batch_bits[row].tolist() == scalar.decode(noisy[row])

    @given(
        seed=st.integers(0, 2**31),
        symbols=st.integers(1, 64),
        initial=levels_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_clean_roundtrip_recovers_payload(self, seed, symbols, initial):
        matrix = random_bit_matrix(seed, 3, symbols)
        clean = bipolar(encode_baseband_batch(matrix, 10, initial_level=initial))
        decoded = Fm0BatchDecoder(
            samples_per_symbol=10, initial_level=initial
        ).decode(clean)
        assert np.array_equal(decoded, matrix)

    def test_degenerate_shapes(self):
        decoder = Fm0BatchDecoder(samples_per_symbol=4)
        assert decoder.decode(np.zeros((0, 12))).shape == (0, 3)
        assert decoder.decode(np.zeros((5, 0))).shape == (5, 0)
        one_symbol = bipolar(encode_baseband_batch([[1]], 4))
        assert decoder.decode(one_symbol).tolist() == [[1]]

    def test_single_frame_1d_input(self):
        wave = bipolar(fm0_encode_baseband([1, 0, 1], 6))
        assert Fm0BatchDecoder(samples_per_symbol=6).decode(wave).tolist() == [
            [1, 0, 1]
        ]

    def test_rejects_bad_shapes(self):
        decoder = Fm0BatchDecoder(samples_per_symbol=4)
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((2, 10)))  # not a whole symbol count
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((2, 2, 4)))
        with pytest.raises(DecodingError):
            Fm0BatchDecoder(samples_per_symbol=5)
        with pytest.raises(DecodingError):
            Fm0BatchDecoder(samples_per_symbol=4, initial_level=3)
        with pytest.raises(DecodingError):
            Fm0BatchDecoder(samples_per_symbol=4, dtype=np.int32)

    @given(
        seed=st.integers(0, 2**31),
        snr_db=st.floats(min_value=4.0, max_value=14.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_float32_fast_path_tolerance(self, seed, snr_db):
        """float32 scores may flip only razor-thin ties.

        Documented tolerance: away from exact score ties the float32
        decisions match float64; we assert the disagreement rate stays
        below 1% of bits at moderate SNR (observed: ~0).
        """
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, size=(8, 50))
        clean = bipolar(encode_baseband_batch(matrix, 10))
        noisy = clean + rng.normal(0.0, 10.0 ** (-snr_db / 20.0), clean.shape)
        b64 = Fm0BatchDecoder(samples_per_symbol=10).decode(noisy)
        b32 = Fm0BatchDecoder(samples_per_symbol=10, dtype=np.float32).decode(
            noisy
        )
        disagreement = np.count_nonzero(b64 != b32) / b64.size
        assert disagreement < 0.01


class TestEngineDispatch:
    def test_default_engine_is_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_PHY_ENGINE", raising=False)
        assert default_engine() == "batch"

    def test_env_var_and_context_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHY_ENGINE", "scalar")
        assert default_engine() == "scalar"
        with use_engine("batch-float32"):
            assert default_engine() == "batch-float32"
            assert resolve_engine("scalar") == "scalar"
        assert default_engine() == "scalar"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(EngineError):
            resolve_engine("vector")
        monkeypatch.setenv("REPRO_PHY_ENGINE", "turbo")
        with pytest.raises(EngineError):
            default_engine()

    def test_count_bit_errors_shape_mismatch(self):
        with pytest.raises(DecodingError):
            count_bit_errors(np.zeros(3), np.zeros(4))
        assert count_bit_errors([0, 1, 1], [1, 1, 0]) == 2
        assert isinstance(count_bit_errors([0], [0]), int)


class TestSimulatorEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        snr_db=st.floats(min_value=-2.0, max_value=10.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_measure_ber_byte_identical(self, seed, snr_db):
        """The headline contract: same seed, same BER, to the last bit."""
        with use_engine("scalar"):
            scalar = UplinkBasebandSimulator(seed=seed).measure_ber(
                snr_db, total_bits=1_200, packet_bits=60
            )
        with use_engine("batch"):
            batch = UplinkBasebandSimulator(seed=seed).measure_ber(
                snr_db, total_bits=1_200, packet_bits=60
            )
        assert scalar == batch  # byte-identical, no tolerance

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_run_batch_matches_sequential_runs(self, seed):
        rng = np.random.default_rng(seed)
        payloads = [list(rng.integers(0, 2, size=48)) for _ in range(12)]
        with use_engine("scalar"):
            sequential = [
                UplinkBasebandSimulator(seed=seed).run(p, 1e3, 4.0)
                for p in [payloads[0]]
            ]
        # Same-simulator comparison: one simulator per engine, same seed.
        a = UplinkBasebandSimulator(seed=seed)
        b = UplinkBasebandSimulator(seed=seed)
        with use_engine("scalar"):
            expected = [a.run(p, 1e3, 4.0) for p in payloads]
        got = b.run_batch(payloads, 1e3, 4.0, engine="batch")
        assert got == expected
        assert sequential[0] == expected[0]

    def test_run_batch_rejects_ragged_frames_under_batch_engine(self):
        sim = UplinkBasebandSimulator(seed=1)
        with pytest.raises(DecodingError):
            sim.run_batch([[1, 0], [1, 0, 1]], 1e3, 6.0, engine="batch")

    def test_run_batch_scalar_engine_allows_ragged_frames(self):
        sim = UplinkBasebandSimulator(seed=1)
        results = sim.run_batch([[1, 0], [1, 0, 1]], 1e3, 6.0, engine="scalar")
        assert [r.bits_sent for r in results] == [2, 3]

    def test_float32_engine_ber_within_tolerance(self):
        """Documented fast-path bound: |BER difference| <= 0.005."""
        with use_engine("batch"):
            exact = UplinkBasebandSimulator(seed=5).measure_ber(
                5.0, total_bits=4_000
            )
        with use_engine("batch-float32"):
            fast = UplinkBasebandSimulator(seed=5).measure_ber(
                5.0, total_bits=4_000
            )
        assert abs(exact - fast) <= 0.005

    def test_simulator_engine_field_wins_over_ambient(self):
        with use_engine("batch"):
            sim = UplinkBasebandSimulator(seed=9, engine="scalar")
            ber_forced = sim.measure_ber(3.0, total_bits=600, packet_bits=60)
        with use_engine("scalar"):
            ber_ref = UplinkBasebandSimulator(seed=9).measure_ber(
                3.0, total_bits=600, packet_bits=60
            )
        assert ber_forced == ber_ref
