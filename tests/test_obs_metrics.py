"""Tests for the metrics registry (obs.metrics) and the obs facade."""

import threading

import pytest

from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    NULL_METRIC,
    activate_obs,
    obs_counter,
    obs_enabled,
    obs_event,
    obs_gauge,
    obs_histogram,
    observed,
    parse_series,
    render_snapshot_text,
    restore_obs,
    series_name,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObsError):
            counter.inc(-1.0)

    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc()
        assert registry.counter("c").value == 2.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ObsError):
            registry.gauge("c")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(0.5)
        assert gauge.value == 11.5

    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0)
        gauge.set(-4.0)
        assert gauge.value == -4.0


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 22.5
        assert summary["min"] == 0.5
        assert summary["max"] == 20.0

    def test_buckets_are_cumulative(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 2.0, 20.0):
            hist.observe(value)
        buckets = dict(
            (str(bound), count) for bound, count in hist.summary()["buckets"]
        )
        assert buckets["1.0"] == 2  # <= 1.0
        assert buckets["10.0"] == 3  # <= 10.0
        assert buckets["+inf"] == 4

    def test_empty_buckets_rejected(self):
        with pytest.raises(ObsError):
            MetricsRegistry().histogram("h", buckets=())


class TestLabels:
    def test_children_are_separate_series(self):
        registry = MetricsRegistry()
        base = registry.counter("reqs")
        base.labels(node="1").inc(3)
        base.labels(node="2").inc(5)
        assert base.labels(node="1").value == 3
        assert base.labels(node="2").value == 5
        assert base.value == 0.0  # parent untouched

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.labels(a="1", b="2").inc()
        counter.labels(b="2", a="1").inc()
        assert counter.labels(a="1", b="2").value == 2.0

    def test_series_name_round_trip(self):
        name = series_name("c", (("a", "1"), ("b", "2")))
        assert name == "c{a=1,b=2}"
        assert parse_series(name) == ("c", (("a", "1"), ("b", "2")))
        assert parse_series("bare") == ("bare", ())

    def test_labelled_series_appear_in_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(node="7").inc(2)
        assert registry.snapshot()["counters"] == {"c": 0.0, "c{node=7}": 2.0}


class TestConcurrency:
    def test_concurrent_increments_from_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(0.5,))
        per_thread, threads = 5_000, 8

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(1.0)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == per_thread * threads
        assert hist.count == per_thread * threads
        assert hist.sum == float(per_thread * threads)


class TestSnapshotMerge:
    def test_counters_add_and_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 5.0
        assert a.gauge("g").value == 9.0

    def test_histograms_merge_counts_and_extremes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(0.2)
        b.histogram("h").observe(7.0)
        b.histogram("h").observe(0.004)
        a.merge_snapshot(b.snapshot())
        summary = a.histogram("h").summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(7.204)
        assert summary["min"] == 0.004
        assert summary["max"] == 7.0

    def test_labelled_series_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").labels(k="x").inc()
        b.counter("c").labels(k="x").inc(4)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").labels(k="x").value == 5.0


class TestExposition:
    def test_render_text_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("coverage").set(0.75)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "counter hits 3" in text
        assert "gauge coverage 0.75" in text
        assert "histogram lat count=1" in text

    def test_render_snapshot_text_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        import json

        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert "counter c 1" in render_snapshot_text(snapshot)


class TestFacade:
    def test_disabled_by_default_hands_out_null_metric(self):
        assert not obs_enabled()
        assert obs_counter("x") is NULL_METRIC
        assert obs_gauge("x") is NULL_METRIC
        assert obs_histogram("x") is NULL_METRIC
        # All mutators are harmless no-ops.
        obs_counter("x").inc()
        obs_gauge("x").set(3.0)
        obs_histogram("x").observe(1.0)
        obs_event("warning", "nothing.stored", detail="dropped")

    def test_activation_installs_live_metrics(self):
        with observed() as scope:
            assert obs_enabled()
            obs_counter("c").inc(2)
            obs_event("info", "hello", who="test")
            assert scope.registry.counter("c").value == 2.0
            assert scope.events.count() == 1
        assert not obs_enabled()

    def test_activations_nest_like_a_stack(self):
        outer = activate_obs()
        obs_counter("c").inc()
        inner = activate_obs()
        obs_counter("c").inc(10)
        assert inner.registry.counter("c").value == 10.0
        restore_obs(inner)
        assert obs_counter("c").value == 1.0
        restore_obs(outer)
        assert not obs_enabled()

    def test_scope_export_includes_events(self):
        with observed() as scope:
            obs_counter("c").inc()
            obs_event("warning", "w", a="b")
            payload = scope.export()
        assert payload["counters"] == {"c": 1.0}
        assert payload["events"]["events"][0]["name"] == "w"
