"""Unit tests for the image-source multipath model."""

import numpy as np
import pytest

from repro.acoustics import Arrival, ImageSourceModel, StructureGeometry, paper_structures
from repro.errors import AcousticsError
from repro.materials import get_concrete

NC = get_concrete("NC").medium


def make_wall(thickness=0.2, length=10.0):
    return StructureGeometry("wall", length=length, thickness=thickness, medium=NC)


@pytest.fixture
def model():
    return ImageSourceModel(make_wall(), frequency=230e3, max_bounces=10)


class TestGeometry:
    def test_paper_structures(self):
        names = [s.name for s in paper_structures()]
        assert names == [
            "S1 slab",
            "S2 column",
            "S3 common wall",
            "S4 protective wall",
        ]

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(AcousticsError):
            StructureGeometry("bad", length=0.0, thickness=0.2, medium=NC)


class TestArrivals:
    def test_direct_path_first(self, model):
        arrivals = model.arrivals((0.0, 0.1), (1.0, 0.1))
        direct = arrivals[0]
        assert direct.bounces == 0
        assert direct.path_length == pytest.approx(1.0)
        assert direct.delay == pytest.approx(1.0 / NC.cs)

    def test_sorted_by_delay(self, model):
        arrivals = model.arrivals((0.0, 0.1), (1.0, 0.1))
        delays = [a.delay for a in arrivals]
        assert delays == sorted(delays)

    def test_count_matches_orders(self, model):
        arrivals = model.arrivals((0.0, 0.1), (1.0, 0.1))
        assert len(arrivals) == 2 * model.max_bounces + 1

    def test_higher_orders_weaker(self, model):
        arrivals = model.arrivals((0.0, 0.1), (1.0, 0.1))
        direct = max(arrivals, key=lambda a: a.amplitude)
        assert direct.bounces == 0

    def test_rejects_point_outside_thickness(self, model):
        with pytest.raises(AcousticsError):
            model.arrivals((0.0, 0.5), (1.0, 0.1))

    def test_near_total_face_reflection(self, model):
        # The Eqn. 1 concrete/air boundary keeps ~99.98 % amplitude.
        assert model.face_reflection == pytest.approx(1.0, abs=1e-3)


class TestGains:
    def test_power_gain_positive(self, model):
        assert model.power_gain((0.0, 0.1), (1.5, 0.1)) > 0.0

    def test_power_gain_decreases_with_distance(self, model):
        near = model.power_gain((0.0, 0.1), (0.5, 0.1))
        far = model.power_gain((0.0, 0.1), (3.0, 0.1))
        assert near > far

    def test_complex_gain_bounded_by_incoherent_sum(self, model):
        source, receiver = (0.0, 0.1), (1.0, 0.15)
        coherent = abs(model.complex_gain(source, receiver))
        amplitude_sum = sum(
            a.amplitude for a in model.arrivals(source, receiver)
        )
        assert coherent <= amplitude_sum + 1e-12

    def test_margin_receives_more_power_than_middle(self):
        # Fig. 18's mechanism: margins are closer to their images.
        wall = make_wall(thickness=1.0)
        model = ImageSourceModel(wall, frequency=230e3, max_bounces=20)
        margin = model.power_gain((0.0, 0.02), (1.0, 0.05))
        middle = model.power_gain((0.0, 0.02), (1.0, 0.5))
        assert margin > middle

    def test_thin_wall_guides_better_far_away(self):
        thin = ImageSourceModel(make_wall(0.2), frequency=230e3, max_bounces=30)
        thick = ImageSourceModel(make_wall(0.7), frequency=230e3, max_bounces=30)
        assert thin.power_gain((0.0, 0.1), (4.0, 0.1)) > thick.power_gain(
            (0.0, 0.35), (4.0, 0.35)
        )


class TestImpulseResponse:
    def test_taps_positive_and_normalised(self, model):
        h = model.impulse_response((0.0, 0.1), (1.0, 0.1), sample_rate=1e6)
        assert h.size > 0
        assert np.all(h >= 0.0)
        assert np.max(h) > 0.0

    def test_first_tap_at_direct_delay(self, model):
        h = model.impulse_response((0.0, 0.1), (1.0, 0.1), sample_rate=1e6)
        first = np.flatnonzero(h)[0]
        assert first == pytest.approx(round(1.0 / NC.cs * 1e6), abs=1)

    def test_rejects_bad_sample_rate(self, model):
        with pytest.raises(AcousticsError):
            model.impulse_response((0.0, 0.1), (1.0, 0.1), sample_rate=0.0)


class TestDtypeContracts:
    """Batching surfaced these: scalar Arrival fields must stay plain
    Python floats/ints even when callers hand in numpy scalars (grid
    sweeps build coordinates with np.linspace)."""

    def test_arrival_fields_plain_python_for_numpy_inputs(self):
        wall = make_wall()
        model = ImageSourceModel(wall, frequency=np.float64(230e3), max_bounces=3)
        source = (np.float64(0.0), np.float64(0.1))
        receiver = np.array([1.0, 0.1])
        for arrival in model.arrivals(source, receiver, speed=np.float64(NC.cs)):
            assert type(arrival.delay) is float
            assert type(arrival.amplitude) is float
            assert type(arrival.path_length) is float
            assert type(arrival.bounces) is int

    def test_numpy_inputs_match_python_inputs(self):
        wall = make_wall()
        a = ImageSourceModel(wall, frequency=230e3, max_bounces=5)
        b = ImageSourceModel(wall, frequency=np.float64(230e3), max_bounces=np.int64(5))
        assert a.arrivals((0.0, 0.1), (1.0, 0.1)) == b.arrivals(
            (np.float64(0.0), np.float64(0.1)), np.array([1.0, 0.1])
        )

    def test_model_attributes_coerced(self):
        model = ImageSourceModel(
            make_wall(), frequency=np.float64(230e3), max_bounces=np.int64(4)
        )
        assert type(model.frequency) is float
        assert type(model.max_bounces) is int
