"""Unit tests for the units/constants helpers."""

import math

import pytest

from repro import units


class TestDecibels:
    def test_db_of_power_ratio(self):
        assert units.db(100.0) == pytest.approx(20.0)
        assert units.db(1.0) == pytest.approx(0.0)

    def test_db_amplitude_doubles_exponent(self):
        assert units.db_amplitude(10.0) == pytest.approx(20.0)

    def test_round_trip_power(self):
        assert units.from_db(units.db(42.0)) == pytest.approx(42.0)

    def test_round_trip_amplitude(self):
        assert units.from_db_amplitude(units.db_amplitude(0.37)) == pytest.approx(0.37)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)
        with pytest.raises(ValueError):
            units.db_amplitude(-1.0)


class TestConversions:
    def test_khz(self):
        assert units.khz(230.0) == 230e3

    def test_mhz(self):
        assert units.mhz(1.0) == 1e6

    def test_lengths(self):
        assert units.mm(45.0) == pytest.approx(0.045)
        assert units.cm(15.0) == pytest.approx(0.15)

    def test_areas_volumes(self):
        assert units.mm2(0.78) == pytest.approx(0.78e-6)
        assert units.mm3(2.76) == pytest.approx(2.76e-9)

    def test_pressures(self):
        assert units.mpa(4.3) == pytest.approx(4.3e6)
        assert units.gpa(2.2) == pytest.approx(2.2e9)

    def test_rates_powers(self):
        assert units.kbps(13.0) == 13e3
        assert units.microwatt(414.0) == pytest.approx(414e-6)

    def test_angles(self):
        assert units.deg(math.pi) == pytest.approx(180.0)
        assert units.rad(90.0) == pytest.approx(math.pi / 2.0)


class TestWavelength:
    def test_paper_p_wave_in_concrete(self):
        # Cp = 3338 m/s at 230 kHz -> ~14.5 mm.
        assert units.wavelength(3338.0, 230e3) == pytest.approx(0.01451, rel=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            units.wavelength(3338.0, 0.0)
        with pytest.raises(ValueError):
            units.wavelength(-1.0, 230e3)


class TestConstants:
    def test_atmospheric_pressure_matches_paper(self):
        assert units.ATMOSPHERIC_PRESSURE == pytest.approx(101_325.0)

    def test_gravity_is_standard(self):
        assert units.GRAVITY == pytest.approx(9.80665)
