"""Golden-regression tests: every experiment pinned at its seed.

Each registered experiment runs with its registry ``quick_params`` at
the declared seed; the flattened scalar snapshot (plus the headline
``extra.*`` metrics) must match the checked-in ``tests/goldens/*.json``
within tolerance.  A silent numeric drift anywhere in the simulators,
materials DB or DSP chain fails here first.

After an *intentional* change, regenerate with::

    PYTHONPATH=src python scripts/regen_goldens.py

and review the golden diff (see EXPERIMENTS.md).
"""

import json
from pathlib import Path

import pytest

from repro.runtime import (
    compare_snapshots,
    experiment_registry,
    golden_snapshot,
    to_jsonable,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGISTRY = experiment_registry()

#: Looser relative tolerance for the Monte-Carlo experiments, where a
#: platform-level float quirk can flip a single bit decision; the
#: analytic sweeps must match much tighter.
REL_TOL = {
    "fig15": 1e-6,
    "fig17": 1e-6,
    "fig18": 1e-6,
    "fig22": 1e-6,
    "fig24": 1e-6,
    "downlink_reliability": 1e-6,
    "appendix_sensors": 1e-6,
    "fig21": 1e-6,
}
DEFAULT_REL_TOL = 1e-9


def _load_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(
            f"no golden for {name}; run scripts/regen_goldens.py {name}"
        )
    return json.loads(path.read_text())


def test_goldens_cover_every_registered_experiment():
    on_disk = sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))
    assert on_disk == sorted(REGISTRY), (
        "goldens out of sync with the registry; run scripts/regen_goldens.py"
    )


def test_golden_count_matches_the_paper_scope():
    assert len(REGISTRY) == 20  # 18 paper modules + fault sweep + campaign


@pytest.mark.parametrize("name", list(REGISTRY))
def test_golden(name):
    spec = REGISTRY[name]
    golden = _load_golden(name)
    params = spec.params(quick=True)
    assert golden["seed"] == params["seed"], "golden pinned at a stale seed"
    assert golden["params"] == to_jsonable(params), (
        f"golden for {name} was generated with different parameters; "
        "run scripts/regen_goldens.py"
    )
    result = spec.execute(quick=True)
    fresh = golden_snapshot(name, result)
    problems = compare_snapshots(
        golden["scalars"], fresh, rel_tol=REL_TOL.get(name, DEFAULT_REL_TOL)
    )
    if problems:
        detail = "\n".join(f"  {k}: {v}" for k, v in list(problems.items())[:20])
        pytest.fail(
            f"{name} drifted from its golden ({len(problems)} path(s)):\n"
            f"{detail}\nIf intentional, run scripts/regen_goldens.py {name}"
        )
