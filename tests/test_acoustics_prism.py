"""Unit tests for the wave-prism designer (Fig. 3, Fig. 19)."""

import math

import pytest

from repro.acoustics import WavePrism
from repro.errors import DesignError
from repro.materials import PLA, get_concrete

NC = get_concrete("NC").medium


@pytest.fixture
def prism():
    return WavePrism(PLA, NC)


class TestWavePrism:
    def test_default_angle_is_60_degrees(self, prism):
        assert math.degrees(prism.incident_angle) == pytest.approx(60.0)

    def test_requires_concrete(self):
        with pytest.raises(DesignError):
            WavePrism(PLA, None)

    def test_rejects_out_of_range_angle(self):
        with pytest.raises(DesignError):
            WavePrism(PLA, NC, incident_angle=math.radians(95.0))

    def test_critical_angles_match_paper(self, prism):
        low, high = prism.critical_angles
        assert math.degrees(low) == pytest.approx(34.0, abs=0.5)
        assert math.degrees(high) == pytest.approx(73.0, abs=1.5)

    def test_default_is_inside_s_only_window(self, prism):
        assert prism.in_s_only_window

    def test_shallow_angle_outside_window(self):
        prism = WavePrism(PLA, NC, incident_angle=math.radians(15.0))
        assert not prism.in_s_only_window


class TestInjectionQuality:
    def test_s_only_at_60_degrees(self, prism):
        quality = prism.injection_quality()
        assert quality.s_only
        assert quality.mode_purity == pytest.approx(1.0, abs=1e-6)

    def test_mixed_modes_at_20_degrees(self, prism):
        quality = prism.injection_quality(math.radians(20.0))
        assert not quality.s_only
        assert quality.mode_purity < 0.9

    def test_gain_peaks_inside_window(self, prism):
        inside = prism.injection_quality(math.radians(60.0)).effective_snr_gain
        below = prism.injection_quality(math.radians(15.0)).effective_snr_gain
        beyond = prism.injection_quality(math.radians(78.0)).effective_snr_gain
        assert inside > below
        assert inside > beyond
        assert beyond == pytest.approx(0.0, abs=1e-9)

    def test_injected_energy_bounded(self, prism):
        for deg in (10.0, 40.0, 60.0, 70.0):
            quality = prism.injection_quality(math.radians(deg))
            assert 0.0 <= quality.injected_energy <= 1.0


class TestRecommendAngle:
    def test_recommendation_in_window(self, prism):
        low, high = prism.critical_angles
        best = prism.recommend_angle()
        assert low <= best <= high

    def test_recommendation_near_paper_default(self, prism):
        # The paper runs its reader at 60 deg; our optimum should sit in
        # the 45-70 deg plateau.
        best = math.degrees(prism.recommend_angle())
        assert 45.0 <= best <= 70.0

    def test_requires_two_samples(self, prism):
        with pytest.raises(DesignError):
            prism.recommend_angle(samples=1)


class TestSweep:
    def test_sweep_matches_single_calls(self, prism):
        swept = prism.sweep([15.0, 60.0])
        single = prism.injection_quality(math.radians(60.0))
        assert swept[1].effective_snr_gain == pytest.approx(
            single.effective_snr_gain
        )

    def test_sweep_length(self, prism):
        assert len(prism.sweep([0.0, 30.0, 60.0])) == 3
