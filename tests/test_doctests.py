"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.units
import repro.phy.pie
import repro.phy.fm0

MODULES = [repro.units, repro.phy.pie, repro.phy.fm0]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
