"""Scalar-vs-batched acoustics equivalence harness (hypothesis tests).

Contract (see ``docs/PERFORMANCE.md``): the broadcast raytracer in
``repro.acoustics.batch`` matches the scalar ``ImageSourceModel`` to a
relative tolerance of ``1e-12`` -- not byte-exactly, because
``np.hypot``/vectorized ``**`` differ from ``math.hypot``/scalar ``**``
by up to 1 ulp and the gain sums reduce in image order rather than
delay order.  Structural quantities (bounce counts, arrival counts,
tap indices away from half-sample boundaries) must match exactly.
Distance-vectorized attenuation is exact; frequency-vectorized
attenuation is 1-ulp close.

Tolerances here are the documented ones; loosening them requires a
docs/PERFORMANCE.md edit and review.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    ImageSourceModel,
    SpreadingModel,
    StructureGeometry,
    attenuation_db_batch,
    complex_gains,
    complex_gains_vs_frequency,
    impulse_responses,
    power_gains,
    spreading_gains,
    trace_arrivals,
)
from repro.errors import AcousticsError
from repro.materials import get_concrete

#: Documented scalar-vs-batch tolerance for float reductions.
RTOL = 1e-12
#: Looser bound for multi-term coherent sums (cancellation amplifies
#: the per-term ulp noise when arrivals nearly cancel).
SUM_ATOL = 1e-9

NC = get_concrete("NC").medium

thickness_strategy = st.floats(min_value=0.05, max_value=1.0)
frequency_strategy = st.floats(min_value=20e3, max_value=500e3)
bounce_strategy = st.integers(min_value=0, max_value=24)


def make_model(thickness, frequency, max_bounces):
    geometry = StructureGeometry(
        "prop", length=20.0, thickness=thickness, medium=NC
    )
    return ImageSourceModel(geometry, frequency, max_bounces=max_bounces)


def random_points(rng, thickness, count):
    xs = rng.uniform(0.05, 8.0, size=count)
    ys = rng.uniform(0.0, thickness, size=count)
    return np.column_stack([xs, ys])


class TestTraceEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        thickness=thickness_strategy,
        frequency=frequency_strategy,
        max_bounces=bounce_strategy,
        receivers=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_arrivals_match_scalar_within_rtol(
        self, seed, thickness, frequency, max_bounces, receivers
    ):
        rng = np.random.default_rng(seed)
        model = make_model(thickness, frequency, max_bounces)
        source = (0.0, float(rng.uniform(0.0, thickness)))
        grid = random_points(rng, thickness, receivers)
        batch = trace_arrivals(model, source, grid)
        assert batch.delays.shape == (receivers, 2 * max_bounces + 1)
        for row in range(receivers):
            scalar = model.arrivals(source, tuple(grid[row]))
            delays, amplitudes, bounces, paths = batch.sorted_row(row)
            assert len(scalar) == delays.size
            assert [a.bounces for a in scalar] == bounces.tolist()
            np.testing.assert_allclose(
                delays, [a.delay for a in scalar], rtol=RTOL
            )
            np.testing.assert_allclose(
                amplitudes, [a.amplitude for a in scalar], rtol=RTOL
            )
            np.testing.assert_allclose(
                paths, [a.path_length for a in scalar], rtol=RTOL
            )

    @given(
        thickness=thickness_strategy,
        frequency=frequency_strategy,
    )
    @settings(max_examples=30, deadline=None)
    def test_single_path_is_direct_ray(self, thickness, frequency):
        """Degenerate path count: max_bounces=0 leaves the direct ray."""
        model = make_model(thickness, frequency, 0)
        source = (0.0, thickness / 2.0)
        receiver = (1.0, thickness / 2.0)
        batch = trace_arrivals(model, source, receiver)
        assert batch.n_paths == 1
        [scalar] = model.arrivals(source, receiver)
        np.testing.assert_allclose(
            batch.delays[0, 0], scalar.delay, rtol=RTOL
        )

    def test_zero_receivers(self):
        model = make_model(0.2, 230e3, 5)
        batch = trace_arrivals(model, (0.0, 0.1), np.zeros((0, 2)))
        assert batch.delays.shape == (0, 11)
        assert complex_gains(model, (0.0, 0.1), np.zeros((0, 2))).shape == (0,)
        assert impulse_responses(
            model, (0.0, 0.1), np.zeros((0, 2)), 1e6
        ).shape[0] == 0

    def test_validation_matches_scalar(self):
        model = make_model(0.2, 230e3, 5)
        with pytest.raises(AcousticsError):
            trace_arrivals(model, (0.0, 0.5), [(1.0, 0.1)])  # source depth
        with pytest.raises(AcousticsError):
            trace_arrivals(model, (0.0, 0.1), [(1.0, 0.5)])  # receiver depth
        with pytest.raises(AcousticsError):
            trace_arrivals(model, (0.0, 0.1), [(1.0, 0.1, 3.0)])


class TestGainEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        thickness=thickness_strategy,
        frequency=frequency_strategy,
        max_bounces=bounce_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_complex_and_power_gains(
        self, seed, thickness, frequency, max_bounces
    ):
        rng = np.random.default_rng(seed)
        model = make_model(thickness, frequency, max_bounces)
        source = (0.0, float(rng.uniform(0.0, thickness)))
        grid = random_points(rng, thickness, 4)
        coherent = complex_gains(model, source, grid)
        incoherent = power_gains(model, source, grid)
        for row in range(4):
            ref_c = model.complex_gain(source, tuple(grid[row]))
            ref_p = model.power_gain(source, tuple(grid[row]))
            assert coherent[row] == pytest.approx(
                ref_c, rel=RTOL, abs=SUM_ATOL * max(1.0, abs(ref_c))
            )
            assert incoherent[row] == pytest.approx(ref_p, rel=1e-11)

    @given(
        thickness=thickness_strategy,
        frequency=frequency_strategy,
        n_freqs=st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_frequency_sweep_matches_per_frequency_models(
        self, thickness, frequency, n_freqs
    ):
        model = make_model(thickness, frequency, 8)
        source = (0.0, thickness * 0.3)
        receiver = (1.5, thickness * 0.7)
        freqs = np.linspace(0.5 * frequency, 1.5 * frequency, n_freqs)
        sweep = complex_gains_vs_frequency(model, source, receiver, freqs)
        for k, f in enumerate(freqs):
            per_f = ImageSourceModel(
                model.geometry, float(f), max_bounces=model.max_bounces
            )
            ref = per_f.complex_gain(source, receiver)
            assert sweep[k] == pytest.approx(
                ref, rel=1e-9, abs=SUM_ATOL * max(1.0, abs(ref))
            )


class TestImpulseResponseEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        thickness=thickness_strategy,
        max_bounces=st.integers(0, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_taps_match_scalar(self, seed, thickness, max_bounces):
        rng = np.random.default_rng(seed)
        fs = 1e6
        model = make_model(thickness, 230e3, max_bounces)
        source = (0.0, float(rng.uniform(0.0, thickness)))
        grid = random_points(rng, thickness, 3)
        batch = trace_arrivals(model, source, grid)
        # Skip draws where an arrival lands within a breath of a
        # half-sample boundary: a 1-ulp delay difference could then
        # legitimately flip the tap index (documented caveat).
        frac = np.abs(
            batch.delays * fs - np.rint(batch.delays * fs)
        )
        assume((np.abs(frac - 0.5) > 1e-6).all())
        duration = float(batch.delays.max()) + 1.0 / fs
        h_batch = impulse_responses(model, source, grid, fs, duration=duration)
        for row in range(3):
            h_scalar = model.impulse_response(
                source, tuple(grid[row]), fs, duration=duration
            )
            assert h_batch.shape[1] == h_scalar.size
            np.testing.assert_allclose(
                h_batch[row], h_scalar, rtol=1e-11, atol=1e-300
            )

    def test_duration_override_truncates_identically(self):
        model = make_model(0.2, 230e3, 10)
        source, receiver = (0.0, 0.05), (2.0, 0.15)
        h_scalar = model.impulse_response(source, receiver, 1e6, duration=1e-4)
        h_batch = impulse_responses(
            model, source, receiver, 1e6, duration=1e-4
        )
        np.testing.assert_allclose(h_batch[0], h_scalar, rtol=1e-11)


class TestPropagationPrimitives:
    @given(
        seed=st.integers(0, 2**31),
        frequency=frequency_strategy,
        count=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_distance_vectorized_attenuation_is_exact(
        self, seed, frequency, count
    ):
        distances = np.random.default_rng(seed).uniform(0.0, 30.0, count)
        batch = attenuation_db_batch(NC, frequency, distances)
        scalar = [NC.attenuation_db(frequency, d) for d in distances]
        # Exact: the power law is linear in distance, so the per-metre
        # factor is the same float the scalar code computes.
        assert batch.tolist() == scalar

    @given(
        frequency=frequency_strategy,
        distance=st.floats(min_value=0.0, max_value=30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_frequency_vectorized_attenuation_is_ulp_close(
        self, frequency, distance
    ):
        freqs = np.array([frequency, 2.0 * frequency])
        batch = attenuation_db_batch(NC, freqs, distance)
        for k, f in enumerate(freqs):
            assert batch[k] == pytest.approx(
                NC.attenuation_db(float(f), distance), rel=RTOL
            )

    @given(
        exponent=st.floats(min_value=0.0, max_value=1.5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_spreading_gains_match_scalar(self, exponent, seed):
        spreading = SpreadingModel(exponent=exponent)
        distances = np.random.default_rng(seed).uniform(0.0, 20.0, 16)
        batch = spreading_gains(spreading, distances)
        for k, d in enumerate(distances):
            assert batch[k] == pytest.approx(
                spreading.amplitude_gain(float(d)), rel=RTOL
            )

    def test_negative_inputs_rejected(self):
        with pytest.raises(AcousticsError):
            attenuation_db_batch(NC, 230e3, [-1.0])
        with pytest.raises(AcousticsError):
            attenuation_db_batch(NC, [0.0], 1.0)
        with pytest.raises(AcousticsError):
            spreading_gains(SpreadingModel(), [-0.5])


class TestBudgetEquivalence:
    @given(
        seed=st.integers(0, 2**31),
        tx=st.floats(min_value=1.0, max_value=250.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_node_voltages_match_scalar_budget(self, seed, tx):
        from repro.link import PowerUpLink

        geometry = StructureGeometry("wall", 20.0, 0.2, NC)
        link = PowerUpLink(structure=geometry)
        distances = np.random.default_rng(seed).uniform(0.0, 10.0, 12)
        batch = link.node_voltages(distances, tx)
        for k, d in enumerate(distances):
            assert batch[k] == pytest.approx(
                link.node_voltage(float(d), tx), rel=RTOL
            )
