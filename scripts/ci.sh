#!/usr/bin/env bash
# Continuous-integration gate for the EcoCapsule reproduction.
#
# Stage 1: the full tier-1 test suite (unit + golden-regression +
#          determinism layers under tests/).
# Stage 2: a seeded quick sweep of every registered experiment through
#          the parallel runtime, into a throwaway directory, followed by
#          manifest + result-file validation.
# Stage 3: observability smoke -- one experiment under --obs, asserting
#          the manifest carries a profile block and the exported Chrome
#          trace validates against the trace-event schema.
# Stage 4: fault-injection smoke -- the fault sweep twice under the
#          same --faults plan at a fixed seed, asserting the degraded
#          sessions still produce valid manifests and that the two
#          runs' result payloads are byte-identical (determinism).
#
# Usage:  scripts/ci.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: full experiment sweep (quick params) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

python -m repro.cli experiments run --all --jobs 2 --quick --out "${OUT_DIR}"

RUN_DIR="$(find "${OUT_DIR}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python -m repro.cli experiments validate "${RUN_DIR}"

echo "== stage 3: observability smoke (--obs) =="
python -m repro.cli experiments run --only fig13 --jobs 0 --quick --obs \
    --out "${OUT_DIR}/obs"

OBS_RUN_DIR="$(find "${OUT_DIR}/obs" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python - "${OBS_RUN_DIR}" <<'PY'
import json
import sys
from pathlib import Path

from repro.obs import validate_chrome_trace, validate_profile
from repro.runtime import load_manifest

run_dir = Path(sys.argv[1])
manifest = load_manifest(run_dir)
assert "obs" in manifest, "observed run produced no manifest obs block"
for entry in manifest["experiments"]:
    assert validate_profile(entry.get("profile")), (
        f"{entry['name']}: missing or malformed profile"
    )
trace = json.loads((run_dir / manifest["obs"]["trace_file"]).read_text())
problems = validate_chrome_trace(trace)
assert not problems, f"trace.json failed validation: {problems}"
print(
    f"obs smoke OK: {len(manifest['experiments'])} profile(s), "
    f"{manifest['obs']['spans']} span(s), "
    f"{manifest['obs']['warnings']} warning(s)"
)
PY

python -m repro.cli experiments stats "${OBS_RUN_DIR}" > /dev/null
python -m repro.cli experiments trace "${OBS_RUN_DIR}" > /dev/null

echo "== stage 4: fault-injection smoke (--faults) =="
PLAN_FILE="${OUT_DIR}/plan.json"
python - "${PLAN_FILE}" <<'PY'
import sys

from repro.faults import FaultPlan

# A hostile but survivable channel; seeded so both runs replay it.
FaultPlan(
    seed=17,
    uplink_ber=0.005,
    reply_loss_rate=0.15,
    brownout_rate=0.10,
    reader_dropout_rate=0.30,
    slot_jitter_rate=0.05,
    stuck_sensor_rate=0.10,
).to_json_file(sys.argv[1])
PY

for attempt in a b; do
    python -m repro.cli experiments run --only fault_sweep --jobs 0 --quick \
        --force --faults "${PLAN_FILE}" --out "${OUT_DIR}/faults-${attempt}"
    FAULT_RUN_DIR="$(find "${OUT_DIR}/faults-${attempt}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
    python -m repro.cli experiments validate "${FAULT_RUN_DIR}"
done

python - "${OUT_DIR}" <<'PY'
import json
import sys
from pathlib import Path

out_dir = Path(sys.argv[1])
payloads = []
for attempt in ("a", "b"):
    run_dir = next(
        p for p in (out_dir / f"faults-{attempt}").iterdir()
        if p.is_dir() and p.name != ".cache"
    )
    payloads.append((run_dir / "fault_sweep.json").read_bytes())
assert payloads[0] == payloads[1], (
    "fault sweep is not deterministic across runs at the same seed/plan"
)
result = json.loads(payloads[0])["result"]
points = result["points"]
assert any(p["retries"] > 0 or p["degraded"] for p in points), (
    "fault smoke injected nothing: no retries and no degradation recorded"
)
degraded = sum(1 for p in points if p["degraded"])
print(
    f"fault smoke OK: {len(points)} point(s), {degraded} degraded, "
    "two runs byte-identical"
)
PY

echo "== CI OK =="
