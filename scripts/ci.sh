#!/usr/bin/env bash
# Continuous-integration gate for the EcoCapsule reproduction.
#
# Stage 1: the full tier-1 test suite (unit + golden-regression +
#          determinism layers under tests/).
# Stage 2: a seeded quick sweep of every registered experiment through
#          the parallel runtime, into a throwaway directory, followed by
#          manifest + result-file validation.
# Stage 3: observability smoke -- one experiment under --obs, asserting
#          the manifest carries a profile block and the exported Chrome
#          trace validates against the trace-event schema.
# Stage 4: fault-injection smoke -- the fault sweep twice under the
#          same --faults plan at a fixed seed, asserting the degraded
#          sessions still produce valid manifests and that the two
#          runs' result payloads are byte-identical (determinism).
# Stage 5: crash-safety smoke -- a short campaign is SIGKILLed
#          mid-epoch, `campaign resume` finishes it, and the resumed
#          result's sha256 must equal an uninterrupted reference run's.
# Stage 6: telemetry-store smoke -- a short campaign exports into a
#          store (--store), the store is compacted and queried through
#          both the CLI and the HTTP API on an ephemeral port, and both
#          answers must match an in-memory reference computed straight
#          from the store.
# Stage 7: PHY benchmark smoke -- a shrunk scalar-vs-batched Monte-Carlo
#          workload (REPRO_PHY_BENCH_SMOKE=1) into a throwaway
#          BENCH file, asserting bit-identical BERs and a >= 3x smoke
#          speedup (the committed BENCH_phy.json full run shows >= 10x).
# Stage 8: scalar/batch equivalence cross-check -- the two equivalence
#          suites run under two PYTHONHASHSEED values and the batch
#          engine's BER is byte-compared against the scalar engine's
#          across hash seeds; any divergence beyond the documented
#          tolerances (docs/PERFORMANCE.md) fails the gate.
# Stage 9: obs-pipeline smoke -- the same short campaign runs with and
#          without --obs and the two result.json sha256 digests must be
#          byte-identical; the observed run's _obs self-telemetry is
#          then queried over HTTP (/series, /healthz, /metrics) and
#          summarised by `obs report`; finally the `obs trend` gate
#          runs against the committed BENCH_*.json artifacts (must
#          pass) and against an injected regression (must fail).
# Stage 10: fleet smoke -- the same small fleet runs on 1 worker and on
#          a 4-worker pool (sha256 must match); the supervisor is then
#          SIGKILLed mid-epoch and `fleet resume` must converge on the
#          same sha256; an injected poison shard must exit 4 with the
#          quarantine recorded in the result body and `fleet status`;
#          the fleet benchmark smoke closes the stage.
# Stage 11: storage-chaos smoke -- `chaos run` drives a campaign drill
#          under a seeded ENOSPC/torn-write/dropped-rename plan and must
#          exit 0 with the drill sha256 equal to the fault-free clean
#          run's; `chaos verify` re-derives the same verdict; then a
#          byte is flipped in the drill's result.json and `chaos verify`
#          MUST go red (non-zero) -- the oracle has teeth.
# Stage 12: serving-tier smoke -- the threaded server and the asyncio
#          gateway (`store serve --engine async`) run side by side on
#          ephemeral ports against one seeded store; a request matrix
#          (success + error payloads, POST/HEAD/nan/bad-cursor) must
#          come back byte-identical from both; SIGTERM must drain the
#          gateway to a clean exit 0; the serve load-bench smoke runs
#          and its artifact is validated; finally `obs trend` proves
#          the smoke reading is reported but never gated.
#
# Usage:  scripts/ci.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: full experiment sweep (quick params) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

python -m repro.cli experiments run --all --jobs 2 --quick --out "${OUT_DIR}"

RUN_DIR="$(find "${OUT_DIR}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python -m repro.cli experiments validate "${RUN_DIR}"

echo "== stage 3: observability smoke (--obs) =="
python -m repro.cli experiments run --only fig13 --jobs 0 --quick --obs \
    --out "${OUT_DIR}/obs"

OBS_RUN_DIR="$(find "${OUT_DIR}/obs" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python - "${OBS_RUN_DIR}" <<'PY'
import json
import sys
from pathlib import Path

from repro.obs import validate_chrome_trace, validate_profile
from repro.runtime import load_manifest

run_dir = Path(sys.argv[1])
manifest = load_manifest(run_dir)
assert "obs" in manifest, "observed run produced no manifest obs block"
for entry in manifest["experiments"]:
    assert validate_profile(entry.get("profile")), (
        f"{entry['name']}: missing or malformed profile"
    )
trace = json.loads((run_dir / manifest["obs"]["trace_file"]).read_text())
problems = validate_chrome_trace(trace)
assert not problems, f"trace.json failed validation: {problems}"
print(
    f"obs smoke OK: {len(manifest['experiments'])} profile(s), "
    f"{manifest['obs']['spans']} span(s), "
    f"{manifest['obs']['warnings']} warning(s)"
)
PY

python -m repro.cli experiments stats "${OBS_RUN_DIR}" > /dev/null
python -m repro.cli experiments trace "${OBS_RUN_DIR}" > /dev/null

echo "== stage 4: fault-injection smoke (--faults) =="
PLAN_FILE="${OUT_DIR}/plan.json"
python - "${PLAN_FILE}" <<'PY'
import sys

from repro.faults import FaultPlan

# A hostile but survivable channel; seeded so both runs replay it.
FaultPlan(
    seed=17,
    uplink_ber=0.005,
    reply_loss_rate=0.15,
    brownout_rate=0.10,
    reader_dropout_rate=0.30,
    slot_jitter_rate=0.05,
    stuck_sensor_rate=0.10,
).to_json_file(sys.argv[1])
PY

for attempt in a b; do
    python -m repro.cli experiments run --only fault_sweep --jobs 0 --quick \
        --force --faults "${PLAN_FILE}" --out "${OUT_DIR}/faults-${attempt}"
    FAULT_RUN_DIR="$(find "${OUT_DIR}/faults-${attempt}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
    python -m repro.cli experiments validate "${FAULT_RUN_DIR}"
done

python - "${OUT_DIR}" <<'PY'
import json
import sys
from pathlib import Path

out_dir = Path(sys.argv[1])
payloads = []
for attempt in ("a", "b"):
    run_dir = next(
        p for p in (out_dir / f"faults-{attempt}").iterdir()
        if p.is_dir() and p.name != ".cache"
    )
    payloads.append((run_dir / "fault_sweep.json").read_bytes())
assert payloads[0] == payloads[1], (
    "fault sweep is not deterministic across runs at the same seed/plan"
)
result = json.loads(payloads[0])["result"]
points = result["points"]
assert any(p["retries"] > 0 or p["degraded"] for p in points), (
    "fault smoke injected nothing: no retries and no degradation recorded"
)
degraded = sum(1 for p in points if p["degraded"])
print(
    f"fault smoke OK: {len(points)} point(s), {degraded} degraded, "
    "two runs byte-identical"
)
PY

echo "== stage 5: campaign crash-safety smoke (SIGKILL + resume) =="
# Reference: the same short campaign, uninterrupted, in memory.
REF_HASH="$(python - <<'PY'
from repro.campaign import CampaignConfig, result_hash, run_campaign

config = CampaignConfig(
    epochs=5, nodes=3, hours_per_epoch=24, seed=11,
    storm_period_epochs=2, storm_duration_epochs=1, epoch_timeout_s=0.0,
)
print(result_hash(run_campaign(config).result))
PY
)"

STATE_DIR="${OUT_DIR}/campaign"
python -m repro.cli campaign run --state-dir "${STATE_DIR}" \
    --epochs 5 --nodes 3 --hours-per-epoch 24 --seed 11 \
    --storm-period 2 --storm-duration 1 --epoch-sleep-s 0.4 \
    > /dev/null 2>&1 &
CAMPAIGN_PID=$!

# Let it checkpoint a couple of epochs, then kill -9 mid-epoch (the
# sleep seam guarantees it dies inside an epoch, not between runs).
KILL_MARKER="${STATE_DIR}/checkpoints/epoch-000002.json"
for _ in $(seq 1 600); do
    [ -f "${KILL_MARKER}" ] && break
    if ! kill -0 "${CAMPAIGN_PID}" 2>/dev/null; then
        echo "campaign exited before it could be killed" >&2
        exit 1
    fi
    sleep 0.1
done
[ -f "${KILL_MARKER}" ] || { echo "no checkpoint appeared in time" >&2; exit 1; }
kill -9 "${CAMPAIGN_PID}" 2>/dev/null || true
wait "${CAMPAIGN_PID}" 2>/dev/null || true

if [ -f "${STATE_DIR}/result.json" ]; then
    echo "campaign finished before the kill; nothing was tested" >&2
    exit 1
fi

python -m repro.cli campaign status --state-dir "${STATE_DIR}"
python -m repro.cli campaign resume --state-dir "${STATE_DIR}"

RESUMED_HASH="$(python - "${STATE_DIR}/result.json" <<'PY'
import json
import sys

print(json.load(open(sys.argv[1]))["sha256"])
PY
)"
if [ "${RESUMED_HASH}" != "${REF_HASH}" ]; then
    echo "resumed campaign diverged from the uninterrupted reference:" >&2
    echo "  resumed:   ${RESUMED_HASH}" >&2
    echo "  reference: ${REF_HASH}" >&2
    exit 1
fi
echo "campaign smoke OK: SIGKILL mid-epoch + resume == uninterrupted (${RESUMED_HASH})"

echo "== stage 6: telemetry-store smoke (CLI + HTTP vs reference) =="
STORE_DIR="${OUT_DIR}/store"
python -m repro.cli campaign run --state-dir "${OUT_DIR}/store-campaign" \
    --store "${STORE_DIR}" \
    --epochs 4 --nodes 3 --hours-per-epoch 24 --seed 11 \
    --epoch-timeout-s 0 > /dev/null
python -m repro.cli store compact --store "${STORE_DIR}" > /dev/null

CLI_ANSWER="$(python -m repro.cli store query --store "${STORE_DIR}" \
    --metric strain --agg mean --resolution daily --json)"

SERVE_LOG="${OUT_DIR}/store-serve.log"
python -m repro.cli store serve --store "${STORE_DIR}" --port 0 \
    > "${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true; rm -rf "${OUT_DIR}"' EXIT

BASE_URL=""
for _ in $(seq 1 100); do
    BASE_URL="$(sed -n 's/^serving .* on \(http:\/\/[^ ]*\)$/\1/p' "${SERVE_LOG}" | head -n 1)"
    [ -n "${BASE_URL}" ] && break
    sleep 0.1
done
[ -n "${BASE_URL}" ] || { echo "store serve never announced its port" >&2; exit 1; }

python - "${STORE_DIR}" "${BASE_URL}" <<PY
import json
import sys
import urllib.request

from repro.store import QueryEngine, TelemetryStore

store_dir, base_url = sys.argv[1], sys.argv[2]
engine = QueryEngine(TelemetryStore(store_dir, create=False))
reference = engine.aggregate("strain", "mean", resolution="daily")
assert reference["series"] > 0, "store smoke exported no strain series"

cli = json.loads('''${CLI_ANSWER}''')
assert cli == json.loads(json.dumps(reference)), (
    f"CLI query diverged from in-memory reference: {cli} != {reference}"
)

url = base_url + "/aggregate?metric=strain&agg=mean&resolution=daily"
with urllib.request.urlopen(url, timeout=10.0) as response:
    http = json.load(response)
assert http == json.loads(json.dumps(reference)), (
    f"HTTP query diverged from in-memory reference: {http} != {reference}"
)

with urllib.request.urlopen(base_url + "/stats", timeout=10.0) as response:
    stats = json.load(response)
assert stats == json.loads(json.dumps(engine.store.stats())), (
    "HTTP /stats diverged from the in-memory store stats"
)
print(
    f"store smoke OK: {reference['series']} strain series, "
    f"CLI == HTTP == reference ({reference['value']:.3f})"
)
PY
kill "${SERVE_PID}" 2>/dev/null || true
wait "${SERVE_PID}" 2>/dev/null || true
trap 'rm -rf "${OUT_DIR}"' EXIT

echo "== stage 7: PHY benchmark smoke (batched vs scalar) =="
REPRO_PHY_BENCH_SMOKE=1 REPRO_BENCH_OUT="${OUT_DIR}/BENCH_phy_smoke.json" \
    python -m pytest benchmarks/test_phy_bench.py --benchmark-only \
    --benchmark-disable-gc -q
python - "${OUT_DIR}/BENCH_phy_smoke.json" <<'PY'
import json
import sys

bench = json.load(open(sys.argv[1]))
assert bench["schema"] == "repro/bench-phy/v1"
assert bench["smoke"] is True
assert bench["ber_identical_scalar_vs_batch"] is True
print(
    f"phy bench smoke OK: {bench['speedup_batch_vs_scalar']}x batch, "
    f"{bench['speedup_float32_vs_scalar']}x float32"
)
PY

echo "== stage 8: scalar/batch equivalence cross-check (hash-seed sweep) =="
for HASHSEED in 0 31337; do
    PYTHONHASHSEED="${HASHSEED}" python -m pytest -q \
        tests/test_phy_batch_equivalence.py \
        tests/test_acoustics_batch_equivalence.py \
        tests/test_batch_golden_regression.py
done

python - <<'PY'
# Cross-hash-seed determinism: the batch engine's BER must be byte-
# identical to the scalar engine's, and to itself, regardless of
# PYTHONHASHSEED (subprocesses so each run gets a fresh hash seed).
import json
import subprocess
import sys

SCRIPT = r"""
import json, sys
from repro.link.simulation import UplinkBasebandSimulator
from repro.phy.batch import use_engine
out = {}
for engine in ("scalar", "batch"):
    with use_engine(engine):
        out[engine] = [
            UplinkBasebandSimulator(seed=0x5EC0).measure_ber(
                snr, total_bits=2_000, packet_bits=100
            )
            for snr in (2.0, 3.5, 6.0)
        ]
json.dump(out, sys.stdout)
"""

answers = []
for hashseed in ("0", "31337"):
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, check=True,
        env={"PYTHONHASHSEED": hashseed, "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    payload = json.loads(proc.stdout)
    assert payload["scalar"] == payload["batch"], (
        f"engines diverged under PYTHONHASHSEED={hashseed}: {payload}"
    )
    answers.append(proc.stdout)
assert answers[0] == answers[1], (
    "BER stream is hash-seed sensitive: " + repr(answers)
)
print("equivalence cross-check OK: scalar == batch across hash seeds")
PY

echo "== stage 9: obs-pipeline smoke (self-telemetry + trend gate) =="
OBS_DIR="${OUT_DIR}/obs-pipeline"
for arm in plain observed; do
    OBS_FLAG=""
    [ "${arm}" = "observed" ] && OBS_FLAG="--obs"
    python -m repro.cli campaign run \
        --state-dir "${OBS_DIR}/${arm}-state" \
        --store "${OBS_DIR}/${arm}-store" ${OBS_FLAG} \
        --epochs 4 --nodes 3 --hours-per-epoch 24 --seed 11 \
        --epoch-timeout-s 0 > /dev/null
done

python - "${OBS_DIR}" <<'PY'
import json
import sys
from pathlib import Path

obs_dir = Path(sys.argv[1])
digests = {
    arm: json.loads((obs_dir / f"{arm}-state" / "result.json").read_text())["sha256"]
    for arm in ("plain", "observed")
}
assert digests["plain"] == digests["observed"], (
    f"--obs changed the result bytes: {digests}"
)
print(f"obs zero-effect OK: sha256 {digests['plain'][:16]}... both arms")
PY

python -m repro.cli obs report --store "${OBS_DIR}/observed-store" > /dev/null
python -m repro.cli obs report --store "${OBS_DIR}/observed-store" --json \
    > "${OBS_DIR}/report.json"
python - "${OBS_DIR}/report.json" <<'PY'
import json
import sys

report = json.load(open(sys.argv[1]))
assert "campaign" in report["sources"], "obs report lost the campaign wall"
metrics = report["sources"]["campaign"]["metrics"]
for required in ("campaign.epoch_wall_s", "campaign.epochs_run"):
    assert required in metrics, f"obs report missing {required}"
print(f"obs report OK: {report['sources']['campaign']['series']} _obs series")
PY

OBS_SERVE_LOG="${OUT_DIR}/obs-serve.log"
python -m repro.cli store serve --store "${OBS_DIR}/observed-store" --port 0 \
    > "${OBS_SERVE_LOG}" 2>&1 &
OBS_SERVE_PID=$!
trap 'kill "${OBS_SERVE_PID}" 2>/dev/null || true; rm -rf "${OUT_DIR}"' EXIT

OBS_BASE_URL=""
for _ in $(seq 1 100); do
    OBS_BASE_URL="$(sed -n 's/^serving .* on \(http:\/\/[^ ]*\)$/\1/p' "${OBS_SERVE_LOG}" | head -n 1)"
    [ -n "${OBS_BASE_URL}" ] && break
    sleep 0.1
done
[ -n "${OBS_BASE_URL}" ] || { echo "store serve never announced its port" >&2; exit 1; }

python - "${OBS_BASE_URL}" <<'PY'
import json
import sys
import urllib.request

base = sys.argv[1]
with urllib.request.urlopen(
    base + "/series?building=_obs&wall=campaign&node=0"
    "&metric=campaign.epoch_wall_s", timeout=10.0
) as response:
    series = json.load(response)
assert series["rows"] == 4, f"expected 4 heartbeat ticks, got {series['rows']}"

with urllib.request.urlopen(base + "/healthz", timeout=10.0) as response:
    healthz = json.load(response)
assert healthz["status"] == "ok"
assert healthz["campaign"]["last_epoch"] == 4.0, healthz

with urllib.request.urlopen(base + "/metrics", timeout=10.0) as response:
    text = response.read().decode("utf-8")
assert "# TYPE serve_requests counter" in text, "no request counters exposed"
assert 'serve_request_s_bucket{path="/series"' in text, "no latency histogram"
print(f"obs serving OK: {series['rows']} ticks over HTTP, /healthz + /metrics live")
PY
kill "${OBS_SERVE_PID}" 2>/dev/null || true
wait "${OBS_SERVE_PID}" 2>/dev/null || true
trap 'rm -rf "${OUT_DIR}"' EXIT

REPRO_OBS_BENCH_SMOKE=1 REPRO_BENCH_OUT="${OUT_DIR}/BENCH_obs_smoke.json" \
    python -m pytest benchmarks/test_obs_bench.py --benchmark-only \
    --benchmark-disable-gc -q

python -m repro.cli obs trend --bench-dir . --history BENCH_HISTORY.jsonl

REGRESS_DIR="${OUT_DIR}/obs-regress"
mkdir -p "${REGRESS_DIR}"
cp BENCH_phy.json BENCH_store.json "${REGRESS_DIR}/"
printf '{"schema": "repro/bench-obs/v1", "smoke": false, "overhead_pct": 50.0}\n' \
    > "${REGRESS_DIR}/BENCH_obs.json"
if python -m repro.cli obs trend --bench-dir "${REGRESS_DIR}" \
    --history BENCH_HISTORY.jsonl > /dev/null 2>&1; then
    echo "obs trend failed to flag an injected 50% overhead regression" >&2
    exit 1
fi
echo "obs trend gate OK: committed artifacts pass, injected regression caught"

echo "== stage 10: fleet smoke (sharding + SIGKILL + resume + quarantine) =="
FLEET_ARGS=(--buildings 4 --epochs 3 --nodes 2 --hours-per-epoch 6
    --storm-period 2 --storm-duration 1 --epoch-timeout-s 30
    --backoff-base-s 0.05 --backoff-max-s 0.5)

python -m repro.cli fleet run --fleet-dir "${OUT_DIR}/fleet-solo" \
    "${FLEET_ARGS[@]}" --workers 1 > /dev/null
python -m repro.cli fleet run --fleet-dir "${OUT_DIR}/fleet-pool" \
    "${FLEET_ARGS[@]}" --workers 4 > /dev/null

FLEET_HASH="$(python - "${OUT_DIR}" <<'PY'
import json
import sys
from pathlib import Path

out_dir = Path(sys.argv[1])
digests = {
    arm: json.loads((out_dir / f"fleet-{arm}" / "result.json").read_text())["sha256"]
    for arm in ("solo", "pool")
}
assert digests["solo"] == digests["pool"], (
    f"fleet hash depends on the worker count: {digests}"
)
print(digests["pool"])
PY
)"
echo "fleet worker-count invariance OK (${FLEET_HASH})"

# SIGKILL the whole supervisor mid-epoch; resume must converge on the
# same bytes (PR_SET_PDEATHSIG takes the orphaned workers down too).
FLEET_KILL_DIR="${OUT_DIR}/fleet-kill"
python -m repro.cli fleet run --fleet-dir "${FLEET_KILL_DIR}" \
    "${FLEET_ARGS[@]}" --workers 4 --epoch-sleep-s 0.4 \
    > /dev/null 2>&1 &
FLEET_PID=$!

FLEET_MARKER="${FLEET_KILL_DIR}/shards/b001/checkpoints/epoch-000001.json"
for _ in $(seq 1 600); do
    [ -f "${FLEET_MARKER}" ] && break
    if ! kill -0 "${FLEET_PID}" 2>/dev/null; then
        echo "fleet exited before it could be killed" >&2
        exit 1
    fi
    sleep 0.1
done
[ -f "${FLEET_MARKER}" ] || { echo "no shard checkpoint appeared in time" >&2; exit 1; }
kill -9 "${FLEET_PID}" 2>/dev/null || true
wait "${FLEET_PID}" 2>/dev/null || true

if [ -f "${FLEET_KILL_DIR}/result.json" ]; then
    echo "fleet finished before the kill; nothing was tested" >&2
    exit 1
fi

python -m repro.cli fleet status --fleet-dir "${FLEET_KILL_DIR}"
python -m repro.cli fleet resume --fleet-dir "${FLEET_KILL_DIR}" > /dev/null

RESUMED_FLEET_HASH="$(python - "${FLEET_KILL_DIR}/result.json" <<'PY'
import json
import sys

print(json.load(open(sys.argv[1]))["sha256"])
PY
)"
if [ "${RESUMED_FLEET_HASH}" != "${FLEET_HASH}" ]; then
    echo "resumed fleet diverged from the uninterrupted reference:" >&2
    echo "  resumed:   ${RESUMED_FLEET_HASH}" >&2
    echo "  reference: ${FLEET_HASH}" >&2
    exit 1
fi
echo "fleet kill smoke OK: SIGKILL mid-epoch + resume == uninterrupted"

# Poison shard: b003 fails every attempt -> quarantine, survivors
# complete, exit code 4, and the loss is visible everywhere.
FLEET_PLAN="${OUT_DIR}/fleet-poison.json"
python - "${FLEET_PLAN}" <<'PY'
import sys

from repro.faults import WorkerFault, WorkerFaultPlan

WorkerFaultPlan(faults=(
    WorkerFault(building="b003", epoch=1, action="poison"),
)).to_json_file(sys.argv[1])
PY

set +e
python -m repro.cli fleet run --fleet-dir "${OUT_DIR}/fleet-poison" \
    "${FLEET_ARGS[@]}" --workers 4 --max-restarts 2 \
    --worker-faults "${FLEET_PLAN}" > /dev/null
FLEET_RC=$?
set -e
if [ "${FLEET_RC}" -ne 4 ]; then
    echo "poisoned fleet should exit 4 (quarantined), got ${FLEET_RC}" >&2
    exit 1
fi

python -m repro.cli fleet status --fleet-dir "${OUT_DIR}/fleet-poison" --json \
    > "${OUT_DIR}/fleet-poison-status.json"
python - "${OUT_DIR}" <<'PY'
import json
import sys
from pathlib import Path

out_dir = Path(sys.argv[1])
result = json.loads((out_dir / "fleet-poison" / "result.json").read_text())
assert result["result"]["quarantined"] == ["b003"], result["result"]["quarantined"]
assert result["result"]["totals"]["completed"] == 3
status = json.loads((out_dir / "fleet-poison-status.json").read_text())
assert status["summary"]["quarantined"] == 1, status["summary"]
assert status["shards"]["b003"]["status"] == "quarantined"
assert status["shards"]["b003"]["quarantine_reason"]
print("fleet quarantine smoke OK: b003 poisoned, 3 survivors, exit 4")
PY

REPRO_FLEET_BENCH_SMOKE=1 REPRO_BENCH_OUT="${OUT_DIR}/BENCH_fleet_smoke.json" \
    python -m pytest benchmarks/test_fleet_bench.py --benchmark-only \
    --benchmark-disable-gc -q
python - "${OUT_DIR}/BENCH_fleet_smoke.json" <<'PY'
import json
import sys

bench = json.load(open(sys.argv[1]))
assert bench["schema"] == "repro/bench-fleet/v1"
assert bench["smoke"] is True
assert bench["result_hash_identical"] is True
print(
    f"fleet bench smoke OK: {bench['buildings_per_min']} buildings/min, "
    f"restart overhead {bench['restart_overhead_pct']}%"
)
PY

echo "== stage 11: storage-chaos smoke (fault drill + corruption tripwire) =="
CHAOS_DIR="${OUT_DIR}/chaos"
python -m repro.cli chaos run --dir "${CHAOS_DIR}" --scenario campaign \
    --seed 5 --epochs 2 --nodes 2 --hours-per-epoch 6 --max-attempts 4 \
    --fault-seed 7 --enospc-write-rate 0.1 --torn-write-rate 0.1 \
    --drop-rename-rate 0.05 --json > "${OUT_DIR}/chaos-verdict.json"
python -m repro.cli chaos verify --dir "${CHAOS_DIR}"

python - "${OUT_DIR}/chaos-verdict.json" <<'PY'
import json
import sys

verdict = json.load(open(sys.argv[1]))
assert verdict["status"] in ("pass", "degraded"), verdict
assert verdict["drill_sha256"] == verdict["clean_sha256"], (
    "chaos drill recovered to different result bytes than the clean run"
)
fired = sum(verdict["io"].values())
assert fired > 0, "chaos smoke injected nothing: no storage faults fired"
print(
    f"chaos drill OK: {verdict['status']}, {fired} fault(s) fired, "
    f"recovered to clean sha {verdict['drill_sha256'][:16]}..."
)
PY

# The tripwire: flip one byte in the drill's result file; the verifier
# must notice (embedded sha mismatch / unreadable) and exit non-zero.
python - "${CHAOS_DIR}/drill/state/result.json" <<'PY'
import sys

path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x01
open(path, "wb").write(bytes(data))
PY
if python -m repro.cli chaos verify --dir "${CHAOS_DIR}" > /dev/null 2>&1; then
    echo "chaos verify failed to flag an injected corrupted drill result" >&2
    exit 1
fi
echo "chaos smoke OK: drill recovered, corrupted fixture caught"

echo "== stage 12: serving-tier smoke (parity matrix + drain + bench) =="
SERVE_STORE="${OUT_DIR}/serve-store"
python - "${SERVE_STORE}" <<'PY'
import sys

import numpy as np

from repro.store import SeriesKey, TelemetryStore

store = TelemetryStore(sys.argv[1])
hours = np.arange(0.0, 96.0, 0.5)
for node in (1, 2):
    store.append(
        SeriesKey("hq", "east", node, "strain"),
        hours, 120.0 + 0.2 * node + 0.1 * np.sin(hours),
    )
store.compact()
PY

THREADED_LOG="${OUT_DIR}/serve-threaded.log"
GATEWAY_LOG="${OUT_DIR}/serve-gateway.log"
python -m repro.cli store serve --store "${SERVE_STORE}" --port 0 \
    > "${THREADED_LOG}" 2>&1 &
THREADED_PID=$!
python -m repro.cli store serve --store "${SERVE_STORE}" --port 0 \
    --engine async > "${GATEWAY_LOG}" 2>&1 &
GATEWAY_PID=$!
trap 'kill "${THREADED_PID}" "${GATEWAY_PID}" 2>/dev/null || true; rm -rf "${OUT_DIR}"' EXIT

THREADED_URL=""
GATEWAY_URL=""
for _ in $(seq 1 100); do
    THREADED_URL="$(sed -n 's/^serving .* on \(http:\/\/[^ ]*\)$/\1/p' "${THREADED_LOG}" | head -n 1)"
    GATEWAY_URL="$(sed -n 's/^serving .* on \(http:\/\/[^ ]*\)$/\1/p' "${GATEWAY_LOG}" | head -n 1)"
    [ -n "${THREADED_URL}" ] && [ -n "${GATEWAY_URL}" ] && break
    sleep 0.1
done
[ -n "${THREADED_URL}" ] || { echo "threaded server never announced its port" >&2; exit 1; }
[ -n "${GATEWAY_URL}" ] || { echo "async gateway never announced its port" >&2; exit 1; }

python - "${THREADED_URL}" "${GATEWAY_URL}" <<'PY'
import http.client
import sys
from urllib.parse import urlsplit

SERIES = "building=hq&wall=east&node=1&metric=strain"
MATRIX = [
    ("GET", "/stats"),
    ("GET", f"/series?{SERIES}"),
    ("GET", f"/series?{SERIES}&resolution=hourly&t0=0&t1=48"),
    ("GET", f"/series?{SERIES}&resolution=daily&limit=2"),
    ("GET", "/aggregate?metric=strain&agg=mean&resolution=daily&group_by=node"),
    ("GET", "/health?building=hq"),
    ("GET", "/nope"),
    ("GET", "/aggregate?agg=mean"),
    ("GET", f"/series?{SERIES}&t0=nan"),
    ("GET", f"/series?{SERIES}&t1=inf"),
    ("GET", f"/series?{SERIES}&limit=3&cursor=%%%"),
    ("POST", "/stats"),
    ("PUT", f"/series?{SERIES}"),
    ("HEAD", "/stats"),
    ("HEAD", f"/series?{SERIES}&resolution=hourly"),
]

def fetch(base, method, target):
    host = urlsplit(base).netloc
    conn = http.client.HTTPConnection(host, timeout=10.0)
    try:
        conn.request(method, target)
        response = conn.getresponse()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, headers, response.read()
    finally:
        conn.close()

threaded_url, gateway_url = sys.argv[1], sys.argv[2]
for method, target in MATRIX:
    t_status, t_headers, t_body = fetch(threaded_url, method, target)
    g_status, g_headers, g_body = fetch(gateway_url, method, target)
    row = f"{method} {target}"
    assert g_status == t_status, (
        f"{row}: status {g_status} (gateway) != {t_status} (threaded)"
    )
    assert g_body == t_body, f"{row}: response bodies differ"
    for header in ("content-type", "allow", "etag"):
        assert g_headers.get(header) == t_headers.get(header), (
            f"{row}: header {header!r} differs"
        )
    if method == "HEAD":
        assert g_body == b"" and (
            g_headers["content-length"] == t_headers["content-length"]
        ), f"{row}: HEAD contract violated"
print(f"serve parity OK: {len(MATRIX)} rows byte-identical across engines")
PY
kill "${THREADED_PID}" 2>/dev/null || true
wait "${THREADED_PID}" 2>/dev/null || true

# SIGTERM must drain the gateway gracefully: clean exit 0, not a kill.
kill -TERM "${GATEWAY_PID}"
set +e
wait "${GATEWAY_PID}"
GATEWAY_RC=$?
set -e
if [ "${GATEWAY_RC}" -ne 0 ]; then
    echo "gateway SIGTERM drain exited ${GATEWAY_RC}, want 0" >&2
    exit 1
fi
echo "gateway drain OK: SIGTERM -> graceful exit 0"
trap 'rm -rf "${OUT_DIR}"' EXIT

REPRO_SERVE_BENCH_SMOKE=1 REPRO_BENCH_OUT="${OUT_DIR}/BENCH_serve_smoke.json" \
    python -m pytest benchmarks/test_serve_bench.py --benchmark-only \
    --benchmark-disable-gc -q
python - "${OUT_DIR}/BENCH_serve_smoke.json" <<'PY'
import json
import sys

bench = json.load(open(sys.argv[1]))
assert bench["schema"] == "repro/bench-serve/v1"
assert bench["smoke"] is True
assert bench["gateway"]["errors"] == 0 and bench["threaded"]["errors"] == 0
assert bench["speedup_qps_vs_threaded"] > 0
print(
    f"serve bench smoke OK: {bench['gateway']['qps']} qps, "
    f"{bench['speedup_qps_vs_threaded']}x vs threaded, "
    f"cache hit rate {bench['gateway']['cache_hit_rate']}"
)
PY

# Smoke readings must be reported by the trend gate but never gated:
# a smoke artifact with an absurdly bad speedup still passes.
SERVE_TREND_DIR="${OUT_DIR}/serve-trend"
mkdir -p "${SERVE_TREND_DIR}"
cp BENCH_phy.json BENCH_store.json BENCH_obs.json BENCH_fleet.json \
    "${SERVE_TREND_DIR}/"
python - "${OUT_DIR}/BENCH_serve_smoke.json" "${SERVE_TREND_DIR}/BENCH_serve.json" <<'PY'
import json
import sys

bench = json.load(open(sys.argv[1]))
bench["speedup_qps_vs_threaded"] = 0.01  # would regress hard if gated
json.dump(bench, open(sys.argv[2], "w"))
PY
python -m repro.cli obs trend --bench-dir "${SERVE_TREND_DIR}" \
    --history BENCH_HISTORY.jsonl --json > "${OUT_DIR}/serve-trend.json"
python - "${OUT_DIR}/serve-trend.json" <<'PY'
import json
import sys

verdicts = json.load(open(sys.argv[1]))["verdicts"]
serve = {v["metric"]: v["verdict"] for v in verdicts
         if v["metric"].startswith("serve.")}
assert serve["serve.speedup_vs_threaded"] == "smoke", serve
assert all(v == "smoke" for v in serve.values()), serve
print("serve trend OK: smoke readings reported, never gated")
PY
echo "serve smoke OK: parity + drain + bench + trend"

echo "== CI OK =="
