#!/usr/bin/env bash
# Continuous-integration gate for the EcoCapsule reproduction.
#
# Stage 1: the full tier-1 test suite (unit + golden-regression +
#          determinism layers under tests/).
# Stage 2: a seeded quick sweep of every registered experiment through
#          the parallel runtime, into a throwaway directory, followed by
#          manifest + result-file validation.
#
# Usage:  scripts/ci.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: full experiment sweep (quick params) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

python -m repro.cli experiments run --all --jobs 2 --quick --out "${OUT_DIR}"

RUN_DIR="$(find "${OUT_DIR}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python -m repro.cli experiments validate "${RUN_DIR}"

echo "== CI OK =="
