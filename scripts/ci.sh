#!/usr/bin/env bash
# Continuous-integration gate for the EcoCapsule reproduction.
#
# Stage 1: the full tier-1 test suite (unit + golden-regression +
#          determinism layers under tests/).
# Stage 2: a seeded quick sweep of every registered experiment through
#          the parallel runtime, into a throwaway directory, followed by
#          manifest + result-file validation.
# Stage 3: observability smoke -- one experiment under --obs, asserting
#          the manifest carries a profile block and the exported Chrome
#          trace validates against the trace-event schema.
#
# Usage:  scripts/ci.sh [extra pytest args...]

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== stage 1: tier-1 test suite =="
python -m pytest -x -q "$@"

echo "== stage 2: full experiment sweep (quick params) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

python -m repro.cli experiments run --all --jobs 2 --quick --out "${OUT_DIR}"

RUN_DIR="$(find "${OUT_DIR}" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python -m repro.cli experiments validate "${RUN_DIR}"

echo "== stage 3: observability smoke (--obs) =="
python -m repro.cli experiments run --only fig13 --jobs 0 --quick --obs \
    --out "${OUT_DIR}/obs"

OBS_RUN_DIR="$(find "${OUT_DIR}/obs" -mindepth 1 -maxdepth 1 -type d ! -name '.cache' | head -n 1)"
python - "${OBS_RUN_DIR}" <<'PY'
import json
import sys
from pathlib import Path

from repro.obs import validate_chrome_trace, validate_profile
from repro.runtime import load_manifest

run_dir = Path(sys.argv[1])
manifest = load_manifest(run_dir)
assert "obs" in manifest, "observed run produced no manifest obs block"
for entry in manifest["experiments"]:
    assert validate_profile(entry.get("profile")), (
        f"{entry['name']}: missing or malformed profile"
    )
trace = json.loads((run_dir / manifest["obs"]["trace_file"]).read_text())
problems = validate_chrome_trace(trace)
assert not problems, f"trace.json failed validation: {problems}"
print(
    f"obs smoke OK: {len(manifest['experiments'])} profile(s), "
    f"{manifest['obs']['spans']} span(s), "
    f"{manifest['obs']['warnings']} warning(s)"
)
PY

python -m repro.cli experiments stats "${OBS_RUN_DIR}" > /dev/null
python -m repro.cli experiments trace "${OBS_RUN_DIR}" > /dev/null

echo "== CI OK =="
