#!/usr/bin/env python
"""Regenerate the golden-regression snapshots in tests/goldens/.

Runs every registered experiment at its pinned seed with the registry's
quick parameters (the same configuration ``tests/test_experiment_goldens.py``
replays) and rewrites one JSON snapshot per experiment.

Usage::

    PYTHONPATH=src python scripts/regen_goldens.py [NAME ...]

Only run this after an *intentional* numeric change, and review the
golden diff like any other code change -- see EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime import (  # noqa: E402  (path bootstrap above)
    experiment_registry,
    golden_snapshot,
    write_json_atomic,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "goldens"


def main(argv) -> int:
    registry = experiment_registry()
    names = argv or list(registry)
    for name in names:
        spec = registry[name]
        params = spec.params(quick=True)
        result = spec.execute(quick=True)
        snapshot = golden_snapshot(name, result)
        path = GOLDEN_DIR / f"{name}.json"
        write_json_atomic(
            path,
            {
                "experiment": name,
                "module": spec.module_name,
                "seed": params["seed"],
                "params": params,
                "scalars": snapshot,
            },
        )
        print(f"wrote {path} ({len(snapshot)} scalars)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
