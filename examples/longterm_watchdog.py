"""Long-term watchdog: years of capsule strain data, degradation alarms.

The scenario the paper's introduction motivates: a building's implanted
EcoCapsules report strain for years; an analytics watchdog learns each
capsule's healthy baseline and raises a graded alarm when slow
degradation (corroding reinforcement, an opening crack) begins -- long
before any structural limit is approached.

Run with ``python examples/longterm_watchdog.py``.
"""

from __future__ import annotations

from repro.materials import get_concrete
from repro.node import EnergyScheduler
from repro.shm import DamageDetector, strain_capacity_margin, synthesize_history


def main() -> None:
    detector = DamageDetector()
    concrete = get_concrete("NC")

    # Three capsules in the same wall: one healthy, two degrading at
    # different rates from day 450.
    fleet = {
        "capsule 1 (healthy)": synthesize_history(n_days=900, seed=101),
        "capsule 2 (slow corrosion)": synthesize_history(
            n_days=900, degradation_start=450, degradation_rate=0.6, seed=102
        ),
        "capsule 3 (opening crack)": synthesize_history(
            n_days=900, degradation_start=450, degradation_rate=2.8, seed=103
        ),
    }

    print("Two-and-a-half years of daily strain reports, per capsule:")
    for label, history in fleet.items():
        alarm = detector.detect(history)
        final_strain = float(history.strain[-1])
        margin = strain_capacity_margin(final_strain, concrete.peak_strain)
        if alarm is None:
            print(f"  {label}: no alarm; capacity margin {margin:.0%}")
        else:
            print(
                f"  {label}: {alarm.severity.upper()} alarm on day "
                f"{alarm.day:.0f} (drift {alarm.drift_estimate:+.2f} ue/day); "
                f"capacity margin now {margin:.0%}"
            )

    # How often can a capsule at the edge of coverage deliver its daily
    # report?  The duty-cycle planner answers from the field strength.
    scheduler = EnergyScheduler()
    print("Report cadence vs field strength at the capsule:")
    for field_v in (0.55, 0.8, 1.5):
        plan = scheduler.plan(field_v)
        mode = "continuous" if plan.continuous else f"{plan.duty_cycle:.1%} duty"
        print(
            f"  {field_v:.2f} V: {mode}, up to {plan.reports_per_hour:,.0f} "
            "reports/hour"
        )
    print(
        "Even the weakest powered capsule delivers daily strain reports "
        "with orders of magnitude to spare."
    )


if __name__ == "__main__":
    main()
