"""Wall survey: inventory every EcoCapsule in a wall via slotted TDMA.

Models the paper's operating scenario (Sec. 3.4): a self-sensing wall
with several implanted nodes at unknown positions.  The operator sweeps
the reader's charging field, then runs Gen2-style inventory rounds so
each node is singulated, assigned a distinct backscatter link frequency
(guard-banded sidebands), and read for all its sensor channels.

Run with ``python examples/wall_survey.py``.
"""

from __future__ import annotations

import random

from repro.acoustics import StructureGeometry
from repro.link import PowerUpLink
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment
from repro.protocol import TdmaInventory


def build_wall_population(n_nodes: int, seed: int = 123) -> list:
    """Scatter ``n_nodes`` capsules through a wall with varied climates."""
    rng = random.Random(seed)
    capsules = []
    for node_id in range(1, n_nodes + 1):
        env = Environment(
            temperature=rng.uniform(18.0, 32.0),
            humidity=rng.uniform(55.0, 90.0),
            strain=rng.uniform(-200.0, 300.0),
        )
        capsules.append(
            EcoCapsule(node_id=node_id, environment=env, seed=seed + node_id)
        )
    return capsules


def main() -> None:
    concrete = get_concrete("UHPC")
    wall = StructureGeometry(
        "survey wall", length=8.0, thickness=0.20, medium=concrete.medium
    )
    budget = PowerUpLink(wall)

    capsules = build_wall_population(n_nodes=8)
    rng = random.Random(7)
    distances = {c.node_id: rng.uniform(0.3, 3.0) for c in capsules}

    # Charge the whole wall at the full 250 V rail.
    tx_voltage = 250.0
    powered = []
    for capsule in capsules:
        field = budget.node_voltage(distances[capsule.node_id], tx_voltage)
        if capsule.apply_field(field):
            powered.append(capsule)
    print(
        f"{len(powered)}/{len(capsules)} nodes powered at {tx_voltage:.0f} V "
        f"(range limit {budget.max_range(tx_voltage):.2f} m)"
    )

    # Inventory: every powered node, all channels.
    inventory = TdmaInventory(
        nodes=[c.protocol for c in powered],
        initial_q=3,
        channels=("temperature", "humidity", "strain"),
        seed=99,
    )
    collected = inventory.inventory_all()

    print(f"Inventoried {len(collected)} nodes:")
    for node_id in sorted(collected):
        reports = collected[node_id]
        values = {r.channel: r.value for r in reports}
        print(
            f"  node {node_id:2d} @ {distances[node_id]:.2f} m: "
            f"T={values.get('temperature', float('nan')):6.2f} C  "
            f"RH={values.get('humidity', float('nan')):6.2f} %  "
            f"strain={values.get('strain', float('nan')):8.1f} ue"
        )

    # Round efficiency statistics.
    probe = TdmaInventory(nodes=[c.protocol for c in powered], initial_q=3, seed=1)
    for c in powered:
        c.protocol.power_cycle()
    round_result = probe.run_round()
    print(
        f"One Q={round_result.q} round: {round_result.singulated} singulated, "
        f"{round_result.collisions} collisions, {round_result.empties} empty "
        f"({round_result.efficiency:.0%} efficiency)"
    )


if __name__ == "__main__":
    main()
