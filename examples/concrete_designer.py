"""Concrete designer: size an EcoCapsule deployment for a building.

A pre-construction planning tool built on the library's design helpers:

* shell material vs building height (Eqn. 4 + thin-shell limits);
* Helmholtz resonator geometry for the host concrete's S-wave speed;
* prism angle for the host concrete;
* reader placement: how many reader stations cover a wall of given
  size at the 250 V rail.

Run with ``python examples/concrete_designer.py [height_m]``.
"""

from __future__ import annotations

import math
import sys

from repro.acoustics import (
    StructureGeometry,
    WavePrism,
    design_resonator,
    paper_resonator,
)
from repro.link import PowerUpLink
from repro.materials import PLA, get_concrete
from repro.node import SphericalShell, resin_shell, steel_shell


def pick_shell(height: float) -> SphericalShell:
    """Cheapest shell that survives at the base of ``height`` metres."""
    resin = resin_shell()
    if resin.survives(height):
        return resin
    steel = steel_shell()
    if steel.survives(height):
        return steel
    raise SystemExit(
        f"no available shell survives a {height:.0f} m building "
        f"(steel limit: {steel.max_height():.0f} m)"
    )


def main() -> None:
    height = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    concrete = get_concrete("UHPC")
    print(f"Designing for a {height:.0f} m building in {concrete.name}")

    # 1. Shell selection.
    shell = pick_shell(height)
    print(
        f"Shell: {shell.material.name} "
        f"(dP_max {shell.max_pressure / 1e6:.1f} MPa, "
        f"h_max {shell.max_height():.0f} m, "
        f"utilisation {shell.utilisation(height):.0%})"
    )

    # 2. HRA tuned to the host concrete.
    reference = paper_resonator()
    tuned = design_resonator(230e3, concrete.cs)
    print(
        f"HRA cavity: paper geometry {reference.cavity_volume * 1e9:.2f} mm^3 -> "
        f"tuned {tuned.cavity_volume * 1e9:.2f} mm^3 for Cs={concrete.cs:.0f} m/s "
        f"(f_r {tuned.resonant_frequency(concrete.cs) / 1e3:.0f} kHz)"
    )

    # 3. Prism angle for this concrete.
    prism = WavePrism(PLA, concrete.medium)
    low, high = prism.critical_angles
    best = prism.recommend_angle()
    print(
        f"Prism: S-only window [{math.degrees(low):.0f}, "
        f"{math.degrees(high):.0f}] deg, recommended {math.degrees(best):.0f} deg"
    )

    # 4. Reader coverage of a 20 m wall at the 250 V rail.
    wall = StructureGeometry(
        "facade wall", length=20.0, thickness=0.20, medium=concrete.medium
    )
    budget = PowerUpLink(wall)
    reach = budget.max_range(250.0)
    stations = math.ceil(wall.length / (2.0 * reach))
    print(
        f"Coverage: one station reaches {reach:.1f} m each way at 250 V -> "
        f"{stations} station(s) for a {wall.length:.0f} m wall"
    )


if __name__ == "__main__":
    main()
