"""Building dashboard: surveys of several walls rolled into one view.

The whole-system demo: three self-sensing walls are surveyed through
the wall-session simulator, every capsule's strain history feeds the
degradation detector, and the building monitor rolls the results into
the facility manager's dashboard -- grades per wall, an attention list,
and the building headline.

Run with ``python examples/building_dashboard.py``.
"""

from __future__ import annotations

import random

from repro.acoustics import StructureGeometry
from repro.link import PlacedNode, PowerUpLink, WallSession
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment
from repro.shm import BuildingMonitor, DamageDetector, synthesize_history


def survey_wall(wall_name, length, node_specs, tx_voltage, seed):
    """Run one wall session; return (powered ids, dark ids, strains)."""
    concrete = get_concrete("NC")
    wall = StructureGeometry(
        wall_name, length=length, thickness=0.20, medium=concrete.medium
    )
    nodes = [
        PlacedNode(
            capsule=EcoCapsule(
                node_id=node_id,
                environment=Environment(strain=strain),
                seed=seed + node_id,
            ),
            distance=distance,
        )
        for node_id, distance, strain in node_specs
    ]
    session = WallSession(
        budget=PowerUpLink(wall),
        nodes=nodes,
        tx_voltage=tx_voltage,
        channels=("strain",),
        seed=seed,
    )
    result = session.run()
    strains = {
        node_id: reports[0].value for node_id, reports in result.reports.items()
    }
    return result.powered_nodes, result.dark_nodes, strains


def main() -> None:
    monitor = BuildingMonitor(name="Riverside Tower")
    detector = DamageDetector()
    rng = random.Random(77)

    walls = {
        "ground-floor wall": (10.0, [(1, 0.8, 95.0), (2, 2.2, 110.0), (3, 4.0, 102.0)], 250.0),
        "parking garage wall": (12.0, [(4, 1.0, 180.0), (5, 3.0, 240.0)], 250.0),
        "roof parapet": (6.0, [(6, 0.5, 60.0), (7, 5.8, 70.0)], 100.0),
    }

    # Degradation histories: capsule 5 (garage) has been creeping for months.
    histories = {
        node_id: synthesize_history(n_days=720, seed=200 + node_id)
        for node_id in range(1, 8)
    }
    histories[5] = synthesize_history(
        n_days=720, degradation_start=450, degradation_rate=1.2, seed=205
    )

    for wall_name, (length, specs, voltage) in walls.items():
        powered, dark, strains = survey_wall(
            wall_name, length, specs, voltage, seed=rng.randrange(1000)
        )
        alarms = {}
        for node_id in powered:
            alarm = detector.detect(histories[node_id])
            if alarm is not None:
                alarms[node_id] = alarm
        monitor.record_survey(
            wall_name, powered=powered, dark=dark, strains=strains, alarms=alarms
        )

    print(f"=== {monitor.name} structural dashboard ===")
    for wall in monitor.walls():
        print(
            f"{wall.wall:22s} grade={wall.grade:12s} "
            f"reachability={wall.reachability:.0%}"
        )
    print(f"Building grade: {monitor.building_grade().upper()}")
    print("Attention list:")
    for status in monitor.attention_list():
        if not status.reachable:
            print(f"  node {status.node_id} ({status.wall}): UNREACHABLE")
        else:
            print(
                f"  node {status.node_id} ({status.wall}): "
                f"{status.alarm.severity} since day {status.alarm.day:.0f} "
                f"({status.alarm.drift_estimate:+.2f} ue/day)"
            )
    counts = monitor.summary()
    print(
        "Fleet: "
        + ", ".join(f"{g}: {n}" for g, n in counts.items() if n)
    )


if __name__ == "__main__":
    main()
