"""Footbridge monitoring: the pilot study's analytics on synthetic data.

Reproduces the Sec. 6 pipeline: generate the July-2021 sensor month
(with the 15-23 July tropical-storm anomaly), detect anomalies on the
response channels, cross-validate the sensors against each other, check
structural-limit compliance, and render the Fig. 21(c)-style
per-section health panel.

Run with ``python examples/footbridge_monitoring.py``.
"""

from __future__ import annotations

import numpy as np

from repro.shm import (
    BridgeMonitor,
    Footbridge,
    JulyTimeSeriesGenerator,
    SECTION_NAMES,
    check_compliance,
    cross_validate,
    detect_anomalies,
)


def main() -> None:
    bridge = Footbridge()
    print(
        f"Bridge: {bridge.total_length} m ({bridge.main_span} m main + "
        f"{bridge.side_span} m side), {bridge.conventional_count} conventional "
        f"sensors + {bridge.ecocapsule_count} EcoCapsules"
    )

    generator = JulyTimeSeriesGenerator(samples_per_hour=12, seed=2021)
    hours, acceleration = generator.acceleration(0, scale=0.012)
    _, stress = generator.stress(0, mean=-60.0, swing=10.0)

    # Anomaly detection on both response channels.
    accel_windows = detect_anomalies(hours, acceleration)
    stress_windows = detect_anomalies(hours, stress - float(np.median(stress)))
    print("Acceleration anomalies (day-of-July ranges):")
    for w in accel_windows:
        print(f"  day {w.start_hour / 24 + 1:.1f} -> {w.end_hour / 24 + 1:.1f}")
    print("Stress anomalies:")
    for w in stress_windows:
        print(f"  day {w.start_hour / 24 + 1:.1f} -> {w.end_hour / 24 + 1:.1f}")
    verified = cross_validate(accel_windows, stress_windows)
    print(f"Cross-sensor mutual verification: {'PASS' if verified else 'FAIL'}")

    # Structural compliance.
    report = check_compliance(bridge.limits, acceleration, stress)
    print(
        f"Compliance: |a|max={report.max_abs_acceleration:.3f} m/s^2 "
        f"(limit {bridge.limits.max_vertical_acceleration}), "
        f"|s|max={report.max_abs_stress_mpa:.1f} MPa "
        f"(limit {bridge.limits.max_steel_stress / 1e6:.0f}) -> "
        f"{'OK' if report.compliant else 'VIOLATION'}"
    )

    # Fig. 21(c): the per-section health panel for one busy afternoon.
    monitor = BridgeMonitor(bridge)
    counts = {"A": 1, "B": 3, "C": 1, "D": 3, "E": 0}
    healths = monitor.update(counts)
    print("Section health panel:")
    for h in healths:
        print(
            f"  Section {h.section}: No.{h.pedestrians}  Health {h.grade}  "
            f"Speed {h.mean_speed:.1f} m/s"
        )
    print(f"Bridge grade: {monitor.bridge_grade()}")


if __name__ == "__main__":
    main()
