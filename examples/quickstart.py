"""Quickstart: power up one EcoCapsule in a wall and read its sensors.

Walks the whole stack end to end:

1. describe a concrete wall and place a node inside it;
2. design the injection (prism angle) and check the charging budget;
3. wake the node (cold start) and run the Gen2-style handshake;
4. request temperature / humidity / strain readings over the link.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import math

from repro.acoustics import StructureGeometry, WavePrism
from repro.link import PowerUpLink
from repro.materials import PLA, get_concrete
from repro.node import EcoCapsule, Environment
from repro.protocol import Ack, Query, ReadSensor, SensorReport


def main() -> None:
    # 1. The structure: a 20 cm load-bearing wall cast from NC.
    concrete = get_concrete("NC")
    wall = StructureGeometry(
        "demo wall", length=10.0, thickness=0.20, medium=concrete.medium
    )
    print(f"Wall: {wall.name}, {wall.thickness * 100:.0f} cm {concrete.name}")

    # 2. Injection design: the prism keeps only S-waves in the wall.
    prism = WavePrism(PLA, concrete.medium)
    low, high = prism.critical_angles
    best = prism.recommend_angle()
    print(
        f"S-only window: [{math.degrees(low):.0f}, {math.degrees(high):.0f}] deg; "
        f"recommended incidence {math.degrees(best):.0f} deg"
    )

    # 3. Charging budget: how far can we power a node at 200 V?
    budget = PowerUpLink(wall)
    node_distance = 1.5
    print(f"Max power-up range at 200 V: {budget.max_range(200.0):.2f} m")
    needed = budget.minimum_voltage(node_distance)
    print(f"Node at {node_distance} m needs {needed:.0f} V drive")

    # 4. Wake the node and read sensors through the protocol.
    capsule = EcoCapsule(
        node_id=7,
        environment=Environment(temperature=26.5, humidity=72.0, strain=110.0),
        seed=42,
    )
    field = budget.node_voltage(node_distance, tx_voltage=200.0)
    capsule.apply_field(field)
    print(
        f"Field at node: {field:.2f} V -> powered={capsule.is_powered}, "
        f"cold start {capsule.cold_start_time() * 1e3:.1f} ms"
    )

    reply = capsule.handle(Query(q=0))
    assert reply is not None, "single node with Q=0 must answer in slot 0"
    capsule.handle(Ack(rn16=reply.rn16))
    for channel in ("temperature", "humidity", "strain"):
        report = capsule.handle(ReadSensor(channel=channel))
        assert isinstance(report, SensorReport)
        print(f"  {channel:12s} = {report.value:8.2f}")

    print("Quickstart complete.")


if __name__ == "__main__":
    main()
