"""Capsule locator: find implanted EcoCapsules by round-trip ranging.

The maintenance workflow the paper's unknown-position problem motivates:
before drilling into a self-sensing wall, the operator attaches the
reader at a few stations, ranges every capsule from its backscatter
round-trip time, and triangulates positions -- then cross-checks the
located capsules' strain reports against their positions.

Run with ``python examples/capsule_locator.py``.
"""

from __future__ import annotations

import random

from repro.acoustics import StructureGeometry
from repro.link import PlacedNode, PowerUpLink, WallLocalizer, WallSession
from repro.materials import get_concrete
from repro.node import EcoCapsule, Environment


def main() -> None:
    concrete = get_concrete("NC")
    wall = StructureGeometry(
        "locator wall", length=20.0, thickness=0.20, medium=concrete.medium
    )
    rng = random.Random(31)
    true_positions = sorted(rng.uniform(0.5, 19.5) for _ in range(6))
    print("True capsule positions (hidden from the operator):")
    print("  " + "  ".join(f"{p:5.2f} m" for p in true_positions))

    # Step 1: localize from three reader stations.
    localizer = WallLocalizer(
        station_positions=[0.0, 10.0, 20.0],
        wave_speed=concrete.cs,
        timing_jitter=1e-6,
        seed=8,
    )
    estimates = localizer.survey(true_positions)
    print("Located positions (1 us round-trip timing):")
    for true, (estimate, residual) in zip(true_positions, estimates):
        print(
            f"  {estimate:5.2f} m  (true {true:5.2f}, error "
            f"{abs(estimate - true) * 1e3:4.1f} mm, residual {residual * 1e3:.1f} mm)"
        )

    # Step 2: read each located capsule from its nearest station.
    budget = PowerUpLink(wall)
    nodes = []
    for i, position in enumerate(true_positions):
        nearest = min(localizer.station_positions, key=lambda s: abs(s - position))
        nodes.append(
            PlacedNode(
                capsule=EcoCapsule(
                    node_id=i + 1,
                    environment=Environment(strain=rng.uniform(-150.0, 250.0)),
                    seed=60 + i,
                ),
                distance=abs(position - nearest),
            )
        )
    session = WallSession(
        budget=budget, nodes=nodes, tx_voltage=250.0, channels=("strain",), seed=9
    )
    result = session.run()
    print(f"Strain map ({len(result.reports)} capsules read):")
    for (position, _), node in zip(estimates, nodes):
        reports = result.reports.get(node.capsule.node_id, [])
        if reports:
            print(f"  x = {position:5.2f} m : strain {reports[0].value:+7.1f} ue")
        else:
            print(f"  x = {position:5.2f} m : unreachable at this voltage")


if __name__ == "__main__":
    main()
