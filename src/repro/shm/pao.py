"""Pedestrian-area-occupancy (PAO) health grading (paper Table 2, Sec. 6).

Bridge health is graded A-F by the average deck area each pedestrian
occupies (m^2/ped), per the level-of-service standards the paper cites.
Table 2 gives the regional thresholds; the paper's headline rules:
H > 2 is healthy, H <= 2 risks structural damage, H <= 1 risks collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ReproError


class PaoError(ReproError):
    """Invalid PAO computation input."""


#: Table 2: lower bounds of grades A-E per region (F is everything below E).
#: Grade g applies when PAO > threshold[g]; thresholds descend A -> E.
PAO_THRESHOLDS: Dict[str, Dict[str, float]] = {
    "united_states": {"A": 3.85, "B": 2.30, "C": 1.39, "D": 0.93, "E": 0.46},
    "hong_kong": {"A": 3.25, "B": 2.16, "C": 1.40, "D": 0.80, "E": 0.52},
    "bangkok": {"A": 2.38, "B": 1.60, "C": 0.98, "D": 0.65, "E": 0.37},
    "manila": {"A": 3.25, "B": 2.05, "C": 1.65, "D": 1.25, "E": 0.56},
}

GRADES = ("A", "B", "C", "D", "E", "F")


def pedestrian_area_occupancy(area: float, pedestrians: int) -> float:
    """PAO H = area / pedestrians (m^2/ped); infinite for an empty deck."""
    if area <= 0.0:
        raise PaoError(f"area must be positive, got {area}")
    if pedestrians < 0:
        raise PaoError(f"pedestrian count cannot be negative, got {pedestrians}")
    if pedestrians == 0:
        return float("inf")
    return area / pedestrians


def grade(pao: float, region: str = "hong_kong") -> str:
    """Health grade A-F for a PAO value under ``region``'s thresholds.

    The bridge of the pilot study is in Hong Kong, hence the default.
    """
    if pao < 0.0:
        raise PaoError(f"PAO cannot be negative, got {pao}")
    try:
        thresholds = PAO_THRESHOLDS[region]
    except KeyError:
        raise PaoError(
            f"unknown region {region!r}; available: {sorted(PAO_THRESHOLDS)}"
        ) from None
    for letter in ("A", "B", "C", "D", "E"):
        if pao > thresholds[letter]:
            return letter
    return "F"


def is_safe(pao: float) -> bool:
    """The paper's headline rule: H > 2 means the bridge is in good health."""
    return pao > 2.0


def collapse_risk(pao: float) -> bool:
    """H <= 1: the bridge is overloaded and will collapse (Sec. 6)."""
    return pao <= 1.0


@dataclass(frozen=True)
class SectionHealth:
    """Per-section snapshot matching the Fig. 21(c) dashboard rows."""

    section: str
    pedestrians: int
    pao: float
    grade: str
    mean_speed: float  # m/s

    @property
    def healthy(self) -> bool:
        return self.grade in ("A", "B")


def grade_sections(
    section_areas: Dict[str, float],
    pedestrian_counts: Dict[str, int],
    speeds: Dict[str, float],
    region: str = "hong_kong",
) -> List[SectionHealth]:
    """Grade every bridge section (the Fig. 21c real-time panel).

    Raises:
        PaoError: when the three mappings disagree on sections.
    """
    if set(section_areas) != set(pedestrian_counts) or set(section_areas) != set(speeds):
        raise PaoError("section keys of areas/counts/speeds must match")
    out: List[SectionHealth] = []
    for section in sorted(section_areas):
        pao = pedestrian_area_occupancy(
            section_areas[section], pedestrian_counts[section]
        )
        out.append(
            SectionHealth(
                section=section,
                pedestrians=pedestrian_counts[section],
                pao=pao,
                grade=grade(pao, region),
                mean_speed=speeds[section],
            )
        )
    return out


def worst_grade(healths: List[SectionHealth]) -> str:
    """The bridge-level grade: the worst of its sections."""
    if not healths:
        raise PaoError("no section healths to grade")
    return max((h.grade for h in healths), key=GRADES.index)
