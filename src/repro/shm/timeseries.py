"""Synthetic pilot-study time series (paper Fig. 21a/b, Figs. 26-36).

The paper shows July-2021 measurements from the footbridge's sensors:
acceleration and stress (Fig. 21a/b), plus the appendix environmental
channels (humidity, temperature, barometric pressure) and six more
accelerometers and two stress gauges.  The distinguishing feature is
the 15-23 July window, when a tropical cyclone and storms drove visible
anomalies in every response channel.

This generator produces statistically matched series: diurnal cycles,
pedestrian-traffic modulation, sensor noise, and the storm window's
elevated variance -- so the monitoring pipeline (anomaly detection,
cross-sensor validation, PAO analytics) runs on realistic data.
Timestamps are hours since 1 July 2021 00:00 local.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .bridge import ShmError

#: The storm window of July 2021 (paper Sec. 6): 15th-23rd.
STORM_START_HOUR = 14 * 24.0  # 00:00 on 15 July (day 15 starts after 14 days)
STORM_END_HOUR = 23 * 24.0  # end of 23 July

#: Hours in July.
JULY_HOURS = 31 * 24.0


def in_storm(hours: np.ndarray) -> np.ndarray:
    """Boolean mask: which timestamps fall inside the storm window."""
    hours = np.asarray(hours, dtype=float)
    return (hours >= STORM_START_HOUR) & (hours < STORM_END_HOUR)


@dataclass
class JulyTimeSeriesGenerator:
    """Generates the July-2021 channel set at a configurable cadence.

    Args:
        samples_per_hour: Sampling cadence (the paper's plots are
            minute-scale; 12/hour keeps arrays small for tests).
        seed: RNG seed; each channel derives an independent stream.
    """

    samples_per_hour: int = 12
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.samples_per_hour < 1:
            raise ShmError("samples_per_hour must be >= 1")
        self._channel_counter = 0

    # ------------------------------------------------------------------
    # Time base
    # ------------------------------------------------------------------

    def hours(self) -> np.ndarray:
        """Timestamps (hours since 1 July 00:00) covering the month."""
        n = int(JULY_HOURS * self.samples_per_hour)
        return np.arange(n) / self.samples_per_hour

    def _rng(self, channel: str) -> np.random.Generator:
        # A stable digest, NOT builtin hash(): string hashing is salted
        # per interpreter process (PYTHONHASHSEED), which would make the
        # "same seed" draw different channels in different runs.
        digest = hashlib.sha256(f"{self.seed}:{channel}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    @staticmethod
    def _diurnal(hours: np.ndarray, phase: float = 15.0) -> np.ndarray:
        """A daily cycle peaking at ``phase`` o'clock."""
        return np.cos(2.0 * math.pi * (hours - phase) / 24.0)

    @staticmethod
    def _pedestrian_load(hours: np.ndarray) -> np.ndarray:
        """Relative pedestrian traffic: commute peaks, quiet nights."""
        tod = np.mod(hours, 24.0)
        morning = np.exp(-0.5 * ((tod - 8.5) / 1.5) ** 2)
        evening = np.exp(-0.5 * ((tod - 18.0) / 2.0) ** 2)
        lunch = 0.5 * np.exp(-0.5 * ((tod - 12.5) / 1.0) ** 2)
        weekday = np.where(np.mod(np.floor(hours / 24.0) + 3.0, 7.0) < 5.0, 1.0, 0.55)
        return weekday * (0.05 + morning + evening + lunch)

    # ------------------------------------------------------------------
    # Environmental channels (Figs. 26-28)
    # ------------------------------------------------------------------

    def humidity(self) -> Tuple[np.ndarray, np.ndarray]:
        """Relative humidity (%), 50-100 band, saturating in the storm."""
        hours = self.hours()
        rng = self._rng("humidity")
        base = 75.0 - 8.0 * self._diurnal(hours)
        storm = np.where(in_storm(hours), 18.0, 0.0)
        noise = rng.normal(0.0, 2.0, size=hours.size)
        return hours, np.clip(base + storm + noise, 50.0, 100.0)

    def temperature(self) -> Tuple[np.ndarray, np.ndarray]:
        """Air temperature (C), 24-36 band, dipping in the storm."""
        hours = self.hours()
        rng = self._rng("temperature")
        base = 30.0 + 3.5 * self._diurnal(hours)
        storm = np.where(in_storm(hours), -3.0, 0.0)
        noise = rng.normal(0.0, 0.4, size=hours.size)
        return hours, np.clip(base + storm + noise, 24.0, 36.0)

    def barometric_pressure(self) -> Tuple[np.ndarray, np.ndarray]:
        """Barometric pressure (kPa), 97.5-100, dropping during the cyclone."""
        hours = self.hours()
        rng = self._rng("pressure")
        base = 99.2 + 0.25 * self._diurnal(hours, phase=10.0)
        # The cyclone: a pronounced trough centred in the storm window.
        centre = 0.5 * (STORM_START_HOUR + STORM_END_HOUR)
        width = (STORM_END_HOUR - STORM_START_HOUR) / 3.0
        trough = -1.4 * np.exp(-0.5 * ((hours - centre) / width) ** 2)
        noise = rng.normal(0.0, 0.05, size=hours.size)
        return hours, np.clip(base + trough + noise, 97.5, 100.0)

    # ------------------------------------------------------------------
    # Response channels (Fig. 21a/b, Figs. 29-36)
    # ------------------------------------------------------------------

    def acceleration(
        self,
        sensor_index: int = 0,
        scale: float = 0.02,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Deck acceleration (m/s^2): traffic-driven, storm-amplified.

        ``scale`` sets the quiet-day amplitude envelope; the appendix
        sensors span 0.015-0.04 m/s^2 depending on placement.  The storm
        window raises the envelope ~2.5x, staying below the 0.7 m/s^2
        structural limit (the bridge never approached damage).
        """
        if scale <= 0.0:
            raise ShmError("scale must be positive")
        hours = self.hours()
        rng = self._rng(f"acceleration{sensor_index}")
        envelope = scale * (0.3 + self._pedestrian_load(hours))
        envelope = envelope * np.where(in_storm(hours), 2.5, 1.0)
        return hours, rng.normal(0.0, 1.0, size=hours.size) * envelope

    def stress(
        self,
        sensor_index: int = 0,
        mean: float = -60.0,
        swing: float = 10.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Steel stress (MPa): thermal cycling + load + storm excursions.

        Fig. 21(b)'s gauges sit around -60 MPa (compression; the sign
        depends on the sensor's posture) with ~10 MPa daily swings and
        larger storm-window excursions, far below the 355 MPa limit.
        """
        hours = self.hours()
        rng = self._rng(f"stress{sensor_index}")
        thermal = swing * self._diurnal(hours)
        load = -0.35 * swing * self._pedestrian_load(hours)
        storm = np.where(
            in_storm(hours),
            -1.4 * swing
            + 0.8 * swing * np.sin(2.0 * math.pi * hours / 18.0),
            0.0,
        )
        noise = rng.normal(0.0, swing * 0.08, size=hours.size)
        return hours, mean + thermal + load + storm + noise

    def wind_speed(self) -> Tuple[np.ndarray, np.ndarray]:
        """Wind speed (m/s) at deck level: sea-breeze cycle + cyclone.

        One of Fig. 25's "loads" monitoring items.  Quiet days sit in
        the 2-8 m/s band; the cyclone week drives gale-force gusts.
        """
        hours = self.hours()
        rng = self._rng("wind")
        base = 5.0 + 2.0 * self._diurnal(hours, phase=14.0)
        storm = np.where(in_storm(hours), 14.0, 0.0)
        gusts = np.abs(rng.normal(0.0, 1.5 + np.where(in_storm(hours), 4.0, 0.0)))
        return hours, np.maximum(base + storm + gusts, 0.0)

    def midspan_deflection(self) -> Tuple[np.ndarray, np.ndarray]:
        """Mid-span vertical deflection (m), downward positive.

        Driven by pedestrian load and thermal expansion, amplified by
        the storm's wind loading; stays well below the 0.1083 m limit.
        """
        hours = self.hours()
        rng = self._rng("deflection")
        pedestrians = 0.004 * self._pedestrian_load(hours)
        thermal = 0.003 * self._diurnal(hours)
        storm = np.where(in_storm(hours), 0.006, 0.0)
        noise = rng.normal(0.0, 0.0004, size=hours.size)
        return hours, np.abs(pedestrians + thermal + storm + noise) + 0.001

    def pedestrian_counts(
        self, section_capacity: int = 60
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pedestrians on one bridge section over the month.

        COVID-era social distancing kept the deck sparse (the paper:
        health stayed at B or above all year); the storm window empties
        the bridge further.
        """
        if section_capacity < 1:
            raise ShmError("section capacity must be >= 1")
        hours = self.hours()
        rng = self._rng("pedestrians")
        lam = section_capacity * 0.22 * self._pedestrian_load(hours)
        lam = lam * np.where(in_storm(hours), 0.25, 1.0)
        return hours, rng.poisson(np.maximum(lam, 0.0)).astype(int)

    # ------------------------------------------------------------------
    # Bundles
    # ------------------------------------------------------------------

    def appendix_channels(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """All appendix series: Figs. 26-36 in one mapping."""
        channels: Dict[str, Tuple[np.ndarray, np.ndarray]] = {
            "humidity": self.humidity(),
            "temperature": self.temperature(),
            "barometric_pressure": self.barometric_pressure(),
        }
        # Scales put each sensor's peak excursions inside its figure's
        # visible band (+/-0.08 m/s^2 for most, +/-0.03 for sensor #4).
        accel_scales = (0.006, 0.006, 0.006, 0.002, 0.005, 0.006)
        for i, scale in enumerate(accel_scales):
            channels[f"acceleration_{i + 1}"] = self.acceleration(i, scale=scale)
        channels["stress_1"] = self.stress(0, mean=4.5, swing=1.3)
        channels["stress_2"] = self.stress(1, mean=-10.0, swing=1.5)
        return channels
