"""EcoCapsule vs conventional SHM instrumentation (Sec. 6's argument).

The paper closes its pilot study with a cost/reliability comparison:
the bridge's 88 conventional sensors cost over 10 M USD and measure
external parameters only, while five EcoCapsules cost under 1 k USD,
measure from *inside* the concrete, and are immune to weather and
man-made interference -- "more trustworthy than conventional sensors
and benefit from reducing false positives".

This module quantifies that argument on the synthetic pilot data:

* a cost model (per-sensor + cabling + acquisition for wired systems;
  per-capsule + reader for EcoCapsules);
* a false-positive study: conventional surface sensors pick up weather
  and interference transients that the anomaly detector flags, while
  embedded capsules see only the structural signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from .bridge import ShmError
from .monitor import detect_anomalies
from .timeseries import JulyTimeSeriesGenerator, in_storm


@dataclass(frozen=True)
class CostModel:
    """Deployment cost (USD) for the two instrumentation options."""

    conventional_per_sensor: float = 80_000.0
    conventional_cabling_per_sensor: float = 25_000.0
    conventional_acquisition_base: float = 800_000.0
    ecocapsule_unit: float = 10.0
    ecocapsule_sensors_per_unit: float = 150.0
    reader_station: float = 3_000.0

    def conventional_total(self, sensors: int) -> float:
        """Total cost of a wired deployment with ``sensors`` sensors."""
        if sensors < 0:
            raise ShmError("sensor count cannot be negative")
        return (
            sensors
            * (self.conventional_per_sensor + self.conventional_cabling_per_sensor)
            + self.conventional_acquisition_base
        )

    def ecocapsule_total(self, capsules: int, readers: int = 1) -> float:
        """Total cost of an EcoCapsule deployment."""
        if capsules < 0 or readers < 0:
            raise ShmError("counts cannot be negative")
        return (
            capsules * (self.ecocapsule_unit + self.ecocapsule_sensors_per_unit)
            + readers * self.reader_station
        )

    def cost_ratio(self, sensors: int = 88, capsules: int = 5) -> float:
        """Conventional / EcoCapsule cost ratio (paper: >10M vs <1k USD
        for the sensors themselves; the capsule system adds one reader)."""
        eco = self.ecocapsule_total(capsules)
        if eco <= 0.0:
            raise ShmError("EcoCapsule deployment cost collapsed to zero")
        return self.conventional_total(sensors) / eco


@dataclass
class FalsePositiveStudy:
    """Weather/interference false alarms: surface vs embedded sensing.

    Surface-mounted sensors add weather-driven transients (wind gusts
    rattling the mount, rain on the housing, RF interference spikes) on
    top of the structural signal; embedded capsules, being inside the
    concrete, see the structural signal only.  The study counts anomaly
    windows each sensor reports outside the true storm window -- those
    are false positives from the structural-health standpoint.
    """

    generator: JulyTimeSeriesGenerator = field(
        default_factory=lambda: JulyTimeSeriesGenerator(samples_per_hour=6, seed=41)
    )
    surface_disturbance_scale: float = 5.0
    disturbance_hours: float = 18.0
    n_disturbances: int = 3
    seed: int = 13

    def surface_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """A conventional surface accelerometer's month: structural
        signal plus weather/interference transients."""
        hours, structural = self.generator.acceleration(0, scale=0.006)
        rng = np.random.default_rng(self.seed)
        contaminated = structural.copy()
        sigma = float(np.std(structural))
        span = self.disturbance_hours
        for _ in range(self.n_disturbances):
            # A multi-hour disturbance outside the storm window.
            while True:
                start = float(rng.uniform(0.0, hours[-1] - 2.0 * span))
                if not in_storm(np.array([start, start + span])).any():
                    break
            mask = (hours >= start) & (hours < start + span)
            contaminated[mask] += rng.normal(
                0.0, self.surface_disturbance_scale * sigma, size=int(mask.sum())
            )
        return hours, contaminated

    def embedded_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """An EcoCapsule's month: the structural signal only."""
        return self.generator.acceleration(0, scale=0.006)

    def run(self) -> "FalsePositiveResult":
        """Count true/false anomaly windows for both sensor classes."""
        from .timeseries import STORM_END_HOUR, STORM_START_HOUR

        def classify(hours: np.ndarray, values: np.ndarray) -> Tuple[int, int]:
            windows = detect_anomalies(hours, values)
            true_hits = 0
            false_hits = 0
            for window in windows:
                overlaps_storm = (
                    window.start_hour < STORM_END_HOUR
                    and STORM_START_HOUR < window.end_hour
                )
                if overlaps_storm:
                    true_hits += 1
                else:
                    false_hits += 1
            return true_hits, false_hits

        surface_true, surface_false = classify(*self.surface_series())
        embedded_true, embedded_false = classify(*self.embedded_series())
        return FalsePositiveResult(
            surface_true=surface_true,
            surface_false=surface_false,
            embedded_true=embedded_true,
            embedded_false=embedded_false,
        )


@dataclass(frozen=True)
class FalsePositiveResult:
    surface_true: int
    surface_false: int
    embedded_true: int
    embedded_false: int

    @property
    def embedded_reduces_false_positives(self) -> bool:
        """The paper's claim: embedded sensing cuts false positives."""
        return self.embedded_false < self.surface_false

    @property
    def both_catch_the_storm(self) -> bool:
        return self.surface_true > 0 and self.embedded_true > 0
