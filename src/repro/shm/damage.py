"""Long-term damage detection on embedded-capsule data.

The paper's motivation is long-term structural degradation (the Surfside
collapse was "long-term reinforced concrete structural support
degradation").  The EcoCapsules' value is persistent internal strain
monitoring; the analytics that turn those readings into an early warning
are:

* a per-capsule baseline learned over a healthy period;
* drift detection via one-sided CUSUM on the daily-mean strain -- the
  standard change-point detector for slow degradation;
* severity grading against the host concrete's strain capacity.

The module also provides a degradation injector so the detector can be
exercised end-to-end on synthetic multi-month histories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import ReproError


class DamageError(ReproError):
    """Invalid damage-detection configuration or data."""


@dataclass(frozen=True)
class StrainHistory:
    """A capsule's strain record: (day index, daily-mean microstrain)."""

    days: np.ndarray
    strain: np.ndarray

    def __post_init__(self) -> None:
        if self.days.shape != self.strain.shape:
            raise DamageError("days and strain must have equal length")
        if self.days.size < 2:
            raise DamageError("history too short")


def synthesize_history(
    n_days: int = 360,
    baseline: float = 120.0,
    seasonal_amplitude: float = 25.0,
    noise_rms: float = 6.0,
    degradation_start: Optional[int] = None,
    degradation_rate: float = 0.0,
    seed: int = 0,
) -> StrainHistory:
    """A multi-month daily-mean strain record, optionally degrading.

    Healthy strain cycles with the seasons around the as-built baseline;
    degradation adds a linear creep of ``degradation_rate`` ue/day from
    ``degradation_start`` -- the slow drift a corroding reinforcement or
    opening crack produces.
    """
    if n_days < 2:
        raise DamageError("need at least two days")
    rng = np.random.default_rng(seed)
    days = np.arange(n_days, dtype=float)
    seasonal = seasonal_amplitude * np.sin(2.0 * math.pi * days / 365.25)
    strain = baseline + seasonal + rng.normal(0.0, noise_rms, size=n_days)
    if degradation_start is not None:
        if not 0 <= degradation_start < n_days:
            raise DamageError("degradation start outside the history")
        ramp = np.maximum(0.0, days - degradation_start) * degradation_rate
        strain = strain + ramp
    return StrainHistory(days=days, strain=strain)


@dataclass(frozen=True)
class DamageAlarm:
    """A raised degradation alarm."""

    day: float
    cusum: float
    drift_estimate: float  # ue/day since the detected onset
    severity: str  # 'watch', 'warning', 'critical'

    def to_dict(self) -> Dict[str, Any]:
        """A stable JSON-ready form (checkpoint/store/HTTP payloads)."""
        return {
            "day": float(self.day),
            "cusum": float(self.cusum),
            "drift_estimate": float(self.drift_estimate),
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DamageAlarm":
        if not isinstance(payload, Mapping):
            raise DamageError("damage alarm must be an object")
        try:
            return cls(
                day=float(payload["day"]),
                cusum=float(payload["cusum"]),
                drift_estimate=float(payload["drift_estimate"]),
                severity=str(payload["severity"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DamageError(f"malformed damage alarm: {exc!r}")


@dataclass
class DamageDetector:
    """One-sided CUSUM drift detector with severity grading.

    The detector deseasonalises against the learned baseline year-cycle,
    then accumulates positive residual excursions beyond ``slack`` noise
    sigmas; an alarm raises when the accumulation passes ``threshold``
    sigmas -- the classic (k, h) CUSUM parametrisation.

    Args:
        training_days: Days used to learn the baseline and noise level.
            Must cover a full seasonal cycle (>= 365) for the sin/cos
            fit to extrapolate reliably; shorter windows alias the
            seasonal term into spurious drift.
        slack: CUSUM k in noise sigmas.
        threshold: CUSUM h in noise sigmas.
        warning_drift: ue/day grading the 'warning' severity.
        critical_drift: ue/day grading the 'critical' severity.
        confirmation_days: Extra days past the alarm used to estimate
            the drift rate -- a CUSUM can fire within days of a fast
            onset, far too short a span for a reliable slope.
    """

    training_days: int = 365
    slack: float = 0.5
    threshold: float = 8.0
    warning_drift: float = 0.5
    critical_drift: float = 2.0
    confirmation_days: int = 14

    def __post_init__(self) -> None:
        if self.training_days < 365:
            raise DamageError(
                "training must cover a full seasonal cycle (>= 365 days)"
            )
        if self.slack < 0.0 or self.threshold <= 0.0:
            raise DamageError("slack must be >= 0 and threshold > 0")

    def _baseline_model(
        self, history: StrainHistory
    ) -> Tuple[float, float, float, float]:
        """(mean, seasonal amplitude, seasonal phase, noise sigma)."""
        days = history.days[: self.training_days]
        strain = history.strain[: self.training_days]
        if days.size < self.training_days:
            raise DamageError(
                f"history has {days.size} days; detector needs "
                f"{self.training_days} for training"
            )
        omega = 2.0 * math.pi / 365.25
        # Least squares on [1, sin, cos].
        design = np.column_stack(
            [np.ones_like(days), np.sin(omega * days), np.cos(omega * days)]
        )
        coef, *_ = np.linalg.lstsq(design, strain, rcond=None)
        residual = strain - design @ coef
        sigma = float(np.std(residual))
        if sigma <= 0.0:
            raise DamageError("training residual collapsed to zero variance")
        amplitude = float(np.hypot(coef[1], coef[2]))
        phase = float(np.arctan2(coef[2], coef[1]))
        return float(coef[0]), amplitude, phase, sigma

    def residuals(self, history: StrainHistory) -> np.ndarray:
        """Deseasonalised residuals over the whole history."""
        mean, amplitude, phase, _ = self._baseline_model(history)
        omega = 2.0 * math.pi / 365.25
        model = mean + amplitude * np.sin(omega * history.days + phase)
        return history.strain - model

    def detect(self, history: StrainHistory) -> Optional[DamageAlarm]:
        """Run the CUSUM; return the first alarm or None when healthy."""
        _, _, _, sigma = self._baseline_model(history)
        residual = self.residuals(history)
        k = self.slack * sigma
        h = self.threshold * sigma

        cusum = 0.0
        onset_index: Optional[int] = None
        for i in range(self.training_days, residual.size):
            previous = cusum
            cusum = max(0.0, cusum + residual[i] - k)
            if cusum > 0.0 and previous == 0.0:
                onset_index = i
            if cusum > h:
                day = float(history.days[i])
                onset = onset_index if onset_index is not None else i
                drift = self._estimate_drift(history, residual, onset, i)
                return DamageAlarm(
                    day=day,
                    cusum=cusum,
                    drift_estimate=drift,
                    severity=self._grade(drift),
                )
        return None

    def _estimate_drift(
        self,
        history: StrainHistory,
        residual: np.ndarray,
        onset: int,
        alarm: int,
    ) -> float:
        """Least-squares residual slope from onset through confirmation."""
        end = min(residual.size, alarm + self.confirmation_days + 1)
        window_days = history.days[onset:end]
        window_residual = residual[onset:end]
        if window_days.size < 2:
            return float(window_residual[-1])
        slope, _ = np.polyfit(window_days, window_residual, 1)
        return float(slope)

    def _grade(self, drift: float) -> str:
        if drift >= self.critical_drift:
            return "critical"
        if drift >= self.warning_drift:
            return "warning"
        return "watch"


def strain_capacity_margin(
    current_strain: float, peak_strain: float
) -> float:
    """Fraction of the concrete's strain capacity still unused.

    ``peak_strain`` is Table 1's eps_co (dimensionless); strain inputs
    are in microstrain.
    """
    if peak_strain <= 0.0:
        raise DamageError("peak strain must be positive")
    used = abs(current_strain) * 1e-6 / peak_strain
    return max(0.0, 1.0 - used)
