"""SHM analytics: anomaly detection, cross-validation, health dashboard.

Implements the pilot study's analysis layer (Sec. 6):

* storm/anomaly detection on response channels (the 15-23 July window
  shows elevated variance in both acceleration and stress);
* cross-sensor validation -- "the similar patterns shown in the two
  data types mutually verify that the two sensors are running
  functionally";
* the per-section real-time health panel of Fig. 21(c), fusing
  pedestrian counts (CCTV-style) with the response sensors into PAO
  grades;
* threshold compliance against the bridge's structural limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bridge import Footbridge, SECTION_NAMES, ShmError, StructuralLimits
from .pao import SectionHealth, grade_sections, worst_grade


@dataclass(frozen=True)
class AnomalyWindow:
    """A contiguous run of anomalous hours in one channel."""

    start_hour: float
    end_hour: float

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    def overlaps(self, other: "AnomalyWindow") -> bool:
        return self.start_hour < other.end_hour and other.start_hour < self.end_hour


def rolling_rms(
    hours: np.ndarray, values: np.ndarray, window_hours: float = 24.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Centred rolling RMS of a response channel.

    Assumes uniform sampling (the generator's time base).
    """
    hours = np.asarray(hours, dtype=float)
    values = np.asarray(values, dtype=float)
    if hours.size != values.size:
        raise ShmError("hours and values must have equal length")
    if hours.size < 2:
        raise ShmError("series too short for a rolling window")
    dt = hours[1] - hours[0]
    if dt <= 0.0:
        raise ShmError("timestamps must be increasing")
    n = max(1, int(round(window_hours / dt)))
    squared = values * values
    kernel = np.ones(n) / n
    mean_sq = np.convolve(squared, kernel, mode="same")
    return hours, np.sqrt(mean_sq)


def detect_anomalies(
    hours: np.ndarray,
    values: np.ndarray,
    window_hours: float = 24.0,
    threshold_sigma: float = 2.0,
    min_duration_hours: float = 12.0,
) -> List[AnomalyWindow]:
    """Find windows where the rolling RMS runs above its quiet baseline.

    The baseline is the median rolling RMS; a window opens when the RMS
    exceeds ``median + threshold_sigma * MAD-sigma`` and closes when it
    falls back.  Windows shorter than ``min_duration_hours`` are noise
    and dropped.
    """
    t, rms = rolling_rms(hours, values, window_hours)
    baseline = float(np.median(rms))
    mad = float(np.median(np.abs(rms - baseline)))
    sigma = 1.4826 * mad if mad > 0.0 else float(np.std(rms))
    if sigma <= 0.0:
        return []
    mask = rms > baseline + threshold_sigma * sigma

    windows: List[AnomalyWindow] = []
    start: Optional[float] = None
    for i, flagged in enumerate(mask):
        if flagged and start is None:
            start = t[i]
        elif not flagged and start is not None:
            windows.append(AnomalyWindow(start, t[i]))
            start = None
    if start is not None:
        windows.append(AnomalyWindow(start, float(t[-1])))
    return [w for w in windows if w.duration_hours >= min_duration_hours]


def cross_validate(
    windows_a: Sequence[AnomalyWindow],
    windows_b: Sequence[AnomalyWindow],
) -> bool:
    """True when two channels report overlapping anomalies.

    The paper's mutual-verification argument: matching anomaly patterns
    across acceleration and stress confirm both sensors are functional.
    """
    return any(a.overlaps(b) for a in windows_a for b in windows_b)


@dataclass(frozen=True)
class ComplianceReport:
    """Structural-limit compliance of the response channels."""

    max_abs_acceleration: float
    max_abs_stress_mpa: float
    acceleration_ok: bool
    stress_ok: bool

    @property
    def compliant(self) -> bool:
        return self.acceleration_ok and self.stress_ok


def check_compliance(
    limits: StructuralLimits,
    acceleration: np.ndarray,
    stress_mpa: np.ndarray,
) -> ComplianceReport:
    """Check response series against the bridge's structural limits."""
    acceleration = np.asarray(acceleration, dtype=float)
    stress_mpa = np.asarray(stress_mpa, dtype=float)
    if acceleration.size == 0 or stress_mpa.size == 0:
        raise ShmError("compliance check needs non-empty series")
    max_acc = float(np.max(np.abs(acceleration)))
    max_stress = float(np.max(np.abs(stress_mpa)))
    return ComplianceReport(
        max_abs_acceleration=max_acc,
        max_abs_stress_mpa=max_stress,
        acceleration_ok=max_acc <= limits.max_vertical_acceleration,
        stress_ok=max_stress * 1e6 <= limits.max_steel_stress,
    )


@dataclass
class BridgeMonitor:
    """The real-time dashboard of Fig. 21(c).

    Fuses per-section pedestrian counts (CCTV + response-sensor
    estimates) into PAO health grades, updated once a minute in the
    deployment; here per call.
    """

    bridge: Footbridge
    region: str = "hong_kong"
    history: List[List[SectionHealth]] = field(default_factory=list)

    def update(
        self,
        pedestrian_counts: Dict[str, int],
        speeds: Optional[Dict[str, float]] = None,
    ) -> List[SectionHealth]:
        """Grade every section from a counts snapshot."""
        if set(pedestrian_counts) != set(SECTION_NAMES):
            raise ShmError(
                f"counts must cover sections {SECTION_NAMES}, got "
                f"{sorted(pedestrian_counts)}"
            )
        if speeds is None:
            # Walking speed falls with crowding (fundamental diagram).
            speeds = {}
            for section, count in pedestrian_counts.items():
                area = self.bridge.section_area(section)
                density = count / area
                speeds[section] = max(0.0, 1.4 * (1.0 - density / 0.9)) if count else 0.0
        areas = {s: self.bridge.section_area(s) for s in SECTION_NAMES}
        healths = grade_sections(areas, pedestrian_counts, speeds, self.region)
        self.history.append(healths)
        return healths

    def bridge_grade(self) -> str:
        """Current bridge-level grade (worst section)."""
        if not self.history:
            raise ShmError("no updates recorded yet")
        return worst_grade(self.history[-1])

    def grade_fractions(self) -> Dict[str, float]:
        """Fraction of recorded updates at each bridge-level grade."""
        if not self.history:
            raise ShmError("no updates recorded yet")
        counts: Dict[str, int] = {}
        for snapshot in self.history:
            g = worst_grade(snapshot)
            counts[g] = counts.get(g, 0) + 1
        total = len(self.history)
        return {g: c / total for g, c in sorted(counts.items())}
