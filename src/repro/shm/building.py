"""Building-level aggregation: many self-sensing walls, one health view.

The paper's vision (Fig. 1f) is a whole building cast from self-sensing
concrete.  This layer aggregates per-wall survey results into the view
a facility manager needs: which walls report, which capsules are dark,
whose strain trends demand attention, and an overall building grade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .bridge import ShmError
from .damage import DamageAlarm

#: Wall health grades, best to worst.
WALL_GRADES = ("healthy", "watch", "warning", "critical", "unreachable")


@dataclass(frozen=True)
class CapsuleStatus:
    """The latest knowledge about one implanted capsule."""

    node_id: int
    wall: str
    reachable: bool
    last_strain: Optional[float] = None  # microstrain
    alarm: Optional[DamageAlarm] = None

    @property
    def grade(self) -> str:
        if not self.reachable:
            return "unreachable"
        if self.alarm is None:
            return "healthy"
        return self.alarm.severity

    def to_dict(self) -> Dict[str, Any]:
        """A stable JSON-ready form (checkpoint/store/HTTP payloads)."""
        return {
            "node_id": self.node_id,
            "wall": self.wall,
            "reachable": self.reachable,
            "last_strain": (
                None if self.last_strain is None else float(self.last_strain)
            ),
            "alarm": None if self.alarm is None else self.alarm.to_dict(),
            "grade": self.grade,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CapsuleStatus":
        if not isinstance(payload, Mapping):
            raise ShmError("capsule status must be an object")
        try:
            strain = payload.get("last_strain")
            alarm = payload.get("alarm")
            return cls(
                node_id=int(payload["node_id"]),
                wall=str(payload["wall"]),
                reachable=bool(payload["reachable"]),
                last_strain=None if strain is None else float(strain),
                alarm=None if alarm is None else DamageAlarm.from_dict(alarm),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShmError(f"malformed capsule status: {exc!r}")


@dataclass(frozen=True)
class WallHealth:
    """Aggregated health of one wall."""

    wall: str
    capsules: Tuple[CapsuleStatus, ...]

    def __post_init__(self) -> None:
        if not self.capsules:
            raise ShmError(f"wall {self.wall!r} has no capsules")

    @property
    def reachability(self) -> float:
        return sum(1 for c in self.capsules if c.reachable) / len(self.capsules)

    @property
    def grade(self) -> str:
        """The worst capsule grade; a fully dark wall is 'unreachable'."""
        reachable = [c for c in self.capsules if c.reachable]
        if not reachable:
            return "unreachable"
        worst = max(
            (c.grade for c in reachable), key=WALL_GRADES.index
        )
        return worst

    def to_dict(self) -> Dict[str, Any]:
        """A stable JSON-ready form (checkpoint/store/HTTP payloads)."""
        return {
            "wall": self.wall,
            "grade": self.grade,
            "reachability": self.reachability,
            "capsules": [c.to_dict() for c in self.capsules],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WallHealth":
        if not isinstance(payload, Mapping):
            raise ShmError("wall health must be an object")
        try:
            return cls(
                wall=str(payload["wall"]),
                capsules=tuple(
                    CapsuleStatus.from_dict(c) for c in payload["capsules"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ShmError(f"malformed wall health: {exc!r}")


@dataclass
class BuildingMonitor:
    """Aggregates capsule statuses across a building's walls."""

    name: str = "building"
    _statuses: Dict[Tuple[str, int], CapsuleStatus] = field(default_factory=dict)

    def record(self, status: CapsuleStatus) -> None:
        """Fold in the latest status of one capsule."""
        self._statuses[(status.wall, status.node_id)] = status

    def record_survey(
        self,
        wall: str,
        powered: Sequence[int],
        dark: Sequence[int],
        strains: Optional[Dict[int, float]] = None,
        alarms: Optional[Dict[int, DamageAlarm]] = None,
    ) -> None:
        """Fold in a whole wall-survey outcome."""
        strains = strains or {}
        alarms = alarms or {}
        overlap = set(powered) & set(dark)
        if overlap:
            raise ShmError(f"nodes {sorted(overlap)} both powered and dark")
        for node_id in powered:
            self.record(
                CapsuleStatus(
                    node_id=node_id,
                    wall=wall,
                    reachable=True,
                    last_strain=strains.get(node_id),
                    alarm=alarms.get(node_id),
                )
            )
        for node_id in dark:
            self.record(
                CapsuleStatus(node_id=node_id, wall=wall, reachable=False)
            )

    def walls(self) -> List[WallHealth]:
        """Per-wall aggregation, sorted by wall name."""
        if not self._statuses:
            raise ShmError("no capsule statuses recorded")
        by_wall: Dict[str, List[CapsuleStatus]] = {}
        for (wall, _), status in self._statuses.items():
            by_wall.setdefault(wall, []).append(status)
        return [
            WallHealth(wall=wall, capsules=tuple(sorted(
                statuses, key=lambda s: s.node_id
            )))
            for wall, statuses in sorted(by_wall.items())
        ]

    def building_grade(self) -> str:
        """The worst wall grade, the building-level headline."""
        return max((w.grade for w in self.walls()), key=WALL_GRADES.index)

    def attention_list(self) -> List[CapsuleStatus]:
        """Capsules needing action: alarmed or unreachable, worst first."""
        flagged = [
            s
            for s in self._statuses.values()
            if not s.reachable or s.alarm is not None
        ]
        return sorted(
            flagged, key=lambda s: WALL_GRADES.index(s.grade), reverse=True
        )

    def summary(self) -> Dict[str, int]:
        """Capsule counts per grade."""
        counts: Dict[str, int] = {g: 0 for g in WALL_GRADES}
        for status in self._statuses.values():
            counts[status.grade] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """A stable JSON-ready snapshot of the whole building view."""
        return {
            "name": self.name,
            "grade": self.building_grade(),
            "summary": self.summary(),
            "walls": [w.to_dict() for w in self.walls()],
            "attention": [s.to_dict() for s in self.attention_list()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BuildingMonitor":
        if not isinstance(payload, Mapping):
            raise ShmError("building snapshot must be an object")
        try:
            monitor = cls(name=str(payload["name"]))
            for wall in payload["walls"]:
                for capsule in wall["capsules"]:
                    monitor.record(CapsuleStatus.from_dict(capsule))
            return monitor
        except (KeyError, TypeError) as exc:
            raise ShmError(f"malformed building snapshot: {exc!r}")
