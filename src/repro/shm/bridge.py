"""Footbridge structural model and sensor layout (paper Sec. 6, Fig. 25).

The pilot-study bridge: an 84.24 m butterfly-arch footbridge linking two
campuses -- a 64.26 m main span over a highway plus a 19.98 m side span.
Its structural limits (the paper's damage thresholds):

* vertical deck acceleration <= 0.7 m/s^2, lateral <= 0.15 m/s^2;
* steelwork stress <= 355 MPa;
* mid-span deflection <= 0.1083 m;
* pedestrian area occupancy >= 1 m^2/ped (below which collapse risk).

88 conventional sensors of 13 types are installed (environmental
parameters, loads, bridge responses); five EcoCapsules join them in the
preliminary in-concrete deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ReproError


class ShmError(ReproError):
    """Invalid SHM configuration or data."""


#: The bridge's five monitored sections (Fig. 21c labels them A-E).
SECTION_NAMES = ("A", "B", "C", "D", "E")

#: The 13 conventional sensor types, grouped as the paper groups them.
SENSOR_TYPES: Dict[str, Tuple[str, ...]] = {
    "environmental": (
        "air_temperature",
        "air_pressure",
        "humidity",
        "rain_gauge",
        "solar_radiation",
    ),
    "loads": ("anemometer", "structural_temperature"),
    "responses": (
        "strain_gauge",
        "displacement_transducer",
        "accelerometer",
        "gps_station",
        "tiltmeter",
        "camera",
    ),
}


@dataclass(frozen=True)
class StructuralLimits:
    """The bridge's damage thresholds (Sec. 6)."""

    max_vertical_acceleration: float = 0.7  # m/s^2
    max_lateral_acceleration: float = 0.15  # m/s^2
    max_steel_stress: float = 355e6  # Pa
    max_midspan_deflection: float = 0.1083  # m
    min_area_per_pedestrian: float = 1.0  # m^2/ped

    def acceleration_ok(self, vertical: float, lateral: float = 0.0) -> bool:
        return (
            abs(vertical) <= self.max_vertical_acceleration
            and abs(lateral) <= self.max_lateral_acceleration
        )

    def stress_ok(self, stress: float) -> bool:
        return abs(stress) <= self.max_steel_stress

    def deflection_ok(self, deflection: float) -> bool:
        return abs(deflection) <= self.max_midspan_deflection


@dataclass(frozen=True)
class SensorInstallation:
    """One installed sensor: type, section and mounting."""

    sensor_id: int
    sensor_type: str
    section: str
    embedded: bool = False  # True for EcoCapsules inside the concrete

    def __post_init__(self) -> None:
        if self.section not in SECTION_NAMES:
            raise ShmError(f"unknown section {self.section!r}")
        all_types = [t for group in SENSOR_TYPES.values() for t in group]
        if self.sensor_type not in all_types and self.sensor_type != "ecocapsule":
            raise ShmError(f"unknown sensor type {self.sensor_type!r}")


@dataclass
class Footbridge:
    """The pilot-study bridge with its geometry, limits and sensor fleet."""

    total_length: float = 84.24
    main_span: float = 64.26
    side_span: float = 19.98
    deck_width: float = 4.5
    limits: StructuralLimits = field(default_factory=StructuralLimits)
    sensors: List[SensorInstallation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_length <= 0.0 or self.deck_width <= 0.0:
            raise ShmError("bridge dimensions must be positive")
        if abs(self.main_span + self.side_span - self.total_length) > 0.01:
            raise ShmError(
                "spans must sum to the total length "
                f"({self.main_span} + {self.side_span} != {self.total_length})"
            )
        if not self.sensors:
            self.sensors = standard_sensor_layout()

    @property
    def deck_area(self) -> float:
        """Walkable deck area (m^2), the PAO denominator's numerator."""
        return self.total_length * self.deck_width

    def section_area(self, section: str) -> float:
        """Walkable area of one of the five sections (m^2)."""
        if section not in SECTION_NAMES:
            raise ShmError(f"unknown section {section!r}")
        return self.deck_area / len(SECTION_NAMES)

    def sensors_in(self, section: str) -> List[SensorInstallation]:
        return [s for s in self.sensors if s.section == section]

    def sensors_of_type(self, sensor_type: str) -> List[SensorInstallation]:
        return [s for s in self.sensors if s.sensor_type == sensor_type]

    @property
    def conventional_count(self) -> int:
        return sum(1 for s in self.sensors if not s.embedded)

    @property
    def ecocapsule_count(self) -> int:
        return sum(1 for s in self.sensors if s.embedded)


def standard_sensor_layout() -> List[SensorInstallation]:
    """The 88 conventional sensors plus 5 EcoCapsules of the pilot study.

    The per-type counts follow the monitoring-item grouping of Fig. 25:
    response sensors dominate (strain, displacement, acceleration), with
    environmental and load stations distributed along the spans.
    """
    counts = {
        "air_temperature": 4,
        "air_pressure": 2,
        "humidity": 4,
        "rain_gauge": 2,
        "solar_radiation": 2,
        "anemometer": 4,
        "structural_temperature": 10,
        "strain_gauge": 24,
        "displacement_transducer": 10,
        "accelerometer": 16,
        "gps_station": 4,
        "tiltmeter": 4,
        "camera": 2,
    }
    layout: List[SensorInstallation] = []
    sensor_id = 0
    for sensor_type, count in counts.items():
        for i in range(count):
            section = SECTION_NAMES[(sensor_id + i) % len(SECTION_NAMES)]
            layout.append(
                SensorInstallation(
                    sensor_id=sensor_id, sensor_type=sensor_type, section=section
                )
            )
            sensor_id += 1
    for i in range(5):
        layout.append(
            SensorInstallation(
                sensor_id=sensor_id,
                sensor_type="ecocapsule",
                section=SECTION_NAMES[i],
                embedded=True,
            )
        )
        sensor_id += 1
    total_conventional = sum(counts.values())
    if total_conventional != 88:
        raise ShmError(
            f"layout drifted: expected 88 conventional sensors, "
            f"built {total_conventional}"
        )
    return layout
