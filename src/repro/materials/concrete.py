"""Concrete material database reproducing Table 1 of the paper.

Table 1 lists the mix proportions (kg/m^3 of each ingredient) and the
mechanical properties of the three concretes used in the evaluation:
normal concrete (NC), ultra-high performance concrete (UHPC) and
ultra-high-performance fibre-reinforced / seawater-sea-sand concrete
(UHPFRC, labelled UHPSSC in the appendix table).

Body-wave velocities: the paper quotes Cp ~ 3338 m/s and Cs ~ 1941 m/s for
reference concrete (ref. [41] of the paper).  Velocities derived purely
from the static elastic moduli in Table 1 overestimate wave speeds for NC
(dynamic vs static modulus), so each concrete stores *measured* velocities
as its channel-facing truth while keeping the Table 1 moduli available for
the mechanics code.  The measured values scale with sqrt(E/rho) across the
three mixes, anchored to the NC reference velocities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import MaterialError
from .base import Medium

#: Reference body-wave velocities for normal concrete (m/s), paper Sec. 3.1.
NC_P_VELOCITY = 3338.0
NC_S_VELOCITY = 1941.0


@dataclass(frozen=True)
class MixProportions:
    """Mix proportions of one concrete, kg per m^3 of concrete (Table 1)."""

    cement: float
    silica_fume: float
    fly_ash: float
    quartz_powder: float
    sand: float
    granite: float
    steel_fiber: float
    water: float
    hrwr: float  # high-range water reducer

    @property
    def total(self) -> float:
        """Total mass per cubic metre (kg/m^3) = fresh density estimate."""
        return (
            self.cement
            + self.silica_fume
            + self.fly_ash
            + self.quartz_powder
            + self.sand
            + self.granite
            + self.steel_fiber
            + self.water
            + self.hrwr
        )

    @property
    def water_to_binder(self) -> float:
        """Water-to-binder ratio (binder = cement + silica fume + fly ash)."""
        binder = self.cement + self.silica_fume + self.fly_ash
        if binder <= 0.0:
            raise MaterialError("mix has no binder")
        return self.water / binder


@dataclass(frozen=True)
class Concrete:
    """One concrete type: Table 1 mix + properties + acoustic medium."""

    name: str
    mix: MixProportions
    compressive_strength: float  # f_co, Pa
    elastic_modulus: float  # E_c, Pa
    poisson_ratio: float  # nu
    peak_strain: float  # eps_co, dimensionless (Table 1 lists %)
    medium: Medium

    @property
    def density(self) -> float:
        return self.medium.density

    @property
    def cp(self) -> float:
        return self.medium.cp

    @property
    def cs(self) -> float:
        return self.medium.cs


def _scaled_velocities(
    elastic_modulus: float, density: float, nc_modulus: float, nc_density: float
) -> Tuple[float, float]:
    """Scale the NC reference velocities by sqrt((E/rho)/(E_nc/rho_nc)).

    Elastic wave speed goes as sqrt(stiffness/density); anchoring to the
    measured NC velocities keeps the paper's absolute numbers while letting
    stiffer concretes (UHPC/UHPFRC) propagate proportionally faster.
    """
    scale = math.sqrt((elastic_modulus / density) / (nc_modulus / nc_density))
    return NC_P_VELOCITY * scale, NC_S_VELOCITY * scale


def _build_registry() -> Dict[str, Concrete]:
    nc_mix = MixProportions(
        cement=300, silica_fume=0, fly_ash=200, quartz_powder=0,
        sand=796, granite=829, steel_fiber=0, water=175, hrwr=9,
    )
    uhpc_mix = MixProportions(
        cement=830, silica_fume=207, fly_ash=0, quartz_powder=207,
        sand=913, granite=0, steel_fiber=0, water=164, hrwr=27,
    )
    uhpfrc_mix = MixProportions(
        cement=807, silica_fume=202, fly_ash=0, quartz_powder=202,
        sand=888, granite=0, steel_fiber=471, water=158, hrwr=29,
    )

    nc_density = nc_mix.total  # 2309 kg/m^3, inside the 1840-2360 band
    nc_modulus = 27.8e9

    registry: Dict[str, Concrete] = {}

    def add(
        name: str,
        mix: MixProportions,
        fco: float,
        modulus: float,
        nu: float,
        eps: float,
        attenuation_db_per_m: float,
    ) -> None:
        density = mix.total
        cp, cs = _scaled_velocities(modulus, density, nc_modulus, nc_density)
        medium = Medium(
            name=name,
            density=density,
            cp=cp,
            cs=cs,
            attenuation_db_per_m=attenuation_db_per_m,
            youngs_modulus=modulus,
            poisson_ratio=nu,
        )
        registry[name] = Concrete(
            name=name,
            mix=mix,
            compressive_strength=fco,
            elastic_modulus=modulus,
            poisson_ratio=nu,
            peak_strain=eps,
            medium=medium,
        )

    # Attenuation: denser, higher-strength concrete attenuates less
    # (paper Sec. 3.3/5.3: UHPC and UHPFRC propagate elastic waves better).
    # Values are effective S-reflection attenuations at 230 kHz calibrated
    # against the paper's Fig. 12 range anchors (see link.budget).
    add("NC", nc_mix, 54.1e6, 27.8e9, 0.18, 0.00263, attenuation_db_per_m=1.9)
    add("UHPC", uhpc_mix, 195.3e6, 52.5e9, 0.21, 0.00447, attenuation_db_per_m=1.2)
    add("UHPFRC", uhpfrc_mix, 215.0e6, 52.7e9, 0.21, 0.00447, attenuation_db_per_m=1.1)
    return registry


_REGISTRY = _build_registry()

#: Tuple of the concrete names available in the database.
CONCRETE_NAMES = tuple(_REGISTRY)


def get_concrete(name: str) -> Concrete:
    """Look up a concrete by name (case-insensitive): 'NC', 'UHPC', 'UHPFRC'.

    'UHPSSC' is accepted as an alias for UHPFRC (the appendix table header).
    """
    key = name.strip().upper()
    if key == "UHPSSC":
        key = "UHPFRC"
    try:
        return _REGISTRY[key]
    except KeyError:
        raise MaterialError(
            f"unknown concrete {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def all_concretes() -> Tuple[Concrete, ...]:
    """All concretes in the database, in Table 1 order."""
    return tuple(_REGISTRY.values())
