"""Material database: concretes (Table 1) and the other media the paper uses."""

from .base import (
    Medium,
    lame_parameters,
    p_wave_velocity,
    s_wave_velocity,
)
from .common import (
    AIR,
    ALLOY_STEEL,
    ALLOY_STEEL_YIELD_STRENGTH,
    PAPER_Z_AIR,
    PAPER_Z_CONCRETE,
    PLA,
    RESIN,
    RESIN_TENSILE_STRENGTH,
    SEAWATER,
    WATER,
)
from .concrete import (
    CONCRETE_NAMES,
    NC_P_VELOCITY,
    NC_S_VELOCITY,
    Concrete,
    MixProportions,
    all_concretes,
    get_concrete,
)

__all__ = [
    "Medium",
    "lame_parameters",
    "p_wave_velocity",
    "s_wave_velocity",
    "AIR",
    "WATER",
    "SEAWATER",
    "PLA",
    "RESIN",
    "RESIN_TENSILE_STRENGTH",
    "ALLOY_STEEL",
    "ALLOY_STEEL_YIELD_STRENGTH",
    "PAPER_Z_CONCRETE",
    "PAPER_Z_AIR",
    "CONCRETE_NAMES",
    "NC_P_VELOCITY",
    "NC_S_VELOCITY",
    "Concrete",
    "MixProportions",
    "all_concretes",
    "get_concrete",
]
