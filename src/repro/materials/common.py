"""Non-concrete media used by the paper: air, water, PLA, resin, steel.

Acoustic impedances for concrete/air come from the paper's Sec. 3.2
(Z_con = 4.66e6, Z_air = 4.15e2 kg/m^2 s).  The PLA prism's longitudinal
velocity is calibrated so that the first and second critical angles of a
PLA-on-concrete interface land at the paper's ~34 deg and ~73 deg
(using the paper's reference concrete velocities Cp = 3338, Cs = 1941 m/s):

    CA1 = arcsin(Cp_pla / Cp_con) = 34 deg  ->  Cp_pla ~ 1867 m/s
    CA2 = arcsin(Cp_pla / Cs_con) ~ 74 deg  (paper rounds to 73 deg)

Sec. 3.2's prose quotes ~1250 m/s for the prism, which would put CA1 near
22 deg; we follow the critical angles because they are the quantities the
evaluation (Fig. 4, Fig. 19) actually depends on.  See DESIGN.md.
"""

from __future__ import annotations

import math

from .base import Medium
from .concrete import NC_P_VELOCITY

#: Air at 20 C. Z = 1.21 * 343 ~ 4.15e2 kg/m^2 s, matching the paper.
AIR = Medium(name="air", density=1.21, cp=343.0, attenuation_db_per_m=1.0)

#: Fresh water (PAB pool environment).  Attenuation of ultrasound in water
#: is tiny at these frequencies; the pool links are spreading-limited.
WATER = Medium(
    name="water",
    density=998.0,
    cp=1481.0,
    attenuation_db_per_m=0.05,
    attenuation_ref_hz=15e3,
    attenuation_exponent=2.0,
)

#: Seawater (for completeness; U2B experiments).
SEAWATER = Medium(
    name="seawater",
    density=1025.0,
    cp=1500.0,
    attenuation_db_per_m=0.08,
    attenuation_ref_hz=15e3,
    attenuation_exponent=2.0,
)

#: PLA wave-prism material.  Longitudinal velocity calibrated to the
#: paper's critical angles (see module docstring); shear velocity of
#: printed PLA is roughly half the longitudinal one.
PLA = Medium(
    name="PLA",
    density=1240.0,
    cp=NC_P_VELOCITY * math.sin(math.radians(34.0)),  # ~1866.6 m/s
    cs=930.0,
    attenuation_db_per_m=20.0,
)

#: SLA printing resin used for the EcoCapsule shell (paper Sec. 4.1):
#: ~65 MPa tensile strength, ~2.2 GPa Young's modulus.
RESIN = Medium.from_elastic_moduli(
    name="SLA resin",
    density=1180.0,
    youngs_modulus=2.2e9,
    poisson_ratio=0.35,
    attenuation_db_per_m=25.0,
)

#: Resin strength values used by the shell stress model (Pa).
RESIN_TENSILE_STRENGTH = 65.0e6

#: Alloy steel for high-rise shells (paper Sec. 4.1).
ALLOY_STEEL = Medium.from_elastic_moduli(
    name="alloy steel",
    density=7850.0,
    youngs_modulus=210.0e9,
    poisson_ratio=0.28,
    attenuation_db_per_m=0.5,
)

#: Alloy-steel yield strength used by the shell stress model (Pa).
ALLOY_STEEL_YIELD_STRENGTH = 648.0e6

#: A generic reference concrete medium matching the paper's quoted numbers
#: (Cp = 3338 m/s, Cs = 1941 m/s, Z_con = 4.66e6 kg/m^2 s -> rho ~ 1396?).
#: The paper's Z_con of 4.66e6 with Cp 3338 implies rho ~ 1396, which is an
#: inconsistency in the paper's sources; we keep density from Table 1 mixes
#: and expose the paper's Z values separately for the Eqn. 1 reproduction.
PAPER_Z_CONCRETE = 4.66e6
PAPER_Z_AIR = 4.15e2
