"""Elastic-medium definitions and Lamé-parameter algebra.

A medium is characterised by its density and either (a) measured body-wave
velocities or (b) elastic moduli (Young's modulus + Poisson's ratio) from
which the velocities follow via the Lamé parameters:

    alpha (P-wave) = sqrt((lambda + 2 mu) / rho)      -- paper Eqn. 8
    beta  (S-wave) = sqrt(mu / rho)                   -- paper Eqn. 10

Fluids carry no shear, so their S-wave velocity is zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import MaterialError


def lame_parameters(youngs_modulus: float, poisson_ratio: float) -> tuple:
    """Return ``(lambda, mu)`` from Young's modulus E and Poisson's ratio nu.

    lambda = E nu / ((1 + nu)(1 - 2 nu)),  mu = E / (2 (1 + nu))
    """
    if youngs_modulus <= 0.0:
        raise MaterialError(f"Young's modulus must be positive, got {youngs_modulus}")
    if not -1.0 < poisson_ratio < 0.5:
        raise MaterialError(f"Poisson's ratio must lie in (-1, 0.5), got {poisson_ratio}")
    lam = (
        youngs_modulus
        * poisson_ratio
        / ((1.0 + poisson_ratio) * (1.0 - 2.0 * poisson_ratio))
    )
    mu = youngs_modulus / (2.0 * (1.0 + poisson_ratio))
    return lam, mu


def p_wave_velocity(lam: float, mu: float, density: float) -> float:
    """P-wave velocity alpha = sqrt((lambda + 2 mu) / rho) (paper Eqn. 8)."""
    if density <= 0.0:
        raise MaterialError(f"density must be positive, got {density}")
    return math.sqrt((lam + 2.0 * mu) / density)


def s_wave_velocity(mu: float, density: float) -> float:
    """S-wave velocity beta = sqrt(mu / rho) (paper Eqn. 10)."""
    if density <= 0.0:
        raise MaterialError(f"density must be positive, got {density}")
    return math.sqrt(mu / density)


@dataclass(frozen=True)
class Medium:
    """An acoustic medium with the properties the channel model needs.

    Attributes:
        name: Human-readable identifier.
        density: Mass density (kg/m^3).
        cp: P-wave (longitudinal) velocity (m/s).
        cs: S-wave (shear) velocity (m/s); 0 for fluids.
        attenuation_db_per_m: Base attenuation at the reference frequency
            (dB/m); scaled by (f / f_ref)^attenuation_exponent.
        attenuation_ref_hz: Reference frequency for attenuation (Hz).
        attenuation_exponent: Frequency power law for attenuation.
        youngs_modulus: Optional Young's modulus (Pa) when known.
        poisson_ratio: Optional Poisson's ratio when known.
    """

    name: str
    density: float
    cp: float
    cs: float = 0.0
    attenuation_db_per_m: float = 0.0
    attenuation_ref_hz: float = 230e3
    attenuation_exponent: float = 1.0
    youngs_modulus: Optional[float] = None
    poisson_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.density <= 0.0:
            raise MaterialError(f"{self.name}: density must be positive")
        if self.cp <= 0.0:
            raise MaterialError(f"{self.name}: P-wave velocity must be positive")
        if self.cs < 0.0:
            raise MaterialError(f"{self.name}: S-wave velocity cannot be negative")
        if self.cs >= self.cp:
            raise MaterialError(
                f"{self.name}: S-wave velocity ({self.cs}) must be below "
                f"P-wave velocity ({self.cp})"
            )

    @property
    def is_fluid(self) -> bool:
        """True when the medium carries no shear waves (air, water)."""
        return self.cs == 0.0

    @property
    def impedance_p(self) -> float:
        """Longitudinal acoustic impedance Z = rho * cp (kg/m^2 s)."""
        return self.density * self.cp

    @property
    def impedance_s(self) -> float:
        """Shear acoustic impedance Z = rho * cs (kg/m^2 s); 0 for fluids."""
        return self.density * self.cs

    def velocity(self, mode: str) -> float:
        """Velocity of body-wave ``mode`` ('p' or 's')."""
        mode = mode.lower()
        if mode == "p":
            return self.cp
        if mode == "s":
            if self.is_fluid:
                raise MaterialError(f"{self.name} is a fluid and carries no S-waves")
            return self.cs
        raise MaterialError(f"unknown wave mode {mode!r}; expected 'p' or 's'")

    def attenuation_db(self, frequency: float, distance: float) -> float:
        """Attenuation (dB) over ``distance`` at ``frequency``.

        Uses the power-law model
        ``a(f) = a_ref * (f / f_ref)^n`` with ``a_ref`` in dB/m.
        """
        if distance < 0.0:
            raise MaterialError(f"distance cannot be negative, got {distance}")
        if frequency <= 0.0:
            raise MaterialError(f"frequency must be positive, got {frequency}")
        scale = (frequency / self.attenuation_ref_hz) ** self.attenuation_exponent
        return self.attenuation_db_per_m * scale * distance

    @classmethod
    def from_elastic_moduli(
        cls,
        name: str,
        density: float,
        youngs_modulus: float,
        poisson_ratio: float,
        **kwargs,
    ) -> "Medium":
        """Build a solid medium from (rho, E, nu) via the Lamé parameters."""
        lam, mu = lame_parameters(youngs_modulus, poisson_ratio)
        return cls(
            name=name,
            density=density,
            cp=p_wave_velocity(lam, mu, density),
            cs=s_wave_velocity(mu, density),
            youngs_modulus=youngs_modulus,
            poisson_ratio=poisson_ratio,
            **kwargs,
        )
