"""Physical constants and small unit-conversion helpers.

All quantities in this library are SI unless a name says otherwise
(``*_khz``, ``*_mm`` ...).  This module centralises the handful of
constants the paper's equations use so every subpackage agrees on them.
"""

from __future__ import annotations

import math

#: Standard gravitational acceleration (m/s^2), used by Eqn. 4 of the paper.
GRAVITY = 9.80665

#: Standard atmospheric pressure (Pa).  The paper quotes 101.325 kPa.
ATMOSPHERIC_PRESSURE = 101_325.0

#: Speed of sound in air at 20 C (m/s).
SOUND_SPEED_AIR = 343.0

#: Speed of sound in fresh water at 20 C (m/s).
SOUND_SPEED_WATER = 1_481.0

#: Boltzmann constant (J/K) for thermal-noise floors.
BOLTZMANN = 1.380649e-23

#: Reference temperature (K) for noise calculations.
ROOM_TEMPERATURE = 293.15

TWO_PI = 2.0 * math.pi


def db(ratio: float) -> float:
    """Convert a power ratio to decibels.

    >>> round(db(100.0), 1)
    20.0
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db_amplitude(ratio: float) -> float:
    """Convert an amplitude ratio to decibels (20 log10)."""
    if ratio <= 0.0:
        raise ValueError(f"amplitude ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def from_db_amplitude(decibels: float) -> float:
    """Convert decibels to an amplitude ratio."""
    return 10.0 ** (decibels / 20.0)


def khz(value: float) -> float:
    """Kilohertz to hertz."""
    return value * 1e3


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * 1e6


def mm(value: float) -> float:
    """Millimetres to metres."""
    return value * 1e-3


def cm(value: float) -> float:
    """Centimetres to metres."""
    return value * 1e-2


def mm2(value: float) -> float:
    """Square millimetres to square metres."""
    return value * 1e-6


def mm3(value: float) -> float:
    """Cubic millimetres to cubic metres."""
    return value * 1e-9


def mpa(value: float) -> float:
    """Megapascals to pascals."""
    return value * 1e6


def gpa(value: float) -> float:
    """Gigapascals to pascals."""
    return value * 1e9


def kbps(value: float) -> float:
    """Kilobits per second to bits per second."""
    return value * 1e3


def microwatt(value: float) -> float:
    """Microwatts to watts."""
    return value * 1e-6


def deg(value_rad: float) -> float:
    """Radians to degrees."""
    return math.degrees(value_rad)


def rad(value_deg: float) -> float:
    """Degrees to radians."""
    return math.radians(value_deg)


def wavelength(speed: float, frequency: float) -> float:
    """Wavelength (m) of a wave travelling at ``speed`` with ``frequency``.

    >>> round(wavelength(3338.0, 230e3) * 1e3, 2)  # mm, P-wave in concrete
    14.51
    """
    if frequency <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    if speed <= 0.0:
        raise ValueError(f"speed must be positive, got {speed}")
    return speed / frequency
