"""The fleet supervisor: spawn, watch, restart, quarantine, merge.

One supervisor process drives a whole fleet run.  It keeps at most
``config.workers`` shard workers alive, watches each one through two
independent channels -- process exit (a crash) and the heartbeat file
(a wedge) -- and applies one uniform failure policy:

* a failed attempt schedules a restart after bounded exponential
  backoff (:func:`~repro.fleet.config.backoff_delay`), resuming from
  the shard's last checkpoint;
* ``max_restarts`` *consecutive* failures quarantine the shard as
  poison.  Quarantine is the fleet-level mirror of the campaign's
  degrade-don't-raise contract: the fleet completes deterministically
  with the survivors, and the loss is recorded everywhere an operator
  looks (manifest, ``fleet status``, ``fleet.quarantines``, the result
  body's ``quarantined`` list) -- never silently.

Nothing the supervisor does can change result bytes: worker count,
scheduling, backoff, kills and resumes only decide *when* shards run,
while every shard's content is pinned by its derived seed.  The merge
(:mod:`repro.fleet.merge`) then folds shard artifacts in canonical
order, so the fleet ``result.json`` sha256 is invariant across all of
it -- the property CI stage 10 and the hypothesis kill-schedule test
enforce.

The manifest (``fleet.json``) is the operational ledger: per-shard
restart counts, failure reasons, quarantine records, supervision
totals and wall-clock timings live here, *not* in the result artifact.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..campaign.driver import RESULT_FILENAME
from ..campaign.watchdog import ShutdownGuard
from ..errors import FleetError
from ..faults.io import reclaim_tmp_files
from ..faults.worker import WorkerFaultPlan
from ..obs import obs_counter, obs_event, obs_gauge, obs_histogram
from ..runtime.serialize import (
    read_json,
    write_json_atomic,
    write_json_atomic_verified,
)
from .config import FleetConfig, backoff_delay
from .merge import (
    FLEET_RESULT_SCHEMA,
    build_fleet_result,
    fleet_result_hash,
    load_shard_result,
)
from .worker import heartbeat_age_s, worker_main

#: Files inside a fleet directory.
FLEET_MANIFEST_FILENAME = "fleet.json"
FLEET_RESULT_FILENAME = "result.json"
SHARDS_DIRNAME = "shards"

#: Schema tag for the fleet manifest.
FLEET_MANIFEST_SCHEMA = "repro/fleet-manifest/v1"

#: Failure reasons retained per shard in the manifest (audit tail).
FAILURE_HISTORY = 5

#: Grace period for SIGTERM before a stubborn worker is SIGKILLed.
TERM_GRACE_S = 10.0

#: Shard lifecycle states persisted in the manifest.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
QUARANTINED = "quarantined"


@dataclass
class ShardSupervision:
    """One shard's supervision state (persisted minus the process)."""

    building: str
    status: str = PENDING
    failures_total: int = 0
    consecutive_failures: int = 0
    failures: List[str] = field(default_factory=list)
    quarantine_reason: Optional[str] = None
    # Runtime-only (never persisted):
    process: Optional[multiprocessing.process.BaseProcess] = None
    next_eligible: float = 0.0  # monotonic clock
    spawn_wall: float = 0.0
    spawn_monotonic: float = 0.0

    def to_manifest(self) -> Dict[str, Any]:
        persisted_status = PENDING if self.status == RUNNING else self.status
        return {
            "building": self.building,
            "status": persisted_status,
            "failures_total": self.failures_total,
            "consecutive_failures": self.consecutive_failures,
            "failures": list(self.failures),
            "quarantine_reason": self.quarantine_reason,
        }


@dataclass
class FleetOutcome:
    """What one supervise call actually did."""

    result: Optional[Dict[str, Any]]  # the fleet body; None if interrupted
    sha256: Optional[str]
    quarantined: Dict[str, str]
    interrupted: bool = False
    signal_name: Optional[str] = None
    result_file: Optional[Path] = None
    manifest_file: Optional[Path] = None
    wall_s: float = 0.0

    @property
    def completed(self) -> bool:
        return self.result is not None

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)


class FleetSupervisor:
    """Drives one fleet directory to deterministic completion."""

    def __init__(
        self,
        config: FleetConfig,
        fleet_dir: Union[str, Path],
        store_dir: Optional[Union[str, Path]] = None,
        worker_faults: Optional[WorkerFaultPlan] = None,
        epoch_sleep_s: float = 0.0,
        record_obs: bool = False,
    ):
        self.config = config
        self.fleet_dir = Path(fleet_dir)
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.worker_faults = worker_faults or WorkerFaultPlan()
        self.epoch_sleep_s = epoch_sleep_s
        self.record_obs = record_obs
        self.shards: Dict[str, ShardSupervision] = {
            name: ShardSupervision(name) for name in config.buildings
        }
        self.interrupted = False
        self.signal_name: Optional[str] = None
        self._counts = {
            "workers_spawned": 0,
            "restarts": 0,
            "worker_failures": 0,
            "heartbeat_kills": 0,
            "quarantines": 0,
        }
        self._manifest_dirty = True
        self._wall_s = 0.0
        # Fork keeps worker dispatch free of re-import/pickling costs
        # and works from any caller; fall back where it is unavailable.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )

    # ------------------------------------------------------------------
    # Construction / resume
    # ------------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        fleet_dir: Union[str, Path],
        store_dir: Optional[Union[str, Path]] = None,
        epoch_sleep_s: float = 0.0,
        record_obs: bool = False,
    ) -> "FleetSupervisor":
        """Rebuild a supervisor from a fleet directory's manifest.

        Completed shards are reused byte-identically (their artifacts
        are trusted after hash re-verification at merge time); every
        other shard -- including previously quarantined ones, whose
        failure budget resets -- goes back to pending.  ``failures_total``
        is restored so deterministic worker-fault schedules keyed on
        the attempt number continue where they left off.
        """
        fleet_dir = Path(fleet_dir)
        manifest_path = fleet_dir / FLEET_MANIFEST_FILENAME
        if not manifest_path.exists():
            raise FleetError(
                f"nothing to resume: no fleet manifest under {fleet_dir}"
            )
        try:
            manifest = read_json(manifest_path)
        except Exception as exc:
            raise FleetError(f"unreadable fleet manifest {manifest_path}: {exc}")
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != FLEET_MANIFEST_SCHEMA
        ):
            raise FleetError(
                f"{manifest_path} is not a fleet manifest "
                f"(expected schema {FLEET_MANIFEST_SCHEMA!r})"
            )
        config = FleetConfig.from_dict(manifest["config"])
        if store_dir is None and manifest.get("store"):
            store_dir = manifest["store"]
        faults = WorkerFaultPlan.from_dict(
            manifest.get("worker_faults") or {"faults": []}
        )
        supervisor = cls(
            config,
            fleet_dir,
            store_dir=store_dir,
            worker_faults=faults,
            epoch_sleep_s=epoch_sleep_s,
            record_obs=record_obs,
        )
        for entry in manifest.get("shards", {}).values():
            shard = supervisor.shards.get(entry.get("building"))
            if shard is None:
                continue
            shard.failures_total = int(entry.get("failures_total", 0))
            shard.failures = list(entry.get("failures", []))[-FAILURE_HISTORY:]
        obs_event("info", "fleet.resumed", fleet_dir=str(fleet_dir))
        return supervisor

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.fleet_dir / FLEET_MANIFEST_FILENAME

    @property
    def result_path(self) -> Path:
        return self.fleet_dir / FLEET_RESULT_FILENAME

    def shard_dir(self, building: str) -> Path:
        return self.fleet_dir / SHARDS_DIRNAME / building

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _write_manifest(
        self,
        complete: bool = False,
        result_sha256: Optional[str] = None,
    ) -> None:
        payload = {
            "schema": FLEET_MANIFEST_SCHEMA,
            "config": self.config.to_dict(),
            "store": str(self.store_dir) if self.store_dir else None,
            "worker_faults": self.worker_faults.to_dict(),
            "shards": {
                name: shard.to_manifest()
                for name, shard in sorted(self.shards.items())
            },
            "supervision": {**self._counts, "wall_s": round(self._wall_s, 3)},
            "complete": complete,
            "interrupted": self.interrupted,
            "result_sha256": result_sha256,
        }
        write_json_atomic(self.manifest_path, payload)
        self._manifest_dirty = False

    # ------------------------------------------------------------------
    # Supervision primitives
    # ------------------------------------------------------------------

    def _spawn(self, shard: ShardSupervision) -> None:
        building = shard.building
        shard_dir = self.shard_dir(building)
        shard_dir.mkdir(parents=True, exist_ok=True)
        attempt = shard.failures_total
        process = self._ctx.Process(
            target=worker_main,
            name=f"fleet-{building}",
            args=(
                str(shard_dir),
                building,
                self.config.shard_config(building).to_dict(),
                str(self.store_dir) if self.store_dir else None,
                attempt,
                self.worker_faults.for_building(building).to_dict(),
                self.epoch_sleep_s,
                self.record_obs,
            ),
        )
        process.start()
        shard.process = process
        shard.status = RUNNING
        shard.spawn_wall = time.time()
        shard.spawn_monotonic = time.monotonic()
        self._counts["workers_spawned"] += 1
        obs_counter("fleet.workers_spawned").inc()
        if attempt > 0:
            self._counts["restarts"] += 1
            obs_counter("fleet.restarts").inc()
            obs_event(
                "info", "fleet.worker_restarted",
                building=building, attempt=attempt,
            )
        self._manifest_dirty = True

    def _record_failure(self, shard: ShardSupervision, reason: str) -> None:
        shard.process = None
        shard.failures_total += 1
        shard.consecutive_failures += 1
        shard.failures = (shard.failures + [reason])[-FAILURE_HISTORY:]
        self._counts["worker_failures"] += 1
        obs_counter("fleet.worker_failures").inc()
        if shard.consecutive_failures >= self.config.max_restarts:
            shard.status = QUARANTINED
            shard.quarantine_reason = (
                f"{shard.consecutive_failures} consecutive failures "
                f"(last: {reason})"
            )
            self._counts["quarantines"] += 1
            obs_counter("fleet.quarantines").inc()
            obs_event(
                "error", "fleet.shard_quarantined",
                building=shard.building,
                failures=shard.consecutive_failures,
                reason=reason,
            )
        else:
            shard.status = PENDING
            delay = backoff_delay(
                shard.consecutive_failures,
                self.config.backoff_base_s,
                self.config.backoff_max_s,
            )
            shard.next_eligible = time.monotonic() + delay
            obs_event(
                "warning", "fleet.worker_failed",
                building=shard.building, reason=reason,
                backoff_s=delay,
            )
        self._manifest_dirty = True

    def _mark_done(self, shard: ShardSupervision) -> None:
        shard.process = None
        shard.status = DONE
        shard.consecutive_failures = 0
        wall = time.monotonic() - shard.spawn_monotonic
        obs_counter("fleet.shards_completed").inc()
        obs_histogram("fleet.shard_wall_s").observe(wall)
        obs_event(
            "info", "fleet.shard_completed",
            building=shard.building, attempt=shard.failures_total,
        )
        self._manifest_dirty = True

    def _check_worker(self, shard: ShardSupervision) -> None:
        """Reap an exited worker, or kill a wedged one."""
        process = shard.process
        if process is None:
            return
        if process.exitcode is not None:
            process.join()
            if (self.shard_dir(shard.building) / RESULT_FILENAME).exists():
                self._mark_done(shard)
            else:
                self._record_failure(
                    shard, f"worker exit code {process.exitcode}"
                )
            return
        timeout = self.config.heartbeat_timeout_s
        if timeout <= 0.0:
            return
        age = heartbeat_age_s(self.shard_dir(shard.building))
        if age is None or shard.spawn_wall > time.time() - age:
            # No beat since this spawn yet: measure from spawn time.
            age = time.time() - shard.spawn_wall
        if age > timeout:
            process.kill()
            process.join()
            self._counts["heartbeat_kills"] += 1
            obs_counter("fleet.heartbeat_kills").inc()
            obs_gauge("fleet.last_heartbeat_gap_s").set(age)
            self._record_failure(
                shard,
                f"heartbeat gap {age:.1f}s exceeded "
                f"{timeout:g}s (killed)",
            )

    def _shutdown_workers(self) -> None:
        """Graceful stop: SIGTERM (campaign flushes a checkpoint),
        escalate to SIGKILL after a grace period."""
        running = [s for s in self.shards.values() if s.process is not None]
        for shard in running:
            shard.process.terminate()
        deadline = time.monotonic() + TERM_GRACE_S
        for shard in running:
            shard.process.join(max(0.1, deadline - time.monotonic()))
            if shard.process.exitcode is None:
                shard.process.kill()
                shard.process.join()
            shard.process = None
            shard.status = PENDING
            self._manifest_dirty = True

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------

    def run(self) -> FleetOutcome:
        """Supervise the fleet to completion (or graceful interrupt)."""
        started = time.monotonic()
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        # Non-recursive: the fleet root's manifest/result temps are ours
        # to sweep; shard dirs are swept by their own campaigns.
        reclaim_tmp_files(self.fleet_dir, recursive=False, scope="fleet")
        self._pre_register_obs()
        # Adopt shards already completed by a previous run.
        for shard in self.shards.values():
            if (self.shard_dir(shard.building) / RESULT_FILENAME).exists():
                shard.status = DONE
        self._write_manifest()

        with ShutdownGuard() as guard:
            while True:
                if guard.stop_requested:
                    self.interrupted = True
                    self.signal_name = guard.signal_name
                    self._shutdown_workers()
                    break
                for shard in self.shards.values():
                    if shard.status == RUNNING:
                        self._check_worker(shard)
                now = time.monotonic()
                running = sum(
                    1 for s in self.shards.values() if s.status == RUNNING
                )
                for shard in sorted(
                    self.shards.values(), key=lambda s: s.building
                ):
                    if running >= self.config.workers:
                        break
                    if shard.status == PENDING and now >= shard.next_eligible:
                        self._spawn(shard)
                        running += 1
                if all(
                    s.status in (DONE, QUARANTINED)
                    for s in self.shards.values()
                ):
                    break
                if self._manifest_dirty:
                    self._wall_s = time.monotonic() - started
                    self._write_manifest()
                time.sleep(self.config.poll_interval_s)

        self._wall_s = time.monotonic() - started
        if self.interrupted:
            self._write_manifest()
            obs_counter("fleet.interrupts").inc()
            obs_event(
                "warning", "fleet.interrupted",
                signal=self.signal_name or "?",
            )
            return FleetOutcome(
                result=None,
                sha256=None,
                quarantined=self._quarantine_map(),
                interrupted=True,
                signal_name=self.signal_name,
                manifest_file=self.manifest_path,
                wall_s=self._wall_s,
            )
        return self._finalize(started)

    def _finalize(self, started: float) -> FleetOutcome:
        """Merge surviving shards and write the fleet artifacts."""
        quarantined = self._quarantine_map()
        payloads = {
            name: load_shard_result(self.shard_dir(name))
            for name, shard in self.shards.items()
            if shard.status == DONE
        }
        missing = sorted(n for n, p in payloads.items() if p is None)
        if missing:
            raise FleetError(
                f"shard(s) marked done but missing result.json: {missing}"
            )
        body = build_fleet_result(self.config, payloads, quarantined)
        sha256 = fleet_result_hash(body)
        # Read-back-verified: a dropped rename here would leave a stale
        # or missing fleet result that "fleet status" would trust.
        result_file = write_json_atomic_verified(
            self.result_path,
            {"schema": FLEET_RESULT_SCHEMA, "sha256": sha256, "result": body},
        )
        self._wall_s = time.monotonic() - started
        self._write_manifest(complete=True, result_sha256=sha256)
        completed = body["totals"]["completed"]
        per_min = (
            completed / (self._wall_s / 60.0) if self._wall_s > 0 else 0.0
        )
        obs_gauge("fleet.buildings_per_min").set(per_min)
        obs_event(
            "info", "fleet.completed",
            buildings=completed, quarantined=len(quarantined),
            sha256=sha256, wall_s=round(self._wall_s, 3),
        )
        return FleetOutcome(
            result=body,
            sha256=sha256,
            quarantined=quarantined,
            result_file=result_file,
            manifest_file=self.manifest_path,
            wall_s=self._wall_s,
        )

    def _quarantine_map(self) -> Dict[str, str]:
        return {
            name: shard.quarantine_reason or "quarantined"
            for name, shard in sorted(self.shards.items())
            if shard.status == QUARANTINED
        }

    def _pre_register_obs(self) -> None:
        obs_counter("fleet.workers_spawned")
        obs_counter("fleet.worker_failures")
        obs_counter("fleet.restarts")
        obs_counter("fleet.quarantines")
        obs_counter("fleet.heartbeat_kills")
        obs_counter("fleet.shards_completed")
        obs_gauge("fleet.buildings_per_min")
        obs_gauge("fleet.last_heartbeat_gap_s")
        obs_histogram("fleet.shard_wall_s")


# ----------------------------------------------------------------------
# Module-level conveniences (the CLI's verbs)
# ----------------------------------------------------------------------

def run_fleet(
    config: FleetConfig,
    fleet_dir: Union[str, Path],
    store_dir: Optional[Union[str, Path]] = None,
    worker_faults: Optional[WorkerFaultPlan] = None,
    epoch_sleep_s: float = 0.0,
    record_obs: bool = False,
) -> FleetOutcome:
    """Start a fresh fleet (``fleet run``); refuses a used directory."""
    fleet_dir = Path(fleet_dir)
    if (fleet_dir / FLEET_MANIFEST_FILENAME).exists():
        raise FleetError(
            f"{fleet_dir} already hosts a fleet (fleet.json exists); "
            f"use 'fleet resume' to continue it"
        )
    return FleetSupervisor(
        config,
        fleet_dir,
        store_dir=store_dir,
        worker_faults=worker_faults,
        epoch_sleep_s=epoch_sleep_s,
        record_obs=record_obs,
    ).run()


def resume_fleet(
    fleet_dir: Union[str, Path],
    store_dir: Optional[Union[str, Path]] = None,
    epoch_sleep_s: float = 0.0,
    record_obs: bool = False,
) -> FleetOutcome:
    """Continue an interrupted fleet from its manifest + checkpoints
    (``fleet resume``)."""
    return FleetSupervisor.resume(
        fleet_dir,
        store_dir=store_dir,
        epoch_sleep_s=epoch_sleep_s,
        record_obs=record_obs,
    ).run()
