"""``fleet status``: a non-mutating read of a fleet directory's health.

Classifies every shard from persisted state only -- the manifest, the
shard's checkpoints, its heartbeat file and its ``result.json`` -- so
it is safe to run while a supervisor is live (and tells the truth
after one died):

* ``quarantined`` -- the manifest recorded the shard as poison;
* ``completed``   -- the shard's verified campaign result exists;
* ``running``     -- a recent heartbeat from a live worker pid;
* ``recovering``  -- failures on record, not yet completed;
* ``pending``     -- none of the above (not started, or waiting).

The summary buckets these into the operator's three-way view:
**healthy** (completed / running / pending with a clean record),
**recovering**, **quarantined**.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..campaign.checkpoint import CheckpointStore
from ..campaign.driver import CHECKPOINT_DIRNAME, RESULT_FILENAME
from ..errors import FleetError
from ..runtime.serialize import read_json
from ..store import pid_alive
from .config import FleetConfig
from .supervisor import (
    FLEET_MANIFEST_FILENAME,
    FLEET_MANIFEST_SCHEMA,
    FLEET_RESULT_FILENAME,
    SHARDS_DIRNAME,
)
from .worker import HEARTBEAT_FILENAME, heartbeat_age_s

#: Status labels (superset of the manifest's persisted states).
COMPLETED = "completed"
RUNNING = "running"
RECOVERING = "recovering"
PENDING = "pending"
QUARANTINED = "quarantined"

#: Healthy = making progress or cleanly done.
HEALTHY_STATES = (COMPLETED, RUNNING, PENDING)


def _read_manifest(fleet_dir: Path) -> Dict[str, Any]:
    path = fleet_dir / FLEET_MANIFEST_FILENAME
    if not path.exists():
        raise FleetError(f"no fleet at {fleet_dir} (missing {path.name})")
    try:
        manifest = read_json(path)
    except Exception as exc:
        raise FleetError(f"unreadable fleet manifest {path}: {exc}")
    if (
        not isinstance(manifest, dict)
        or manifest.get("schema") != FLEET_MANIFEST_SCHEMA
    ):
        raise FleetError(
            f"{path} is not a fleet manifest "
            f"(expected schema {FLEET_MANIFEST_SCHEMA!r})"
        )
    return manifest


def _heartbeat_pid(shard_dir: Path) -> Optional[int]:
    try:
        payload = json.loads((shard_dir / HEARTBEAT_FILENAME).read_text())
        return int(payload.get("pid"))
    except (OSError, ValueError, TypeError):
        return None


def fleet_status(fleet_dir: Union[str, Path]) -> Dict[str, Any]:
    """A JSON-ready health snapshot of a fleet directory."""
    fleet_dir = Path(fleet_dir)
    manifest = _read_manifest(fleet_dir)
    config = FleetConfig.from_dict(manifest["config"])
    heartbeat_budget = config.heartbeat_timeout_s

    shards: Dict[str, Any] = {}
    counts = {COMPLETED: 0, RUNNING: 0, RECOVERING: 0, PENDING: 0,
              QUARANTINED: 0}
    for building in config.buildings:
        entry = manifest.get("shards", {}).get(building, {})
        shard_dir = fleet_dir / SHARDS_DIRNAME / building
        checkpoint_epoch = CheckpointStore(
            shard_dir / CHECKPOINT_DIRNAME
        ).latest_epoch()
        age = heartbeat_age_s(shard_dir)
        failures_total = int(entry.get("failures_total", 0))
        if entry.get("status") == "quarantined":
            status = QUARANTINED
        elif (shard_dir / RESULT_FILENAME).exists():
            status = COMPLETED
        elif (
            age is not None
            and (heartbeat_budget <= 0 or age <= heartbeat_budget)
            and pid_alive(_heartbeat_pid(shard_dir) or -1)
        ):
            status = RECOVERING if failures_total else RUNNING
        elif failures_total:
            status = RECOVERING
        else:
            status = PENDING
        counts[status] += 1
        shards[building] = {
            "status": status,
            "checkpoint_epoch": checkpoint_epoch,
            "epochs_total": config.campaign.epochs,
            "heartbeat_age_s": round(age, 3) if age is not None else None,
            "failures_total": failures_total,
            "failures": list(entry.get("failures", [])),
            "quarantine_reason": entry.get("quarantine_reason"),
        }

    return {
        "fleet_dir": str(fleet_dir),
        "buildings": len(config.buildings),
        "workers": config.workers,
        "complete": bool(manifest.get("complete")),
        "interrupted": bool(manifest.get("interrupted")),
        "result_sha256": manifest.get("result_sha256"),
        "result_exists": (fleet_dir / FLEET_RESULT_FILENAME).exists(),
        "supervision": dict(manifest.get("supervision", {})),
        "shards": shards,
        "summary": {
            "healthy": sum(counts[s] for s in HEALTHY_STATES),
            "recovering": counts[RECOVERING],
            "quarantined": counts[QUARANTINED],
            **{state: counts[state] for state in counts},
        },
    }
