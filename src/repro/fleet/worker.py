"""The fleet worker: one building's campaign in a supervised child.

A worker process owns exactly one shard at a time.  It reuses the
campaign driver wholesale -- fresh start or checkpoint resume, the
SIGALRM epoch watchdog, the graceful SIGTERM checkpoint flush -- and
adds only the plumbing a supervised child needs:

* a **heartbeat file** (``heartbeat.json`` in the shard dir), written
  atomically at spawn and at every epoch boundary from the campaign's
  ``epoch_hook``.  Writing from the epoch loop itself (not a side
  thread) is the point: a wedged epoch stops the heartbeat, which is
  exactly the signal the supervisor's liveness watchdog needs;
* **stdout/stderr redirection** into ``worker.log`` (fd-level, so
  tracebacks and C-level writes land there too);
* ``PR_SET_PDEATHSIG`` on Linux, so a SIGKILLed supervisor takes its
  workers down with it instead of leaking orphans that still hold
  store partition locks;
* **worker-fault injection** (:mod:`repro.faults.worker`): kill / hang
  / poison fired from the epoch hook, *before* the epoch body touches
  any experiment RNG -- an injected crash is indistinguishable from a
  real one at the bytes level.

The worker's exit protocol is deliberately dumb: exit code 0 after
writing the shard's ``result.json``, 3 when interrupted by SIGTERM
(checkpoint flushed, resumable), anything else is a failure.  The
supervisor trusts the *artifact*, not the code -- a shard is done iff
its ``result.json`` exists.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..campaign import CampaignConfig
from ..campaign.checkpoint import CheckpointStore
from ..campaign.driver import CHECKPOINT_DIRNAME, Campaign
from ..faults.io import io_replace, io_write
from ..faults.worker import WorkerFaultPlan
from ..obs import obs_counter, obs_event

#: Files a worker maintains inside its shard directory.
HEARTBEAT_FILENAME = "heartbeat.json"
WORKER_LOG_FILENAME = "worker.log"

#: Worker exit codes (failures are anything else, signals included).
EXIT_OK = 0
EXIT_INTERRUPTED = 3

#: How long an injected hang sleeps.  Far past any sane heartbeat
#: budget; the supervisor is expected to SIGKILL the worker first.
HANG_SLEEP_S = 3600.0

_PR_SET_PDEATHSIG = 1


def write_heartbeat(shard_dir: Path, building: str, epoch: int) -> None:
    """Atomically refresh the shard's liveness file.

    Plain ``os.replace`` with no fsync: heartbeats are wall-clock
    operational state, loss-tolerant by definition -- the supervisor
    reads recency (mtime), not history.  For the same reason an I/O
    failure here (full disk, dead sector) must not kill an otherwise
    healthy shard: the miss is swallowed after being counted, and a
    *sustained* failure surfaces through the supervisor's existing
    liveness watchdog as a stale heartbeat.
    """
    path = shard_dir / HEARTBEAT_FILENAME
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w") as handle:
            io_write(
                handle,
                json.dumps(
                    {
                        "building": building,
                        "epoch": epoch,
                        "pid": os.getpid(),
                        "time": time.time(),
                    }
                ),
            )
        io_replace(tmp, path)
    except OSError as exc:
        obs_counter("io.heartbeat_failures").inc()
        obs_event(
            "warning", "fleet.heartbeat_failed",
            building=building, epoch=epoch, error=str(exc),
        )
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


def heartbeat_age_s(
    shard_dir: Path, now: Optional[float] = None
) -> Optional[float]:
    """Seconds since the shard's last heartbeat, or None when absent."""
    path = Path(shard_dir) / HEARTBEAT_FILENAME
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    return max(0.0, (time.time() if now is None else now) - mtime)


def _bind_to_parent_death() -> None:
    """Best-effort ``prctl(PR_SET_PDEATHSIG, SIGKILL)`` (Linux only).

    A SIGKILLed supervisor cannot clean up; this makes the kernel do
    it, so ``fleet resume`` never races leaked workers for partition
    locks or checkpoint files.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        libc = ctypes.CDLL(ctypes.util.find_library("c") or "libc.so.6")
        libc.prctl(_PR_SET_PDEATHSIG, signal.SIGKILL)
    except OSError:
        pass


def _redirect_output(shard_dir: Path) -> None:
    """Point fds 1/2 (and the python wrappers) at the shard's log."""
    log_fd = os.open(
        shard_dir / WORKER_LOG_FILENAME,
        os.O_CREAT | os.O_WRONLY | os.O_APPEND,
        0o644,
    )
    sys.stdout.flush()
    sys.stderr.flush()
    os.dup2(log_fd, 1)
    os.dup2(log_fd, 2)
    os.close(log_fd)
    sys.stdout = os.fdopen(1, "w", buffering=1, closefd=False)
    sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)


class _ShardHook:
    """The per-epoch seam: heartbeat, injected faults, CI kill window.

    Runs inside the campaign's watchdog deadline, before the epoch body
    draws anything -- it may sleep or die, never perturb an RNG.
    """

    def __init__(
        self,
        shard_dir: Path,
        building: str,
        attempt: int,
        faults: WorkerFaultPlan,
        epoch_sleep_s: float = 0.0,
    ):
        self.shard_dir = shard_dir
        self.building = building
        self.attempt = attempt
        self.faults = faults
        self.epoch_sleep_s = epoch_sleep_s

    def __call__(self, epoch: int) -> None:
        write_heartbeat(self.shard_dir, self.building, epoch)
        fault = self.faults.matching(self.building, epoch, self.attempt)
        if fault is not None:
            print(
                f"[worker] injected {fault.action} at epoch {epoch} "
                f"(attempt {self.attempt})",
                flush=True,
            )
            if fault.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.action == "hang":
                # One long wedge; the heartbeat above was the last one.
                time.sleep(HANG_SLEEP_S)
            elif fault.action == "poison":
                raise RuntimeError(
                    f"injected poison fault: shard {self.building} "
                    f"epoch {epoch} attempt {self.attempt}"
                )
        if self.epoch_sleep_s > 0.0:
            time.sleep(self.epoch_sleep_s)


def run_shard(
    shard_dir: Path,
    building: str,
    config: CampaignConfig,
    store_dir: Optional[Path] = None,
    attempt: int = 0,
    faults: Optional[WorkerFaultPlan] = None,
    epoch_sleep_s: float = 0.0,
    record_obs: bool = False,
) -> int:
    """Run (or resume) one building's campaign to completion.

    Called in the child process.  Returns the worker exit code; the
    supervisor judges success by the shard's ``result.json`` artifact.
    """
    shard_dir = Path(shard_dir)
    shard_dir.mkdir(parents=True, exist_ok=True)
    _bind_to_parent_death()
    _redirect_output(shard_dir)
    write_heartbeat(shard_dir, building, -1)
    hook = _ShardHook(
        shard_dir,
        building,
        attempt,
        faults or WorkerFaultPlan(),
        epoch_sleep_s=epoch_sleep_s,
    )
    kwargs: Dict[str, Any] = dict(
        epoch_hook=hook,
        store_dir=store_dir,
        store_building=building,
        record_obs=record_obs,
    )
    checkpoints = CheckpointStore(shard_dir / CHECKPOINT_DIRNAME)
    if checkpoints.latest_epoch() is not None:
        campaign, state = Campaign.resume(shard_dir, **kwargs)
        outcome = campaign.run(state)
    else:
        outcome = Campaign(config, state_dir=shard_dir, **kwargs).run()
    return EXIT_INTERRUPTED if outcome.interrupted else EXIT_OK


def worker_main(
    shard_dir: str,
    building: str,
    config_payload: Mapping[str, Any],
    store_dir: Optional[str],
    attempt: int,
    fault_payload: Mapping[str, Any],
    epoch_sleep_s: float,
    record_obs: bool,
) -> None:
    """Process entrypoint (the ``multiprocessing`` target).

    Takes only JSON-able arguments so it works identically under fork
    and spawn start methods.
    """
    code = run_shard(
        Path(shard_dir),
        building,
        CampaignConfig.from_dict(config_payload),
        store_dir=Path(store_dir) if store_dir else None,
        attempt=attempt,
        faults=WorkerFaultPlan.from_dict(fault_payload),
        epoch_sleep_s=epoch_sleep_s,
        record_obs=record_obs,
    )
    sys.exit(code)
