"""Canonical shard merge: many campaign results, one fleet artifact.

The fleet's ``result.json`` must hash identically across worker
counts, spawn orders and any SIGKILL-and-resume schedule, so the merge
is a pure function of the *shard artifacts*:

* shards are folded in sorted building order -- never completion
  order;
* each shard contributes its campaign result's sha256 plus a summary
  of deterministic fields (epoch counts, degradations, storms,
  compliance, grades, fault totals) -- nothing wall-clock-dependent;
* quarantined shards appear as a sorted name list.  Their failure
  *reasons* (exit codes, heartbeat gaps) are operational and live in
  the fleet manifest, not here -- a heartbeat gap's magnitude would
  differ run to run and silently break the hash identity;
* the fleet hash is sha256 over the canonical JSON of the whole body.

Shard results are re-verified on load: a ``result.json`` whose stored
sha256 does not match its recomputed body fails the merge loudly
(:class:`~repro.errors.FleetError`) rather than folding corrupt bytes
into a plausible-looking fleet artifact.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..campaign.driver import CAMPAIGN_RESULT_SCHEMA, RESULT_FILENAME
from ..errors import FleetError
from ..runtime.serialize import canonical_json, read_json
from .config import FleetConfig

#: Schema tag for the fleet-level result artifact.
FLEET_RESULT_SCHEMA = "repro/fleet-result/v1"


def load_shard_result(shard_dir: Path) -> Optional[Dict[str, Any]]:
    """The verified ``result.json`` payload of one shard, or None.

    Returns the full ``{"schema", "sha256", "result"}`` payload after
    re-verifying the stored hash against the recomputed body.
    """
    path = Path(shard_dir) / RESULT_FILENAME
    if not path.exists():
        return None
    try:
        payload = read_json(path)
    except Exception as exc:  # unreadable/corrupt JSON is a loud failure
        raise FleetError(f"unreadable shard result {path}: {exc}")
    if (
        not isinstance(payload, Mapping)
        or payload.get("schema") != CAMPAIGN_RESULT_SCHEMA
        or "result" not in payload
        or "sha256" not in payload
    ):
        raise FleetError(
            f"{path} is not a campaign result "
            f"(schema {payload.get('schema') if isinstance(payload, Mapping) else None!r})"
        )
    recomputed = hashlib.sha256(
        canonical_json(payload["result"]).encode("utf-8")
    ).hexdigest()
    if recomputed != payload["sha256"]:
        raise FleetError(
            f"shard result {path} failed hash verification "
            f"(stored {payload['sha256'][:12]}, recomputed {recomputed[:12]})"
        )
    return dict(payload)


def summarize_shard(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """One shard's deterministic contribution to the fleet body."""
    result = payload["result"]
    records = result.get("epoch_records", [])
    return {
        "sha256": payload["sha256"],
        "epochs": result.get("epochs"),
        "epochs_run": result.get("epochs_run"),
        "degraded_epochs": sum(1 for r in records if r.get("degraded")),
        "epoch_timeouts": list(result.get("timeouts", [])),
        "storm_epochs": len(result.get("storm_epochs", [])),
        "storms_detected": result.get("storms_detected"),
        "sensors_mutually_verified": result.get("sensors_mutually_verified"),
        "compliant": bool(
            (result.get("compliance") or {}).get("compliant")
        ),
        "grade_fractions": dict(result.get("grade_fractions", {})),
        "fault_totals": dict(result.get("fault_totals", {})),
    }


def build_fleet_result(
    config: FleetConfig,
    shard_payloads: Mapping[str, Mapping[str, Any]],
    quarantined: Mapping[str, str],
) -> Dict[str, Any]:
    """The deterministic fleet result body (not yet wrapped/hashed).

    ``shard_payloads`` maps building -> verified shard payload;
    ``quarantined`` maps building -> reason (reasons are dropped here,
    kept in the manifest).  Every configured building must appear in
    exactly one of the two.
    """
    claimed = set(shard_payloads) | set(quarantined)
    missing = sorted(set(config.buildings) - claimed)
    if missing:
        raise FleetError(
            f"cannot merge an incomplete fleet: no result or quarantine "
            f"record for {missing}"
        )
    overlap = sorted(set(shard_payloads) & set(quarantined))
    if overlap:
        raise FleetError(
            f"shard(s) both completed and quarantined: {overlap}"
        )
    unknown = sorted(claimed - set(config.buildings))
    if unknown:
        raise FleetError(f"shard(s) not in the fleet roster: {unknown}")

    buildings: Dict[str, Any] = {}
    for name in sorted(shard_payloads):  # canonical merge order
        buildings[name] = summarize_shard(shard_payloads[name])

    survivors = list(buildings.values())
    fault_totals: Dict[str, int] = {}
    for summary in survivors:
        for key, count in summary["fault_totals"].items():
            fault_totals[key] = fault_totals.get(key, 0) + count
    totals = {
        "buildings": len(config.buildings),
        "completed": len(survivors),
        "quarantined": len(quarantined),
        "epochs_run": sum(s["epochs_run"] or 0 for s in survivors),
        "degraded_epochs": sum(s["degraded_epochs"] for s in survivors),
        "epoch_timeouts": sum(len(s["epoch_timeouts"]) for s in survivors),
        "storms_detected": sum(s["storms_detected"] or 0 for s in survivors),
        "compliant_buildings": sum(1 for s in survivors if s["compliant"]),
        "fault_totals": dict(sorted(fault_totals.items())),
    }
    # No schema tag here: the body is what gets hashed; the file
    # wrapper written by the supervisor carries the schema.
    return {
        "seed": config.seed,
        "buildings": buildings,
        "quarantined": sorted(quarantined),
        "totals": totals,
    }


def fleet_result_hash(body: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of a fleet result body -- the
    identity CI stage 10 and the kill-schedule property test compare."""
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()
