"""repro.fleet: supervised multi-building campaign fleets.

The city-scale deployment the paper argues for: N buildings' monitoring
campaigns sharded across a pool of worker processes, supervised for
crashes and hangs, restarted from checkpoints with bounded backoff,
quarantined when poison -- and byte-deterministic through all of it.

The three invariants (enforced by ``tests/test_fleet_*`` and CI
stage 10; see ``docs/FLEET.md``):

* the fleet ``result.json`` sha256 is identical across worker counts;
* it is identical across SIGKILL-and-resume of any subset of workers
  (including the supervisor itself);
* a shard that fails ``max_restarts`` consecutive times is quarantined
  *loudly* -- fleet manifest, ``fleet status``, ``fleet.quarantines``
  metric, and the result body's ``quarantined`` list -- while every
  surviving shard completes unchanged.
"""

from .config import (
    FLEET_CONFIG_SCHEMA,
    FleetConfig,
    backoff_delay,
    building_names,
    derive_shard_seed,
)
from .merge import (
    FLEET_RESULT_SCHEMA,
    build_fleet_result,
    fleet_result_hash,
    load_shard_result,
    summarize_shard,
)
from .status import fleet_status
from .supervisor import (
    FLEET_MANIFEST_FILENAME,
    FLEET_MANIFEST_SCHEMA,
    FLEET_RESULT_FILENAME,
    SHARDS_DIRNAME,
    FleetOutcome,
    FleetSupervisor,
    resume_fleet,
    run_fleet,
)
from .worker import (
    HEARTBEAT_FILENAME,
    WORKER_LOG_FILENAME,
    heartbeat_age_s,
    run_shard,
    write_heartbeat,
)

__all__ = [
    "FLEET_CONFIG_SCHEMA",
    "FLEET_MANIFEST_FILENAME",
    "FLEET_MANIFEST_SCHEMA",
    "FLEET_RESULT_FILENAME",
    "FLEET_RESULT_SCHEMA",
    "HEARTBEAT_FILENAME",
    "SHARDS_DIRNAME",
    "WORKER_LOG_FILENAME",
    "FleetConfig",
    "FleetOutcome",
    "FleetSupervisor",
    "backoff_delay",
    "build_fleet_result",
    "building_names",
    "derive_shard_seed",
    "fleet_result_hash",
    "fleet_status",
    "heartbeat_age_s",
    "load_shard_result",
    "resume_fleet",
    "run_fleet",
    "run_shard",
    "summarize_shard",
    "write_heartbeat",
]
