"""Fleet configuration: N buildings, one campaign template, one seed.

A fleet shards a city's buildings across a pool of campaign worker
processes.  Determinism at fleet scale rests on two rules pinned here:

* **Per-building seed streams.**  Each shard's campaign seed is derived
  from the fleet seed and the building *name* via sha256
  (:meth:`FleetConfig.shard_seed`), never from worker identity, spawn
  order or restart count -- so a building's result bytes depend only on
  (template config, fleet seed, building name), and any scheduling of
  any number of workers reproduces them exactly.
* **A canonical shard order.**  ``buildings`` is stored sorted and
  duplicate-free; every merge and every manifest iterates it in that
  order (see :mod:`repro.fleet.merge`).

Building names double as store partition components (the fleet's shared
``repro/store/v1`` root keys series by building), so they are validated
with the store's component rules, and reserved ``_``-prefixed names are
rejected.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..campaign import CampaignConfig
from ..errors import FleetError, StoreError
from ..store import validate_component

#: Schema tag for serialized fleet configs.
FLEET_CONFIG_SCHEMA = "repro/fleet-config/v1"


def building_names(count: int) -> Tuple[str, ...]:
    """The default building roster: ``b001`` .. ``b<count>``."""
    if count < 1:
        raise FleetError(f"building count must be >= 1, got {count}")
    width = max(3, len(str(count)))
    return tuple(f"b{i:0{width}d}" for i in range(1, count + 1))


def derive_shard_seed(fleet_seed: int, building: str) -> int:
    """The campaign seed for one building's shard.

    sha256 over ``"fleet:<seed>:<building>"`` -- stable across python
    versions and PYTHONHASHSEED, collision-free in practice, and
    independent per building so shards share no RNG structure.
    """
    digest = hashlib.sha256(
        f"fleet:{fleet_seed}:{building}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def backoff_delay(
    consecutive_failures: int, base_s: float, cap_s: float
) -> float:
    """Bounded exponential backoff before restart attempt N.

    ``base_s`` after the first failure, doubling per consecutive
    failure, clamped at ``cap_s``: 0.25, 0.5, 1.0, ... for the
    defaults.  Zero failures means no wait.
    """
    if consecutive_failures <= 0:
        return 0.0
    return min(cap_s, base_s * (2.0 ** (consecutive_failures - 1)))


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run's deterministic results depend on --
    plus the supervision knobs that only shape *wall time*.

    Args:
        buildings: Shard roster (stored sorted, duplicates rejected).
            Names must be valid store components not starting with
            ``_`` (reserved for self-telemetry namespaces).
        campaign: The per-building campaign template.  Its ``seed`` is
            ignored: each shard runs the template with its own derived
            seed (:meth:`shard_config`).
        seed: Fleet master seed, root of every shard's seed stream.
        workers: Worker-process slots (concurrent shards).  Affects
            wall time only -- never result bytes.
        max_restarts: Consecutive failures before a shard is
            quarantined as poison.  ``max_restarts=3`` means a shard
            gets 3 attempts total (2 restarts), then quarantine.
        heartbeat_timeout_s: Supervisor kills a worker whose heartbeat
            is older than this (<= 0 disables liveness checking).
            Must comfortably exceed one epoch's wall time: workers
            beat at epoch boundaries.
        backoff_base_s / backoff_max_s: Bounded exponential restart
            backoff (see :func:`backoff_delay`).
        poll_interval_s: Supervisor loop cadence.
    """

    buildings: Tuple[str, ...]
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    seed: int = 2021
    workers: int = 4
    max_restarts: int = 3
    heartbeat_timeout_s: float = 30.0
    backoff_base_s: float = 0.25
    backoff_max_s: float = 5.0
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if isinstance(self.buildings, str) or not isinstance(
            self.buildings, (tuple, list)
        ):
            raise FleetError(
                f"buildings must be a sequence of names, "
                f"got {self.buildings!r}"
            )
        names = tuple(self.buildings)
        if not names:
            raise FleetError("a fleet needs at least one building")
        for name in names:
            try:
                validate_component(name, "building")
            except StoreError as exc:
                raise FleetError(str(exc))
            if name.startswith("_"):
                raise FleetError(
                    f"building name {name!r} uses the reserved '_' "
                    f"namespace (self-telemetry)"
                )
        if len(set(names)) != len(names):
            dupes = sorted(n for n in set(names) if names.count(n) > 1)
            raise FleetError(f"duplicate building name(s): {dupes}")
        object.__setattr__(self, "buildings", tuple(sorted(names)))
        if not isinstance(self.campaign, CampaignConfig):
            raise FleetError(
                f"campaign must be a CampaignConfig, got {self.campaign!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FleetError(f"seed must be an int, got {self.seed!r}")
        for name in ("workers", "max_restarts"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise FleetError(
                    f"{name} must be a positive int, got {value!r}"
                )
        for name in ("backoff_base_s", "backoff_max_s", "poll_interval_s"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0.0:
                raise FleetError(
                    f"{name} must be a positive finite number, got {value!r}"
                )
        if not math.isfinite(self.heartbeat_timeout_s):
            raise FleetError(
                f"heartbeat_timeout_s must be finite, "
                f"got {self.heartbeat_timeout_s!r}"
            )

    # ------------------------------------------------------------------
    # Shard derivation
    # ------------------------------------------------------------------

    def shard_seed(self, building: str) -> int:
        """This building's derived campaign seed."""
        if building not in self.buildings:
            raise FleetError(f"unknown building {building!r}")
        return derive_shard_seed(self.seed, building)

    def shard_config(self, building: str) -> CampaignConfig:
        """The campaign config one building's worker actually runs."""
        return dataclasses.replace(
            self.campaign, seed=self.shard_seed(building)
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (includes the schema tag)."""
        payload: Dict[str, Any] = {"schema": FLEET_CONFIG_SCHEMA}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "campaign":
                payload[f.name] = value.to_dict()
            elif f.name == "buildings":
                payload[f.name] = list(value)
            else:
                payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetConfig":
        """Rebuild a config from :meth:`to_dict` output, strictly."""
        if not isinstance(payload, Mapping):
            raise FleetError(
                f"fleet config must be an object, "
                f"got {type(payload).__name__}"
            )
        schema = payload.get("schema", FLEET_CONFIG_SCHEMA)
        if schema != FLEET_CONFIG_SCHEMA:
            raise FleetError(
                f"unsupported fleet-config schema {schema!r} "
                f"(expected {FLEET_CONFIG_SCHEMA!r})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known - {"schema"})
        if unknown:
            raise FleetError(
                f"unknown fleet-config field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = {k: v for k, v in payload.items() if k != "schema"}
        if "campaign" in kwargs:
            campaign = kwargs["campaign"]
            if isinstance(campaign, Mapping):
                kwargs["campaign"] = CampaignConfig.from_dict(campaign)
        if "buildings" in kwargs and isinstance(kwargs["buildings"], list):
            kwargs["buildings"] = tuple(kwargs["buildings"])
        return cls(**kwargs)
