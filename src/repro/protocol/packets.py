"""Gen2-style packet formats for the EcoCapsule air interface.

The downlink packet structure follows the EPC UHF Gen2 protocol
(Sec. 5.1): the reader issues Query/QueryRep/Ack commands, plus an
EcoCapsule-specific SetBlf (configure a node's backscatter link
frequency) and ReadSensor (request a sensed value).  Uplink replies are
RN16 handles and sensor reports, protected by CRC-16.

Packets serialize to bit lists so they travel through the real PHY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Sequence

from ..errors import ProtocolError
from .crc import append_crc16, bits_from_int, crc5, int_from_bits, verify_crc16

#: Command codes (4 bits).
QUERY = 0b0001
QUERY_REP = 0b0010
ACK = 0b0011
SET_BLF = 0b0100
READ_SENSOR = 0b0101

#: Sensor channel codes for ReadSensor (3 bits).
SENSOR_CHANNELS = {
    "temperature": 0b000,
    "humidity": 0b001,
    "strain": 0b010,
    "acceleration": 0b011,
}
SENSOR_CHANNEL_NAMES = {code: name for name, code in SENSOR_CHANNELS.items()}


@dataclass(frozen=True)
class Query:
    """Starts an inventory round with 2^q slots (Gen2 Query)."""

    q: int
    session: int = 0

    COMMAND: ClassVar[int] = QUERY

    def __post_init__(self) -> None:
        if not 0 <= self.q <= 15:
            raise ProtocolError(f"Q must be in [0, 15], got {self.q}")
        if not 0 <= self.session <= 3:
            raise ProtocolError(f"session must be in [0, 3], got {self.session}")

    def to_bits(self) -> List[int]:
        body = (
            bits_from_int(self.COMMAND, 4)
            + bits_from_int(self.q, 4)
            + bits_from_int(self.session, 2)
        )
        return body + crc5(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Query":
        if len(bits) != 15:
            raise ProtocolError(f"Query must be 15 bits, got {len(bits)}")
        body, check = list(bits[:10]), list(bits[10:])
        if crc5(body) != check:
            from ..errors import CrcError

            raise CrcError("Query CRC-5 mismatch")
        if int_from_bits(body[:4]) != cls.COMMAND:
            raise ProtocolError("not a Query packet")
        return cls(q=int_from_bits(body[4:8]), session=int_from_bits(body[8:10]))


@dataclass(frozen=True)
class QueryRep:
    """Advances the inventory round to the next slot."""

    session: int = 0

    COMMAND: ClassVar[int] = QUERY_REP

    def __post_init__(self) -> None:
        if not 0 <= self.session <= 3:
            raise ProtocolError(f"session must be in [0, 3], got {self.session}")

    def to_bits(self) -> List[int]:
        return bits_from_int(self.COMMAND, 4) + bits_from_int(self.session, 2)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "QueryRep":
        if len(bits) != 6:
            raise ProtocolError(f"QueryRep must be 6 bits, got {len(bits)}")
        if int_from_bits(bits[:4]) != cls.COMMAND:
            raise ProtocolError("not a QueryRep packet")
        return cls(session=int_from_bits(bits[4:6]))


@dataclass(frozen=True)
class Ack:
    """Acknowledges a node's RN16, singulating it."""

    rn16: int

    COMMAND: ClassVar[int] = ACK

    def __post_init__(self) -> None:
        if not 0 <= self.rn16 <= 0xFFFF:
            raise ProtocolError(f"RN16 out of range: {self.rn16}")

    def to_bits(self) -> List[int]:
        return bits_from_int(self.COMMAND, 4) + bits_from_int(self.rn16, 16)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Ack":
        if len(bits) != 20:
            raise ProtocolError(f"Ack must be 20 bits, got {len(bits)}")
        if int_from_bits(bits[:4]) != cls.COMMAND:
            raise ProtocolError("not an Ack packet")
        return cls(rn16=int_from_bits(bits[4:20]))


@dataclass(frozen=True)
class SetBlf:
    """Configures the acknowledged node's backscatter link frequency."""

    blf_khz: int

    COMMAND: ClassVar[int] = SET_BLF

    def __post_init__(self) -> None:
        if not 1 <= self.blf_khz <= 255:
            raise ProtocolError(f"BLF must be 1-255 kHz, got {self.blf_khz}")

    def to_bits(self) -> List[int]:
        body = bits_from_int(self.COMMAND, 4) + bits_from_int(self.blf_khz, 8)
        return append_crc16(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "SetBlf":
        body = verify_crc16(bits)
        if len(body) != 12 or int_from_bits(body[:4]) != cls.COMMAND:
            raise ProtocolError("not a SetBlf packet")
        return cls(blf_khz=int_from_bits(body[4:12]))


@dataclass(frozen=True)
class ReadSensor:
    """Requests one sensor channel from the acknowledged node."""

    channel: str

    COMMAND: ClassVar[int] = READ_SENSOR

    def __post_init__(self) -> None:
        if self.channel not in SENSOR_CHANNELS:
            raise ProtocolError(
                f"unknown sensor channel {self.channel!r}; "
                f"expected one of {sorted(SENSOR_CHANNELS)}"
            )

    def to_bits(self) -> List[int]:
        body = bits_from_int(self.COMMAND, 4) + bits_from_int(
            SENSOR_CHANNELS[self.channel], 3
        )
        return append_crc16(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "ReadSensor":
        body = verify_crc16(bits)
        if len(body) != 7 or int_from_bits(body[:4]) != cls.COMMAND:
            raise ProtocolError("not a ReadSensor packet")
        return cls(channel=SENSOR_CHANNEL_NAMES[int_from_bits(body[4:7])])


@dataclass(frozen=True)
class Rn16Reply:
    """Uplink: a node's 16-bit random handle."""

    rn16: int

    def __post_init__(self) -> None:
        if not 0 <= self.rn16 <= 0xFFFF:
            raise ProtocolError(f"RN16 out of range: {self.rn16}")

    def to_bits(self) -> List[int]:
        return bits_from_int(self.rn16, 16)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Rn16Reply":
        if len(bits) != 16:
            raise ProtocolError(f"RN16 reply must be 16 bits, got {len(bits)}")
        return cls(rn16=int_from_bits(bits))


@dataclass(frozen=True)
class SensorReport:
    """Uplink: node id + channel + a 16-bit fixed-point reading, CRC-16.

    Readings are engineering values scaled by ``SCALE`` and offset so the
    16-bit field covers the sensor ranges used in the pilot study.
    """

    node_id: int
    channel: str
    raw: int

    SCALE: ClassVar[float] = 32.0
    OFFSET: ClassVar[int] = 1 << 15

    def __post_init__(self) -> None:
        if not 0 <= self.node_id <= 0xFF:
            raise ProtocolError(f"node id out of range: {self.node_id}")
        if self.channel not in SENSOR_CHANNELS:
            raise ProtocolError(f"unknown sensor channel {self.channel!r}")
        if not 0 <= self.raw <= 0xFFFF:
            raise ProtocolError(f"raw reading out of range: {self.raw}")

    @classmethod
    def from_value(cls, node_id: int, channel: str, value: float) -> "SensorReport":
        """Quantise an engineering value into a report."""
        raw = int(round(value * cls.SCALE)) + cls.OFFSET
        if not 0 <= raw <= 0xFFFF:
            raise ProtocolError(
                f"value {value} does not fit the report's fixed-point range"
            )
        return cls(node_id=node_id, channel=channel, raw=raw)

    @property
    def value(self) -> float:
        """Engineering value carried by the report."""
        return (self.raw - self.OFFSET) / self.SCALE

    def to_bits(self) -> List[int]:
        body = (
            bits_from_int(self.node_id, 8)
            + bits_from_int(SENSOR_CHANNELS[self.channel], 3)
            + bits_from_int(self.raw, 16)
        )
        return append_crc16(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "SensorReport":
        body = verify_crc16(bits)
        if len(body) != 27:
            raise ProtocolError(f"sensor report body must be 27 bits, got {len(body)}")
        return cls(
            node_id=int_from_bits(body[:8]),
            channel=SENSOR_CHANNEL_NAMES[int_from_bits(body[8:11])],
            raw=int_from_bits(body[11:27]),
        )


def parse_command(bits: Sequence[int]):
    """Parse any downlink command from its bits (dispatch on the 4-bit code)."""
    if len(bits) < 4:
        raise ProtocolError("command too short")
    code = int_from_bits(bits[:4])
    parsers = {
        QUERY: Query.from_bits,
        QUERY_REP: QueryRep.from_bits,
        ACK: Ack.from_bits,
        SET_BLF: SetBlf.from_bits,
        READ_SENSOR: ReadSensor.from_bits,
    }
    if code not in parsers:
        raise ProtocolError(f"unknown command code {code:#06b}")
    return parsers[code](bits)
