"""Reader-side inventory: slotted-ALOHA TDMA over multiple EcoCapsules.

The reader starts a round with Query(Q); each node picks a random slot
among 2^Q.  Slots with exactly one replier are singulated (Ack), then
served (SetBlf assignment, sensor reads); empty and collided slots
advance via QueryRep.  The Q parameter adapts between rounds with the
standard Gen2 Q-algorithm so the slot count tracks the population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ProtocolError
from ..obs import obs_counter, obs_enabled, obs_gauge
from .node_sm import NodeStateMachine
from .packets import Ack, Query, QueryRep, ReadSensor, Rn16Reply, SensorReport, SetBlf


@dataclass
class SlotOutcome:
    """What happened in one TDMA slot."""

    slot_index: int
    repliers: int
    singulated_node_id: Optional[int] = None
    reports: List[SensorReport] = field(default_factory=list)

    @property
    def collided(self) -> bool:
        return self.repliers > 1

    @property
    def empty(self) -> bool:
        return self.repliers == 0


@dataclass
class InventoryRound:
    """Result of one full Query...QueryRep round."""

    q: int
    slots: List[SlotOutcome] = field(default_factory=list)

    @property
    def singulated(self) -> int:
        return sum(1 for s in self.slots if s.singulated_node_id is not None)

    @property
    def collisions(self) -> int:
        return sum(1 for s in self.slots if s.collided)

    @property
    def empties(self) -> int:
        return sum(1 for s in self.slots if s.empty)

    @property
    def efficiency(self) -> float:
        """Singulated slots per slot used (ALOHA efficiency, <= ~0.37)."""
        if not self.slots:
            raise ProtocolError("round has no slots")
        return self.singulated / len(self.slots)


@dataclass
class TdmaInventory:
    """Runs inventory rounds against a population of node state machines.

    Args:
        nodes: The reachable nodes (their state machines).
        initial_q: Starting Q (2^Q slots per round).
        channels: Sensor channels to read from each singulated node.
        blf_plan_khz: BLFs assigned round-robin so simultaneous nodes
            occupy distinct sidebands (Sec. 3.4 guard-band scheme).
        seed: RNG seed for reproducibility.
    """

    nodes: Sequence[NodeStateMachine]
    initial_q: int = 2
    channels: Sequence[str] = ("temperature",)
    blf_plan_khz: Sequence[int] = (10, 14, 18, 22)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.initial_q <= 15:
            raise ProtocolError(f"Q must be in [0, 15], got {self.initial_q}")
        if not self.blf_plan_khz:
            raise ProtocolError("BLF plan cannot be empty")
        self._rng = random.Random(self.seed)
        self._q_float = float(self.initial_q)

    def run_round(self, q: Optional[int] = None) -> InventoryRound:
        """Execute one inventory round and return per-slot outcomes."""
        if q is None:
            q = int(round(self._q_float))
        q = min(max(q, 0), 15)
        round_result = InventoryRound(q=q)
        blf_cursor = 0

        # Slot 0: responses to the Query itself.
        replies: Dict[int, Rn16Reply] = {}
        query = Query(q=q)
        for node in self.nodes:
            reply = node.handle(query)
            if isinstance(reply, Rn16Reply):
                replies[node.node_id] = reply

        for slot_index in range(1 << q):
            outcome = SlotOutcome(slot_index=slot_index, repliers=len(replies))
            if len(replies) == 1:
                node_id, reply = next(iter(replies.items()))
                node = self._node_by_id(node_id)
                node.handle(Ack(rn16=reply.rn16))
                if node.is_acknowledged:
                    outcome.singulated_node_id = node_id
                    blf = self.blf_plan_khz[blf_cursor % len(self.blf_plan_khz)]
                    blf_cursor += 1
                    node.handle(SetBlf(blf_khz=blf))
                    for channel in self.channels:
                        report = node.handle(ReadSensor(channel=channel))
                        if isinstance(report, SensorReport):
                            outcome.reports.append(report)
            round_result.slots.append(outcome)

            # Adapt Q between slots (Gen2 Q-algorithm, c = 0.3).
            if outcome.collided:
                self._q_float = min(15.0, self._q_float + 0.3)
            elif outcome.empty:
                self._q_float = max(0.0, self._q_float - 0.3)

            # Advance to the next slot.
            replies = {}
            query_rep = QueryRep()
            for node in self.nodes:
                reply = node.handle(query_rep)
                if isinstance(reply, Rn16Reply):
                    replies[node.node_id] = reply

        if obs_enabled():
            # One bulk update per round (not per slot) keeps the
            # instrumented inventory loop cheap even at Q=15.
            obs_counter("tdma.rounds").inc()
            obs_counter("tdma.slots").inc(len(round_result.slots))
            obs_counter("tdma.collisions").inc(round_result.collisions)
            obs_counter("tdma.empties").inc(round_result.empties)
            obs_counter("tdma.singulations").inc(round_result.singulated)
            obs_gauge("tdma.q").set(self._q_float)
        return round_result

    def inventory_all(self, max_rounds: int = 20) -> Dict[int, List[SensorReport]]:
        """Run rounds until every node has been singulated at least once.

        Returns:
            node_id -> list of sensor reports collected.

        Raises:
            ProtocolError: when ``max_rounds`` elapse with nodes unheard
                (e.g. a population far larger than 2^Q_max).
        """
        collected: Dict[int, List[SensorReport]] = {}
        for _ in range(max_rounds):
            round_result = self.run_round()
            for slot in round_result.slots:
                if slot.singulated_node_id is not None and slot.reports:
                    collected.setdefault(slot.singulated_node_id, []).extend(
                        slot.reports
                    )
            if len(collected) == len(self.nodes):
                return collected
            for node in self.nodes:
                node.power_cycle()
        missing = {n.node_id for n in self.nodes} - set(collected)
        raise ProtocolError(
            f"inventory incomplete after {max_rounds} rounds; unheard nodes: "
            f"{sorted(missing)}"
        )

    def _node_by_id(self, node_id: int) -> NodeStateMachine:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ProtocolError(f"unknown node id {node_id}")
