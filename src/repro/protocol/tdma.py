"""Reader-side inventory: slotted-ALOHA TDMA over multiple EcoCapsules.

The reader starts a round with Query(Q); each node picks a random slot
among 2^Q.  Slots with exactly one replier are singulated (Ack), then
served (SetBlf assignment, sensor reads); empty and collided slots
advance via QueryRep.  The Q parameter adapts between rounds with the
standard Gen2 Q-algorithm so the slot count tracks the population.

The inventory is fault-aware: give it a
:class:`~repro.faults.FaultPlan` and every command/reply crosses a
lossy bit-level channel -- commands are CRC-checked node-side (a node
silently drops what it cannot parse, as a real tag does), replies are
CRC-checked reader-side, and the reader answers corruption with
bounded retries (``max_retries``, counted in the ``tdma.retries``
metric).  Whatever faults remain uncorrected surface as *degraded
results*: :meth:`TdmaInventory.inventory_all` never raises on an
incomplete population -- it returns an :class:`InventoryResult` whose
``unheard_nodes``/``degraded`` record says exactly what was missed.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import ProtocolError
from ..faults import FaultInjector, FaultPlan
from ..obs import obs_counter, obs_enabled, obs_gauge
from .node_sm import NodeStateMachine
from .packets import Ack, Query, QueryRep, ReadSensor, Rn16Reply, SensorReport, SetBlf


@dataclass
class SlotOutcome:
    """What happened in one TDMA slot."""

    slot_index: int
    repliers: int
    singulated_node_id: Optional[int] = None
    reports: List[SensorReport] = field(default_factory=list)

    @property
    def collided(self) -> bool:
        return self.repliers > 1

    @property
    def empty(self) -> bool:
        return self.repliers == 0


@dataclass
class InventoryRound:
    """Result of one full Query...QueryRep round."""

    q: int
    slots: List[SlotOutcome] = field(default_factory=list)

    @property
    def singulated(self) -> int:
        return sum(1 for s in self.slots if s.singulated_node_id is not None)

    @property
    def collisions(self) -> int:
        return sum(1 for s in self.slots if s.collided)

    @property
    def empties(self) -> int:
        return sum(1 for s in self.slots if s.empty)

    @property
    def efficiency(self) -> float:
        """Singulated slots per slot used (ALOHA efficiency, <= ~0.37)."""
        if not self.slots:
            raise ProtocolError("round has no slots")
        return self.singulated / len(self.slots)


@dataclass
class InventoryResult(Mapping):
    """Everything a full inventory produced -- partial results included.

    Behaves as a read-only mapping of ``node_id -> [SensorReport]`` (so
    existing ``for node_id, reports in result.items()`` call sites keep
    working) and additionally records how the inventory went:

    Attributes:
        reports: Collected reports, first full read per node.
        rounds_used: Query rounds executed.
        slots_used: Total slots consumed across those rounds.
        unheard_nodes: Node ids never successfully read.  Non-empty
            means the result is *degraded*, not that the call failed.
        retries: Reader-side command retransmissions (ACK timeouts and
            corrupt-reply re-reads).
        fault_counts: Injected-fault tallies (empty for clean runs).
    """

    reports: Dict[int, List[SensorReport]]
    rounds_used: int
    slots_used: int
    unheard_nodes: List[int] = field(default_factory=list)
    retries: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when the inventory ended with nodes unheard."""
        return bool(self.unheard_nodes)

    def __getitem__(self, node_id: int) -> List[SensorReport]:
        return self.reports[node_id]

    def __iter__(self) -> Iterator[int]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)


@dataclass
class TdmaInventory:
    """Runs inventory rounds against a population of node state machines.

    Args:
        nodes: The reachable nodes (their state machines).
        initial_q: Starting Q (2^Q slots per round).
        channels: Sensor channels to read from each singulated node.
        blf_plan_khz: BLFs assigned round-robin so simultaneous nodes
            occupy distinct sidebands (Sec. 3.4 guard-band scheme).
        seed: RNG seed for reproducibility.
        faults: Optional fault plan; commands and replies then cross a
            lossy bit-level channel (see the module docstring).
        max_retries: Reader retransmissions per command before giving
            up on a node for the slot (only exercised under faults).
    """

    nodes: Sequence[NodeStateMachine]
    initial_q: int = 2
    channels: Sequence[str] = ("temperature",)
    blf_plan_khz: Sequence[int] = (10, 14, 18, 22)
    seed: Optional[int] = None
    faults: Optional[FaultPlan] = None
    max_retries: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.initial_q <= 15:
            raise ProtocolError(f"Q must be in [0, 15], got {self.initial_q}")
        if not self.blf_plan_khz:
            raise ProtocolError("BLF plan cannot be empty")
        if self.max_retries < 0:
            raise ProtocolError(f"max_retries cannot be negative: {self.max_retries}")
        self._rng = random.Random(self.seed)
        self._q_float = float(self.initial_q)
        # id -> node map built once: the per-slot lookup used to be an
        # O(n) scan, which made every round O(n * 2^Q).
        self._nodes_by_id: Dict[int, NodeStateMachine] = {}
        for node in self.nodes:
            if node.node_id in self._nodes_by_id:
                raise ProtocolError(f"duplicate node id {node.node_id}")
            self._nodes_by_id[node.node_id] = node
        self._injector = FaultInjector.from_plan(self.faults)
        self._retries = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def retries(self) -> int:
        """Total reader-side retransmissions so far."""
        return self._retries

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault tallies so far (empty for clean runs)."""
        return dict(self._injector.counts) if self._injector else {}

    # ------------------------------------------------------------------
    # Air interface (fault-aware when an injector is installed)
    # ------------------------------------------------------------------

    def _deliver(self, node: NodeStateMachine, command) -> Optional[object]:
        """Send one command to one node across the (possibly lossy) channel."""
        if self._injector is None:
            return node.handle(command)
        bits = self._injector.corrupt_downlink(command.to_bits())
        return node.handle_bits(bits)

    def _receive(self, reply):
        """What the reader hears of ``reply``: it, a corruption, or nothing.

        Un-CRC'd replies (RN16) come back silently corrupted; CRC'd
        replies (sensor reports) that fail their check return None, as
        does a reply lost to a deep fade.
        """
        if self._injector is None or reply is None:
            return reply
        if self._injector.drop_reply():
            return None
        bits = self._injector.corrupt_uplink(reply.to_bits())
        try:
            return type(reply).from_bits(bits)
        except ProtocolError:
            self._injector.record("uplink_rejected")
            return None

    def _poll(self, roster: Sequence[NodeStateMachine], command) -> Dict[int, Rn16Reply]:
        """Broadcast Query/QueryRep and gather the RN16s the reader hears."""
        replies: Dict[int, Rn16Reply] = {}
        for node in roster:
            reply = self._deliver(node, command)
            if isinstance(reply, Rn16Reply):
                heard = self._receive(reply)
                if isinstance(heard, Rn16Reply):
                    replies[node.node_id] = heard
        return replies

    def _count_retry(self) -> None:
        self._retries += 1
        if obs_enabled():
            obs_counter("tdma.retries").inc()

    def _ack_with_retry(self, node: NodeStateMachine, rn16: int) -> None:
        """Ack the singulated node; retransmit on (injected) ACK timeouts."""
        self._deliver(node, Ack(rn16=rn16))
        if self._injector is None:
            return
        for _ in range(self.max_retries):
            if node.is_acknowledged:
                return
            self._count_retry()
            self._deliver(node, Ack(rn16=rn16))

    def _read_channel(
        self, node: NodeStateMachine, channel: str
    ) -> Optional[SensorReport]:
        """Read one channel; retry on corrupt or missing replies."""
        reply = self._deliver(node, ReadSensor(channel=channel))
        if self._injector is None:
            return reply if isinstance(reply, SensorReport) else None
        attempts_left = self.max_retries
        while True:
            if isinstance(reply, SensorReport):
                heard = self._receive(self._injector.latch_stuck(reply))
                if isinstance(heard, SensorReport):
                    return heard
            if attempts_left == 0:
                self._injector.record("read_retries_exhausted")
                return None
            attempts_left -= 1
            self._count_retry()
            reply = self._deliver(node, ReadSensor(channel=channel))

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def run_round(self, q: Optional[int] = None) -> InventoryRound:
        """Execute one inventory round and return per-slot outcomes."""
        if q is None:
            q = int(round(self._q_float))
        q = min(max(q, 0), 15)
        round_result = InventoryRound(q=q)
        blf_cursor = 0
        roster = list(self.nodes)

        # Schedule this round's brownouts: each victim's harvested
        # supply collapses at a drawn slot and it misses the rest of
        # the round (it recharges in time for the next one).
        victims: Dict[int, List[int]] = {}
        if self._injector is not None:
            for node in self.nodes:
                if self._injector.brownout():
                    slot = self._injector.victim_slot(1 << q)
                    victims.setdefault(slot, []).append(node.node_id)

        # Slot 0: responses to the Query itself.
        replies = self._poll(roster, Query(q=q))

        for slot_index in range(1 << q):
            if slot_index in victims:
                downed = set(victims[slot_index])
                for node_id in downed:
                    self._nodes_by_id[node_id].power_cycle()
                    replies.pop(node_id, None)
                roster = [n for n in roster if n.node_id not in downed]
            if self._injector is not None and self._injector.slot_jitter():
                # The reader sampled the wrong uplink window: whatever
                # was backscattered this slot goes unheard.
                replies = {}
            outcome = SlotOutcome(slot_index=slot_index, repliers=len(replies))
            if len(replies) == 1:
                node_id, reply = next(iter(replies.items()))
                node = self._nodes_by_id[node_id]
                self._ack_with_retry(node, reply.rn16)
                if node.is_acknowledged:
                    outcome.singulated_node_id = node_id
                    blf = self.blf_plan_khz[blf_cursor % len(self.blf_plan_khz)]
                    blf_cursor += 1
                    self._deliver(node, SetBlf(blf_khz=blf))
                    for channel in self.channels:
                        report = self._read_channel(node, channel)
                        if report is not None:
                            outcome.reports.append(report)
            round_result.slots.append(outcome)

            # Adapt Q between slots (Gen2 Q-algorithm, c = 0.3).
            if outcome.collided:
                self._q_float = min(15.0, self._q_float + 0.3)
            elif outcome.empty:
                self._q_float = max(0.0, self._q_float - 0.3)

            # Advance to the next slot.
            replies = self._poll(roster, QueryRep())

        if obs_enabled():
            # One bulk update per round (not per slot) keeps the
            # instrumented inventory loop cheap even at Q=15.
            obs_counter("tdma.rounds").inc()
            obs_counter("tdma.slots").inc(len(round_result.slots))
            obs_counter("tdma.collisions").inc(round_result.collisions)
            obs_counter("tdma.empties").inc(round_result.empties)
            obs_counter("tdma.singulations").inc(round_result.singulated)
            obs_gauge("tdma.q").set(self._q_float)
        return round_result

    def inventory_all(self, max_rounds: int = 20) -> InventoryResult:
        """Run rounds until every node is read or ``max_rounds`` elapse.

        Nodes power-cycle between rounds (their harvested state dies
        with the CBW gap), and the first full read per node wins --
        later re-singulations of an already-served node are ignored.

        Never raises on an incomplete population: the returned
        :class:`InventoryResult` carries partial ``reports`` plus the
        ``unheard_nodes`` that make it ``degraded``.
        """
        retries_before = self._retries
        collected: Dict[int, List[SensorReport]] = {}
        rounds_used = 0
        slots_used = 0
        for _ in range(max_rounds):
            round_result = self.run_round()
            rounds_used += 1
            slots_used += len(round_result.slots)
            for slot in round_result.slots:
                if slot.singulated_node_id is not None and slot.reports:
                    if slot.singulated_node_id not in collected:
                        collected[slot.singulated_node_id] = list(slot.reports)
            if len(collected) == len(self.nodes):
                break
            for node in self.nodes:
                node.power_cycle()
        unheard = sorted(set(self._nodes_by_id) - set(collected))
        if unheard and obs_enabled():
            obs_counter("tdma.inventories_degraded").inc()
            obs_counter("tdma.nodes_unheard").inc(len(unheard))
        return InventoryResult(
            reports=collected,
            rounds_used=rounds_used,
            slots_used=slots_used,
            unheard_nodes=unheard,
            retries=self._retries - retries_before,
            fault_counts=self.fault_counts,
        )

    def _node_by_id(self, node_id: int) -> NodeStateMachine:
        try:
            return self._nodes_by_id[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node id {node_id}") from None
