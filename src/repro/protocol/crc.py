"""CRC-5 and CRC-16 as used by the EPC UHF Gen2 air interface.

The paper's downlink packet structure follows Gen2 (Sec. 5.1), so the
reproduction uses the same integrity checks: CRC-5 (poly 0x09, preset
0x09) on Query commands and CRC-16/CCITT (poly 0x1021, preset 0xFFFF,
inverted) on longer messages.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ProtocolError


def _check_bits(bits: Sequence[int]) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bits must be 0/1, got {bit!r}")


def crc5(bits: Sequence[int]) -> List[int]:
    """Gen2 CRC-5 over a bit sequence; returns 5 check bits (MSB first)."""
    _check_bits(bits)
    register = 0b01001  # Gen2 preset
    for bit in bits:
        msb = (register >> 4) & 1
        register = ((register << 1) & 0b11111) | 0
        if msb ^ bit:
            register ^= 0b01001
    return [(register >> i) & 1 for i in range(4, -1, -1)]


def crc16(bits: Sequence[int]) -> List[int]:
    """Gen2 CRC-16 (CCITT) over bits; returns 16 check bits (MSB first)."""
    _check_bits(bits)
    register = 0xFFFF
    for bit in bits:
        msb = (register >> 15) & 1
        register = (register << 1) & 0xFFFF
        if msb ^ bit:
            register ^= 0x1021
    register ^= 0xFFFF
    return [(register >> i) & 1 for i in range(15, -1, -1)]


def append_crc16(bits: Sequence[int]) -> List[int]:
    """Message bits with their CRC-16 appended."""
    return list(bits) + crc16(bits)


def verify_crc16(bits_with_crc: Sequence[int]) -> List[int]:
    """Validate and strip a trailing CRC-16.

    Returns:
        The payload bits without the CRC.

    Raises:
        ProtocolError: when the message is too short or the CRC fails.
    """
    if len(bits_with_crc) < 17:
        raise ProtocolError(
            f"message of {len(bits_with_crc)} bits cannot carry a CRC-16"
        )
    payload = list(bits_with_crc[:-16])
    expected = crc16(payload)
    actual = list(bits_with_crc[-16:])
    if expected != actual:
        from ..errors import CrcError

        raise CrcError("CRC-16 mismatch")
    return payload


def bits_from_int(value: int, width: int) -> List[int]:
    """Big-endian bit list of ``value`` in ``width`` bits."""
    if width <= 0:
        raise ProtocolError(f"width must be positive, got {width}")
    if value < 0 or value >= (1 << width):
        raise ProtocolError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width - 1, -1, -1)]


def int_from_bits(bits: Iterable[int]) -> int:
    """Big-endian integer from a bit list."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bits must be 0/1, got {bit!r}")
        value = (value << 1) | bit
    return value
