"""Protocol layer: CRCs, Gen2-style packets, node state machine, TDMA."""

from .crc import (
    append_crc16,
    bits_from_int,
    crc5,
    crc16,
    int_from_bits,
    verify_crc16,
)
from .node_sm import (
    ACKNOWLEDGED,
    ARBITRATE,
    READY,
    REPLY,
    NodeStateMachine,
)
from .packets import (
    Ack,
    Query,
    QueryRep,
    ReadSensor,
    Rn16Reply,
    SensorReport,
    SetBlf,
    parse_command,
)
from .tdma import InventoryResult, InventoryRound, SlotOutcome, TdmaInventory

__all__ = [
    "append_crc16",
    "bits_from_int",
    "crc5",
    "crc16",
    "int_from_bits",
    "verify_crc16",
    "ACKNOWLEDGED",
    "ARBITRATE",
    "READY",
    "REPLY",
    "NodeStateMachine",
    "Ack",
    "Query",
    "QueryRep",
    "ReadSensor",
    "Rn16Reply",
    "SensorReport",
    "SetBlf",
    "parse_command",
    "InventoryResult",
    "InventoryRound",
    "SlotOutcome",
    "TdmaInventory",
]
