"""Node-side protocol state machine (Gen2-style tag logic).

An EcoCapsule's MCU runs this logic: on Query it draws a random slot
counter; when the counter reaches zero it backscatters an RN16 and waits
for an Ack; once acknowledged it accepts SetBlf / ReadSensor commands
addressed to it.  The paper adopts the Gen2 slotted TDMA "because a
limited number of EcoCapsules are implanted into a wall" (Sec. 3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ProtocolError
from .packets import (
    Ack,
    Query,
    QueryRep,
    ReadSensor,
    Rn16Reply,
    SensorReport,
    SetBlf,
    parse_command,
)

#: Node protocol states.
READY = "ready"
ARBITRATE = "arbitrate"
REPLY = "reply"
ACKNOWLEDGED = "acknowledged"


@dataclass
class NodeStateMachine:
    """The tag-side protocol engine.

    Args:
        node_id: This node's 8-bit identity.
        read_sensor: Callback mapping a channel name to its current
            engineering value (wired to the capsule's sensor suite).
        seed: RNG seed for slot/RN16 draws (reproducible inventories).
    """

    node_id: int
    read_sensor: Callable[[str], float]
    seed: Optional[int] = None
    state: str = field(default=READY, init=False)
    slot_counter: int = field(default=0, init=False)
    rn16: Optional[int] = field(default=None, init=False)
    blf_khz: int = field(default=10, init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.node_id <= 0xFF:
            raise ProtocolError(f"node id out of range: {self.node_id}")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------

    def handle(self, command) -> Optional[object]:
        """Process one downlink command; return an uplink reply or None."""
        if isinstance(command, Query):
            return self._on_query(command)
        if isinstance(command, QueryRep):
            return self._on_query_rep()
        if isinstance(command, Ack):
            return self._on_ack(command)
        if isinstance(command, SetBlf):
            return self._on_set_blf(command)
        if isinstance(command, ReadSensor):
            return self._on_read_sensor(command)
        raise ProtocolError(f"node cannot handle {type(command).__name__}")

    def handle_bits(self, bits) -> Optional[object]:
        """Process a raw downlink bit vector, as heard over the air.

        This is the fault-tolerant entry point the lossy channel uses:
        a real tag that hears a command failing its CRC (or an opcode
        mangled into garbage) simply stays silent, so parse errors are
        swallowed rather than raised.  Clean simulations keep calling
        :meth:`handle` with typed commands directly.
        """
        try:
            command = parse_command(bits)
        except ProtocolError:
            return None
        return self.handle(command)

    def _on_query(self, query: Query) -> Optional[Rn16Reply]:
        self.slot_counter = self._rng.randrange(1 << query.q)
        self.rn16 = None
        if self.slot_counter == 0:
            return self._enter_reply()
        self.state = ARBITRATE
        return None

    #: Sentinel slot counter for a node that already replied this round:
    #: Gen2 wraps a zero counter to 0x7FFF on QueryRep, which in practice
    #: parks the tag until the next Query.
    _OUT_OF_ROUND = 0x7FFF

    def _on_query_rep(self) -> Optional[Rn16Reply]:
        if self.state == ACKNOWLEDGED:
            # Round moved on; this node is done for the round.
            self.state = READY
            return None
        if self.state not in (ARBITRATE, REPLY):
            return None
        if self.state == REPLY:
            # Collided or unheard: Gen2 wraps the counter, parking the
            # node until the next Query round.
            self.state = ARBITRATE
            self.slot_counter = self._OUT_OF_ROUND
            return None
        self.slot_counter -= 1
        if self.slot_counter <= 0:
            return self._enter_reply()
        return None

    def _enter_reply(self) -> Rn16Reply:
        self.state = REPLY
        self.rn16 = self._rng.randrange(1 << 16)
        return Rn16Reply(rn16=self.rn16)

    def _on_ack(self, ack: Ack) -> None:
        if self.state != REPLY or self.rn16 is None:
            return None
        if ack.rn16 != self.rn16:
            self.state = ARBITRATE
            return None
        self.state = ACKNOWLEDGED
        return None

    def _on_set_blf(self, command: SetBlf) -> None:
        if self.state != ACKNOWLEDGED:
            return None
        self.blf_khz = command.blf_khz
        return None

    def _on_read_sensor(self, command: ReadSensor) -> Optional[SensorReport]:
        if self.state != ACKNOWLEDGED:
            return None
        value = self.read_sensor(command.channel)
        return SensorReport.from_value(self.node_id, command.channel, value)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    @property
    def is_acknowledged(self) -> bool:
        return self.state == ACKNOWLEDGED

    def power_cycle(self) -> None:
        """Reset to READY, as after losing the CBW (harvested supply)."""
        self.state = READY
        self.slot_counter = 0
        self.rn16 = None
