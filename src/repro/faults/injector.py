"""Deterministic fault injection driven by a :class:`FaultPlan`.

The injector is the single source of fault randomness.  Every fault
type draws from its own named RNG stream (seeded from the plan seed +
the stream name), so enabling one fault never perturbs the draws of
another: a run with ``brownout_rate=0.1`` sees the same brownouts
whether or not bit errors are also enabled.  A rate of zero never
touches its stream at all, which is what keeps an inactive plan's
simulation byte-identical to a run with no plan.

Every injected fault is double-booked: into the injector's local
``counts`` (returned with degraded results so fault totals are part of
the deterministic payload) and into the ``faults.*`` observability
counters (visible in ``experiments stats`` when --obs is on).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import FaultConfigError
from ..obs import obs_counter, obs_enabled
from .plan import FaultPlan


class FaultInjector:
    """Replays the faults a :class:`FaultPlan` describes, deterministically.

    Args:
        plan: The fault plan to execute.

    Build one per simulation run (its RNG streams and stuck-sensor
    latches are stateful); :meth:`from_plan` returns None for absent
    or inactive plans so call sites can keep a fast no-fault path.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}
        self._stuck: Dict[Tuple[int, str], Optional[int]] = {}

    @classmethod
    def from_plan(cls, plan: Optional[FaultPlan]) -> Optional["FaultInjector"]:
        """An injector for ``plan``, or None when there is nothing to inject."""
        if plan is None or not plan.active:
            return None
        return cls(plan)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _stream(self, name: str) -> random.Random:
        """The named RNG stream (created on first use, seed-stable)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(f"{self.plan.seed}:{name}")
            self._streams[name] = stream
        return stream

    def record(self, name: str, count: int = 1) -> None:
        """Book ``count`` occurrences of fault ``name`` (local + obs)."""
        if count <= 0:
            return
        self.counts[name] = self.counts.get(name, 0) + count
        if obs_enabled():
            obs_counter(f"faults.{name}").inc(count)

    def _hit(self, stream: str, rate: float) -> bool:
        """One Bernoulli draw from ``stream``; zero rates never draw."""
        return rate > 0.0 and self._stream(stream).random() < rate

    # ------------------------------------------------------------------
    # State serialization (campaign checkpoints)
    # ------------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """JSON-able snapshot: RNG streams, stuck latches, fault counts.

        The campaign runtime checkpoints this so a resumed run
        continues every fault stream mid-sequence and keeps sensors
        that latched months ago latched.
        """
        return {
            "streams": {
                name: [state[0], list(state[1]), state[2]]
                for name, state in sorted(
                    (n, s.getstate()) for n, s in self._streams.items()
                )
            },
            "stuck": [
                [node_id, channel, latched]
                for (node_id, channel), latched in sorted(self._stuck.items())
            ],
            "counts": dict(self.counts),
        }

    def restore_state(self, payload: Mapping[str, Any]) -> None:
        """Rebuild :meth:`export_state` output into this injector."""
        try:
            self._streams = {}
            for name, state in payload["streams"].items():
                stream = random.Random()
                stream.setstate(
                    (state[0], tuple(int(v) for v in state[1]), state[2])
                )
                self._streams[name] = stream
            self._stuck = {
                (int(node_id), str(channel)): latched
                for node_id, channel, latched in payload["stuck"]
            }
            self.counts = {
                str(k): int(v) for k, v in payload["counts"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultConfigError(f"malformed injector state: {exc!r}")

    # ------------------------------------------------------------------
    # Channel faults
    # ------------------------------------------------------------------

    def _corrupt(self, bits: Sequence[int], ber: float, label: str) -> List[int]:
        if ber <= 0.0:
            return list(bits)
        stream = self._stream(label)
        out = list(bits)
        flipped = 0
        for index in range(len(out)):
            if stream.random() < ber:
                out[index] ^= 1
                flipped += 1
        self.record(f"{label}_bits_flipped", flipped)
        return out

    def corrupt_downlink(self, bits: Sequence[int]) -> List[int]:
        """Reader->node command bits after the channel's bit flips."""
        return self._corrupt(bits, self.plan.downlink_ber, "downlink")

    def corrupt_uplink(self, bits: Sequence[int]) -> List[int]:
        """Node->reader reply bits after the channel's bit flips."""
        return self._corrupt(bits, self.plan.uplink_ber, "uplink")

    def drop_reply(self) -> bool:
        """True when an uplink reply vanishes in a deep fade."""
        hit = self._hit("reply_loss", self.plan.reply_loss_rate)
        if hit:
            self.record("replies_dropped")
        return hit

    def slot_jitter(self) -> bool:
        """True when the reader's slot timing slips this slot."""
        hit = self._hit("slot_jitter", self.plan.slot_jitter_rate)
        if hit:
            self.record("jittered_slots")
        return hit

    # ------------------------------------------------------------------
    # Power faults
    # ------------------------------------------------------------------

    def brownout(self) -> bool:
        """True when a node browns out this round (draw once per node)."""
        hit = self._hit("brownout", self.plan.brownout_rate)
        if hit:
            self.record("brownouts")
        return hit

    def victim_slot(self, n_slots: int) -> int:
        """The slot at which a browned-out node's supply collapses."""
        if n_slots <= 1:
            return 0
        return self._stream("brownout_slot").randrange(n_slots)

    def reader_dropout(self) -> bool:
        """True when one CBW charge attempt fails at the reader."""
        hit = self._hit("reader_dropout", self.plan.reader_dropout_rate)
        if hit:
            self.record("reader_dropouts")
        return hit

    # ------------------------------------------------------------------
    # Sensor faults
    # ------------------------------------------------------------------

    def latch_stuck(self, report):
        """Apply the stuck-at fault model to one sensor report.

        The first read of a (node, channel) pair decides -- once, from
        the ``stuck`` stream -- whether that sensor is a stuck-at unit;
        a stuck sensor latches its first raw reading and repeats it on
        every later read.  Healthy sensors pass through untouched.
        """
        rate = self.plan.stuck_sensor_rate
        if rate <= 0.0:
            return report
        from ..protocol.packets import SensorReport

        key = (report.node_id, report.channel)
        if key not in self._stuck:
            stuck = self._stream("stuck").random() < rate
            # A stuck unit latches this very first reading.
            self._stuck[key] = report.raw if stuck else None
            return report
        latched = self._stuck[key]
        if latched is None:
            return report
        self.record("stuck_reads")
        return SensorReport(
            node_id=report.node_id, channel=report.channel, raw=latched
        )
