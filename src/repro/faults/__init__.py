"""Fault injection: deterministic hostile-world modelling for the stack.

``repro.faults`` is the layer that lets every simulator above it stop
assuming a perfect world.  A :class:`FaultPlan` declares *what* can go
wrong (bit errors, lost replies, brownouts, reader dropouts, slot
jitter, stuck sensors) as seeded probabilities; a
:class:`FaultInjector` built from the plan decides *when* each fault
fires, reproducibly.  ``TdmaInventory`` and ``WallSession`` accept a
plan directly; the CLI loads one from JSON via
``experiments run --faults plan.json``.

Beyond the physical-world faults, two sibling modules model a hostile
*machine*: :mod:`repro.faults.io` injects seeded storage faults
(ENOSPC, EIO, torn writes, dropped renames, bit rot) underneath every
real write path, and :mod:`repro.faults.chaos` runs end-to-end drills
proving the stack recovers from them -- or fails loudly -- never
silently diverging.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy, the plan schema and
the retry/degradation policies layered on top.
"""

from ..errors import FaultPlanError
from .injector import FaultInjector
from .io import (
    IO_FAULT_SCHEMA,
    IO_RATE_FIELDS,
    IoFaultInjector,
    IoFaultPlan,
    active_io_injector,
    clear_io_faults,
    install_io_faults,
    io_faults,
    io_faults_active,
    reclaim_tmp_files,
    retry_io,
)
from .plan import (
    FAULT_PLAN_SCHEMA,
    FaultPlan,
    RATE_FIELDS,
    ber_from_snr_db,
    plan_from_link_budget,
)
from .worker import (
    UNBOUNDED,
    WORKER_FAULT_ACTIONS,
    WORKER_FAULT_SCHEMA,
    WorkerFault,
    WorkerFaultPlan,
)

#: Chaos-drill names resolved lazily (PEP 562): ``repro.faults.chaos``
#: imports the campaign/fleet drivers, which themselves import this
#: package -- an eager import here would be a cycle.
_CHAOS_EXPORTS = (
    "CHAOS_SCHEMA",
    "ChaosConfig",
    "evaluate_drill",
    "run_drill",
    "verify_drill",
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "IO_FAULT_SCHEMA",
    "IO_RATE_FIELDS",
    "IoFaultInjector",
    "IoFaultPlan",
    "RATE_FIELDS",
    "UNBOUNDED",
    "WORKER_FAULT_ACTIONS",
    "WORKER_FAULT_SCHEMA",
    "WorkerFault",
    "WorkerFaultPlan",
    "active_io_injector",
    "ber_from_snr_db",
    "clear_io_faults",
    "install_io_faults",
    "io_faults",
    "io_faults_active",
    "plan_from_link_budget",
    "reclaim_tmp_files",
    "retry_io",
    *_CHAOS_EXPORTS,
]
