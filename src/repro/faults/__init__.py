"""Fault injection: deterministic hostile-world modelling for the stack.

``repro.faults`` is the layer that lets every simulator above it stop
assuming a perfect world.  A :class:`FaultPlan` declares *what* can go
wrong (bit errors, lost replies, brownouts, reader dropouts, slot
jitter, stuck sensors) as seeded probabilities; a
:class:`FaultInjector` built from the plan decides *when* each fault
fires, reproducibly.  ``TdmaInventory`` and ``WallSession`` accept a
plan directly; the CLI loads one from JSON via
``experiments run --faults plan.json``.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy, the plan schema and
the retry/degradation policies layered on top.
"""

from ..errors import FaultPlanError
from .injector import FaultInjector
from .plan import (
    FAULT_PLAN_SCHEMA,
    FaultPlan,
    RATE_FIELDS,
    ber_from_snr_db,
    plan_from_link_budget,
)
from .worker import (
    UNBOUNDED,
    WORKER_FAULT_ACTIONS,
    WORKER_FAULT_SCHEMA,
    WorkerFault,
    WorkerFaultPlan,
)

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "RATE_FIELDS",
    "UNBOUNDED",
    "WORKER_FAULT_ACTIONS",
    "WORKER_FAULT_SCHEMA",
    "WorkerFault",
    "WorkerFaultPlan",
    "ber_from_snr_db",
    "plan_from_link_budget",
]
