"""Fault plans: declarative, seedable descriptions of a hostile channel.

The 17-month footbridge pilot survives a physical reality the clean
simulators never exercise: charge-starved brownouts, off-resonance
links that flip bits, a reader whose CBW blast occasionally fails, and
sensors that silently latch.  A :class:`FaultPlan` captures those
failure modes as *rates* so any simulator can accept one plan object,
and the :class:`~repro.faults.injector.FaultInjector` built from it
replays the same faults for the same seed -- fault runs are as
reproducible as clean runs.

All rates are probabilities in [0, 1]:

* ``downlink_ber`` / ``uplink_ber`` -- per-bit flip probability on
  reader commands / node replies (corruption is caught by the Gen2
  CRCs, exercising ``protocol.crc`` on the live TDMA path);
* ``reply_loss_rate`` -- a reply vanishes entirely (deep fade);
* ``brownout_rate`` -- per node per round, the harvested supply
  collapses mid-round and the node forgets its protocol state;
* ``reader_dropout_rate`` -- a CBW charge attempt fails outright
  (cable knock, amplifier trip); the session retries with backoff;
* ``slot_jitter_rate`` -- the reader samples the wrong uplink window
  for a slot and hears nothing;
* ``stuck_sensor_rate`` -- per (node, channel), the sensor latches its
  first reading forever (stuck-at fault).

A plan with every rate at zero is *inactive*: simulators take the
exact code path they take with no plan at all, so golden snapshots
stay byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from ..errors import FaultConfigError, FaultPlanError

#: Field names that hold probabilities (everything except the seed).
RATE_FIELDS = (
    "downlink_ber",
    "uplink_ber",
    "reply_loss_rate",
    "brownout_rate",
    "reader_dropout_rate",
    "slot_jitter_rate",
    "stuck_sensor_rate",
)

#: Schema tag written into serialized plans.
FAULT_PLAN_SCHEMA = "repro/fault-plan/v1"


@dataclass(frozen=True)
class FaultPlan:
    """A seedable description of every fault the stack can inject.

    Args:
        seed: Seed for the fault RNG streams (independent of the
            simulator seeds, so the same protocol run can be replayed
            under different fault draws and vice versa).
        downlink_ber: Per-bit flip probability, reader -> node.
        uplink_ber: Per-bit flip probability, node -> reader.
        reply_loss_rate: Probability an uplink reply is lost entirely.
        brownout_rate: Per-node-per-round probability of a mid-round
            supply collapse.
        reader_dropout_rate: Probability one CBW charge attempt fails.
        slot_jitter_rate: Probability a slot's timing slips and the
            reader hears nothing that slot.
        stuck_sensor_rate: Per-(node, channel) probability the sensor
            is a stuck-at unit that latches its first reading.
    """

    seed: int = 0
    downlink_ber: float = 0.0
    uplink_ber: float = 0.0
    reply_loss_rate: float = 0.0
    brownout_rate: float = 0.0
    reader_dropout_rate: float = 0.0
    slot_jitter_rate: float = 0.0
    stuck_sensor_rate: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise FaultConfigError(f"seed must be an int, got {self.seed!r}")
        for name in RATE_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise FaultPlanError(f"{name} must be a number, got {value!r}")
            if math.isnan(value) or not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )

    # ------------------------------------------------------------------
    # Derived plans
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The inactive plan (every rate zero)."""
        return cls()

    @property
    def active(self) -> bool:
        """True when any fault rate is nonzero."""
        return any(getattr(self, name) > 0.0 for name in RATE_FIELDS)

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``intensity``.

        Rates clamp at 1.0; ``intensity=0`` yields an inactive plan, so
        a fault sweep's zero point runs the exact clean code path.

        ``intensity`` must be a finite non-negative real number --
        NaN/inf would silently saturate every rate through the clamp
        (``min(1.0, nan)`` is 1.0), turning a bad input into a
        plausible-looking catastrophic plan, so both are rejected with
        :class:`~repro.errors.FaultPlanError` instead.
        """
        if not isinstance(intensity, (int, float)) or isinstance(intensity, bool):
            raise FaultPlanError(
                f"intensity must be a number, got {intensity!r}"
            )
        if math.isnan(intensity) or math.isinf(intensity):
            raise FaultPlanError(f"intensity must be finite, got {intensity}")
        if intensity < 0.0:
            raise FaultPlanError(f"intensity cannot be negative: {intensity}")
        rates = {
            name: min(1.0, getattr(self, name) * intensity)
            for name in RATE_FIELDS
        }
        return dataclasses.replace(self, **rates)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (includes the schema tag)."""
        payload: Dict[str, Any] = {"schema": FAULT_PLAN_SCHEMA, "seed": self.seed}
        for name in RATE_FIELDS:
            payload[name] = getattr(self, name)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a dict, rejecting unknown keys loudly."""
        if not isinstance(payload, Mapping):
            raise FaultConfigError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        known = {"schema", "seed", *RATE_FIELDS}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown fault-plan field(s) {unknown}; known: {sorted(known)}"
            )
        schema = payload.get("schema", FAULT_PLAN_SCHEMA)
        if schema != FAULT_PLAN_SCHEMA:
            raise FaultConfigError(
                f"unsupported fault-plan schema {schema!r} "
                f"(expected {FAULT_PLAN_SCHEMA!r})"
            )
        kwargs = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI ``--faults`` format)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise FaultConfigError(f"cannot read fault plan {path}: {exc}")
        except ValueError as exc:
            raise FaultConfigError(f"fault plan {path} is not valid JSON: {exc}")
        return cls.from_dict(payload)

    def to_json_file(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON (round-trips with :meth:`from_json_file`)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))


def ber_from_snr_db(snr_db: float) -> float:
    """Coherent-detection bit error rate at a given in-band SNR (dB).

    The standard BPSK/OOK-style waterline ``0.5 * erfc(sqrt(Es/N0))``;
    the anchor for deriving packet-corruption rates from a link budget
    instead of guessing them.

    >>> ber_from_snr_db(40.0) < 1e-12
    True
    """
    es_n0 = 10.0 ** (snr_db / 10.0)
    return 0.5 * math.erfc(math.sqrt(es_n0))


def plan_from_link_budget(
    link: Any,
    distance: float,
    tx_voltage: float,
    seed: int = 0,
    **overrides: float,
) -> FaultPlan:
    """Derive a fault plan from a charging-link budget.

    Maps the harvested headroom at ``distance`` (dB above the
    activation threshold, :func:`repro.link.harvested_headroom_db`) to
    a symmetric bit error rate via :func:`ber_from_snr_db`, so packet
    corruption tracks the same physics as the power-up range.  Nodes
    near the edge of the charge envelope also brown out: the brownout
    rate ramps from 0 (>= 10 dB headroom) to 0.25 (0 dB).

    Extra keyword rates (e.g. ``reply_loss_rate=0.05``) are applied on
    top of the derived ones.
    """
    from ..link.budget import harvested_headroom_db

    headroom_db = harvested_headroom_db(link, distance, tx_voltage)
    ber = ber_from_snr_db(headroom_db)
    brownout = min(0.25, max(0.0, (10.0 - headroom_db) / 10.0 * 0.25))
    rates: Dict[str, float] = {
        "downlink_ber": min(1.0, ber),
        "uplink_ber": min(1.0, ber),
        "brownout_rate": brownout,
    }
    rates.update(overrides)
    return FaultPlan(seed=seed, **rates)
