"""Worker-level fault injection: kill, hang or poison a fleet shard.

The channel/sensor faults in :mod:`repro.faults.plan` model a hostile
*world*; a fleet (see :mod:`repro.fleet`) also has to survive a hostile
*runtime* -- a campaign worker process that dies (OOM killer, node
reboot), wedges (NFS stall, scheduler pathologies), or fails the same
way on every restart (a poison shard).  A :class:`WorkerFaultPlan` is
the deterministic test double for those failure modes: a list of
:class:`WorkerFault` entries saying which building's worker misbehaves
at which epoch, and how many restart attempts the fault survives.

Faults fire from the campaign's ``epoch_hook`` -- *before* the epoch
body draws anything from the experiment RNG streams -- so an injected
failure at epoch ``e`` leaves the last checkpoint's state exactly what
a real SIGKILL at that boundary would: the resumed run is byte-
identical to an unharmed one.  That property is what lets the fleet
test suite assert sha256 identity across arbitrary kill schedules.

Actions:

* ``kill``   -- the worker SIGKILLs itself (crash: no cleanup, no
  checkpoint flush; resume replays from the last checkpoint);
* ``hang``   -- the worker sleeps far past any heartbeat budget; the
  supervisor's liveness watchdog must detect and kill it;
* ``poison`` -- the worker raises; by default the fault never expires
  (``times`` = unbounded), so the shard fails every restart and ends
  quarantined.

``times`` bounds how many *attempts* (0-based restart counts) the
fault fires on: a ``kill`` with ``times=2`` crashes attempts 0 and 1,
then attempt 2 runs clean -- the recovery path.  Plans serialize to
JSON (the CLI's ``fleet run --worker-faults plan.json``) and can be
drawn on a seeded schedule with :meth:`WorkerFaultPlan.seeded`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import FaultConfigError

#: Schema tag written into serialized worker-fault plans.
WORKER_FAULT_SCHEMA = "repro/worker-fault-plan/v1"

#: The three ways a worker process can misbehave.
WORKER_FAULT_ACTIONS = ("kill", "hang", "poison")

#: ``times`` value meaning "never expires" (poison's default).
UNBOUNDED = -1


@dataclass(frozen=True)
class WorkerFault:
    """One injected worker failure.

    Args:
        building: The shard whose worker misbehaves.
        epoch: Epoch (0-based) at whose boundary the fault fires.
        action: ``"kill"``, ``"hang"`` or ``"poison"``.
        times: Number of attempts the fault fires on (attempt = the
            worker's 0-based restart count for that shard), or
            :data:`UNBOUNDED` (-1) for every attempt.  Defaults to 1
            for kill/hang (one crash, then recovery) and unbounded for
            poison (the shard is terminally bad).
    """

    building: str
    epoch: int
    action: str
    times: int = 0  # sentinel: resolved to the per-action default below

    def __post_init__(self) -> None:
        if not isinstance(self.building, str) or not self.building:
            raise FaultConfigError(
                f"worker fault building must be a non-empty string, "
                f"got {self.building!r}"
            )
        if not isinstance(self.epoch, int) or isinstance(self.epoch, bool):
            raise FaultConfigError(
                f"worker fault epoch must be an int, got {self.epoch!r}"
            )
        if self.epoch < 0:
            raise FaultConfigError(
                f"worker fault epoch cannot be negative: {self.epoch}"
            )
        if self.action not in WORKER_FAULT_ACTIONS:
            raise FaultConfigError(
                f"unknown worker fault action {self.action!r}; "
                f"known: {list(WORKER_FAULT_ACTIONS)}"
            )
        if not isinstance(self.times, int) or isinstance(self.times, bool):
            raise FaultConfigError(
                f"worker fault times must be an int, got {self.times!r}"
            )
        if self.times == 0:
            object.__setattr__(
                self, "times", UNBOUNDED if self.action == "poison" else 1
            )
        elif self.times < UNBOUNDED:
            raise FaultConfigError(
                f"worker fault times must be positive or {UNBOUNDED} "
                f"(unbounded), got {self.times}"
            )

    def fires(self, building: str, epoch: int, attempt: int) -> bool:
        """Does this fault fire for ``building`` at ``epoch`` on the
        worker's ``attempt``-th try (0-based restart count)?"""
        if building != self.building or epoch != self.epoch:
            return False
        return self.times == UNBOUNDED or attempt < self.times

    def to_dict(self) -> Dict[str, Any]:
        return {
            "building": self.building,
            "epoch": self.epoch,
            "action": self.action,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkerFault":
        if not isinstance(payload, Mapping):
            raise FaultConfigError(
                f"worker fault must be an object, got {type(payload).__name__}"
            )
        known = {"building", "epoch", "action", "times"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown worker-fault field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise FaultConfigError(f"malformed worker fault: {exc}")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A deterministic schedule of worker failures for a fleet run."""

    faults: Tuple[WorkerFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, WorkerFault):
                raise FaultConfigError(
                    f"plan entries must be WorkerFault, got {fault!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def matching(
        self, building: str, epoch: int, attempt: int
    ) -> Optional[WorkerFault]:
        """The first fault that fires, or None (workers act on one
        fault per epoch boundary -- the first listed wins)."""
        for fault in self.faults:
            if fault.fires(building, epoch, attempt):
                return fault
        return None

    def for_building(self, building: str) -> "WorkerFaultPlan":
        """The sub-plan targeting one shard (what a worker is handed)."""
        return WorkerFaultPlan(
            tuple(f for f in self.faults if f.building == building)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        buildings: Sequence[str],
        epochs: int,
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        poison_rate: float = 0.0,
    ) -> "WorkerFaultPlan":
        """Draw a random-but-reproducible schedule: each building
        independently gets at most one fault, at a uniform epoch, with
        the given per-action probabilities (summing to <= 1)."""
        total = kill_rate + hang_rate + poison_rate
        if total > 1.0 or min(kill_rate, hang_rate, poison_rate) < 0.0:
            raise FaultConfigError(
                f"seeded rates must be non-negative and sum to <= 1, got "
                f"kill={kill_rate} hang={hang_rate} poison={poison_rate}"
            )
        if epochs < 1:
            raise FaultConfigError(f"epochs must be >= 1, got {epochs}")
        rng = random.Random(f"worker-faults:{seed}")
        faults = []
        for building in buildings:
            draw = rng.random()
            epoch = rng.randrange(epochs)
            if draw < kill_rate:
                faults.append(WorkerFault(building, epoch, "kill"))
            elif draw < kill_rate + hang_rate:
                faults.append(WorkerFault(building, epoch, "hang"))
            elif draw < total:
                faults.append(WorkerFault(building, epoch, "poison"))
        return cls(tuple(faults))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": WORKER_FAULT_SCHEMA,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkerFaultPlan":
        if not isinstance(payload, Mapping):
            raise FaultConfigError(
                f"worker-fault plan must be an object, "
                f"got {type(payload).__name__}"
            )
        known = {"schema", "faults"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown worker-fault-plan field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        schema = payload.get("schema", WORKER_FAULT_SCHEMA)
        if schema != WORKER_FAULT_SCHEMA:
            raise FaultConfigError(
                f"unsupported worker-fault-plan schema {schema!r} "
                f"(expected {WORKER_FAULT_SCHEMA!r})"
            )
        entries = payload.get("faults", [])
        if not isinstance(entries, (list, tuple)):
            raise FaultConfigError("worker-fault-plan faults must be a list")
        return cls(tuple(WorkerFault.from_dict(e) for e in entries))

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "WorkerFaultPlan":
        """Load a plan from JSON (``fleet run --worker-faults``)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise FaultConfigError(
                f"cannot read worker-fault plan {path}: {exc}"
            )
        except ValueError as exc:
            raise FaultConfigError(
                f"worker-fault plan {path} is not valid JSON: {exc}"
            )
        return cls.from_dict(payload)

    def to_json_file(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )
