"""Chaos drills: seeded storage-fault schedules with a mechanical oracle.

A *drill* proves the "recovered or loud, never silently wrong"
contract end to end: it computes a fault-free **clean reference**,
re-runs the same workload under an :class:`~repro.faults.io.IoFaultPlan`
(the **drill**), and then checks the oracle mechanically --

* **campaign** scenario: the drill's ``result.json`` sha256 must equal
  the clean run's, always.  Storage faults may slow the campaign, force
  checkpoint retries or degrade the ``--store`` export, but they can
  never change result bytes;
* **fleet** scenario: the drill's fleet sha equals the clean one, *or*
  the divergence is exactly explained by quarantined shards -- every
  surviving building's embedded campaign sha must still match the
  clean reference's;
* **store** scenario: every series the drill store holds must be a
  subset of the clean store's with equal values at equal timestamps;
  missing rows are allowed only when the drill recorded the faults (or
  batch failures) that lost them.

Verdicts (:func:`evaluate_drill`):

========== ====================================================== ====
status     meaning                                                exit
========== ====================================================== ====
pass       oracle held, artifacts byte-equivalent                 0
degraded   oracle held; divergence fully explained by recorded    0
           fault accounting (quarantine, skipped batches, export
           degradation)
loud       the drill failed to produce a final artifact, but      4
           failed *loudly* -- every error recorded, nothing
           silently wrong
fail       silent divergence: a different hash, corrupt bytes,    1
           or losses nothing accounts for
========== ====================================================== ====

Drills are resumable: the ``chaos.json`` manifest records attempt /
batch progress (written fault-free), so a drill killed mid-run picks
up where it stopped -- ``chaos run`` on the same directory converges
to the same verdict.  Faults are installed *only* around the drilled
workload; the runner's own bookkeeping always writes clean.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..campaign.checkpoint import CheckpointStore
from ..campaign.config import CampaignConfig
from ..campaign.driver import (
    CHECKPOINT_DIRNAME,
    Campaign,
    CampaignOutcome,
    RESULT_FILENAME,
)
from ..errors import ChaosError, ReproError
from ..fleet.config import FleetConfig, building_names
from ..fleet.merge import (
    FLEET_RESULT_SCHEMA,
    build_fleet_result,
    fleet_result_hash,
    load_shard_result,
)
from ..fleet.supervisor import (
    FLEET_MANIFEST_FILENAME,
    run_fleet,
    resume_fleet,
)
from ..obs import obs_event
from ..runtime.serialize import canonical_json, read_json, write_json_atomic
from ..store import TelemetryStore, ingest_series
from .io import IoFaultInjector, IoFaultPlan, io_faults

#: Schema tag for the drill manifest (``chaos.json``).
CHAOS_SCHEMA = "repro/chaos-drill/v1"

CHAOS_MANIFEST_FILENAME = "chaos.json"
CLEAN_DIRNAME = "clean"
DRILL_DIRNAME = "drill"

SCENARIOS = ("campaign", "fleet", "store")

#: Verdict statuses, and which ones the CLI treats as success.
PASS, DEGRADED, LOUD, FAIL = "pass", "degraded", "loud", "fail"
OK_STATUSES = (PASS, DEGRADED)

#: Error strings retained in the manifest (audit tail).
MAX_RECORDED_ERRORS = 20

#: Store-scenario series naming.
STORE_WALL = "chaos"
STORE_METRIC = "value"


@dataclass(frozen=True)
class ChaosConfig:
    """One drill's workload + fault schedule.

    Args:
        scenario: ``campaign`` | ``fleet`` | ``store``.
        seed: Workload seed (campaign seed, fleet seed, or the store
            scenario's data seed).  Independent of ``plan.seed``.
        epochs / nodes / hours_per_epoch: The campaign shape (used by
            the campaign and fleet scenarios).
        buildings: Fleet roster size (fleet + store scenarios).
        batches / rows_per_batch: Store-scenario ingest shape.
        max_attempts: Faulted attempts per unit of work (the whole run
            for campaign/fleet; per batch for store) before the drill
            gives up loudly.
        plan: The storage-fault schedule.  Each attempt re-derives the
            plan seed, so retries see different fault draws.
    """

    scenario: str = "campaign"
    seed: int = 2021
    epochs: int = 4
    nodes: int = 4
    hours_per_epoch: int = 24
    buildings: int = 3
    batches: int = 6
    rows_per_batch: int = 64
    max_attempts: int = 5
    plan: IoFaultPlan = field(default_factory=IoFaultPlan)

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ChaosError(
                f"unknown scenario {self.scenario!r}; options: {SCENARIOS}"
            )
        for name in (
            "epochs", "nodes", "hours_per_epoch", "buildings",
            "batches", "rows_per_batch", "max_attempts",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ChaosError(f"{name} must be a positive int, got {value!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ChaosError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.plan, IoFaultPlan):
            raise ChaosError(
                f"plan must be an IoFaultPlan, got {type(self.plan).__name__}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "epochs": self.epochs,
            "nodes": self.nodes,
            "hours_per_epoch": self.hours_per_epoch,
            "buildings": self.buildings,
            "batches": self.batches,
            "rows_per_batch": self.rows_per_batch,
            "max_attempts": self.max_attempts,
            "plan": self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosConfig":
        if not isinstance(payload, Mapping):
            raise ChaosError(
                f"chaos config must be an object, got {type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ChaosError(
                f"unknown chaos config field(s) {unknown}; known: {sorted(known)}"
            )
        kwargs = dict(payload)
        if "plan" in kwargs:
            kwargs["plan"] = IoFaultPlan.from_dict(kwargs["plan"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Derived workload configs
    # ------------------------------------------------------------------

    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(
            epochs=self.epochs,
            nodes=self.nodes,
            hours_per_epoch=self.hours_per_epoch,
            seed=self.seed,
            checkpoint_interval=1,
        )

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            buildings=building_names(self.buildings),
            campaign=self.campaign_config(),
            seed=self.seed,
            workers=2,
            max_restarts=3,
        )

    def attempt_plan(self, unit: int, attempt: int) -> IoFaultPlan:
        """The fault plan for one (work unit, attempt) pair.

        Unit is 0 for the campaign/fleet scenarios and the batch index
        for the store scenario; each pair draws from its own streams so
        a retry is a fresh roll of the same loaded dice.
        """
        return dataclasses.replace(
            self.plan,
            seed=self.plan.seed * 1_000_003 + unit * 97 + attempt,
        )


# ----------------------------------------------------------------------
# Manifest plumbing (always written fault-free)
# ----------------------------------------------------------------------

def _manifest_path(chaos_dir: Path) -> Path:
    return chaos_dir / CHAOS_MANIFEST_FILENAME


def _fresh_manifest(config: ChaosConfig) -> Dict[str, Any]:
    return {
        "schema": CHAOS_SCHEMA,
        "config": config.to_dict(),
        "status": "running",
        "attempts_done": 0,
        "batches_done": 0,
        "batches_failed": [],
        "io": {},
        "export_failures": 0,
        "errors": [],
        "verdict": None,
    }


def _load_manifest(chaos_dir: Path) -> Dict[str, Any]:
    path = _manifest_path(chaos_dir)
    try:
        payload = read_json(path)
    except (OSError, ValueError) as exc:
        raise ChaosError(f"unreadable chaos manifest {path}: {exc}")
    if not isinstance(payload, dict) or payload.get("schema") != CHAOS_SCHEMA:
        raise ChaosError(
            f"{path} is not a chaos manifest (expected schema {CHAOS_SCHEMA!r})"
        )
    return payload


def _save_manifest(chaos_dir: Path, manifest: Mapping[str, Any]) -> None:
    write_json_atomic(_manifest_path(chaos_dir), manifest)


def _absorb_counts(manifest: Dict[str, Any], injector: Optional[IoFaultInjector]) -> None:
    if injector is None:
        return
    totals = manifest.setdefault("io", {})
    for name, count in injector.counts.items():
        totals[name] = totals.get(name, 0) + count


def _record_error(manifest: Dict[str, Any], where: str, exc: BaseException) -> None:
    errors = manifest.setdefault("errors", [])
    errors.append(f"{where}: {type(exc).__name__}: {exc}")
    del errors[:-MAX_RECORDED_ERRORS]


def _accounted(manifest: Mapping[str, Any]) -> bool:
    """True when the manifest records any fault impact at all."""
    return bool(
        sum((manifest.get("io") or {}).values())
        or manifest.get("errors")
        or manifest.get("export_failures")
        or manifest.get("batches_failed")
    )


# ----------------------------------------------------------------------
# Result-file verification (shared by every scenario's oracle)
# ----------------------------------------------------------------------

def _verified_result(path: Path) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """``(payload, problem)`` for a ``{"schema","sha256","result"}`` file.

    The embedded sha256 is recomputed over the canonical body -- a
    corrupted byte anywhere in the result is caught here, which is the
    teeth behind the CI silent-corruption fixture.
    """
    if not path.exists():
        return None, "missing"
    try:
        payload = read_json(path)
    except (OSError, ValueError) as exc:
        return None, f"unreadable: {exc}"
    if (
        not isinstance(payload, dict)
        or "result" not in payload
        or "sha256" not in payload
    ):
        return None, "malformed result payload"
    recomputed = hashlib.sha256(
        canonical_json(payload["result"]).encode("utf-8")
    ).hexdigest()
    if recomputed != payload["sha256"]:
        return None, (
            f"embedded sha mismatch (stored {str(payload['sha256'])[:12]}, "
            f"recomputed {recomputed[:12]})"
        )
    return payload, None


# ----------------------------------------------------------------------
# Clean references
# ----------------------------------------------------------------------

def _run_or_resume_campaign(
    config: CampaignConfig,
    state_dir: Path,
    store_dir: Optional[Path],
    building: Optional[str] = None,
) -> Tuple[Campaign, CampaignOutcome]:
    kwargs: Dict[str, Any] = {"store_dir": store_dir}
    if building is not None:
        kwargs["store_building"] = building
    if CheckpointStore(state_dir / CHECKPOINT_DIRNAME).latest_epoch() is not None:
        campaign, state = Campaign.resume(state_dir, **kwargs)
        return campaign, campaign.run(state)
    campaign = Campaign(config, state_dir=state_dir, **kwargs)
    return campaign, campaign.run()


def _batch_series(config: ChaosConfig, batch: int) -> Tuple[str, np.ndarray, np.ndarray]:
    """The store scenario's deterministic synthetic batch ``batch``."""
    rng = random.Random(f"{config.seed}:chaos-store:{batch}")
    t0 = float(batch * config.rows_per_batch)
    t = t0 + np.arange(config.rows_per_batch, dtype=np.float64)
    v = np.array(
        [rng.uniform(-1.0, 1.0) for _ in range(config.rows_per_batch)],
        dtype=np.float64,
    )
    roster = building_names(config.buildings)
    return roster[batch % config.buildings], t, v


def _ensure_clean(chaos_dir: Path, config: ChaosConfig) -> None:
    """Compute (or resume computing) the fault-free reference artifacts."""
    clean = chaos_dir / CLEAN_DIRNAME
    if config.scenario == "campaign":
        if not (clean / "state" / RESULT_FILENAME).exists():
            _run_or_resume_campaign(
                config.campaign_config(), clean / "state", clean / "store"
            )
    elif config.scenario == "fleet":
        fleet_cfg = config.fleet_config()
        result_path = clean / "result.json"
        if result_path.exists():
            return
        payloads: Dict[str, Dict[str, Any]] = {}
        for name in fleet_cfg.buildings:
            shard_dir = clean / "shards" / name
            if not (shard_dir / RESULT_FILENAME).exists():
                # In-process and sequential: the reference needs
                # determinism, not throughput.
                _run_or_resume_campaign(
                    fleet_cfg.shard_config(name), shard_dir, None, building=name
                )
            payload = load_shard_result(shard_dir)
            if payload is None:
                raise ChaosError(f"clean shard {name} produced no result")
            payloads[name] = payload
        body = build_fleet_result(fleet_cfg, payloads, {})
        write_json_atomic(
            result_path,
            {
                "schema": FLEET_RESULT_SCHEMA,
                "sha256": fleet_result_hash(body),
                "result": body,
            },
        )
    else:  # store
        done_marker = clean / "store_done.json"
        if done_marker.exists():
            return
        store_dir = clean / "store"
        if store_dir.exists():
            # A clean ingest died midway; it is cheap and fault-free,
            # so rebuild it from scratch rather than reconciling.
            shutil.rmtree(store_dir)
        store = TelemetryStore(store_dir)
        for batch in range(config.batches):
            building, t, v = _batch_series(config, batch)
            with store.writer() as writer:
                ingest_series(writer, building, STORE_WALL, STORE_METRIC, t, v)
        write_json_atomic(done_marker, {"schema": CHAOS_SCHEMA, "batches": config.batches})


# ----------------------------------------------------------------------
# The faulted drill
# ----------------------------------------------------------------------

def _drill_campaign(
    chaos_dir: Path, config: ChaosConfig, manifest: Dict[str, Any]
) -> None:
    drill = chaos_dir / DRILL_DIRNAME
    state_dir, store_dir = drill / "state", drill / "store"
    while (
        manifest["attempts_done"] < config.max_attempts
        and not (state_dir / RESULT_FILENAME).exists()
    ):
        attempt = manifest["attempts_done"]
        with io_faults(config.attempt_plan(0, attempt)) as injector:
            try:
                campaign, _ = _run_or_resume_campaign(
                    config.campaign_config(), state_dir, store_dir
                )
                manifest["export_failures"] += len(campaign.export_failures)
            except (OSError, ReproError) as exc:
                _record_error(manifest, f"campaign attempt {attempt}", exc)
        _absorb_counts(manifest, injector)
        manifest["attempts_done"] = attempt + 1
        _save_manifest(chaos_dir, manifest)


def _drill_fleet(
    chaos_dir: Path, config: ChaosConfig, manifest: Dict[str, Any]
) -> None:
    drill = chaos_dir / DRILL_DIRNAME
    fleet_dir = drill / "fleet"
    fleet_cfg = config.fleet_config()
    while (
        manifest["attempts_done"] < config.max_attempts
        and not (fleet_dir / RESULT_FILENAME).exists()
    ):
        attempt = manifest["attempts_done"]
        with io_faults(config.attempt_plan(0, attempt)) as injector:
            try:
                # Forked workers inherit the installed injector, so the
                # whole fleet -- supervisor manifests, worker
                # checkpoints, heartbeats, shard results -- runs on the
                # faulted disk.
                if (fleet_dir / FLEET_MANIFEST_FILENAME).exists():
                    resume_fleet(fleet_dir)
                else:
                    run_fleet(fleet_cfg, fleet_dir)
            except (OSError, ReproError) as exc:
                _record_error(manifest, f"fleet attempt {attempt}", exc)
        _absorb_counts(manifest, injector)
        manifest["attempts_done"] = attempt + 1
        _save_manifest(chaos_dir, manifest)


def _drill_store(
    chaos_dir: Path, config: ChaosConfig, manifest: Dict[str, Any]
) -> None:
    store_dir = chaos_dir / DRILL_DIRNAME / "store"
    store = TelemetryStore(store_dir)
    while manifest["batches_done"] < config.batches:
        batch = manifest["batches_done"]
        building, t, v = _batch_series(config, batch)
        ingested = False
        for attempt in range(config.max_attempts):
            # Heal (fault-free) before each attempt: cut any partially
            # appended rows of THIS batch, exactly the campaign
            # resume's truncate_from + replay shape.
            try:
                store.truncate_from(
                    float(t[0]),
                    keys=[k for k in store.keys() if k.building == building],
                )
            except ReproError as exc:
                _record_error(manifest, f"store heal batch {batch}", exc)
                break
            with io_faults(config.attempt_plan(batch, attempt)) as injector:
                try:
                    with store.writer() as writer:
                        ingest_series(
                            writer, building, STORE_WALL, STORE_METRIC, t, v
                        )
                    ingested = True
                except (OSError, ReproError) as exc:
                    _record_error(
                        manifest, f"store batch {batch} attempt {attempt}", exc
                    )
            _absorb_counts(manifest, injector)
            if ingested:
                break
        if not ingested:
            manifest.setdefault("batches_failed", []).append(batch)
        manifest["batches_done"] = batch + 1
        _save_manifest(chaos_dir, manifest)


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------

def _verdict(
    config: ChaosConfig,
    manifest: Mapping[str, Any],
    status: str,
    reasons: List[str],
    **extra: Any,
) -> Dict[str, Any]:
    return {
        "scenario": config.scenario,
        "status": status,
        "reasons": reasons,
        "accounted": _accounted(manifest),
        "io": dict(manifest.get("io") or {}),
        "errors_recorded": len(manifest.get("errors") or []),
        **extra,
    }


def _evaluate_campaign(
    chaos_dir: Path, config: ChaosConfig, manifest: Mapping[str, Any]
) -> Dict[str, Any]:
    clean_payload, problem = _verified_result(
        chaos_dir / CLEAN_DIRNAME / "state" / RESULT_FILENAME
    )
    if clean_payload is None:
        raise ChaosError(f"clean campaign reference unusable: {problem}")
    drill_path = chaos_dir / DRILL_DIRNAME / "state" / RESULT_FILENAME
    drill_payload, problem = _verified_result(drill_path)
    if drill_payload is None:
        if problem == "missing" and _accounted(manifest):
            return _verdict(
                config, manifest, LOUD,
                ["drill produced no result, but every failure was recorded"],
                clean_sha256=clean_payload["sha256"], drill_sha256=None,
            )
        return _verdict(
            config, manifest, FAIL,
            [f"drill result {problem}"
             + ("" if _accounted(manifest) else " with no fault accounting")],
            clean_sha256=clean_payload["sha256"], drill_sha256=None,
        )
    if drill_payload["sha256"] != clean_payload["sha256"]:
        # The campaign contract has no degraded branch: storage faults
        # must never reach result bytes.
        return _verdict(
            config, manifest, FAIL,
            ["drill campaign sha diverged from the clean reference"],
            clean_sha256=clean_payload["sha256"],
            drill_sha256=drill_payload["sha256"],
        )
    status = DEGRADED if _accounted(manifest) else PASS
    reasons = (
        ["sha equal; injected faults absorbed by retry/degrade paths"]
        if status == DEGRADED
        else ["sha equal; no faults fired"]
    )
    return _verdict(
        config, manifest, status, reasons,
        clean_sha256=clean_payload["sha256"],
        drill_sha256=drill_payload["sha256"],
    )


def _evaluate_fleet(
    chaos_dir: Path, config: ChaosConfig, manifest: Mapping[str, Any]
) -> Dict[str, Any]:
    clean_payload, problem = _verified_result(
        chaos_dir / CLEAN_DIRNAME / "result.json"
    )
    if clean_payload is None:
        raise ChaosError(f"clean fleet reference unusable: {problem}")
    drill_path = chaos_dir / DRILL_DIRNAME / "fleet" / RESULT_FILENAME
    drill_payload, problem = _verified_result(drill_path)
    if drill_payload is None:
        status = LOUD if problem == "missing" and _accounted(manifest) else FAIL
        return _verdict(
            config, manifest, status,
            [f"drill fleet result {problem}"],
            clean_sha256=clean_payload["sha256"], drill_sha256=None,
        )
    if drill_payload["sha256"] == clean_payload["sha256"]:
        status = DEGRADED if _accounted(manifest) else PASS
        return _verdict(
            config, manifest, status,
            ["fleet sha equal to the clean reference"],
            clean_sha256=clean_payload["sha256"],
            drill_sha256=drill_payload["sha256"],
        )
    # Divergence is legal only through quarantine, and every surviving
    # shard must still match its clean per-building sha.
    clean_buildings = clean_payload["result"]["buildings"]
    drill_body = drill_payload["result"]
    quarantined = list(drill_body.get("quarantined") or [])
    reasons: List[str] = []
    if not quarantined:
        reasons.append("fleet sha diverged with no quarantined shard")
    for name, summary in (drill_body.get("buildings") or {}).items():
        clean_summary = clean_buildings.get(name)
        if clean_summary is None:
            reasons.append(f"drill grew an unknown building {name!r}")
        elif summary.get("sha256") != clean_summary.get("sha256"):
            reasons.append(
                f"surviving shard {name} diverged from its clean sha"
            )
    if reasons:
        return _verdict(
            config, manifest, FAIL, reasons,
            clean_sha256=clean_payload["sha256"],
            drill_sha256=drill_payload["sha256"],
        )
    return _verdict(
        config, manifest, DEGRADED,
        [f"divergence exactly explained by quarantine of {quarantined}"],
        clean_sha256=clean_payload["sha256"],
        drill_sha256=drill_payload["sha256"],
        quarantined=quarantined,
    )


def _evaluate_store(
    chaos_dir: Path, config: ChaosConfig, manifest: Mapping[str, Any]
) -> Dict[str, Any]:
    try:
        clean = TelemetryStore(chaos_dir / CLEAN_DIRNAME / "store", create=False)
    except ReproError as exc:
        raise ChaosError(f"clean store reference unusable: {exc}")
    drill_root = chaos_dir / DRILL_DIRNAME / "store"
    reasons: List[str] = []
    deficits = 0
    try:
        drill = TelemetryStore(drill_root, create=False)
        drill_keys = set(drill.keys())
        clean_keys = set(clean.keys())
        for key in sorted(drill_keys - clean_keys):
            reasons.append(f"drill store fabricated series {key.relpath}")
        for key in sorted(clean_keys):
            clean_data = clean.read(key)
            if key not in drill_keys:
                deficits += int(clean_data["t"].size)
                continue
            drill_data = drill.read(key)
            ct, cv = clean_data["t"], clean_data["value"]
            dt, dv = drill_data["t"], drill_data["value"]
            pos = np.searchsorted(ct, dt)
            valid = pos < ct.size
            if not bool(valid.all()) or not bool(
                np.all(ct[pos[valid]] == dt[valid])
            ):
                reasons.append(
                    f"series {key.relpath} holds timestamps the clean "
                    "store never wrote"
                )
                continue
            if not bool(np.all(cv[pos] == dv)):
                reasons.append(
                    f"series {key.relpath} holds values that differ from "
                    "the clean store's at the same timestamps"
                )
                continue
            deficits += int(np.setdiff1d(ct, dt).size)
    except ReproError as exc:
        # Corruption surfaced loudly (SegmentError, quarantine, missing
        # store) -- legal iff the drill accounted for faults.
        status = LOUD if _accounted(manifest) else FAIL
        return _verdict(
            config, manifest, status,
            [f"drill store read failed loudly: {exc}"],
        )
    if reasons:
        return _verdict(config, manifest, FAIL, reasons, deficit_rows=deficits)
    if deficits:
        if not _accounted(manifest):
            return _verdict(
                config, manifest, FAIL,
                [f"{deficits} rows missing with no fault accounting"],
                deficit_rows=deficits,
            )
        return _verdict(
            config, manifest, DEGRADED,
            [f"{deficits} rows lost, fully accounted by recorded faults"],
            deficit_rows=deficits,
        )
    status = DEGRADED if _accounted(manifest) else PASS
    return _verdict(
        config, manifest, status,
        ["drill store content equals the clean reference"],
        deficit_rows=0,
    )


def evaluate_drill(chaos_dir: Union[str, Path]) -> Dict[str, Any]:
    """Recompute the oracle verdict for a drill directory's artifacts.

    Pure: reads artifacts, mutates nothing.  Shared by ``chaos run``
    (which then stamps the verdict into the manifest) and ``chaos
    verify`` (which also cross-checks the stamped verdict).
    """
    chaos_dir = Path(chaos_dir)
    manifest = _load_manifest(chaos_dir)
    config = ChaosConfig.from_dict(manifest["config"])
    if config.scenario == "campaign":
        return _evaluate_campaign(chaos_dir, config, manifest)
    if config.scenario == "fleet":
        return _evaluate_fleet(chaos_dir, config, manifest)
    return _evaluate_store(chaos_dir, config, manifest)


# ----------------------------------------------------------------------
# Entry points (the CLI's verbs)
# ----------------------------------------------------------------------

def run_drill(
    chaos_dir: Union[str, Path], config: Optional[ChaosConfig] = None
) -> Dict[str, Any]:
    """Run (or resume) one chaos drill; returns the verdict.

    A fresh directory needs ``config``; an existing one must either
    omit it or pass an identical one (a drill's identity is pinned at
    creation -- changing the schedule mid-drill would make the verdict
    meaningless).
    """
    chaos_dir = Path(chaos_dir)
    chaos_dir.mkdir(parents=True, exist_ok=True)
    if _manifest_path(chaos_dir).exists():
        manifest = _load_manifest(chaos_dir)
        stored = ChaosConfig.from_dict(manifest["config"])
        if config is not None and config != stored:
            raise ChaosError(
                f"{chaos_dir} already hosts a drill with a different "
                "config; use a fresh directory"
            )
        config = stored
    else:
        if config is None:
            raise ChaosError(
                f"no drill at {chaos_dir} and no config given"
            )
        manifest = _fresh_manifest(config)
        _save_manifest(chaos_dir, manifest)

    # Phase 1: the fault-free reference (resumable; skipped when done).
    _ensure_clean(chaos_dir, config)

    # Phase 2: the faulted drill (resumable via manifest progress).
    if config.scenario == "campaign":
        _drill_campaign(chaos_dir, config, manifest)
    elif config.scenario == "fleet":
        _drill_fleet(chaos_dir, config, manifest)
    else:
        _drill_store(chaos_dir, config, manifest)

    # Phase 3: the oracle.
    verdict = evaluate_drill(chaos_dir)
    manifest["status"] = verdict["status"]
    manifest["verdict"] = verdict
    _save_manifest(chaos_dir, manifest)
    obs_event(
        "warning" if verdict["status"] not in OK_STATUSES else "info",
        "chaos.drill_completed",
        scenario=config.scenario, status=verdict["status"],
    )
    return verdict


def verify_drill(chaos_dir: Union[str, Path]) -> Dict[str, Any]:
    """Recompute a completed drill's verdict and cross-check the stamp.

    A stamped verdict that disagrees with what the artifacts now say
    is itself a failure -- either the manifest was tampered with or an
    artifact rotted after the run (the CI corruption fixture).
    """
    chaos_dir = Path(chaos_dir)
    manifest = _load_manifest(chaos_dir)
    verdict = evaluate_drill(chaos_dir)
    stored = manifest.get("verdict")
    if stored is not None:
        drifted = [
            field_name
            for field_name in ("status", "clean_sha256", "drill_sha256")
            if field_name in stored
            and stored.get(field_name) != verdict.get(field_name)
        ]
        if drifted:
            verdict = dict(verdict)
            verdict["status"] = FAIL
            verdict["reasons"] = list(verdict.get("reasons") or []) + [
                f"stamped verdict disagrees with recomputation on {drifted} "
                "(artifact changed after the drill completed)"
            ]
    return verdict
