"""Storage-fault injection: a seedable shim over the real I/O paths.

PR 3 made the *radio channel* hostile; this module does the same for
the *disk*.  Months-long deployments run on flaky flash and full
volumes, so the durability contracts built by the checkpoint, epoch-log
and segment layers ("recovered or loud, never silently wrong") need a
way to be exercised against failing syscalls, not just SIGKILL.

An :class:`IoFaultPlan` (schema ``repro/io-faults/v1``) declares
per-operation fault rates:

* ``enospc_write_rate`` -- a write fails with ``ENOSPC`` before any
  byte lands (the volume filled up);
* ``eio_read_rate`` / ``eio_fsync_rate`` -- a read / fsync fails with
  ``EIO`` (transient media error; see ``persistence`` below);
* ``torn_write_rate`` -- a write persists only a strict prefix of its
  payload, then fails with ``EIO`` (power-loss / FTL tear);
* ``drop_rename_rate`` -- ``os.replace`` silently does nothing: the
  process believes the rename happened, the directory says otherwise.
  This is the page-cache illusion a power cut exposes when the parent
  directory was never fsynced; the orphaned temp file is left behind
  for :func:`reclaim_tmp_files` to find;
* ``bitrot_read_rate`` -- a read succeeds but one bit of the returned
  data is flipped (at-rest corruption; CRCs and content hashes must
  catch it);
* ``persistence`` -- the probability that a fired ENOSPC/EIO fault
  *latches*: every later operation of the same kind on the same path
  fails too, modelling a dead sector rather than a glitch.

The injector mirrors :class:`~repro.faults.injector.FaultInjector`:
every fault type draws from its own named RNG stream seeded from
``"{seed}:{name}"``, zero rates never touch their stream, and
:meth:`IoFaultInjector.from_plan` returns None for inactive plans --
so with no active plan the shim functions below are a single ``is
None`` test in front of the exact syscalls the code made before this
module existed.  Inactive plans are *inert*: byte-identical artifacts,
zero extra syscalls.

The shim is process-global (``install_io_faults`` / ``io_faults``)
rather than threaded as a parameter, because the write paths it covers
span four subsystems and fork into fleet worker children -- a forked
worker inherits the installed injector, which is exactly what a chaos
drill wants.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import math
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, IO, Iterator, Mapping, Optional, Tuple, TypeVar, Union

from ..errors import FaultConfigError, FaultPlanError
from ..obs import obs_counter, obs_enabled, obs_event

#: Field names that hold probabilities (everything except the seed).
IO_RATE_FIELDS = (
    "enospc_write_rate",
    "eio_read_rate",
    "eio_fsync_rate",
    "torn_write_rate",
    "drop_rename_rate",
    "bitrot_read_rate",
)

#: Schema tag written into serialized plans.
IO_FAULT_SCHEMA = "repro/io-faults/v1"

#: Retry policy for transient I/O errors -- the same bounded
#: exponential shape as :func:`repro.fleet.config.backoff_delay`:
#: ``base * 2**(attempt-1)`` clamped at the cap.
IO_RETRIES = 3
IO_BACKOFF_BASE_S = 0.005
IO_BACKOFF_MAX_S = 0.05

#: Errnos :func:`retry_io` treats as transient.  ENOSPC is *not* here:
#: a full disk does not heal by waiting 10 ms, so it propagates to the
#: degradation paths immediately.
TRANSIENT_ERRNOS = frozenset({errno.EIO})

#: Suffix shared by every temp file the write paths create
#: (``write_json_atomic`` mkstemp, ``*.seg.tmp``, ``*.jsonl.tmp``,
#: ``heartbeat.json.tmp``) -- what :func:`reclaim_tmp_files` sweeps.
TMP_SUFFIX = ".tmp"

_T = TypeVar("_T")


@dataclass(frozen=True)
class IoFaultPlan:
    """A seedable description of every storage fault the shim injects.

    Args:
        seed: Seed for the fault RNG streams (independent of every
            simulator seed: the same campaign can replay under
            different disks and vice versa).
        enospc_write_rate: Per-write probability of ``ENOSPC``.
        eio_read_rate: Per-read probability of ``EIO``.
        eio_fsync_rate: Per-fsync probability of ``EIO``.
        torn_write_rate: Per-write probability the write persists only
            a strict prefix, then fails with ``EIO``.
        drop_rename_rate: Per-rename probability ``os.replace`` is
            silently dropped.
        bitrot_read_rate: Per-read probability one bit of the returned
            data is flipped.
        persistence: Probability a fired ENOSPC/EIO fault latches its
            (operation, path) pair broken for the injector's lifetime.
    """

    seed: int = 0
    enospc_write_rate: float = 0.0
    eio_read_rate: float = 0.0
    eio_fsync_rate: float = 0.0
    torn_write_rate: float = 0.0
    drop_rename_rate: float = 0.0
    bitrot_read_rate: float = 0.0
    persistence: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultConfigError(f"seed must be an int, got {self.seed!r}")
        for name in IO_RATE_FIELDS + ("persistence",):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise FaultPlanError(f"{name} must be a number, got {value!r}")
            if math.isnan(value) or not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )

    # ------------------------------------------------------------------
    # Derived plans
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "IoFaultPlan":
        """The inactive plan (every rate zero)."""
        return cls()

    @property
    def active(self) -> bool:
        """True when any fault rate is nonzero.

        ``persistence`` alone cannot activate a plan: with every rate
        at zero no fault ever fires, so there is nothing to latch.
        """
        return any(getattr(self, name) > 0.0 for name in IO_RATE_FIELDS)

    def scaled(self, intensity: float) -> "IoFaultPlan":
        """This plan with every rate multiplied by ``intensity``.

        Rates clamp at 1.0; ``persistence`` is left alone (it shapes
        *how* faults fail, not how often).  NaN/inf intensities are
        rejected for the same reason as in
        :meth:`repro.faults.plan.FaultPlan.scaled`.
        """
        if not isinstance(intensity, (int, float)) or isinstance(intensity, bool):
            raise FaultPlanError(f"intensity must be a number, got {intensity!r}")
        if math.isnan(intensity) or math.isinf(intensity):
            raise FaultPlanError(f"intensity must be finite, got {intensity}")
        if intensity < 0.0:
            raise FaultPlanError(f"intensity cannot be negative: {intensity}")
        rates = {
            name: min(1.0, getattr(self, name) * intensity)
            for name in IO_RATE_FIELDS
        }
        return dataclasses.replace(self, **rates)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (includes the schema tag)."""
        payload: Dict[str, Any] = {"schema": IO_FAULT_SCHEMA, "seed": self.seed}
        for name in IO_RATE_FIELDS:
            payload[name] = getattr(self, name)
        payload["persistence"] = self.persistence
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IoFaultPlan":
        """Build a plan from a dict, rejecting unknown keys loudly."""
        if not isinstance(payload, Mapping):
            raise FaultConfigError(
                f"io-fault plan must be an object, got {type(payload).__name__}"
            )
        known = {"schema", "seed", "persistence", *IO_RATE_FIELDS}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultConfigError(
                f"unknown io-fault field(s) {unknown}; known: {sorted(known)}"
            )
        schema = payload.get("schema", IO_FAULT_SCHEMA)
        if schema != IO_FAULT_SCHEMA:
            raise FaultConfigError(
                f"unsupported io-fault schema {schema!r} "
                f"(expected {IO_FAULT_SCHEMA!r})"
            )
        kwargs = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "IoFaultPlan":
        """Load a plan from a JSON file (the CLI ``chaos --plan`` format)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise FaultConfigError(f"cannot read io-fault plan {path}: {exc}")
        except ValueError as exc:
            raise FaultConfigError(f"io-fault plan {path} is not valid JSON: {exc}")
        return cls.from_dict(payload)

    def to_json_file(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON (round-trips with :meth:`from_json_file`)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))


class IoFaultInjector:
    """Replays the storage faults an :class:`IoFaultPlan` describes.

    Build one per drill (its RNG streams and latched-broken paths are
    stateful); :meth:`from_plan` returns None for absent or inactive
    plans so the shim keeps a fast no-fault path.

    Every injected fault is double-booked: into the injector's local
    ``counts`` (the chaos manifest's ``io.*`` accounting) and into the
    ``io.*`` observability counters when obs is on.
    """

    def __init__(self, plan: IoFaultPlan):
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}
        #: (operation, path) -> errno for latched-broken pairs.
        self._broken: Dict[Tuple[str, str], int] = {}

    @classmethod
    def from_plan(cls, plan: Optional[IoFaultPlan]) -> Optional["IoFaultInjector"]:
        """An injector for ``plan``, or None when there is nothing to inject."""
        if plan is None or not plan.active:
            return None
        return cls(plan)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _stream(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(f"{self.plan.seed}:{name}")
            self._streams[name] = stream
        return stream

    def record(self, name: str, count: int = 1) -> None:
        """Book ``count`` occurrences of fault ``name`` (local + obs)."""
        if count <= 0:
            return
        self.counts[name] = self.counts.get(name, 0) + count
        if obs_enabled():
            obs_counter(f"io.{name}").inc(count)

    def _hit(self, stream: str, rate: float) -> bool:
        """One Bernoulli draw from ``stream``; zero rates never draw."""
        return rate > 0.0 and self._stream(stream).random() < rate

    def _path_key(self, path: Optional[Union[str, Path]]) -> str:
        return str(path) if path is not None else "?"

    def _check_broken(self, op: str, path: Optional[Union[str, Path]]) -> None:
        err = self._broken.get((op, self._path_key(path)))
        if err is not None:
            self.record("persistent_hits")
            raise OSError(
                err, f"injected persistent {op} fault", self._path_key(path)
            )

    def _latch(self, op: str, path: Optional[Union[str, Path]], err: int) -> None:
        if self.plan.persistence > 0.0 and self._hit(
            "persistence", self.plan.persistence
        ):
            self._broken[(op, self._path_key(path))] = err
            self.record("persistent_faults")

    # ------------------------------------------------------------------
    # Faulted operations (called only through the shim functions)
    # ------------------------------------------------------------------

    def write(self, handle: IO[Any], data: Any) -> None:
        path = getattr(handle, "name", None)
        self._check_broken("write", path)
        if self._hit("enospc", self.plan.enospc_write_rate):
            self.record("enospc")
            self._latch("write", path, errno.ENOSPC)
            raise OSError(
                errno.ENOSPC, "injected ENOSPC", self._path_key(path)
            )
        if len(data) > 1 and self._hit("torn_write", self.plan.torn_write_rate):
            keep = 1 + self._stream("torn_extent").randrange(len(data) - 1)
            handle.write(data[:keep])
            self.record("torn_writes")
            self._latch("write", path, errno.EIO)
            raise OSError(
                errno.EIO, "injected torn write", self._path_key(path)
            )
        handle.write(data)

    def fsync(self, fileno: int, path: Optional[Union[str, Path]] = None) -> None:
        self._check_broken("fsync", path)
        if self._hit("eio_fsync", self.plan.eio_fsync_rate):
            self.record("eio")
            self._latch("fsync", path, errno.EIO)
            raise OSError(
                errno.EIO, "injected fsync EIO", self._path_key(path)
            )
        os.fsync(fileno)

    def replace(
        self, src: Union[str, Path], dst: Union[str, Path]
    ) -> None:
        if self._hit("drop_rename", self.plan.drop_rename_rate):
            # The rename "succeeds" as far as this process can tell --
            # the page-cache illusion a power cut exposes.  The temp
            # file stays behind for reclaim_tmp_files to sweep.
            self.record("renames_dropped")
            return
        os.replace(src, dst)

    def _maybe_bitrot(self, data: bytes) -> bytes:
        if data and self._hit("bitrot", self.plan.bitrot_read_rate):
            stream = self._stream("bitrot_site")
            index = stream.randrange(len(data))
            bit = 1 << stream.randrange(8)
            self.record("bitrot_reads")
            return data[:index] + bytes([data[index] ^ bit]) + data[index + 1:]
        return data

    def _check_read(self, path: Optional[Union[str, Path]]) -> None:
        self._check_broken("read", path)
        if self._hit("eio_read", self.plan.eio_read_rate):
            self.record("eio")
            self._latch("read", path, errno.EIO)
            raise OSError(
                errno.EIO, "injected read EIO", self._path_key(path)
            )

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        self._check_read(path)
        return self._maybe_bitrot(Path(path).read_bytes())

    def read_handle(
        self, handle: IO[bytes], n: int, path: Optional[Union[str, Path]] = None
    ) -> bytes:
        self._check_read(path)
        return self._maybe_bitrot(handle.read(n))


# ----------------------------------------------------------------------
# The process-global shim
# ----------------------------------------------------------------------

_active: Optional[IoFaultInjector] = None


def active_io_injector() -> Optional[IoFaultInjector]:
    """The currently installed injector, or None (the clean path)."""
    return _active


def io_faults_active() -> bool:
    """True while an injector is installed."""
    return _active is not None


def install_io_faults(plan: Optional[IoFaultPlan]) -> Optional[IoFaultInjector]:
    """Install ``plan`` globally; returns the injector (None if inactive).

    Inactive plans install nothing, so the shim stays on its clean
    no-extra-syscall path.  Forked children inherit the installation.
    """
    global _active
    _active = IoFaultInjector.from_plan(plan)
    return _active


def clear_io_faults() -> None:
    """Remove any installed injector (idempotent)."""
    global _active
    _active = None


@contextmanager
def io_faults(plan: Optional[IoFaultPlan]) -> Iterator[Optional[IoFaultInjector]]:
    """Install ``plan`` for the duration of the block."""
    injector = install_io_faults(plan)
    try:
        yield injector
    finally:
        clear_io_faults()


def io_write(handle: IO[Any], data: Any) -> None:
    """Write ``data`` to an open handle through the shim."""
    if _active is None:
        handle.write(data)
        return
    _active.write(handle, data)


def io_fsync(fileno: int, path: Optional[Union[str, Path]] = None) -> None:
    """fsync a file descriptor through the shim (``path`` labels it)."""
    if _active is None:
        os.fsync(fileno)
        return
    _active.fsync(fileno, path)


def io_replace(src: Union[str, Path], dst: Union[str, Path]) -> None:
    """``os.replace`` through the shim."""
    if _active is None:
        os.replace(src, dst)
        return
    _active.replace(src, dst)


def io_read_bytes(path: Union[str, Path]) -> bytes:
    """``Path.read_bytes`` through the shim."""
    if _active is None:
        return Path(path).read_bytes()
    return _active.read_bytes(path)


def io_read_text(path: Union[str, Path]) -> str:
    """``Path.read_text`` through the shim (UTF-8)."""
    if _active is None:
        return Path(path).read_text()
    return _active.read_bytes(path).decode("utf-8")


def io_read(
    handle: IO[bytes], n: int, path: Optional[Union[str, Path]] = None
) -> bytes:
    """A positioned ``handle.read(n)`` through the shim."""
    if _active is None:
        return handle.read(n)
    return _active.read_handle(handle, n, path)


# ----------------------------------------------------------------------
# Retry with bounded backoff
# ----------------------------------------------------------------------

def retry_io(
    operation: Callable[[], _T],
    what: str,
    retries: int = IO_RETRIES,
    backoff_base_s: float = IO_BACKOFF_BASE_S,
    backoff_max_s: float = IO_BACKOFF_MAX_S,
    on_retry: Optional[Callable[[int, OSError], None]] = None,
) -> _T:
    """Run ``operation``, retrying transient errnos with bounded backoff.

    Only :data:`TRANSIENT_ERRNOS` (EIO) are retried -- ENOSPC and every
    other errno propagate immediately to the caller's degradation or
    quarantine path.  Each retry is counted (``io.retries``) and logged;
    ``on_retry(attempt, exc)`` lets callers heal partial state (e.g.
    truncate a torn append tail) before the operation reruns.  The last
    error is re-raised once the budget is spent -- loud, never swallowed.
    """
    attempt = 0
    while True:
        try:
            return operation()
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS or attempt >= retries:
                raise
            attempt += 1
            obs_counter("io.retries").inc()
            obs_event(
                "warning", "io.retry",
                what=what, attempt=attempt, error=str(exc),
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(
                min(backoff_max_s, backoff_base_s * (2.0 ** (attempt - 1)))
            )


# ----------------------------------------------------------------------
# Stale-temp reclaim
# ----------------------------------------------------------------------

def reclaim_tmp_files(
    root: Union[str, Path], recursive: bool = True, scope: str = "io"
) -> int:
    """Sweep leaked ``*.tmp`` files under ``root``; returns the count.

    A crash between ``mkstemp`` and ``os.replace`` (or a dropped
    rename) leaks the temp file forever -- harmless to correctness,
    corrosive to disk budgets.  Writers and drivers call this once at
    startup on directories they own exclusively (a campaign state dir,
    a locked building partition, a fleet root); the reclaim is loud,
    mirroring the dead-lock reclaim in :mod:`repro.store.lock`:
    ``io.tmp_reclaimed`` counter plus a warning event naming the root.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    candidates = root.rglob("*" + TMP_SUFFIX) if recursive else root.glob(
        "*" + TMP_SUFFIX
    )
    reclaimed = 0
    for path in sorted(candidates):
        if not path.is_file():
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deletion
            continue
        reclaimed += 1
    if reclaimed:
        obs_counter("io.tmp_reclaimed").inc(reclaimed)
        obs_event(
            "warning", "io.tmp_reclaimed",
            root=str(root), count=reclaimed, scope=scope,
        )
    return reclaimed
