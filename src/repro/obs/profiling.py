"""Per-block resource profiles: wall time, CPU time, peak memory.

:class:`ProfileProbe` is a context manager that measures one block of
work -- the runner wraps each experiment ``run()`` in one (inside the
pool worker, so the numbers describe *that* experiment's process) and
embeds the result in the run manifest's ``profile`` section.

Measured quantities:

* ``wall_s`` -- elapsed monotonic wall clock;
* ``cpu_s`` -- process CPU time (user + system) via ``process_time``;
* ``max_rss_kb`` -- the process's peak resident set (``resource``
  module; ``None`` on platforms without it);
* ``py_alloc_peak_kb`` -- peak python allocation during the block via
  ``tracemalloc`` (only when ``trace_allocations=True``; tracing costs
  2-4x on allocation-heavy code, so the runner enables it only under
  ``--obs``).

``ru_maxrss`` is a process-lifetime high-water mark, so for blocks run
inside a fresh pool worker it is effectively per-experiment; for inline
runs it is an upper bound.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Dict, Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Schema tag for profile dicts embedded in manifests.
PROFILE_SCHEMA = "repro/obs-profile/v1"


def peak_rss_kb() -> Optional[int]:
    """The process's lifetime peak RSS in KiB (None when unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports KiB; macOS reports bytes.
    rss = int(usage.ru_maxrss)
    import sys
    if sys.platform == "darwin":  # pragma: no cover - linux container
        rss //= 1024
    return rss


class ProfileProbe:
    """Measure one block: ``with ProfileProbe() as probe: ...``."""

    def __init__(self, trace_allocations: bool = True):
        self.trace_allocations = trace_allocations
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.max_rss_kb: Optional[int] = None
        self.py_alloc_peak_kb: Optional[int] = None
        self._started_tracemalloc = False

    def __enter__(self) -> "ProfileProbe":
        if self.trace_allocations:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self.max_rss_kb = peak_rss_kb()
        if self.trace_allocations:
            _, peak = tracemalloc.get_traced_memory()
            self.py_alloc_peak_kb = peak // 1024
            if self._started_tracemalloc:
                tracemalloc.stop()

    def as_dict(self) -> Dict[str, Any]:
        """The profile as the manifest's ``profile`` payload."""
        return {
            "schema": PROFILE_SCHEMA,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "max_rss_kb": self.max_rss_kb,
            "py_alloc_peak_kb": self.py_alloc_peak_kb,
        }


def validate_profile(profile: Any) -> bool:
    """True when ``profile`` looks like a ProfileProbe export."""
    if not isinstance(profile, dict):
        return False
    for field in ("wall_s", "cpu_s"):
        if not isinstance(profile.get(field), (int, float)):
            return False
    for field in ("max_rss_kb", "py_alloc_peak_kb"):
        if profile.get(field) is not None and not isinstance(
            profile[field], (int, float)
        ):
            return False
    return True
