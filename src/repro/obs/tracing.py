"""Span-based tracing with Chrome ``chrome://tracing`` JSON export.

A :class:`Tracer` records *spans*: named intervals opened with the
``tracer.span("name", key=value)`` context manager.  Spans nest -- each
thread keeps its own open-span stack, so a span opened while another is
active records that span as its parent.  Timing uses the monotonic
``perf_counter_ns`` clock for durations and ``time_ns`` for the wall
anchor, so merged traces from several processes (the runner's pool
workers) land on one shared timeline.

``to_chrome_trace`` renders the recorded spans as Chrome trace-event
JSON (complete ``"ph": "X"`` events plus process-name metadata), which
loads directly into ``chrome://tracing`` / Perfetto.
``validate_chrome_trace`` is the structural checker the CLI and CI use.

The :data:`NULL_TRACER` singleton is the disabled-mode tracer: its
``span`` returns a shared no-op context manager, so un-instrumented
runs pay one attribute lookup and a constant-object ``with``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional

#: Schema tag for exported trace files (carried in ``otherData``).
TRACE_SCHEMA = "repro/obs-trace/v1"


class Span:
    """One named interval; use via ``with tracer.span(...)``."""

    __slots__ = (
        "name", "args", "pid", "tid", "parent_name",
        "start_wall_ns", "_start_perf_ns", "duration_ns", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str,
                 parent_name: Optional[str], args: Dict[str, Any]):
        self.name = name
        self.args = args
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.parent_name = parent_name
        self.start_wall_ns = time.time_ns()
        self._start_perf_ns = time.perf_counter_ns()
        self.duration_ns: Optional[int] = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.duration_ns = time.perf_counter_ns() - self._start_perf_ns
        self._tracer._pop(self)

    def set(self, **args: Any) -> None:
        """Attach extra key/value detail to the span."""
        self.args.update(args)

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent_name,
            "pid": self.pid,
            "tid": self.tid,
            "start_wall_ns": self.start_wall_ns,
            "duration_ns": self.duration_ns,
            "args": dict(self.args),
        }


class _NullSpan:
    """Disabled-mode span: a reusable, argument-swallowing context."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from any thread; exports a merged Chrome trace."""

    def __init__(self, process_label: Optional[str] = None):
        self.process_label = process_label or f"pid-{os.getpid()}"
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._stacks = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "open_spans", None)
        if stack is None:
            stack = self._stacks.open_spans = []
        return stack

    def span(self, name: str, **args: Any) -> Span:
        stack = self._stack()
        parent = stack[-1].name if stack else None
        return Span(self, name, parent, args)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._records.append(span.to_record())

    def records(self) -> List[Dict[str, Any]]:
        """Completed spans, in completion order."""
        with self._lock:
            return list(self._records)

    def add_records(self, records: List[Mapping[str, Any]],
                    process_label: Optional[str] = None) -> None:
        """Merge spans exported by another tracer (e.g. a pool worker)."""
        cleaned = []
        for record in records:
            entry = dict(record)
            if process_label:
                entry.setdefault("process_label", process_label)
            cleaned.append(entry)
        with self._lock:
            self._records.extend(cleaned)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object."""
        records = self.records()
        events: List[Dict[str, Any]] = []
        labels: Dict[int, str] = {}
        for record in records:
            pid = int(record["pid"])
            labels.setdefault(
                pid, str(record.get("process_label", self.process_label))
            )
            events.append({
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": record["start_wall_ns"] / 1000.0,  # microseconds
                "dur": (record["duration_ns"] or 0) / 1000.0,
                "pid": pid,
                "tid": int(record["tid"]),
                "args": {
                    **record.get("args", {}),
                    **(
                        {"parent": record["parent"]}
                        if record.get("parent") else {}
                    ),
                },
            })
        for pid, label in sorted(labels.items()):
            events.append({
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "spans": len(records)},
        }


class NullTracer:
    """Disabled-mode tracer: every span is the shared no-op context."""

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def records(self) -> List[Dict[str, Any]]:
        return []

    def add_records(self, records: List[Mapping[str, Any]],
                    process_label: Optional[str] = None) -> None:
        pass

    def clear(self) -> None:
        pass

    def to_chrome_trace(self) -> Dict[str, Any]:
        return {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "spans": 0},
        }


#: Shared no-op tracer handed out when observability is disabled.
NULL_TRACER = NullTracer()


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural problems in a Chrome trace object (empty == valid).

    Checks the subset of the trace-event format this library emits:
    a ``traceEvents`` list of ``"X"`` (complete) and ``"M"`` (metadata)
    events with numeric timestamps and integer pid/tid.
    """
    problems: List[str] = []
    if not isinstance(trace, Mapping):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no traceEvents list"]
    for index, event in enumerate(events):
        label = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{label} is not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{label}: missing or empty name")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"{label}: unsupported phase {phase!r}")
        if not isinstance(event.get("ts"), (int, float)) or event.get("ts", -1) < 0:
            problems.append(f"{label}: bad ts")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{label}: {key} is not an integer")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{label}: complete event has bad dur")
        if "args" in event and not isinstance(event["args"], Mapping):
            problems.append(f"{label}: args is not an object")
    return problems
