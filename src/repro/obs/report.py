"""The ``obs report`` health dossier, built from stored ``_obs`` series.

Reads back what the :mod:`repro.obs.pipeline` recorder wrote -- the
counter deltas, gauge readings and histogram quantiles under the
``_obs`` building -- and folds each source (``campaign``, ``serve``,
...) into a summary an operator can read in one screen: activity
totals, latency percentiles, degradation counters, and the top wall
time sinks.  JSON for machines, markdown for humans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from ..errors import ObsError
from ..store.keys import OBS_BUILDING
from ..store.query import QueryEngine
from ..store.store import TelemetryStore

#: Schema tag for the JSON dossier.
OBS_REPORT_SCHEMA = "repro/obs-report/v1"

#: Metrics surfaced as one-line highlights when present (all sources).
HIGHLIGHT_METRICS = (
    ("campaign.epochs_run", "total", "epochs run"),
    ("campaign.epoch_wall_s", "last", "last epoch wall s"),
    ("campaign.degradations", "total", "degraded epochs"),
    ("campaign.epoch_timeouts", "total", "watchdog timeouts"),
    ("campaign.retries", "total", "TDMA retries"),
    ("serve.requests", "total", "http requests"),
    ("store.rows_ingested", "total", "rows ingested"),
    ("process.max_rss_kb", "max", "peak RSS kB"),
)

#: How many ``.sum`` series make the "top time sinks" table.
TOP_SINKS = 5


def build_report(
    store: TelemetryStore, building: str = OBS_BUILDING
) -> Dict[str, Any]:
    """The dossier as a JSON-ready dict; raises when no ``_obs`` series
    exist (nothing has self-recorded into this store yet)."""
    engine = QueryEngine(store)
    keys = sorted(k for k in store.keys() if k.building == building)
    if not keys:
        raise ObsError(
            f"no {building!r} series in {store.root} -- run "
            "`campaign run --store ... --obs` or `store serve "
            "--self-record` first"
        )
    sources: Dict[str, Dict[str, Any]] = {}
    for key in keys:
        data = engine.series(key)
        t, values = data["t"], data["value"]
        if t.size == 0:
            continue
        source = sources.setdefault(
            key.wall,
            {"series": 0, "metrics": {}, "t0": float(t[0]), "t1": float(t[-1])},
        )
        source["series"] += 1
        source["t0"] = min(source["t0"], float(t[0]))
        source["t1"] = max(source["t1"], float(t[-1]))
        source["metrics"][key.metric] = {
            "samples": int(t.size),
            "last": float(values[-1]),
            "max": float(values.max()),
            # Counters arrive as per-tick deltas, so their sum is the
            # lifetime total; for gauges it is meaningless and unused.
            "total": float(values.sum()),
        }
    for source in sources.values():
        metrics = source["metrics"]
        source["highlights"] = {
            label: metrics[name][stat]
            for name, stat, label in HIGHLIGHT_METRICS
            if name in metrics
        }
        source["latency_p95"] = {
            name[: -len(".p95")]: entry["last"]
            for name, entry in sorted(metrics.items())
            if name.endswith(".p95")
        }
        sinks = sorted(
            (
                (name[: -len(".sum")], entry["total"])
                for name, entry in metrics.items()
                if name.endswith("_s.sum")
            ),
            key=lambda item: -item[1],
        )
        source["top_time_sinks"] = [
            [name, round(total, 6)] for name, total in sinks[:TOP_SINKS]
        ]
    return {
        "schema": OBS_REPORT_SCHEMA,
        "store": str(store.root),
        "building": building,
        "sources": sources,
    }


def render_report_markdown(report: Dict[str, Any]) -> str:
    """The dossier as a markdown document."""
    lines: List[str] = [
        "# Operational telemetry report",
        "",
        f"Store: `{report['store']}` (building `{report['building']}`)",
    ]
    for name, source in sorted(report["sources"].items()):
        lines += [
            "",
            f"## Source `{name}`",
            "",
            f"{source['series']} series spanning hours "
            f"{source['t0']:g} to {source['t1']:g}.",
        ]
        if source["highlights"]:
            lines += ["", "| highlight | value |", "| --- | --- |"]
            for label, value in source["highlights"].items():
                lines.append(f"| {label} | {value:g} |")
        if source["latency_p95"]:
            lines += ["", "| latency (p95, last tick) | seconds |",
                      "| --- | --- |"]
            for metric, value in source["latency_p95"].items():
                lines.append(f"| {metric} | {value:.6g} |")
        if source["top_time_sinks"]:
            lines += ["", "| top time sinks | total seconds |",
                      "| --- | --- |"]
            for metric, total in source["top_time_sinks"]:
                lines.append(f"| {metric} | {total:.6g} |")
    lines.append("")
    return "\n".join(lines)
