"""Process-local metrics: counters, gauges, histograms, registries.

The metric model is deliberately small and Prometheus-shaped:

* :class:`Counter` -- monotonically increasing float;
* :class:`Gauge` -- settable float (last write wins);
* :class:`Histogram` -- bucketed observations with count/sum/min/max;
* labeled children via ``metric.labels(key=value)``, so one registered
  name fans out into per-label series (``tdma.slots{session="s1"}``);
* a :class:`MetricsRegistry` owning the metrics, with text and JSON
  exposition and snapshot *merging* (how worker-process metrics fold
  back into the parent runner's registry).

Everything is thread-safe: registration takes a registry lock, value
updates take a per-metric lock.  The ``NULL_*`` singletons are the
disabled-mode counterparts -- every mutator is a ``pass`` -- so
instrumented code paths cost one dict lookup and a no-op call when
observability is off (see :mod:`repro.obs`).
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ObsError

#: Schema tag stamped into exported metrics snapshots.
METRICS_SCHEMA = "repro/obs-metrics/v1"

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: microsecond DSP spans to multi-minute sweeps); callers with other
#: units pass their own boundaries.
DEFAULT_BUCKETS = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelItems = ()) -> str:
    """The exposition key for one series: ``name{k=v,...}`` or ``name``."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class _Metric:
    """Shared plumbing: identity, lock, label-child creation."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 labels: LabelItems = (),
                 registry: Optional["MetricsRegistry"] = None):
        if not name:
            raise ObsError("metric name cannot be empty")
        self.name = name
        self.help = help
        self.label_items = labels
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        return series_name(self.name, self.label_items)

    def labels(self, **labels: Any) -> "_Metric":
        """The child series of this metric for one label combination."""
        if self._registry is None:
            raise ObsError(
                f"metric {self.name!r} is unregistered; labels() needs a registry"
            )
        merged = dict(self.label_items)
        merged.update({str(k): str(v) for k, v in labels.items()})
        return self._registry._get_or_create(
            type(self), self.name, self.help, _label_items(merged),
            **self._child_kwargs(),
        )

    def _child_kwargs(self) -> Dict[str, Any]:
        return {}


class Counter(_Metric):
    """Monotonic counter; ``inc`` with a negative amount is an error."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelItems = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, labels, registry)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """Point-in-time value; ``set`` overwrites, ``inc``/``dec`` adjust."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelItems = (),
                 registry: Optional["MetricsRegistry"] = None):
        super().__init__(name, help, labels, registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Metric):
    """Bucketed observations (cumulative buckets, Prometheus-style)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: LabelItems = (),
                 registry: Optional["MetricsRegistry"] = None,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labels, registry)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObsError(f"histogram {name!r} needs at least one bucket")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow slot
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def _child_kwargs(self) -> Dict[str, Any]:
        return {"buckets": self.bounds}

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> Dict[str, Any]:
        """Snapshot dict: count/sum/min/max plus cumulative buckets."""
        with self._lock:
            cumulative: List[List[Any]] = []
            running = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                cumulative.append([bound, running])
            cumulative.append(["+inf", self._count])
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": cumulative,
            }


class _NullMetric:
    """Disabled-mode stand-in: every operation is a cheap no-op."""

    __slots__ = ()

    def labels(self, **labels: Any) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


#: Shared no-op metric handed out when observability is disabled.
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Thread-safe collection of metrics with exposition and merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: LabelItems, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get((name, labels))
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, registry=self,
                         **kwargs)
            self._metrics[(name, labels)] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help, ())

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help, ())

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, (), buckets=buckets)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every series, keyed by exposition name."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                counters[metric.series] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.series] = metric.value
            elif isinstance(metric, Histogram):
                histograms[metric.series] = metric.summary()
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold an exported snapshot into this registry.

        Counters and histogram count/sum add; gauges take the incoming
        value (last write wins).  Histogram *bucket* detail cannot be
        reconstructed from a summary, so merged observations land via
        count/sum/min/max only -- exact enough for cross-process
        aggregation of worker registries.
        """
        for series, value in snapshot.get("counters", {}).items():
            name, labels = parse_series(series)
            target = self.counter(name)
            if labels:
                target = target.labels(**dict(labels))
            target.inc(value)
        for series, value in snapshot.get("gauges", {}).items():
            name, labels = parse_series(series)
            target = self.gauge(name)
            if labels:
                target = target.labels(**dict(labels))
            target.set(value)
        for series, summary in snapshot.get("histograms", {}).items():
            name, labels = parse_series(series)
            hist = self.histogram(name)
            if labels:
                hist = hist.labels(**dict(labels))
            with hist._lock:
                hist._count += int(summary.get("count", 0))
                hist._sum += float(summary.get("sum", 0.0))
                # Cumulative buckets re-expand into per-slot counts.
                previous = 0
                for bound_pair in summary.get("buckets", []):
                    bound, cum = bound_pair
                    if bound == "+inf":
                        slot = len(hist.bounds)
                    else:
                        slot = bisect.bisect_left(hist.bounds, float(bound))
                    hist._bucket_counts[slot] += int(cum) - previous
                    previous = int(cum)
                for extreme, picker in (("min", min), ("max", max)):
                    incoming_value = summary.get(extreme)
                    if incoming_value is None:
                        continue
                    current = getattr(hist, f"_{extreme}")
                    setattr(
                        hist, f"_{extreme}",
                        incoming_value if current is None
                        else picker(current, incoming_value),
                    )

    def render_text(self) -> str:
        return render_snapshot_text(self.snapshot())


def parse_series(series: str) -> Tuple[str, LabelItems]:
    """Invert :func:`series_name`: ``name{k=v}`` -> (name, ((k, v),))."""
    if "{" not in series:
        return series, ()
    name, _, rest = series.partition("{")
    body = rest.rstrip("}")
    labels = []
    for part in body.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels.append((key, value))
    return name, tuple(labels)


#: Legal Prometheus metric-name characters; anything else becomes ``_``.
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_FIRST_OK = re.compile(r"^[a-zA-Z_:]")

#: Legal Prometheus label-name characters.
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Map an internal dotted metric name onto a Prometheus-legal one.

    Dots (our namespace separator) and every other illegal character
    become underscores; a name whose first character is still illegal
    (e.g. a digit) gains a leading underscore.  Deterministic, so the
    same registry always exposes the same names.
    """
    mapped = _PROM_NAME_BAD.sub("_", name)
    if not mapped:
        return "_"
    if not _PROM_FIRST_OK.match(mapped):
        mapped = "_" + mapped
    return mapped


def prometheus_label_name(name: str) -> str:
    """Map a label key onto a Prometheus-legal label name."""
    mapped = _PROM_LABEL_BAD.sub("_", name)
    if not mapped:
        return "_"
    if mapped[0].isdigit():
        mapped = "_" + mapped
    return mapped


def escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus text format.

    Backslash, double quote and newline are the three characters the
    exposition format escapes; everything else passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_value(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_labels(labels: LabelItems, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [
        f'{prometheus_label_name(k)}="{escape_label_value(v)}"'
        for k, v in tuple(labels) + tuple(extra)
    ]
    return "{" + ",".join(items) + "}" if items else ""


def render_prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text-exposition rendering of a metrics snapshot.

    The payload a ``/metrics`` scrape endpoint serves: one ``# TYPE``
    line per metric family, then one sample line per labelled series,
    with label values escaped per the exposition format.  Histograms
    expand into cumulative ``_bucket{le=...}`` samples plus ``_sum``
    and ``_count``.  Families and series are emitted in sorted order,
    so two scrapes of the same registry state are byte-identical.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for kind_key, prom_type in (
        ("counters", "counter"), ("gauges", "gauge"), ("histograms", "histogram")
    ):
        for series, value in snapshot.get(kind_key, {}).items():
            name, labels = parse_series(series)
            family = families.setdefault(
                prometheus_name(name), {"type": prom_type, "series": []}
            )
            family["series"].append((tuple(labels), value))
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        lines.append(f"# TYPE {name} {family['type']}")
        for labels, value in sorted(family["series"]):
            if family["type"] == "histogram":
                for bound, cum in value.get("buckets", []):
                    le = "+Inf" if bound == "+inf" else _prom_value(bound)
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, (('le', le),))} "
                        f"{_prom_value(cum)}"
                    )
                if not value.get("buckets"):
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, (('le', '+Inf'),))} "
                        f"{_prom_value(value.get('count', 0))}"
                    )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} "
                    f"{_prom_value(value.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} "
                    f"{_prom_value(value.get('count', 0))}"
                )
            else:
                lines.append(f"{name}{_prom_labels(labels)} {_prom_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_snapshot_text(snapshot: Mapping[str, Any]) -> str:
    """Human-readable exposition of a metrics snapshot.

    One line per series, grouped by metric kind, so ``experiments
    stats`` output diffs cleanly between runs.
    """
    lines: List[str] = []
    for kind in ("counters", "gauges"):
        series = snapshot.get(kind, {})
        for name in sorted(series):
            value = series[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{kind[:-1]} {name} {rendered}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        mean = summary["sum"] / summary["count"] if summary["count"] else 0.0
        lines.append(
            f"histogram {name} count={summary['count']} "
            f"sum={summary['sum']:.6g} mean={mean:.6g} "
            f"min={summary['min']} max={summary['max']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
